#!/usr/bin/env python3
"""Statement-coverage measurement (offline stand-in for ``pytest-cov``).

Runs the test suite with a ``sys.settrace``/``sys.monitoring`` line
collector restricted to ``src/repro`` and reports statement coverage
per file and in total.  The statement universe is derived the same way
``coverage.py`` derives it — the line numbers reachable from the
compiled module's code objects (``co_lines``), minus lines annotated
``# pragma: no cover`` — so the two tools agree closely on what
"coverage" means.

CI runs the real thing (``pytest --cov=repro --cov-fail-under=$(cat
.coverage-floor)``); this script exists to

* measure (and re-ratchet) the committed floor in environments where
  ``pytest-cov`` is not installed, and
* debug coverage regressions offline with zero extra dependencies.

Usage::

    PYTHONPATH=src python tools/check_coverage.py [--fail-under PCT]
        [--output coverage.json] [pytest args...]

Extra arguments are passed to pytest verbatim (default: ``tests -q``).
Exit status is 0 when coverage meets the threshold (or no threshold was
given), 1 otherwise.

This is a measurement tool, not a tier-1 gate: tracing slows the suite
roughly an order of magnitude, so it is run on demand, while CI pays
the (much smaller) pytest-cov cost on every push.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Set, Tuple

#: Package directory whose statements are measured.
DEFAULT_PACKAGE = Path(__file__).resolve().parent.parent / "src" / "repro"


def executable_lines(path: Path) -> Set[int]:
    """The statement universe of one file: lines reachable from its code objects.

    Mirrors ``coverage.py``: compile the module, walk every nested code
    object, and collect the line numbers its instructions map to —
    excluding ``# pragma: no cover`` lines and module docstrings
    (``co_lines`` of the module object reports the docstring line even
    though there is nothing to "run").
    """
    source = path.read_text(encoding="utf-8")
    code = compile(source, str(path), "exec")
    lines: Set[int] = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        for constant in obj.co_consts:
            if isinstance(constant, type(code)):
                stack.append(constant)
        for _, _, line in obj.co_lines():
            if line is not None and line > 0:
                lines.add(line)
    source_lines = source.splitlines()
    pragma = {
        number
        for number, text in enumerate(source_lines, start=1)
        if "pragma: no cover" in text
    }
    # drop the (docstring) line(s) compile() attributes to module/class headers
    # with no executable statement: a line whose source is only part of a
    # string literal or blank can never be hit by the line tracer
    return {
        line for line in lines - pragma
        if line <= len(source_lines) and source_lines[line - 1].strip()
    }


def collect_universe(package: Path) -> Dict[str, Set[int]]:
    """Executable lines for every ``.py`` file under ``package``."""
    return {
        str(path): executable_lines(path)
        for path in sorted(package.rglob("*.py"))
    }


class LineCollector:
    """Records executed ``(filename, line)`` pairs inside one directory tree."""

    def __init__(self, prefix: str) -> None:
        """Restrict collection to files under ``prefix``."""
        self.prefix = prefix
        self.hits: Dict[str, Set[int]] = {}

    # -- sys.monitoring backend (Python >= 3.12: ~5x cheaper) -----------
    def start_monitoring(self) -> bool:
        """Try to register with ``sys.monitoring``; False if unavailable."""
        monitoring = getattr(sys, "monitoring", None)
        if monitoring is None:
            return False
        tool = monitoring.COVERAGE_ID
        monitoring.use_tool_id(tool, "check_coverage")

        def on_line(code, line):
            """LINE event: record hits for in-tree files only."""
            filename = code.co_filename
            if filename.startswith(self.prefix):
                self.hits.setdefault(filename, set()).add(line)
            else:
                return monitoring.DISABLE
            return None

        monitoring.register_callback(tool, monitoring.events.LINE, on_line)
        monitoring.set_events(tool, monitoring.events.LINE)
        self._tool = tool
        return True

    def stop_monitoring(self) -> None:
        """Unregister the ``sys.monitoring`` callback."""
        monitoring = sys.monitoring
        monitoring.set_events(self._tool, 0)
        monitoring.register_callback(self._tool, monitoring.events.LINE, None)
        monitoring.free_tool_id(self._tool)

    # -- sys.settrace backend (portable fallback) -----------------------
    def trace(self, frame, event, arg):
        """Global trace function: opt into line events for in-tree frames only."""
        if event != "call":
            return None
        filename = frame.f_code.co_filename
        if not filename.startswith(self.prefix):
            return None
        hits = self.hits.setdefault(filename, set())

        def local(frame, event, arg):
            """Local tracer: record each executed line of this frame."""
            if event == "line":
                hits.add(frame.f_lineno)
            return local

        # record the 'call' line itself (the def line executes on call)
        hits.add(frame.f_lineno)
        return local


def measure(pytest_args, package: Path) -> Tuple[int, Dict[str, Set[int]]]:
    """Run pytest under the collector; returns (pytest exit code, hits)."""
    import pytest

    collector = LineCollector(prefix=str(package))
    used_monitoring = collector.start_monitoring()
    if not used_monitoring:
        sys.settrace(collector.trace)
    try:
        exit_code = pytest.main(list(pytest_args))
    finally:
        if used_monitoring:
            collector.stop_monitoring()
        else:
            sys.settrace(None)
    return int(exit_code), collector.hits


def report(universe: Dict[str, Set[int]], hits: Dict[str, Set[int]],
           verbose: bool = False) -> Tuple[float, Dict[str, dict]]:
    """Fold hits into per-file and total percentages."""
    per_file: Dict[str, dict] = {}
    total_statements = 0
    total_covered = 0
    for filename, statements in universe.items():
        covered = statements & hits.get(filename, set())
        total_statements += len(statements)
        total_covered += len(covered)
        per_file[filename] = {
            "statements": len(statements),
            "covered": len(covered),
            "percent": 100.0 * len(covered) / len(statements) if statements else 100.0,
        }
        if verbose:
            missing = sorted(statements - covered)
            if missing:
                per_file[filename]["missing"] = missing
    total = 100.0 * total_covered / total_statements if total_statements else 100.0
    return total, per_file


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fail-under", type=float, default=None,
                        help="fail if total statement coverage is below this %%")
    parser.add_argument("--output", default=None,
                        help="write the JSON report to this path")
    parser.add_argument("--package", default=str(DEFAULT_PACKAGE),
                        help="package directory to measure (default: src/repro)")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="include missing line numbers in the report")
    parser.add_argument("pytest_args", nargs="*", default=[],
                        help="arguments passed to pytest (default: tests -q)")
    args = parser.parse_args(argv)

    package = Path(args.package).resolve()
    pytest_args = args.pytest_args or ["tests", "-q", "-p", "no:cacheprovider"]
    universe = collect_universe(package)
    exit_code, hits = measure(pytest_args, package)
    if exit_code != 0:
        print(f"pytest failed (exit {exit_code}); coverage not evaluated",
              file=sys.stderr)
        return exit_code

    total, per_file = report(universe, hits, verbose=args.verbose)
    width = max(len(name) for name in per_file) if per_file else 10
    for name, entry in sorted(per_file.items()):
        print(f"{name:<{width}}  {entry['covered']:>5}/{entry['statements']:<5}"
              f"  {entry['percent']:6.1f}%")
    print(f"{'TOTAL':<{width}}  {sum(e['covered'] for e in per_file.values()):>5}"
          f"/{sum(e['statements'] for e in per_file.values()):<5}  {total:6.1f}%")

    if args.output:
        payload = {"total_percent": total, "files": per_file}
        Path(args.output).write_text(json.dumps(payload, indent=2, sort_keys=True))
    if args.fail_under is not None and total < args.fail_under:
        print(f"FAIL: statement coverage {total:.1f}% is below the "
              f"{args.fail_under:.1f}% floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
