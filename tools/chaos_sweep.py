#!/usr/bin/env python
"""Self-chaos harness: attack the sweep executor and assert it recovers.

PR 4 gave the *simulated* cluster a fault injector; this tool aims the
same discipline at the execution layer itself.  It runs a real sweep
three ways and asserts the crash-safety invariants end to end:

1. **Baseline** — an uninterrupted in-process ``workers=1`` run; its
   canonical bytes are the oracle every other stage must reproduce.
2. **Chaos** — the same sweep with the env-gated fault hook
   (:mod:`repro.scenarios.chaos`) killing, poisoning, and delaying
   worker attempts, supervised by
   :class:`~repro.scenarios.executor.ResilientSweepRunner` with retries.
   Invariant: the recovered envelope is byte-identical to the baseline
   and the journal is parseable with the expected lifecycle records.
3. **Interrupt + resume** (``--interrupt-after``) — a ``python -m repro
   sweep`` subprocess (shards stretched by chaos delays) is SIGTERM'd
   mid-run, then resumed from its journal without chaos.  Invariants:
   the interrupted run leaves *no* output file and a parseable journal;
   the resumed output is byte-identical to the baseline.

Usage::

    PYTHONPATH=src python tools/chaos_sweep.py --preset fig3 --workers 4 \\
        --kill 0.5 --poison 0.3 --retries 3 --journal chaos_journal.jsonl \\
        --interrupt-after 2.0

Exit code 0 means every invariant held; any violation (or an unexpected
crash) exits non-zero.  CI runs this as the chaos smoke job.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

_REPO = Path(__file__).resolve().parents[1]
if str(_REPO / "src") not in sys.path:
    sys.path.insert(0, str(_REPO / "src"))

from repro.scenarios import build  # noqa: E402
from repro.scenarios.chaos import CHAOS_ENV, ChaosConfig  # noqa: E402
from repro.scenarios.executor import ResilientSweepRunner  # noqa: E402
from repro.scenarios.journal import RunJournal  # noqa: E402
from repro.scenarios.spec import canonical_json  # noqa: E402
from repro.scenarios.sweep import SweepSpec  # noqa: E402


def _preset_sweep(name: str) -> SweepSpec:
    """A CI-sized build of one of the acceptance sweeps."""
    presets = {
        "fig3": lambda: build("fig3", mus=(10.0,), slo_deadlines=(0.1,),
                              arrival_rates=(10.0, 20.0, 30.0),
                              duration=30.0, seed=3),
        "fig10": lambda: build("fig10", fail_at=20.0, recover_at=40.0,
                               duration=60.0),
        "policy-shootout": lambda: build("policy-shootout", duration=45.0),
        "fig12": lambda: build("fig12", duration=45.0),
        "fig9-at-scale": lambda: build("fig9-at-scale", functions=48,
                                       duration_minutes=12, shards=6,
                                       chunk_minutes=5, sketch_size=64),
    }
    if name not in presets:
        raise SystemExit(f"unknown preset {name!r}; choose from {sorted(presets)}")
    return presets[name]()


def _load_sweep(args: argparse.Namespace) -> SweepSpec:
    """The sweep under attack: an explicit sweep.json or a named preset."""
    if args.spec:
        return SweepSpec.from_json(Path(args.spec).read_text(encoding="utf-8"))
    return _preset_sweep(args.preset)


def _check(condition: bool, label: str, failures: list) -> None:
    """Record one invariant check, printing its verdict."""
    verdict = "ok" if condition else "VIOLATED"
    print(f"  [{verdict}] {label}")
    if not condition:
        failures.append(label)


def _chaos_stage(sweep: SweepSpec, baseline: str, chaos: ChaosConfig,
                 args: argparse.Namespace, workdir: Path,
                 failures: list) -> None:
    """Stage 2: faults injected into live workers; recovery must be exact."""
    journal_path = str(workdir / "chaos_journal.jsonl")
    os.environ[CHAOS_ENV] = chaos.to_json()
    try:
        started = time.monotonic()
        envelope = ResilientSweepRunner(
            sweep, workers=args.workers, retries=args.retries,
            timeout=args.timeout, backoff_base=0.05, backoff_cap=1.0,
            journal=journal_path, on_failure="continue",
        ).run()
    finally:
        os.environ.pop(CHAOS_ENV, None)
    elapsed = time.monotonic() - started
    records = RunJournal.read_records(journal_path)
    events = [r["event"] for r in records]
    hurt = sum(1 for e in events if e in ("failed", "timeout"))
    print(f"chaos stage: {len(records)} journal records, {hurt} injected "
          f"failures/timeouts, {elapsed:.1f}s")
    _check(canonical_json(envelope) == baseline,
           "chaos-recovered envelope byte-identical to baseline", failures)
    _check(events.count("ok") == sweep.shard_count(),
           "journal has one 'ok' record per shard", failures)
    _check(hurt > 0 or (chaos.kill_probability == chaos.poison_probability
                        == chaos.delay_probability == 0.0),
           "chaos actually injected faults (raise probabilities otherwise)",
           failures)
    if args.keep_journal:
        Path(args.keep_journal).write_bytes(Path(journal_path).read_bytes())


def _mixed_delay_seed(sweep: SweepSpec, probability: float = 0.5) -> int:
    """A chaos seed whose delay draws stretch *some* shards but not all.

    With a mixed outcome the SIGTERM always lands mid-run (a delayed
    shard is still sleeping) while at least one shard has already
    journaled its result — so the resume stage demonstrably *skips*
    work rather than recomputing everything.  The search is
    deterministic: chaos draws are pure functions of (seed, shard).
    """
    from repro.scenarios.chaos import chaos_draw
    from repro.scenarios.journal import shard_spec_hash

    hashes = [shard_spec_hash(spec.to_dict()) for spec in sweep.expand()]
    for seed in range(1000):
        delayed = [chaos_draw(seed, "delay", h, 1) < probability for h in hashes]
        if any(delayed) and not all(delayed):
            return seed
    raise SystemExit("no mixed-delay chaos seed found (single-shard sweep?)")


def _interrupt_stage(sweep: SweepSpec, baseline: str,
                     args: argparse.Namespace, workdir: Path,
                     failures: list) -> None:
    """Stage 3: SIGTERM a CLI sweep mid-run, then resume from its journal."""
    spec_path = workdir / "chaos_sweep_spec.json"
    spec_path.write_text(sweep.to_json(), encoding="utf-8")
    journal_path = workdir / "interrupt_journal.jsonl"
    output_path = workdir / "interrupted_output.json"
    command = [
        sys.executable, "-m", "repro", "sweep", str(spec_path),
        "--workers", str(args.workers),
        "--journal", str(journal_path),
        "--output", str(output_path),
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    # stretch *some* shards (deterministically mixed) so the SIGTERM lands
    # while delayed shards are in flight after fast shards have journaled
    env[CHAOS_ENV] = ChaosConfig(delay_probability=0.5,
                                 delay_seconds=max(5.0, 2 * args.interrupt_after),
                                 max_attempt=10**6,
                                 seed=_mixed_delay_seed(sweep)).to_json()
    process = subprocess.Popen(command, env=env)
    time.sleep(args.interrupt_after)
    process.send_signal(signal.SIGTERM)
    returncode = process.wait(timeout=60)
    print(f"interrupt stage: SIGTERM after {args.interrupt_after:.1f}s, "
          f"exit code {returncode}")
    _check(returncode != 0, "interrupted sweep exits non-zero", failures)
    _check(not output_path.exists(),
           "interrupted sweep leaves no partial --output file", failures)
    records = RunJournal.read_records(str(journal_path))
    _check(bool(records) and records[0]["event"] == "sweep",
           "interrupted journal is parseable with a header record", failures)
    completed_before = sum(1 for r in records if r["event"] == "ok")
    env.pop(CHAOS_ENV)  # resume runs clean
    resumed = subprocess.run(command + ["--resume"], env=env, timeout=600)
    _check(resumed.returncode == 0, "resumed sweep exits 0", failures)
    headers = [r for r in RunJournal.read_records(str(journal_path))
               if r["event"] == "sweep"]
    _check(len(headers) >= 2 and headers[-1].get("resumed", 0) == completed_before
           and completed_before >= 1,
           f"resume skipped the {completed_before} already-journaled shard(s)",
           failures)
    resumed_bytes = output_path.read_text(encoding="utf-8") \
        if output_path.exists() else ""
    _check(resumed_bytes == baseline + "\n",
           "interrupted-then-resumed output byte-identical to baseline", failures)


def main(argv=None) -> int:
    """Run the chaos stages and report which invariants held."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--preset", default="fig3",
                        choices=["fig3", "fig10", "policy-shootout", "fig12",
                                 "fig9-at-scale"],
                        help="which acceptance sweep to attack (default fig3)")
    parser.add_argument("--spec", default=None,
                        help="attack an explicit sweep.json instead of a preset")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--retries", type=int, default=3)
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-shard wall-clock budget for the chaos stage")
    parser.add_argument("--kill", type=float, default=0.5,
                        help="P(SIGKILL) per first attempt (default 0.5)")
    parser.add_argument("--poison", type=float, default=0.3,
                        help="P(injected exception) per first attempt (default 0.3)")
    parser.add_argument("--delay-prob", type=float, default=0.0,
                        help="P(injected sleep) per first attempt (default 0)")
    parser.add_argument("--delay-seconds", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=7, help="chaos draw seed")
    parser.add_argument("--interrupt-after", type=float, default=None,
                        metavar="SECONDS",
                        help="also run the SIGTERM-mid-sweep + resume stage")
    parser.add_argument("--keep-journal", default=None, metavar="PATH",
                        help="copy the chaos-stage journal here (CI artifact)")
    args = parser.parse_args(argv)

    sweep = _load_sweep(args)
    print(f"sweep under attack: {sweep.name!r} ({sweep.shard_count()} shards), "
          f"workers={args.workers}, retries={args.retries}")
    started = time.monotonic()
    baseline = ResilientSweepRunner(sweep, workers=1).run_json()
    print(f"baseline: uninterrupted workers=1 run, {len(baseline)} bytes, "
          f"{time.monotonic() - started:.1f}s")

    failures: list = []
    chaos = ChaosConfig(kill_probability=args.kill,
                        poison_probability=args.poison,
                        delay_probability=args.delay_prob,
                        delay_seconds=args.delay_seconds,
                        max_attempt=1, seed=args.seed)
    with tempfile.TemporaryDirectory(prefix="chaos_sweep_") as tmp:
        workdir = Path(tmp)
        _chaos_stage(sweep, baseline, chaos, args, workdir, failures)
        if args.interrupt_after is not None:
            _interrupt_stage(sweep, baseline, args, workdir, failures)
    if failures:
        print(f"\n{len(failures)} invariant(s) VIOLATED:", file=sys.stderr)
        for label in failures:
            print(f"  - {label}", file=sys.stderr)
        return 1
    print("\nall chaos invariants held")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
