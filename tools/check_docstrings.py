#!/usr/bin/env python3
"""Docstring-coverage checker (offline stand-in for ``interrogate``).

Walks a package directory, AST-parses every ``.py`` file, and counts
docstrings on modules, classes, and (sync or async) functions/methods —
the same population ``interrogate`` checks with its default settings, so
the two gates agree on what "coverage" means.  CI runs the real
``interrogate --fail-under=90 src/repro``; this script backs the tier-1
test (``tests/test_docstring_coverage.py``) so the gate also holds in
environments where interrogate is not installed.

Usage::

    python tools/check_docstrings.py [--fail-under PCT] [-v] [PATH ...]

Exit status is 0 when coverage meets the threshold, 1 otherwise.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Tuple

#: Default package directory the gate applies to (relative to the repo root).
DEFAULT_PATHS = ("src/repro",)

#: Default minimum coverage percentage (kept in lock-step with CI).
DEFAULT_FAIL_UNDER = 90.0


@dataclass
class CoverageReport:
    """Counts of documented vs. total definitions, plus what is missing."""

    total: int = 0
    documented: int = 0
    missing: List[str] = field(default_factory=list)

    @property
    def percentage(self) -> float:
        """Documented definitions as a percentage of all definitions."""
        if self.total == 0:
            return 100.0
        return 100.0 * self.documented / self.total

    def merge(self, other: "CoverageReport") -> None:
        """Fold another report's counts into this one."""
        self.total += other.total
        self.documented += other.documented
        self.missing.extend(other.missing)


def _definitions(tree: ast.Module) -> Iterable[Tuple[str, ast.AST]]:
    """Yield ``(dotted name, node)`` for the module and every class/function."""
    yield "<module>", tree
    stack: List[Tuple[str, ast.AST]] = [("", tree)]
    while stack:
        prefix, node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                name = f"{prefix}.{child.name}" if prefix else child.name
                yield name, child
                stack.append((name, child))


def check_file(path: Path) -> CoverageReport:
    """Docstring coverage of one Python source file."""
    report = CoverageReport()
    tree = ast.parse(path.read_text(encoding="utf-8"))
    for name, node in _definitions(tree):
        report.total += 1
        if ast.get_docstring(node):
            report.documented += 1
        else:
            line = getattr(node, "lineno", 1)
            report.missing.append(f"{path}:{line}: {name}")
    return report


def check_paths(paths: Iterable[str]) -> CoverageReport:
    """Docstring coverage of every ``.py`` file under the given paths."""
    report = CoverageReport()
    for root in paths:
        root_path = Path(root)
        files = sorted(root_path.rglob("*.py")) if root_path.is_dir() else [root_path]
        for file_path in files:
            report.merge(check_file(file_path))
    return report


def main(argv: List[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=list(DEFAULT_PATHS),
                        help=f"files/directories to check (default: {DEFAULT_PATHS})")
    parser.add_argument("--fail-under", type=float, default=DEFAULT_FAIL_UNDER,
                        help=f"minimum coverage percentage (default {DEFAULT_FAIL_UNDER})")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="list every undocumented definition")
    args = parser.parse_args(argv)

    report = check_paths(args.paths)
    if args.verbose:
        for entry in report.missing:
            print(entry)
    status = "PASSED" if report.percentage >= args.fail_under else "FAILED"
    print(f"docstring coverage: {report.documented}/{report.total} "
          f"({report.percentage:.1f}%), required {args.fail_under:.1f}% — {status}")
    return 0 if status == "PASSED" else 1


if __name__ == "__main__":
    raise SystemExit(main())
