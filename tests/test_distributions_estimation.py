"""Tests for service-time distributions and the estimation layer."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.estimation.ewma import EwmaEstimator
from repro.core.estimation.service_time import (
    OnlineServiceTimeEstimator,
    ServiceTimeProfile,
    StreamingQuantile,
)
from repro.core.estimation.sliding_window import DualWindowRateEstimator, SlidingWindowCounter
from repro.core.queueing.distributions import (
    Deterministic,
    Exponential,
    LogNormal,
    ShiftedExponential,
)


class TestDistributions:
    @pytest.mark.parametrize("dist", [
        Exponential(0.1),
        Deterministic(0.1),
        LogNormal(0.1, cv=0.3),
        ShiftedExponential(0.04, 0.06),
    ])
    def test_sample_mean_matches_declared_mean(self, dist, rng):
        samples = dist.sample(rng, size=20000)
        assert float(np.mean(samples)) == pytest.approx(dist.mean, rel=0.05)

    @pytest.mark.parametrize("dist", [
        Exponential(0.1),
        Deterministic(0.1),
        LogNormal(0.1, cv=0.3),
        ShiftedExponential(0.04, 0.06),
    ])
    def test_percentile_matches_empirical(self, dist, rng):
        samples = dist.sample(rng, size=20000)
        assert dist.percentile(0.9) == pytest.approx(float(np.quantile(samples, 0.9)), rel=0.08)

    @pytest.mark.parametrize("dist", [
        Exponential(0.1),
        Deterministic(0.1),
        LogNormal(0.1, cv=0.3),
        ShiftedExponential(0.04, 0.06),
    ])
    def test_scaled_doubles_the_mean(self, dist):
        assert dist.scaled(2.0).mean == pytest.approx(2 * dist.mean)

    def test_rate_is_inverse_mean(self):
        assert Exponential(0.25).rate == pytest.approx(4.0)

    def test_exponential_percentile_closed_form(self):
        assert Exponential(0.1).percentile(0.95) == pytest.approx(-0.1 * math.log(0.05))

    def test_validation(self):
        with pytest.raises(ValueError):
            Exponential(0.0)
        with pytest.raises(ValueError):
            LogNormal(0.1, cv=0.0)
        with pytest.raises(ValueError):
            ShiftedExponential(-0.1, 0.1)
        with pytest.raises(ValueError):
            Exponential(0.1).percentile(1.0)


class TestEwma:
    def test_first_observation_seeds_value(self):
        ewma = EwmaEstimator(alpha=0.7)
        assert ewma.update(10.0) == 10.0

    def test_weights_recent_observations(self):
        ewma = EwmaEstimator(alpha=0.7)
        ewma.update(10.0)
        assert ewma.update(20.0) == pytest.approx(0.7 * 20 + 0.3 * 10)

    def test_converges_to_constant_input(self):
        ewma = EwmaEstimator(alpha=0.5, initial=0.0)
        for _ in range(40):
            ewma.update(5.0)
        assert ewma.value == pytest.approx(5.0, abs=1e-6)

    def test_history_and_count(self):
        ewma = EwmaEstimator()
        ewma.update(1.0)
        ewma.update(2.0)
        assert ewma.observations == 2
        assert len(ewma.history) == 2

    def test_predict_before_observation(self):
        assert EwmaEstimator().predict() == 0.0

    def test_reset(self):
        ewma = EwmaEstimator()
        ewma.update(3.0)
        ewma.reset()
        assert ewma.value is None and ewma.observations == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            EwmaEstimator(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaEstimator().update(-1.0)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e4), min_size=1, max_size=50),
           st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_property_stays_within_observed_range(self, observations, alpha):
        ewma = EwmaEstimator(alpha=alpha)
        for value in observations:
            ewma.update(value)
        assert min(observations) - 1e-9 <= ewma.value <= max(observations) + 1e-9


class TestBucketizedWindow:
    """The PR-1 ring-buffer counter: O(1) record, constant memory."""

    def test_constant_memory_under_bursts(self):
        counter = SlidingWindowCounter(120.0)  # default 5 s buckets -> 25 slots
        buckets = len(counter._counts)
        for i in range(50_000):
            counter.record(i * 0.001)  # a 1000 req/s burst
        assert len(counter._counts) == buckets
        assert counter.count(now=50.0) > 0

    def test_aligned_queries_are_exact(self):
        counter = SlidingWindowCounter(10.0, bucket_width=5.0)
        for t in (0.5, 2.0, 5.5, 9.0, 12.0):
            counter.record(t)
        # query aligned to a bucket boundary: exactly the events in (5, 15]
        assert counter.count(now=15.0) == 3
        assert counter.count(now=20.0) == 1  # only the 12.0 event remains in (10, 20]

    def test_burst_switch_at_window_boundary(self):
        estimator = DualWindowRateEstimator(long_window=120, short_window=10)
        t = 0.0
        while t < 100.0:                      # 5 req/s background
            estimator.record_arrival(t)
            t += 0.2
        while t < 110.0:                      # burst at 50 req/s filling the short window
            estimator.record_arrival(t)
            t += 0.02
        # sampled exactly at the burst-window boundary (aligned, 5 s grid)
        obs = estimator.estimate(now=110.0)
        assert obs.burst_detected
        assert obs.rate == obs.short_rate == pytest.approx(50.0, rel=0.1)
        # one short-window length later with no further arrivals the burst
        # has left the short window again
        obs_after = estimator.estimate(now=125.0)
        assert not obs_after.burst_detected
        assert obs_after.rate == obs_after.long_rate

    def test_startup_transient_uses_elapsed_cap(self):
        counter = SlidingWindowCounter(120.0)
        for t in np.arange(0.0, 5.0, 0.25):   # 4 req/s for the first five seconds
            counter.record(float(t))
        # without the cap the 20 events would be spread over the whole window
        assert counter.rate(now=5.0) == pytest.approx(20 / 120.0)
        assert counter.rate(now=5.0, elapsed=5.0) == pytest.approx(4.0)

    def test_clear_resets_counts_and_monotonicity(self):
        counter = SlidingWindowCounter(10.0)
        counter.record(5.0)
        counter.clear()
        assert counter.count(now=5.0) == 0
        counter.record(1.0)  # going "back in time" is fine after clear()
        assert counter.count(now=1.0) == 1

    def test_events_expire_after_window(self):
        counter = SlidingWindowCounter(10.0, bucket_width=5.0)
        counter.record(12.0)
        assert counter.count(now=15.0) == 1
        assert counter.count(now=30.0) == 0

    def test_bucket_width_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowCounter(10.0, bucket_width=0.0)
        with pytest.raises(ValueError):
            SlidingWindowCounter(10.0, bucket_width=20.0)
        # short windows clamp the default bucket to half the window
        assert SlidingWindowCounter(2.0).bucket_width == pytest.approx(1.0)


class TestSlidingWindows:
    def test_counter_evicts_old_events(self):
        counter = SlidingWindowCounter(10.0)
        for t in (0.0, 2.0, 5.0, 9.0, 12.0):
            counter.record(t)
        # bucketized semantics: an unaligned query (12.0 on a 5 s grid)
        # includes the whole partially-covered oldest bucket [0, 5), so all
        # five events count; at the aligned query 20.0 the buckets below
        # [10, 15) have been evicted and only the 12.0 event remains
        assert counter.count(now=12.0) == 5
        assert counter.count(now=20.0) == 1

    def test_rate_uses_elapsed_cap(self):
        counter = SlidingWindowCounter(120.0)
        for t in np.arange(0.0, 5.0, 0.5):
            counter.record(float(t))
        assert counter.rate(now=5.0, elapsed=5.0) == pytest.approx(2.0)

    def test_non_decreasing_timestamps_enforced(self):
        counter = SlidingWindowCounter(10.0)
        counter.record(5.0)
        with pytest.raises(ValueError):
            counter.record(1.0)

    def test_dual_window_uses_long_window_without_burst(self):
        estimator = DualWindowRateEstimator(long_window=120, short_window=10)
        for t in np.arange(0.0, 100.0, 0.1):   # steady 10 req/s
            estimator.record_arrival(float(t))
        obs = estimator.estimate(now=100.0)
        assert not obs.burst_detected
        assert obs.rate == pytest.approx(10.0, rel=0.05)

    def test_dual_window_switches_on_burst(self):
        estimator = DualWindowRateEstimator(long_window=120, short_window=10, burst_factor=2.0)
        t = 0.0
        while t < 100.0:                       # 5 req/s background
            estimator.record_arrival(t)
            t += 0.2
        while t < 110.0:                       # 10-second burst at 50 req/s
            estimator.record_arrival(t)
            t += 0.02
        obs = estimator.estimate(now=110.0)
        assert obs.burst_detected
        assert obs.rate == pytest.approx(50.0, rel=0.15)
        assert obs.rate == obs.short_rate

    def test_estimate_with_no_arrivals(self):
        estimator = DualWindowRateEstimator()
        obs = estimator.estimate(now=50.0)
        assert obs.rate == 0.0
        assert not obs.burst_detected

    def test_validation(self):
        with pytest.raises(ValueError):
            DualWindowRateEstimator(long_window=10, short_window=10)
        with pytest.raises(ValueError):
            DualWindowRateEstimator(burst_factor=1.0)
        with pytest.raises(ValueError):
            SlidingWindowCounter(0.0)


class TestServiceTimeProfile:
    def make_profile(self) -> ServiceTimeProfile:
        return ServiceTimeProfile(
            function_name="fn",
            cpu_fractions=(0.5, 0.7, 1.0),
            mean_service_times=(0.2, 0.15, 0.1),
            distribution=Exponential(0.1),
        )

    def test_interpolates_mean(self):
        profile = self.make_profile()
        assert profile.mean_service_time(1.0) == pytest.approx(0.1)
        assert profile.mean_service_time(0.5) == pytest.approx(0.2)
        assert 0.15 < profile.mean_service_time(0.6) < 0.2

    def test_service_rate_inverse(self):
        assert self.make_profile().service_rate(1.0) == pytest.approx(10.0)

    def test_percentile_scales_with_size(self):
        profile = self.make_profile()
        assert profile.percentile(0.95, 0.5) == pytest.approx(2 * profile.percentile(0.95, 1.0))

    def test_from_speed_curve(self):
        profile = ServiceTimeProfile.from_speed_curve("fn", 0.1, lambda f: f)
        assert profile.mean_service_time(0.5) == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceTimeProfile("fn", (1.0, 0.5), (0.1, 0.2))   # not sorted
        with pytest.raises(ValueError):
            ServiceTimeProfile("fn", (0.5,), (0.1, 0.2))       # length mismatch
        with pytest.raises(ValueError):
            ServiceTimeProfile("fn", (0.5,), (-0.1,))


class TestStreamingQuantileAndOnlineEstimator:
    def test_quantile_matches_numpy_for_small_samples(self, rng):
        sq = StreamingQuantile(max_samples=5000)
        data = rng.exponential(0.1, size=2000)
        for x in data:
            sq.add(float(x))
        assert sq.quantile(0.95) == pytest.approx(float(np.quantile(data, 0.95)), rel=0.02)
        assert sq.count == 2000

    def test_reservoir_bounds_memory(self, rng):
        sq = StreamingQuantile(max_samples=100)
        for x in rng.exponential(0.1, size=5000):
            sq.add(float(x))
        assert len(sq._sorted) == 100
        assert sq.count == 5000

    def test_quantile_requires_data(self):
        with pytest.raises(ValueError):
            StreamingQuantile().quantile(0.5)

    def test_online_estimator_learns_per_bucket(self):
        estimator = OnlineServiceTimeEstimator(bucket_width=0.1)
        for _ in range(50):
            estimator.observe(1.0, 0.1)
            estimator.observe(0.7, 0.15)
        assert estimator.mean_service_time(1.0) == pytest.approx(0.1)
        assert estimator.mean_service_time(0.7) == pytest.approx(0.15)
        assert estimator.service_rate(1.0) == pytest.approx(10.0)

    def test_online_estimator_falls_back_to_nearest_bucket(self):
        estimator = OnlineServiceTimeEstimator()
        for _ in range(30):
            estimator.observe(1.0, 0.1)
        # asking about 50% CPU: scales the standard observation proportionally
        assert estimator.mean_service_time(0.5) == pytest.approx(0.2, rel=0.05)

    def test_online_estimator_unknown_returns_none(self):
        estimator = OnlineServiceTimeEstimator()
        assert estimator.mean_service_time(1.0) is None
        assert estimator.service_rate(1.0) is None

    def test_percentile_from_observations(self, rng):
        estimator = OnlineServiceTimeEstimator()
        data = rng.exponential(0.1, size=2000)
        for x in data:
            estimator.observe(1.0, float(x))
        assert estimator.percentile(0.95, 1.0) == pytest.approx(float(np.quantile(data, 0.95)), rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineServiceTimeEstimator(bucket_width=0.0)
        with pytest.raises(ValueError):
            OnlineServiceTimeEstimator().observe(1.0, -0.1)
        with pytest.raises(ValueError):
            StreamingQuantile(max_samples=2)


class TestBucketizedWindowStaleRecords:
    def test_record_behind_advanced_head_is_dropped(self):
        """A count() query advances the ring; a subsequent record older than
        the retained span must not alias a newer bucket (phantom events)."""
        counter = SlidingWindowCounter(10.0, bucket_width=5.0)
        counter.record(0.0)
        assert counter.count(now=100.0) == 0   # advances the head far forward
        counter.record(1.0)                    # non-decreasing, but ancient
        assert counter.count(now=100.0) == 0   # must not appear in (90, 100]


class TestUnalignedQueryOverApproximation:
    def test_unaligned_query_never_misses_in_window_events(self):
        # events at 3 and 4 lie inside (2, 12] but in a partially-covered
        # bucket; the counter must include them (over-approximate), not
        # silently drop them — under-counting would delay burst detection
        counter = SlidingWindowCounter(10.0, bucket_width=5.0)
        for t in (3.0, 4.0, 6.0, 11.0):
            counter.record(t)
        assert counter.count(now=12.0) == 4
