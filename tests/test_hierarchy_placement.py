"""Tests for the scheduling hierarchy and container placement."""

import pytest

from repro.cluster.node import Node
from repro.core.allocation.hierarchy import SchedulingNode, SchedulingTree
from repro.core.allocation.placement import (
    PlacementRequest,
    best_fit,
    first_fit,
    plan_placements,
    worst_fit,
)


class TestSchedulingTree:
    def test_flat_tree_effective_weights(self):
        tree = SchedulingTree.flat({"a": 1.0, "b": 3.0})
        weights = tree.effective_weights()
        assert weights["a"] == pytest.approx(0.25)
        assert weights["b"] == pytest.approx(0.75)

    def test_two_level_tree_matches_paper_setup(self):
        # two users, user-2 has twice the weight, three functions each:
        # user-1's functions are entitled to ~1/3 of the cluster in total
        tree = SchedulingTree.two_level(
            users={"user-1": 1.0, "user-2": 2.0},
            functions={"a": "user-1", "b": "user-1", "c": "user-1",
                       "d": "user-2", "e": "user-2", "f": "user-2"},
        )
        shares = tree.guaranteed_shares(12.0)
        user1_total = shares["a"] + shares["b"] + shares["c"]
        user2_total = shares["d"] + shares["e"] + shares["f"]
        assert user1_total == pytest.approx(4.0)
        assert user2_total == pytest.approx(8.0)

    def test_allocation_respects_user_weights_under_contention(self):
        tree = SchedulingTree.two_level(
            users={"user-1": 1.0, "user-2": 2.0},
            functions={"a": "user-1", "b": "user-2"},
        )
        allocations = tree.allocate({"a": 100.0, "b": 100.0}, 12.0)
        assert allocations["a"] == pytest.approx(4.0)
        assert allocations["b"] == pytest.approx(8.0)

    def test_unused_share_flows_to_other_user(self):
        tree = SchedulingTree.two_level(
            users={"user-1": 1.0, "user-2": 2.0},
            functions={"a": "user-1", "b": "user-2"},
        )
        allocations = tree.allocate({"a": 100.0, "b": 2.0}, 12.0)
        assert allocations["b"] == pytest.approx(2.0)
        assert allocations["a"] == pytest.approx(10.0)

    def test_within_user_split_by_function_weight(self):
        tree = SchedulingTree.two_level(
            users={"u": 1.0},
            functions={"a": "u", "b": "u"},
            function_weights={"a": 3.0, "b": 1.0},
        )
        allocations = tree.allocate({"a": 100.0, "b": 100.0}, 8.0)
        assert allocations["a"] == pytest.approx(6.0)
        assert allocations["b"] == pytest.approx(2.0)

    def test_no_demand_allocates_nothing(self):
        tree = SchedulingTree.flat({"a": 1.0, "b": 1.0})
        allocations = tree.allocate({"a": 0.0, "b": 0.0}, 12.0)
        assert allocations == {"a": 0.0, "b": 0.0}

    def test_allocation_never_exceeds_demand_or_capacity(self):
        tree = SchedulingTree.flat({"a": 1.0, "b": 1.0, "c": 2.0})
        demands = {"a": 1.0, "b": 5.0, "c": 20.0}
        allocations = tree.allocate(demands, 12.0)
        assert sum(allocations.values()) <= 12.0 + 1e-9
        for name in demands:
            assert allocations[name] <= demands[name] + 1e-9

    def test_unknown_function_rejected(self):
        tree = SchedulingTree.flat({"a": 1.0})
        with pytest.raises(KeyError):
            tree.allocate({"zzz": 1.0}, 12.0)

    def test_unknown_user_rejected(self):
        tree = SchedulingTree()
        with pytest.raises(KeyError):
            tree.add_function("fn", user="ghost")

    def test_duplicate_child_rejected(self):
        node = SchedulingNode("root")
        node.add_child(SchedulingNode("a"))
        with pytest.raises(ValueError):
            node.add_child(SchedulingNode("a"))

    def test_three_level_hierarchy(self):
        # the paper notes the model extends to arbitrary levels
        tree = SchedulingTree()
        org = tree.root.add_child(SchedulingNode("org", weight=1.0))
        team1 = org.add_child(SchedulingNode("team-1", weight=1.0))
        team2 = org.add_child(SchedulingNode("team-2", weight=1.0))
        team1.add_child(SchedulingNode("f1"))
        team2.add_child(SchedulingNode("f2"))
        allocations = tree.allocate({"f1": 50.0, "f2": 50.0}, 10.0)
        assert allocations["f1"] == pytest.approx(5.0)
        assert allocations["f2"] == pytest.approx(5.0)

    def test_function_names_and_find(self):
        tree = SchedulingTree.flat({"a": 1.0, "b": 1.0})
        assert set(tree.function_names()) == {"a", "b"}
        assert tree.root.find("a").name == "a"
        assert tree.root.find("zzz") is None


class TestPlacement:
    def make_nodes(self):
        return [Node("n0", 4.0, 16384), Node("n1", 4.0, 16384), Node("n2", 4.0, 16384)]

    def test_worst_fit_picks_emptiest(self):
        nodes = self.make_nodes()
        nodes[0].add_container(_container(2.0))
        chosen = worst_fit(nodes, PlacementRequest("fn", 1.0, 256))
        assert chosen.name in ("n1", "n2")

    def test_best_fit_picks_fullest_that_fits(self):
        nodes = self.make_nodes()
        nodes[0].add_container(_container(2.0))
        chosen = best_fit(nodes, PlacementRequest("fn", 1.0, 256))
        assert chosen.name == "n0"

    def test_first_fit_respects_order(self):
        nodes = self.make_nodes()
        chosen = first_fit(nodes, PlacementRequest("fn", 1.0, 256))
        assert chosen.name == "n0"

    def test_infeasible_returns_none(self):
        nodes = self.make_nodes()
        assert best_fit(nodes, PlacementRequest("fn", 5.0, 256)) is None

    def test_unresponsive_nodes_skipped(self):
        nodes = self.make_nodes()
        for node in nodes[:2]:
            node.unresponsive = True
        chosen = worst_fit(nodes, PlacementRequest("fn", 1.0, 256))
        assert chosen.name == "n2"

    def test_plan_reserves_capacity_across_batch(self):
        nodes = self.make_nodes()
        requests = [PlacementRequest("fn", 2.0, 1024)] * 6
        plan = plan_placements(nodes, requests, strategy="worst_fit")
        assert plan.fully_placed
        per_node = {}
        for request, node_name in plan.placements:
            per_node[node_name] = per_node.get(node_name, 0) + 1
        assert all(count == 2 for count in per_node.values())

    def test_plan_reports_unplaced(self):
        nodes = self.make_nodes()
        requests = [PlacementRequest("fn", 3.0, 1024)] * 5
        plan = plan_placements(nodes, requests)
        assert len(plan.placements) == 3
        assert len(plan.unplaced) == 2

    def test_best_fit_packing_leaves_room_for_large_containers(self):
        nodes = self.make_nodes()
        small = [PlacementRequest("small", 0.5, 256)] * 4
        plan = plan_placements(nodes, small, strategy="best_fit")
        for request, node_name in plan.placements:
            node = next(n for n in nodes if n.name == node_name)
            node.add_container(_container(request.cpu))
        # a 4-vCPU container must still fit somewhere
        assert any(n.can_fit(4.0, 1024) for n in nodes)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            plan_placements(self.make_nodes(), [], strategy="bogus")

    def test_invalid_request_rejected(self):
        with pytest.raises(ValueError):
            PlacementRequest("fn", 0.0, 128)


def _container(cpu: float):
    from repro.cluster.container import Container

    return Container(function_name="x", node_name="", standard_cpu=cpu, memory_mb=256)
