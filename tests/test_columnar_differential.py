"""Differential oracle: the columnar data plane vs the event-level plane.

The columnar kernel (:mod:`repro.sim.columnar`) is an opt-in rewrite of
the hottest loop in the simulator.  Its correctness contract is not "close
enough" — it is **byte-for-byte equality** with the event-level path:
identical per-request lifecycle records (ids, timestamps, container
placement, cold-start flags) and identical results envelopes
(:func:`canonical_json` of the full scenario output), across every
registered scenario, fault arm, and control-plane policy.

The event-level plane is the oracle, the same way PR 3 kept
``required_containers_naive`` as the oracle for the vectorised sizing
solver.  Every test here runs the same spec through both planes — with
the request-id counter reset in between so both planes see the same id
stream — and diffs the results.
"""

from __future__ import annotations

import dataclasses
import itertools
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.sim.request as request_module
from repro.scenarios.registry import SHOOTOUT_POLICIES, build
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ScenarioSpec, canonical_json
from repro.scenarios.sweep import SweepRunner, SweepSpec, apply_overrides

#: Simulation-backed hypothesis examples are expensive; keep the count
#: modest and derandomized so CI time is predictable.
SIM_PROPERTY_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


def _reset_request_ids() -> None:
    """Rewind the global request-id stream so both planes see the same ids."""
    request_module._request_counter = itertools.count(0)


def _columnar(spec: ScenarioSpec) -> ScenarioSpec:
    """The same scenario with the columnar data plane selected."""
    return apply_overrides(spec, {"data_plane": "columnar"})


def _record_rows(outcome):
    """The per-request lifecycle table, sorted by request id."""
    rows = [
        (
            r.request_id, r.function_name, r.arrival_time, r.deadline, r.work,
            r.status.value, r.start_time, r.completion_time, r.container_id,
            r.node_name, r.cold_start,
        )
        for r in outcome.sim.metrics.requests
    ]
    rows.sort()
    return rows


def _strip_timing(obj):
    """Drop host-dependent wall-clock fields (the sizing benchmark's)."""
    if isinstance(obj, dict):
        return {
            k: _strip_timing(v) for k, v in obj.items() if "second" not in k
        }
    if isinstance(obj, list):
        return [_strip_timing(v) for v in obj]
    return obj


def assert_planes_identical(spec: ScenarioSpec, timing_free: bool = False) -> None:
    """Run ``spec`` through both planes and require byte-identical output."""
    _reset_request_ids()
    event = run_scenario(spec)
    _reset_request_ids()
    columnar = run_scenario(_columnar(spec))

    event_data = dict(event.data)
    columnar_data = dict(columnar.data)
    # the spec echo legitimately differs by exactly the data_plane field
    assert columnar_data["scenario"].pop("data_plane", "event") == "columnar"
    assert "data_plane" not in event_data["scenario"]
    if timing_free:
        event_data = _strip_timing(event_data)
        columnar_data = _strip_timing(columnar_data)
    assert canonical_json(columnar_data) == canonical_json(event_data), (
        f"envelope mismatch for scenario {spec.name!r}"
    )
    if event.sim is not None:
        assert columnar.sim is not None
        assert _record_rows(event) == _record_rows(columnar), (
            f"per-request lifecycle mismatch for scenario {spec.name!r}"
        )


def _shards(built):
    """A builder's shards: the sweep expansion, or the single spec."""
    if isinstance(built, SweepSpec):
        return built.expand()
    return [built]


# ----------------------------------------------------------------------
# Every registered scenario, scaled down but structurally intact
# ----------------------------------------------------------------------
#: name -> builder kwargs.  Durations are shrunk so the whole gauntlet
#: stays CI-sized, but every kind, fault arm, policy, workload shape and
#: metric group of the full-size scenarios is exercised.
REGISTRY_CASES = {
    "table1": {},
    "fig3": {"mus": (10.0,), "slo_deadlines": (0.1,),
             "arrival_rates": (10.0, 30.0), "duration": 40.0},
    "fig4": {"proportions": (0.5,), "arrival_rates": (20.0,), "duration": 40.0},
    "fig5": {"container_counts": (10, 25), "repeats": 1},
    "fig6": {"step_duration": 20.0},
    "fig7": {},
    "fig8": {"phase_duration": 30.0},
    "fig9": {"duration_minutes": 2},
    # trace_replay never touches the request lifecycle, so both planes
    # run the identical streaming kernel — the case pins that the spec
    # round-trips and the envelope stays plane-independent
    "fig9-at-scale": {"functions": 12, "duration_minutes": 4, "shards": 3,
                      "chunk_minutes": 3, "sketch_size": 16},
    "fig10": {"duration": 120.0, "fail_at": 30.0, "recover_at": 60.0},
    "fig11": {"duration": 40.0},
    "node-failure-recovery": {"duration": 120.0, "fail_at": 30.0,
                              "recover_at": 60.0},
    "rolling-node-churn": {"phase": 20.0},
    "flaky-containers": {"duration": 60.0},
    "policy-shootout": {"duration": 40.0},
    "quickstart": {"duration": 30.0},
    "video-analytics-burst": {"bursts": 1, "burst_length": 20.0,
                              "idle_length": 30.0},
    "overload-fair-share": {"phase_duration": 20.0},
    "azure-replay": {"duration_minutes": 2},
}

#: Federated scenarios run only on the event-level plane — the spec
#: layer rejects ``data_plane="columnar"`` with a federation — so the
#: gauntlet asserts that rejection instead of diffing the planes.
FEDERATED_CASES = {
    "fig12": {"duration": 40.0},
    "site-outage-failover": {"duration": 60.0},
    "partitioned-control-plane": {"duration": 60.0},
    "flash-crowd-one-region": {"duration": 60.0},
}

#: Scenario kinds whose envelopes embed host wall-clock measurements.
TIMING_SCENARIOS = {"fig5"}


def test_every_registered_scenario_has_a_differential_case():
    """The gauntlet goes stale the moment someone registers a scenario."""
    from repro.scenarios import registry

    assert set(REGISTRY_CASES) | set(FEDERATED_CASES) == set(registry.names())
    assert not set(REGISTRY_CASES) & set(FEDERATED_CASES)


@pytest.mark.parametrize("name", sorted(FEDERATED_CASES))
def test_federated_scenarios_reject_the_columnar_plane(name):
    """Every federated shard refuses the columnar plane at spec level."""
    built = build(name, **FEDERATED_CASES[name])
    shards = _shards(built)
    assert shards, name
    for spec in shards:
        assert spec.federation is not None
        with pytest.raises(ValueError, match="data_plane='event'"):
            apply_overrides(spec, {"data_plane": "columnar"})


@pytest.mark.parametrize("name", sorted(REGISTRY_CASES))
def test_columnar_matches_event_plane(name):
    """Columnar ≡ event-level on every shard of every registered scenario."""
    built = build(name, **REGISTRY_CASES[name])
    shards = _shards(built)
    assert shards, name
    for spec in shards:
        assert_planes_identical(spec, timing_free=name in TIMING_SCENARIOS)


def test_policy_shootout_covers_all_policies_and_fault_arms():
    """The shootout case really is the policies × faults cross product."""
    shards = _shards(build("policy-shootout", duration=40.0))
    arms = {(s.controller.policy, s.faults is not None) for s in shards}
    for policy in SHOOTOUT_POLICIES:
        assert (policy, False) in arms
        assert (policy, True) in arms


def test_noop_policy_matches():
    """The sixth policy (noop) is not in the shootout; cover it directly."""
    spec = apply_overrides(
        build("quickstart", duration=30.0), {"controller.policy": "noop"}
    )
    assert_planes_identical(spec)


# ----------------------------------------------------------------------
# workers=1 ≡ workers=N with the columnar plane enabled
# ----------------------------------------------------------------------
def test_columnar_sweep_workers_byte_identical():
    """A columnar sweep shards exactly like an event-level one.

    ``workers=1`` and ``workers=4`` must produce byte-identical sweep
    JSON, and each shard's envelope must equal its event-plane twin
    modulo the ``data_plane`` spec echo.
    """
    sweep = build("fig3", mus=(10.0,), slo_deadlines=(0.1,),
                  arrival_rates=(10.0, 20.0, 30.0), duration=30.0)
    columnar_sweep = dataclasses.replace(
        sweep, base=apply_overrides(sweep.base, {"data_plane": "columnar"})
    )
    serial = SweepRunner(columnar_sweep, workers=1).run_json()
    parallel = SweepRunner(columnar_sweep, workers=4).run_json()
    assert serial == parallel

    event_results = json.loads(SweepRunner(sweep, workers=1).run_json())["results"]
    columnar_results = json.loads(serial)["results"]
    assert len(event_results) == len(columnar_results) == 3
    for event_shard, columnar_shard in zip(event_results, columnar_results):
        assert columnar_shard["scenario"].pop("data_plane") == "columnar"
        assert columnar_shard == event_shard


# ----------------------------------------------------------------------
# Hypothesis: random small workloads, byte-for-byte
# ----------------------------------------------------------------------
@given(
    rate=st.floats(min_value=2.0, max_value=40.0),
    duration=st.floats(min_value=12.0, max_value=35.0),
    seed=st.integers(min_value=0, max_value=2**16),
    policy=st.sampled_from(("lass", "hybrid", "reactive", "static")),
)
@SIM_PROPERTY_SETTINGS
def test_random_workloads_byte_for_byte(rate, duration, seed, policy):
    """Columnar ≡ event-level on randomly drawn small workloads."""
    overrides = {"controller.policy": policy}
    if policy == "static":
        overrides["controller.policy_params"] = {"allocations": {"squeezenet": 4}}
    spec = apply_overrides(
        build("quickstart", rate=rate, duration=duration, seed=seed), overrides
    )
    assert_planes_identical(spec)


@given(
    crash_probability=st.floats(min_value=0.0, max_value=0.2),
    rate=st.floats(min_value=4.0, max_value=25.0),
    seed=st.integers(min_value=0, max_value=2**16),
)
@SIM_PROPERTY_SETTINGS
def test_random_faulted_workloads_byte_for_byte(crash_probability, rate, seed):
    """Crash-on-dispatch consumes fault RNG identically in both planes."""
    spec = build("flaky-containers", crash_probability=crash_probability,
                 rate=rate, duration=45.0, seed=seed)
    assert_planes_identical(spec)
