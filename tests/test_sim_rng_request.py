"""Unit tests for RNG streams and the request lifecycle."""

import pytest

from repro.sim.request import Request, RequestStatus
from repro.sim.rng import RngStreams


class TestRngStreams:
    def test_same_seed_same_stream_is_reproducible(self):
        a = RngStreams(42).stream("arrivals").exponential(1.0)
        b = RngStreams(42).stream("arrivals").exponential(1.0)
        assert a == b

    def test_different_names_give_different_draws(self):
        rng = RngStreams(42)
        a = rng.stream("arrivals").random(100)
        b = rng.stream("service").random(100)
        assert not (a == b).all()

    def test_different_seeds_give_different_draws(self):
        a = RngStreams(1).stream("x").random(50)
        b = RngStreams(2).stream("x").random(50)
        assert not (a == b).all()

    def test_stream_is_cached(self):
        rng = RngStreams(7)
        assert rng.stream("a") is rng.stream("a")

    def test_reset_single_stream(self):
        rng = RngStreams(7)
        first = rng.stream("a").random()
        rng.reset("a")
        assert rng.stream("a").random() == first

    def test_reset_all_streams(self):
        rng = RngStreams(7)
        first_a = rng.stream("a").random()
        first_b = rng.stream("b").random()
        rng.reset()
        assert rng.stream("a").random() == first_a
        assert rng.stream("b").random() == first_b

    def test_spawn_is_deterministic_and_independent(self):
        child1 = RngStreams(9).spawn("worker")
        child2 = RngStreams(9).spawn("worker")
        assert child1.master_seed == child2.master_seed
        assert child1.master_seed != 9

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            RngStreams(1).stream("")

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RngStreams(-1)

    def test_names_lists_created_streams(self):
        rng = RngStreams(3)
        rng.stream("x")
        rng.stream("y")
        assert set(rng.names()) == {"x", "y"}


class TestRequestLifecycle:
    def make(self, **kwargs) -> Request:
        defaults = dict(function_name="fn", arrival_time=1.0, deadline=1.1, work=0.05)
        defaults.update(kwargs)
        return Request(**defaults)

    def test_initial_state(self):
        request = self.make()
        assert request.status is RequestStatus.PENDING
        assert request.waiting_time is None
        assert request.service_time is None
        assert request.response_time is None

    def test_full_lifecycle_metrics(self):
        request = self.make()
        request.mark_queued()
        request.mark_running(1.2, "c1", "node-0")
        request.mark_completed(1.3)
        assert request.waiting_time == pytest.approx(0.2)
        assert request.service_time == pytest.approx(0.1)
        assert request.response_time == pytest.approx(0.3)

    def test_deadline_checks(self):
        request = self.make(deadline=1.25)
        request.mark_queued()
        request.mark_running(1.2, "c1", "node-0")
        request.mark_completed(1.3)
        assert request.met_deadline is False
        assert request.waiting_met_deadline is True

    def test_no_deadline_returns_none(self):
        request = self.make(deadline=None)
        request.mark_queued()
        request.mark_running(1.2, "c1", "node-0")
        request.mark_completed(1.3)
        assert request.met_deadline is None
        assert request.waiting_met_deadline is None

    def test_running_directly_from_pending(self):
        request = self.make()
        request.mark_running(1.0, "c1", "node-0", cold_start=True)
        assert request.status is RequestStatus.RUNNING
        assert request.cold_start is True

    def test_cannot_complete_before_running(self):
        request = self.make()
        with pytest.raises(ValueError):
            request.mark_completed(2.0)

    def test_cannot_run_twice(self):
        request = self.make()
        request.mark_running(1.0, "c1", "node-0")
        with pytest.raises(ValueError):
            request.mark_running(1.1, "c2", "node-1")

    def test_drop_records_completion_time(self):
        request = self.make()
        request.mark_queued()
        request.mark_dropped(2.0)
        assert request.status is RequestStatus.DROPPED
        assert request.completion_time == 2.0

    def test_cannot_drop_completed_request(self):
        request = self.make()
        request.mark_running(1.0, "c1", "node-0")
        request.mark_completed(1.1)
        with pytest.raises(ValueError):
            request.mark_dropped(1.2)

    def test_request_ids_are_unique(self):
        ids = {self.make().request_id for _ in range(100)}
        assert len(ids) == 100

    def test_queue_transition_requires_pending(self):
        request = self.make()
        request.mark_queued()
        with pytest.raises(ValueError):
            request.mark_queued()
