"""Tests for the heterogeneous queueing bounds and the sizing algorithms."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.queueing.heterogeneous import HeterogeneousMMcQueue
from repro.core.queueing.mmc import MMcQueue
from repro.core.queueing.sizing import (
    required_containers,
    required_containers_fast,
    required_containers_heterogeneous,
    required_containers_naive,
    wait_budget_from_slo,
)


class TestHeterogeneousQueue:
    def test_reduces_to_homogeneous_bound_shape(self):
        lam, mu, c = 20.0, 10.0, 4
        het = HeterogeneousMMcQueue(lam, [mu] * c)
        hom = MMcQueue(lam, mu, c)
        # the heterogeneous worst-case bound is more pessimistic at small n
        # but both must agree on basic structure
        assert het.c == c
        assert het.aggregate_rate == pytest.approx(c * mu)
        assert het.matches_homogeneous()
        assert het.utilization == pytest.approx(hom.utilization)

    def test_probabilities_form_distribution(self):
        queue = HeterogeneousMMcQueue(15.0, [10.0, 7.0, 5.0])
        probs = queue.state_probabilities(300)
        assert (probs >= 0).all()
        assert probs.sum() <= 1.0 + 1e-9
        assert probs.sum() == pytest.approx(1.0, abs=1e-3)

    def test_worst_case_is_pessimistic_vs_homogeneous_average(self):
        # replacing fast containers by the mean-rate homogeneous system
        # should not look worse than the Alves worst case
        lam = 18.0
        rates = [10.0, 8.0, 6.0]
        het = HeterogeneousMMcQueue(lam, rates)
        hom = MMcQueue(lam, sum(rates) / len(rates), len(rates))
        assert het.wait_bound_probability(0.1) <= hom.wait_bound_probability(0.1) + 1e-9

    def test_wait_bound_monotone_in_t(self):
        queue = HeterogeneousMMcQueue(15.0, [10.0, 7.0, 5.0])
        values = [queue.wait_bound_probability(t) for t in (0.0, 0.05, 0.1, 0.2, 0.5)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_adding_a_container_helps(self):
        lam = 18.0
        base = HeterogeneousMMcQueue(lam, [10.0, 7.0, 5.0])
        more = HeterogeneousMMcQueue(lam, [10.0, 7.0, 5.0, 10.0])
        assert more.wait_bound_probability(0.1) >= base.wait_bound_probability(0.1)

    def test_percentile_bisection(self):
        queue = HeterogeneousMMcQueue(15.0, [10.0, 7.0, 5.0])
        t95 = queue.wait_bound_percentile(0.95)
        assert queue.wait_bound_probability(t95) >= 0.95
        assert queue.wait_bound_probability(max(0.0, t95 - 0.01)) < 0.95 + 1e-9

    def test_unstable_system(self):
        queue = HeterogeneousMMcQueue(100.0, [10.0, 10.0])
        assert not queue.is_stable
        assert queue.wait_bound_percentile(0.95) == math.inf
        with pytest.raises(ValueError):
            queue.log_p0()

    def test_mean_number_in_system_finite_and_positive(self):
        queue = HeterogeneousMMcQueue(15.0, [10.0, 7.0, 5.0])
        mean = queue.mean_number_in_system
        assert 0 < mean < 100

    def test_validation(self):
        with pytest.raises(ValueError):
            HeterogeneousMMcQueue(10.0, [])
        with pytest.raises(ValueError):
            HeterogeneousMMcQueue(10.0, [1.0, -2.0])
        with pytest.raises(ValueError):
            HeterogeneousMMcQueue(-1.0, [1.0])


class TestWaitBudget:
    def test_subtracts_service_percentile(self):
        budget = wait_budget_from_slo(0.5, 10.0, 0.95)
        assert budget == pytest.approx(0.5 + math.log(0.05) / 10.0)

    def test_zero_service_percentile_uses_full_deadline(self):
        assert wait_budget_from_slo(0.1, 10.0, 0.95, service_time_percentile=0.0) == 0.1

    def test_never_negative(self):
        assert wait_budget_from_slo(0.01, 1.0, 0.99) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            wait_budget_from_slo(0.0, 10.0)
        with pytest.raises(ValueError):
            wait_budget_from_slo(0.1, 0.0)


class TestSizingAlgorithm1:
    def test_meets_percentile_and_is_minimal(self):
        result = required_containers(20.0, 10.0, 0.1, 0.95)
        assert result.achieved_probability >= 0.95
        if result.containers > 3:
            below = MMcQueue(20.0, 10.0, result.containers - 1)
            assert (not below.is_stable) or below.wait_bound_probability(0.1) < 0.95

    def test_zero_load_needs_no_containers(self):
        assert required_containers(0.0, 10.0, 0.1).containers == 0

    def test_tighter_slo_needs_more_containers(self):
        loose = required_containers(40.0, 10.0, 0.5, 0.95).containers
        tight = required_containers(40.0, 10.0, 0.02, 0.95).containers
        assert tight >= loose

    def test_higher_percentile_needs_more_containers(self):
        p95 = required_containers(40.0, 10.0, 0.1, 0.95).containers
        p999 = required_containers(40.0, 10.0, 0.1, 0.999).containers
        assert p999 >= p95

    def test_monotone_in_arrival_rate(self):
        counts = [required_containers(lam, 10.0, 0.1, 0.95).containers
                  for lam in (10, 20, 30, 40, 50)]
        assert all(b >= a for a, b in zip(counts, counts[1:]))

    def test_always_at_least_stable(self):
        result = required_containers(95.0, 10.0, 1.0, 0.5)
        assert result.containers >= 10

    def test_fast_and_naive_match_reference(self):
        for lam in (5.0, 17.0, 60.0, 140.0):
            for budget in (0.05, 0.1, 0.3):
                reference = required_containers(lam, 10.0, budget, 0.95).containers
                fast = required_containers_fast(lam, 10.0, budget, 0.95).containers
                naive = required_containers_naive(lam, 10.0, budget, 0.95).containers
                assert fast == reference
                assert naive == reference

    def test_fast_handles_large_counts(self):
        result = required_containers_fast(5000.0, 10.0, 0.1, 0.99)
        assert result.containers >= 500
        assert result.achieved_probability >= 0.99

    def test_validation(self):
        with pytest.raises(ValueError):
            required_containers(-1.0, 10.0, 0.1)
        with pytest.raises(ValueError):
            required_containers(1.0, -1.0, 0.1)
        with pytest.raises(ValueError):
            required_containers(1.0, 1.0, -0.1)
        with pytest.raises(ValueError):
            required_containers(1.0, 1.0, 0.1, percentile=1.5)

    @given(
        lam=st.floats(min_value=1.0, max_value=120.0),
        mu=st.floats(min_value=2.0, max_value=30.0),
        budget=st.floats(min_value=0.02, max_value=0.5),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_fast_equals_reference(self, lam, mu, budget):
        reference = required_containers(lam, mu, budget, 0.95).containers
        fast = required_containers_fast(lam, mu, budget, 0.95).containers
        assert fast == reference

    @given(
        lam=st.floats(min_value=1.0, max_value=100.0),
        mu=st.floats(min_value=2.0, max_value=30.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_result_meets_target(self, lam, mu):
        result = required_containers(lam, mu, 0.1, 0.95)
        queue = MMcQueue(lam, mu, result.containers)
        assert queue.is_stable
        assert queue.wait_bound_probability(0.1) >= 0.95


class TestHeterogeneousSizing:
    def test_no_addition_needed_when_existing_suffices(self):
        # plenty of standard containers already present
        result = required_containers_heterogeneous(
            lam=10.0, existing_mus=[10.0] * 8, standard_mu=10.0, wait_budget=0.1
        )
        assert result.containers == 8

    def test_adds_containers_when_deflated(self):
        base = required_containers(50.0, 10.0, 0.1, 0.95).containers
        deflated = [10.0 * 0.7] * base
        result = required_containers_heterogeneous(
            lam=50.0, existing_mus=deflated, standard_mu=10.0, wait_budget=0.1
        )
        assert result.containers >= base
        assert result.achieved_probability >= 0.95

    def test_more_deflation_needs_more_additions(self):
        base = required_containers(60.0, 10.0, 0.1, 0.95).containers
        light = required_containers_heterogeneous(
            60.0, [10.0 * 0.9] * base, 10.0, 0.1
        ).containers
        heavy = required_containers_heterogeneous(
            60.0, [10.0 * 0.5] * base, 10.0, 0.1
        ).containers
        assert heavy >= light

    def test_zero_load(self):
        result = required_containers_heterogeneous(0.0, [7.0, 10.0], 10.0, 0.1)
        assert result.containers == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            required_containers_heterogeneous(1.0, [1.0], 0.0, 0.1)
        with pytest.raises(ValueError):
            required_containers_heterogeneous(1.0, [-1.0], 1.0, 0.1)
