"""Docstring-coverage gate for ``src/repro`` (tier-1 twin of the CI interrogate step).

CI runs ``interrogate --fail-under=90 src/repro``; this test enforces
the same threshold with the offline checker in
``tools/check_docstrings.py`` so the gate also holds where interrogate
is not installed.  Both count docstrings on modules, classes, and
functions/methods (including ``__init__``, dunders, and nested
functions), so they agree on what coverage means.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_docstrings import DEFAULT_FAIL_UNDER, check_paths  # noqa: E402


def test_docstring_coverage_at_least_90_percent():
    """Every module/class/function census must be ≥90% documented."""
    report = check_paths([str(REPO_ROOT / "src" / "repro")])
    assert report.total > 0
    message = (
        f"docstring coverage {report.percentage:.1f}% is below "
        f"{DEFAULT_FAIL_UNDER:.0f}%; missing:\n" + "\n".join(report.missing[:40])
    )
    assert report.percentage >= DEFAULT_FAIL_UNDER, message


def test_checker_counts_definitions(tmp_path):
    """The checker sees modules, classes, methods, and nested functions."""
    sample = tmp_path / "sample.py"
    sample.write_text(
        '"""Module."""\n'
        "class A:\n"
        '    """Class."""\n'
        "    def documented(self):\n"
        '        """Doc."""\n'
        "    def undocumented(self):\n"
        "        pass\n"
        "def outer():\n"
        '    """Doc."""\n'
        "    def inner():\n"
        "        pass\n"
    )
    report = check_paths([str(sample)])
    assert report.total == 6  # module, A, 2 methods, outer, inner
    assert report.documented == 4
    assert len(report.missing) == 2
