"""Unit tests for the discrete-event simulation engine."""

import math

import pytest

from repro.sim.engine import SimulationEngine, SimulationError, stop_simulation


class TestScheduling:
    def test_schedule_runs_callback_at_time(self, engine):
        fired = []
        engine.schedule(1.5, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [1.5]

    def test_schedule_at_absolute_time(self, engine):
        fired = []
        engine.schedule_at(3.0, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [3.0]

    def test_events_run_in_time_order(self, engine):
        order = []
        engine.schedule(2.0, lambda: order.append("b"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.schedule(3.0, lambda: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self, engine):
        order = []
        for label in "abcde":
            engine.schedule(1.0, lambda label=label: order.append(label))
        engine.run()
        assert order == list("abcde")

    def test_priority_orders_same_time_events(self, engine):
        order = []
        engine.schedule(1.0, lambda: order.append("control"),
                        priority=SimulationEngine.PRIORITY_CONTROL)
        engine.schedule(1.0, lambda: order.append("data"),
                        priority=SimulationEngine.PRIORITY_DATA)
        engine.run()
        assert order == ["data", "control"]

    def test_callbacks_can_schedule_more_events(self, engine):
        fired = []

        def chain(n):
            fired.append(engine.now)
            if n > 0:
                engine.schedule(1.0, chain, n - 1)

        engine.schedule(1.0, chain, 3)
        engine.run()
        assert fired == [1.0, 2.0, 3.0, 4.0]

    def test_args_and_kwargs_passed_through(self, engine):
        seen = []
        engine.schedule(0.5, lambda a, b=None: seen.append((a, b)), 1, b="x")
        engine.run()
        assert seen == [(1, "x")]

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.schedule(-1.0, lambda: None)

    def test_nan_and_inf_delay_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.schedule(math.nan, lambda: None)
        with pytest.raises(SimulationError):
            engine.schedule(math.inf, lambda: None)

    def test_schedule_in_past_rejected(self, engine):
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(0.5, lambda: None)


class TestRun:
    def test_run_until_stops_clock_at_horizon(self, engine):
        engine.schedule(10.0, lambda: None)
        end = engine.run(until=5.0)
        assert end == 5.0
        assert engine.pending_events == 1  # the event is still queued

    def test_run_until_executes_events_at_horizon(self, engine):
        fired = []
        engine.schedule(5.0, lambda: fired.append(True))
        engine.run(until=5.0)
        assert fired == [True]

    def test_run_with_empty_queue_advances_to_until(self, engine):
        end = engine.run(until=7.0)
        assert end == 7.0

    def test_max_events_limits_execution(self, engine):
        fired = []
        for i in range(10):
            engine.schedule(float(i + 1), lambda i=i: fired.append(i))
        engine.run(max_events=4)
        assert len(fired) == 4

    def test_stop_simulation_halts_loop(self, engine):
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(2.0, stop_simulation)
        engine.schedule(3.0, lambda: fired.append(3))
        engine.run()
        assert fired == [1]

    def test_events_processed_counter(self, engine):
        for i in range(5):
            engine.schedule(float(i + 1), lambda: None)
        engine.run()
        assert engine.events_processed == 5

    def test_step_executes_single_event(self, engine):
        fired = []
        engine.schedule(1.0, lambda: fired.append("a"))
        engine.schedule(2.0, lambda: fired.append("b"))
        assert engine.step() is True
        assert fired == ["a"]
        assert engine.step() is True
        assert engine.step() is False

    def test_reentrant_run_rejected(self, engine):
        def nested():
            engine.run()

        engine.schedule(1.0, nested)
        with pytest.raises(SimulationError):
            engine.run()


class TestFastPaths:
    def test_call_later_fires_with_args(self, engine):
        seen = []
        assert engine.call_later(1.0, lambda a, b: seen.append((a, b)), 1, 2) is None
        engine.run()
        assert seen == [(1, 2)]

    def test_call_at_absolute_time(self, engine):
        fired = []
        engine.call_at(3.0, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [3.0]

    def test_call_later_validation(self, engine):
        with pytest.raises(SimulationError):
            engine.call_later(-1.0, lambda: None)
        with pytest.raises(SimulationError):
            engine.call_later(math.nan, lambda: None)
        with pytest.raises(SimulationError):
            engine.call_at(-0.5, lambda: None)

    def test_bare_and_event_entries_share_tie_break_order(self, engine):
        order = []
        engine.schedule(1.0, lambda: order.append("event"))
        engine.call_later(1.0, order.append, "bare")
        engine.schedule(1.0, lambda: order.append("event2"))
        engine.run()
        assert order == ["event", "bare", "event2"]

    def test_schedule_many_batch(self, engine):
        seen = []
        count = engine.schedule_many((float(t), seen.append, (t,)) for t in (3, 1, 2))
        assert count == 3
        engine.run()
        assert seen == [1, 2, 3]

    def test_schedule_many_keeps_insertion_order_at_equal_times(self, engine):
        seen = []
        engine.schedule_many((1.0, seen.append, (label,)) for label in "abc")
        engine.run()
        assert seen == ["a", "b", "c"]

    def test_schedule_many_rejects_past_times(self, engine):
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_many([(0.5, lambda: None, ())])

    def test_schedule_many_counts_in_events_processed(self, engine):
        engine.schedule_many((float(i + 1), (lambda: None), ()) for i in range(4))
        engine.run()
        assert engine.events_processed == 4


class TestStopCounting:
    def test_stop_event_is_counted_by_run(self, engine):
        engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, stop_simulation)
        engine.schedule(3.0, lambda: None)
        engine.run()
        # the stopping callback ran, so it counts; the event after it does not
        assert engine.events_processed == 2

    def test_stop_event_is_counted_by_step(self, engine):
        engine.schedule(1.0, stop_simulation)
        assert engine.step() is False
        assert engine.events_processed == 1


class TestCancellationAndReset:
    def test_cancelled_event_does_not_fire(self, engine):
        fired = []
        event = engine.schedule(1.0, lambda: fired.append(True))
        event.cancel()
        engine.run()
        assert fired == []

    def test_cancel_one_of_many(self, engine):
        fired = []
        keep = engine.schedule(1.0, lambda: fired.append("keep"))
        drop = engine.schedule(1.0, lambda: fired.append("drop"))
        drop.cancel()
        engine.run()
        assert fired == ["keep"]
        assert keep.cancelled is False

    def test_reset_clears_queue_and_clock(self, engine):
        engine.schedule(5.0, lambda: None)
        engine.run(until=2.0)
        engine.reset()
        assert engine.now == 0.0
        assert engine.pending_events == 0
        assert engine.events_processed == 0

    def test_reset_with_custom_start_time(self, engine):
        engine.reset(start_time=100.0)
        assert engine.now == 100.0
        fired = []
        engine.schedule(1.0, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [101.0]

    def test_lazy_cancellation_accounting(self, engine):
        kept = engine.schedule(1.0, lambda: None)
        for _ in range(3):
            engine.schedule(2.0, lambda: None).cancel()
        assert engine.events_cancelled == 0  # nothing discarded yet (lazy)
        assert engine.pending_events == 4
        engine.run()
        assert engine.events_cancelled == 3
        assert engine.events_processed == 1
        assert kept.cancelled is False

    def test_reset_clears_cancellation_counter(self, engine):
        engine.schedule(1.0, lambda: None).cancel()
        engine.run()
        assert engine.events_cancelled == 1
        engine.reset()
        assert engine.events_cancelled == 0
