"""Tests for the crash-safe execution layer.

Covers the four robustness pillars this layer promises:

1. **Determinism under adversity** — retries, SIGKILLed workers,
   timeouts, and interrupted-then-resumed runs all produce envelopes
   byte-identical to an uninterrupted ``workers=1`` run.
2. **Durability** — the journal survives interruption with at most a
   torn final line; output files are written atomically so a partial
   ``--output`` can never exist.
3. **Graceful degradation** — exhausted shards surface as per-shard
   ``status``/``error`` entries (with full shard identity) and an
   ``incomplete`` envelope marker, never a bare worker traceback.
4. **Guard rails** — absurd sweep grids fail eagerly with a helpful
   message instead of materialising millions of specs.

The simulation-free ``catalogue`` scenario kind keeps most of these
tests millisecond-fast; the chaos hook (:mod:`repro.scenarios.chaos`)
provides the deterministic faults.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.ioutil import atomic_write_text, fsync_append_line
from repro.scenarios import build
from repro.scenarios.chaos import CHAOS_ENV, ChaosConfig, ChaosPoison, chaos_draw
from repro.scenarios.executor import (
    ResilientSweepRunner,
    RetryPolicy,
    ShardError,
    backoff_delay,
)
from repro.scenarios.journal import RunJournal, shard_spec_hash
from repro.scenarios.spec import canonical_json
from repro.scenarios.sweep import (
    MAX_SHARDS_ENV,
    SweepAxis,
    SweepRunner,
    SweepSpec,
)

_REPO = Path(__file__).resolve().parent.parent


def tiny_sweep(n: int = 3, name: str = "tiny") -> SweepSpec:
    """An n-shard sweep over the simulation-free catalogue scenario."""
    return SweepSpec(name=name, base=build("table1"),
                     axes=(SweepAxis("seed", tuple(range(1, n + 1))),))


@pytest.fixture(scope="module")
def tiny_baseline() -> str:
    """Canonical bytes of the tiny sweep's uninterrupted workers=1 run."""
    return SweepRunner(tiny_sweep(), workers=1).run_json()


def fast_retry(**kwargs) -> dict:
    """Runner kwargs with near-instant (but still deterministic) backoff."""
    return dict(backoff_base=0.01, backoff_cap=0.05, **kwargs)


def chaos_env(monkeypatch, **kwargs) -> None:
    """Point the env-gated chaos hook at the given config for this test."""
    monkeypatch.setenv(CHAOS_ENV, ChaosConfig(**kwargs).to_json())


# ----------------------------------------------------------------------
# Atomic writes
# ----------------------------------------------------------------------
class TestAtomicWrites:
    def test_write_creates_file_with_exact_content(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_text(str(target), '{"a":1}\n')
        assert target.read_text() == '{"a":1}\n'

    def test_overwrite_replaces_and_leaves_no_temp_files(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_text(str(target), "old\n")
        atomic_write_text(str(target), "new\n")
        assert target.read_text() == "new\n"
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_failure_leaves_original_untouched(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_text(str(target), "original\n")
        with pytest.raises(TypeError):
            atomic_write_text(str(target), None)  # type: ignore[arg-type]
        assert target.read_text() == "original\n"
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_append_line_rejects_embedded_newlines(self, tmp_path):
        with open(tmp_path / "j.jsonl", "a", encoding="utf-8") as handle:
            with pytest.raises(ValueError, match="newline"):
                fsync_append_line(handle, "two\nlines")


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------
class TestRunJournal:
    def test_round_trip_and_completed_results(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with RunJournal(path) as journal:
            journal.append({"event": "sweep", "sweep": "s", "shard_count": 1})
            journal.append({"event": "ok", "shard": 0, "spec_hash": "abc",
                            "attempt": 1, "result": {"rows": [1, 2]}})
        records = RunJournal.read_records(path)
        assert [r["event"] for r in records] == ["sweep", "ok"]
        assert RunJournal.completed_results(path) == {"abc": {"rows": [1, 2]}}

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with RunJournal(path) as journal:
            journal.append({"event": "ok", "shard": 0, "spec_hash": "abc",
                            "attempt": 1, "result": {}})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event":"ok","shard":1,"spec_ha')  # crash mid-append
        records = RunJournal.read_records(path)
        assert len(records) == 1
        assert RunJournal.completed_results(path) == {"abc": {}}

    def test_unknown_event_rejected(self, tmp_path):
        journal = RunJournal(str(tmp_path / "j.jsonl"))
        with pytest.raises(ValueError, match="unknown journal event"):
            journal.append({"event": "telemetry"})

    def test_missing_file_reads_empty(self, tmp_path):
        assert RunJournal.read_records(str(tmp_path / "absent.jsonl")) == []


# ----------------------------------------------------------------------
# Backoff and retry policy
# ----------------------------------------------------------------------
class TestBackoff:
    def test_deterministic_from_seed_and_attempt(self):
        assert backoff_delay(7, 1, 0.5, 30.0) == backoff_delay(7, 1, 0.5, 30.0)
        assert backoff_delay(7, 1, 0.5, 30.0) != backoff_delay(8, 1, 0.5, 30.0)

    def test_magnitude_doubles_then_caps(self):
        # jitter is in [0.5, 1.0), so bounds are magnitude/2 .. magnitude
        for attempt in range(1, 10):
            delay = backoff_delay(3, attempt, 0.5, 4.0)
            magnitude = min(4.0, 0.5 * 2 ** (attempt - 1))
            assert magnitude / 2 <= delay < magnitude

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=2.0, backoff_cap=1.0)


# ----------------------------------------------------------------------
# Chaos hook
# ----------------------------------------------------------------------
class TestChaosConfig:
    def test_env_round_trip(self, monkeypatch):
        chaos_env(monkeypatch, poison_probability=0.5, seed=3)
        cfg = ChaosConfig.from_env()
        assert cfg.poison_probability == 0.5 and cfg.seed == 3

    def test_absent_env_is_none(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        assert ChaosConfig.from_env() is None

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            ChaosConfig(kill_probability=1.5)
        with pytest.raises(ValueError):
            ChaosConfig.from_mapping({"no_such_knob": 1})

    def test_draws_are_deterministic_and_kind_independent(self):
        a = chaos_draw(1, "kill", "deadbeef", 1)
        assert a == chaos_draw(1, "kill", "deadbeef", 1)
        assert 0.0 <= a < 1.0
        assert a != chaos_draw(1, "poison", "deadbeef", 1)


# ----------------------------------------------------------------------
# Healthy-path byte identity (the legacy contract, now via the executor)
# ----------------------------------------------------------------------
class TestHealthyByteIdentity:
    def test_envelope_matches_legacy_shape_exactly(self, tiny_baseline):
        envelope = json.loads(tiny_baseline)
        assert sorted(envelope) == ["results", "schema", "sweep"]
        assert sorted(envelope["sweep"]) == [
            "description", "name", "seed_mode", "shard_count"]
        assert all("status" not in result for result in envelope["results"])

    def test_subprocess_workers_identical_bytes(self, tiny_baseline):
        assert SweepRunner(tiny_sweep(), workers=3).run_json() == tiny_baseline

    def test_journaling_does_not_change_bytes(self, tiny_baseline, tmp_path):
        runner = ResilientSweepRunner(tiny_sweep(), workers=2,
                                      journal=str(tmp_path / "j.jsonl"))
        assert runner.run_json() == tiny_baseline


# ----------------------------------------------------------------------
# Retries, kills, timeouts: recovery must be byte-exact
# ----------------------------------------------------------------------
class TestRecoveryByteIdentity:
    def test_poisoned_first_attempts_retry_to_identical_bytes(
            self, monkeypatch, tiny_baseline, tmp_path):
        chaos_env(monkeypatch, poison_probability=1.0, max_attempt=1, seed=7)
        journal = str(tmp_path / "j.jsonl")
        runner = ResilientSweepRunner(tiny_sweep(), workers=2, journal=journal,
                                      **fast_retry(retries=2))
        assert runner.run_json() == tiny_baseline
        events = [r["event"] for r in RunJournal.read_records(journal)]
        assert events.count("failed") == 3  # every shard poisoned once
        assert events.count("ok") == 3

    def test_sigkilled_workers_are_respawned(self, monkeypatch, tiny_baseline):
        chaos_env(monkeypatch, kill_probability=1.0, max_attempt=1, seed=7)
        runner = ResilientSweepRunner(tiny_sweep(), workers=2,
                                      **fast_retry(retries=2))
        assert runner.run_json() == tiny_baseline

    def test_in_process_retry_identical_bytes(self, monkeypatch, tiny_baseline):
        # workers=1 takes the in-process path; kills are skipped there but
        # poison faults still exercise the same retry accounting
        chaos_env(monkeypatch, poison_probability=1.0, kill_probability=1.0,
                  max_attempt=1, seed=7)
        runner = ResilientSweepRunner(tiny_sweep(), workers=1,
                                      **fast_retry(retries=2))
        assert runner.run_json() == tiny_baseline

    def test_hung_worker_times_out_then_succeeds(self, monkeypatch,
                                                 tiny_baseline, tmp_path):
        chaos_env(monkeypatch, delay_probability=1.0, delay_seconds=30.0,
                  max_attempt=1, seed=7)
        journal = str(tmp_path / "j.jsonl")
        started = time.monotonic()
        runner = ResilientSweepRunner(tiny_sweep(), workers=3, timeout=0.75,
                                      journal=journal, **fast_retry(retries=1))
        assert runner.run_json() == tiny_baseline
        assert time.monotonic() - started < 20.0  # never waited out the sleeps
        events = [r["event"] for r in RunJournal.read_records(journal)]
        assert "timeout" in events


# ----------------------------------------------------------------------
# Graceful degradation and shard-identity errors
# ----------------------------------------------------------------------
class TestDegradation:
    def test_exhausted_shards_degrade_with_status_fields(self, monkeypatch):
        chaos_env(monkeypatch, poison_probability=1.0, max_attempt=10**6, seed=7)
        envelope = ResilientSweepRunner(tiny_sweep(), workers=2,
                                        **fast_retry(retries=1)).run()
        assert envelope["incomplete"] is True
        assert [r["status"] for r in envelope["results"]] == ["failed"] * 3
        error = envelope["results"][0]["error"]
        assert error["type"] == "ChaosPoison"
        assert error["shard"] == 0 and error["attempts"] == 2
        assert error["overrides"] == {"seed": 1}

    def test_mixed_outcome_marks_ok_shards_too(self, monkeypatch):
        # poison only shards whose draw clears 0.5 — pick a seed giving a
        # mixed outcome so both branches of the status stamping run
        hashes = [shard_spec_hash(s.to_dict()) for s in tiny_sweep().expand()]
        seed = next(
            s for s in range(1000)
            if 0 < sum(chaos_draw(s, "poison", h, a) < 0.5
                       for h in hashes for a in (1, 2)) // 2 < len(hashes)
            and all((chaos_draw(s, "poison", h, 1) < 0.5)
                    == (chaos_draw(s, "poison", h, 2) < 0.5) for h in hashes)
        )
        chaos_env(monkeypatch, poison_probability=0.5, max_attempt=10**6,
                  seed=seed)
        envelope = ResilientSweepRunner(tiny_sweep(), workers=2,
                                        **fast_retry(retries=1)).run()
        statuses = [r["status"] for r in envelope["results"]]
        assert "ok" in statuses and "failed" in statuses
        assert envelope["incomplete"] is True

    def test_legacy_runner_raises_shard_error_with_identity(self, monkeypatch):
        chaos_env(monkeypatch, poison_probability=1.0, max_attempt=10**6, seed=7)
        with pytest.raises(ShardError) as excinfo:
            SweepRunner(tiny_sweep(), workers=1).run()
        error = excinfo.value
        assert error.index == 0
        assert error.scenario == "table1#0000"
        assert error.overrides == {"seed": 1}
        message = str(error)
        assert "shard 0" in message and "table1#0000" in message
        assert "ChaosPoison" in message and '"seed":1' in message

    def test_worker_death_is_a_named_failure_not_a_hang(self, monkeypatch):
        chaos_env(monkeypatch, kill_probability=1.0, max_attempt=10**6, seed=7)
        envelope = ResilientSweepRunner(tiny_sweep(1), workers=2,
                                        **fast_retry(retries=1)).run()
        error = envelope["results"][0]["error"]
        assert error["type"] == "WorkerDied"
        assert error["exitcode"] == -signal.SIGKILL


# ----------------------------------------------------------------------
# Resume
# ----------------------------------------------------------------------
class TestResume:
    def test_resume_requires_journal(self):
        with pytest.raises(ValueError, match="requires a journal"):
            ResilientSweepRunner(tiny_sweep(), resume=True)

    def test_partial_run_resumes_to_identical_bytes(self, monkeypatch,
                                                    tiny_baseline, tmp_path):
        # fail a deterministic subset of shards, then resume without chaos
        hashes = [shard_spec_hash(s.to_dict()) for s in tiny_sweep().expand()]
        seed = next(s for s in range(1000)
                    if 0 < sum(chaos_draw(s, "poison", h, 1) < 0.5
                               for h in hashes) < len(hashes))
        chaos_env(monkeypatch, poison_probability=0.5, max_attempt=10**6,
                  seed=seed)
        journal = str(tmp_path / "j.jsonl")
        first = ResilientSweepRunner(tiny_sweep(), workers=2,
                                     journal=journal).run()
        assert first["incomplete"] is True
        completed = RunJournal.completed_results(journal)
        assert 0 < len(completed) < 3

        monkeypatch.delenv(CHAOS_ENV)
        resumed = ResilientSweepRunner(tiny_sweep(), workers=2,
                                       journal=journal, resume=True)
        assert resumed.run_json() == tiny_baseline

    def test_resume_reuses_results_without_recompute(self, tmp_path,
                                                     tiny_baseline, monkeypatch):
        journal = str(tmp_path / "j.jsonl")
        ResilientSweepRunner(tiny_sweep(), workers=1, journal=journal).run()
        # poison *everything*: only journal reuse can still succeed
        chaos_env(monkeypatch, poison_probability=1.0, max_attempt=10**6, seed=1)
        resumed = ResilientSweepRunner(tiny_sweep(), workers=1,
                                       journal=journal, resume=True)
        assert resumed.run_json() == tiny_baseline

    def test_spec_change_invalidates_resume_entry(self, tmp_path):
        journal = str(tmp_path / "j.jsonl")
        ResilientSweepRunner(tiny_sweep(3), workers=1, journal=journal).run()
        bigger = tiny_sweep(4)
        resumed = ResilientSweepRunner(bigger, workers=1, journal=journal,
                                       resume=True).run()
        assert resumed["sweep"]["shard_count"] == 4
        assert resumed["results"][3]["scenario"]["seed"] == 4


# ----------------------------------------------------------------------
# Grid-expansion guard
# ----------------------------------------------------------------------
class TestShardCap:
    def test_absurd_grid_fails_eagerly_with_count(self):
        axes = tuple(SweepAxis(f"seed", tuple(range(60))) for _ in range(3))
        with pytest.raises(ValueError, match=r"216,000 shards.*cap of 100,000"):
            SweepSpec(name="huge", base=build("table1"), axes=axes)

    def test_env_override_loosens_and_tightens(self, monkeypatch):
        monkeypatch.setenv(MAX_SHARDS_ENV, "2")
        with pytest.raises(ValueError, match="exceeding the cap of 2"):
            tiny_sweep(3)
        monkeypatch.setenv(MAX_SHARDS_ENV, "3")
        assert tiny_sweep(3).shard_count() == 3

    def test_bad_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(MAX_SHARDS_ENV, "lots")
        with pytest.raises(ValueError, match="must be an integer"):
            tiny_sweep(1)


# ----------------------------------------------------------------------
# CLI interrupt handling (SIGTERM mid-sweep, then resume)
# ----------------------------------------------------------------------
class TestCliInterrupt:
    def _cli_env(self, chaos: dict = None) -> dict:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(_REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
        env.pop(CHAOS_ENV, None)
        if chaos is not None:
            env[CHAOS_ENV] = ChaosConfig(**chaos).to_json()
        return env

    def test_sigterm_leaves_journal_but_no_output(self, tmp_path, tiny_baseline):
        spec_path = tmp_path / "sweep.json"
        spec_path.write_text(tiny_sweep().to_json(), encoding="utf-8")
        journal_path = tmp_path / "journal.jsonl"
        output_path = tmp_path / "out.json"
        command = [sys.executable, "-m", "repro", "sweep", str(spec_path),
                   "--workers", "2", "--journal", str(journal_path),
                   "--output", str(output_path)]
        process = subprocess.Popen(
            command, env=self._cli_env({"delay_probability": 1.0,
                                        "delay_seconds": 30.0,
                                        "max_attempt": 10**6}),
            stderr=subprocess.PIPE, text=True)
        # wait for the journal header so the SIGTERM lands mid-sweep
        deadline = time.monotonic() + 30.0
        while not journal_path.exists() and time.monotonic() < deadline:
            time.sleep(0.05)
        time.sleep(0.5)
        process.send_signal(signal.SIGTERM)
        _, stderr = process.communicate(timeout=30)
        assert process.returncode == 130
        assert "interrupted" in stderr
        assert not output_path.exists(), "interrupt must not leave a partial output"
        records = RunJournal.read_records(str(journal_path))
        assert records and records[0]["event"] == "sweep"

        # resume without chaos: byte-identical to the uninterrupted run
        resumed = subprocess.run(command + ["--resume"], env=self._cli_env(),
                                 timeout=120)
        assert resumed.returncode == 0
        assert output_path.read_text(encoding="utf-8") == tiny_baseline + "\n"

    def test_degraded_sweep_exits_1_with_incomplete_envelope(self, tmp_path):
        spec_path = tmp_path / "sweep.json"
        spec_path.write_text(tiny_sweep().to_json(), encoding="utf-8")
        output_path = tmp_path / "out.json"
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "sweep", str(spec_path),
             "--workers", "2", "--output", str(output_path)],
            env=self._cli_env({"poison_probability": 1.0,
                               "max_attempt": 10**6}),
            capture_output=True, text=True, timeout=120)
        assert completed.returncode == 1
        assert "degraded" in completed.stderr
        envelope = json.loads(output_path.read_text(encoding="utf-8"))
        assert envelope["incomplete"] is True

    def test_resume_without_journal_is_a_usage_error(self, tmp_path):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "sweep", "fig3", "--resume"],
            env=self._cli_env(), capture_output=True, text=True, timeout=60)
        assert completed.returncode == 2
        assert "--resume requires --journal" in completed.stderr
