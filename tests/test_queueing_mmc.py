"""Unit and property tests for the M/M/c queueing model (paper §3.1)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.queueing.mmc import (
    MMcQueue,
    erlang_c,
    mmc_log_p0,
    mmc_state_probabilities,
    mmc_wait_probability_vector,
)


class TestStateProbabilities:
    def test_probabilities_sum_to_at_most_one(self):
        probs = mmc_state_probabilities(8.0, 2.0, 5, 200)
        assert probs.sum() <= 1.0 + 1e-9
        assert probs.sum() == pytest.approx(1.0, abs=1e-6)

    def test_matches_mm1_closed_form(self):
        lam, mu = 0.5, 1.0
        probs = mmc_state_probabilities(lam, mu, 1, 50)
        rho = lam / mu
        expected = [(1 - rho) * rho**n for n in range(51)]
        assert probs == pytest.approx(expected, rel=1e-9)

    def test_zero_arrival_rate_means_empty_system(self):
        probs = mmc_state_probabilities(0.0, 1.0, 3, 10)
        assert probs[0] == 1.0
        assert probs[1:].sum() == 0.0

    def test_unstable_system_rejected(self):
        with pytest.raises(ValueError):
            mmc_log_p0(10.0, 1.0, 5)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            mmc_state_probabilities(-1.0, 1.0, 1, 10)
        with pytest.raises(ValueError):
            mmc_state_probabilities(1.0, 0.0, 1, 10)
        with pytest.raises(ValueError):
            mmc_state_probabilities(1.0, 1.0, 0, 10)

    def test_large_c_numerically_stable(self):
        # log-space evaluation must not overflow for c in the thousands
        probs = mmc_state_probabilities(900.0, 1.0, 1000, 1200)
        assert np.isfinite(probs).all()
        assert probs.sum() == pytest.approx(1.0, abs=1e-4)


class TestErlangC:
    def test_known_value_mm1(self):
        # for M/M/1 the probability of waiting equals rho
        assert erlang_c(0.7, 1.0, 1) == pytest.approx(0.7)

    def test_known_value_mm2(self):
        # Erlang-C for c=2, r=1 (rho=0.5) is 1/3
        assert erlang_c(1.0, 1.0, 2) == pytest.approx(1.0 / 3.0)

    def test_zero_load(self):
        assert erlang_c(0.0, 1.0, 3) == 0.0

    def test_unstable_returns_one(self):
        assert erlang_c(10.0, 1.0, 5) == 1.0

    def test_decreases_with_more_servers(self):
        values = [erlang_c(4.0, 1.0, c) for c in range(5, 12)]
        assert all(a >= b for a, b in zip(values, values[1:]))


class TestMMcQueue:
    def test_basic_quantities(self):
        queue = MMcQueue(20.0, 10.0, 4)
        assert queue.offered_load == pytest.approx(2.0)
        assert queue.utilization == pytest.approx(0.5)
        assert queue.is_stable

    def test_mean_wait_matches_littles_law(self):
        queue = MMcQueue(20.0, 10.0, 4)
        assert queue.mean_queue_length == pytest.approx(queue.lam * queue.mean_wait)

    def test_mean_response_time_adds_service(self):
        queue = MMcQueue(20.0, 10.0, 4)
        assert queue.mean_response_time == pytest.approx(queue.mean_wait + 0.1)

    def test_exact_wait_cdf_monotone(self):
        queue = MMcQueue(30.0, 10.0, 5)
        values = [queue.wait_cdf_exact(t) for t in np.linspace(0, 1, 20)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_exact_percentile_inverts_cdf(self):
        queue = MMcQueue(30.0, 10.0, 5)
        p95 = queue.wait_percentile_exact(0.95)
        assert queue.wait_cdf_exact(p95) == pytest.approx(0.95, abs=1e-9)

    def test_percentile_zero_when_no_waiting_needed(self):
        queue = MMcQueue(1.0, 10.0, 10)
        assert queue.wait_percentile_exact(0.5) == 0.0

    def test_paper_bound_close_to_exact(self):
        # Eq. 3-4's bound should be within a small margin of the exact
        # Erlang-C percentile for moderately loaded systems
        queue = MMcQueue(30.0, 10.0, 5)
        bound = queue.wait_bound_percentile(0.95)
        exact = queue.wait_percentile_exact(0.95)
        assert bound == pytest.approx(exact, abs=0.05)

    def test_bound_probability_monotone_in_t(self):
        queue = MMcQueue(30.0, 10.0, 5)
        values = [queue.wait_bound_probability(t) for t in np.linspace(0, 0.5, 30)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_bound_probability_monotone_in_c(self):
        values = [MMcQueue(30.0, 10.0, c).wait_bound_probability(0.1) for c in range(4, 12)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_unstable_queue_has_infinite_wait(self):
        queue = MMcQueue(100.0, 10.0, 5)
        assert not queue.is_stable
        assert queue.mean_wait == math.inf
        assert queue.wait_bound_percentile(0.95) == math.inf

    def test_expected_busy_containers(self):
        assert MMcQueue(20.0, 10.0, 4).expected_busy_containers() == pytest.approx(2.0)

    def test_vectorised_helper_matches_scalar(self):
        lams = [10.0, 20.0, 30.0]
        cs = [3, 4, 5]
        vector = mmc_wait_probability_vector(lams, 10.0, cs, 0.1)
        for lam, c, value in zip(lams, cs, vector):
            assert value == pytest.approx(MMcQueue(lam, 10.0, c).wait_bound_probability(0.1))


class TestProperties:
    @given(
        lam=st.floats(min_value=0.5, max_value=80.0),
        mu=st.floats(min_value=1.0, max_value=30.0),
        extra=st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_state_probabilities_are_a_distribution(self, lam, mu, extra):
        c = int(lam / mu) + extra
        probs = mmc_state_probabilities(lam, mu, c, c + 300)
        assert (probs >= -1e-12).all()
        assert probs.sum() <= 1.0 + 1e-6

    @given(
        lam=st.floats(min_value=0.5, max_value=80.0),
        mu=st.floats(min_value=1.0, max_value=30.0),
        extra=st.integers(min_value=1, max_value=15),
        t=st.floats(min_value=0.0, max_value=2.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_bound_never_exceeds_one(self, lam, mu, extra, t):
        c = int(lam / mu) + extra
        queue = MMcQueue(lam, mu, c)
        assert 0.0 <= queue.wait_bound_probability(t) <= 1.0
