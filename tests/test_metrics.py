"""Tests for the metrics package: percentiles, SLO reports, utilisation, timelines."""

import pytest

from repro.metrics.collector import EpochSnapshot, FunctionEpochStats, MetricsCollector
from repro.metrics.percentiles import (
    percentile,
    summarize_response_times,
    summarize_waiting_times,
)
from repro.metrics.slo import overall_attainment, slo_report
from repro.metrics.timeline import AllocationTimeline, TimelinePoint
from repro.metrics.utilization import UtilizationTracker, time_weighted_mean
from repro.sim.request import Request


def completed_request(name="fn", arrival=0.0, wait=0.05, service=0.1, deadline=0.1):
    request = Request(function_name=name, arrival_time=arrival,
                      deadline=None if deadline is None else arrival + deadline, work=service)
    request.mark_queued()
    request.mark_running(arrival + wait, "c", "n")
    request.mark_completed(arrival + wait + service)
    return request


def dropped_request(name="fn", arrival=0.0):
    request = Request(function_name=name, arrival_time=arrival, deadline=arrival + 0.1, work=0.1)
    request.mark_queued()
    request.mark_dropped(arrival + 1.0)
    return request


class TestPercentiles:
    def test_percentile_function(self):
        assert percentile(range(1, 101), 0.95) == pytest.approx(95.05)
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1], 1.5)

    def test_waiting_summary_basic(self):
        requests = [completed_request(wait=w) for w in (0.01, 0.02, 0.03, 0.2)]
        summary = summarize_waiting_times(requests)
        assert summary.count == 4
        assert summary.maximum == pytest.approx(0.2)
        assert summary.mean == pytest.approx(0.065)

    def test_waiting_summary_filters_by_function_and_warmup(self):
        requests = [
            completed_request(name="a", arrival=0.0, wait=0.5),
            completed_request(name="a", arrival=50.0, wait=0.01),
            completed_request(name="b", arrival=50.0, wait=0.9),
        ]
        summary = summarize_waiting_times(requests, function_name="a", warmup=10.0)
        assert summary.count == 1
        assert summary.p95 == pytest.approx(0.01)

    def test_incomplete_requests_excluded(self):
        summary = summarize_waiting_times([dropped_request()])
        assert summary.count == 0

    def test_response_time_summary(self):
        requests = [completed_request(wait=0.05, service=0.1)]
        summary = summarize_response_times(requests)
        assert summary.mean == pytest.approx(0.15)

    def test_as_dict(self):
        summary = summarize_waiting_times([completed_request()])
        assert set(summary.as_dict()) == {"count", "mean", "median", "p90", "p95", "p99", "max", "min"}


class TestSloReport:
    def test_attainment_on_waiting_time(self):
        requests = [completed_request(wait=0.01) for _ in range(9)] + [completed_request(wait=0.5)]
        reports = slo_report(requests, {"fn": 0.1}, target_percentile=0.9)
        assert reports["fn"].within_deadline == 9
        assert reports["fn"].attainment == pytest.approx(0.9)
        assert reports["fn"].satisfied

    def test_drops_count_as_violations(self):
        requests = [completed_request(wait=0.01), dropped_request()]
        reports = slo_report(requests, {"fn": 0.1}, target_percentile=0.9)
        assert reports["fn"].attainment == pytest.approx(0.5)
        assert not reports["fn"].satisfied

    def test_drops_ignored_when_requested(self):
        requests = [completed_request(wait=0.01), dropped_request()]
        reports = slo_report(requests, {"fn": 0.1}, count_drops_as_violations=False)
        assert reports["fn"].attainment == pytest.approx(1.0)

    def test_response_time_interpretation(self):
        requests = [completed_request(wait=0.05, service=0.1)]
        on_wait = slo_report(requests, {"fn": 0.1}, on_waiting_time=True)["fn"]
        on_response = slo_report(requests, {"fn": 0.1}, on_waiting_time=False)["fn"]
        assert on_wait.within_deadline == 1
        assert on_response.within_deadline == 0

    def test_functions_without_deadline_ignored(self):
        requests = [completed_request(name="other")]
        assert slo_report(requests, {"fn": 0.1}) == {}

    def test_overall_attainment(self):
        requests = [completed_request(name="a", wait=0.01),
                    completed_request(name="b", wait=0.5)]
        reports = slo_report(requests, {"a": 0.1, "b": 0.1})
        assert overall_attainment(reports) == pytest.approx(0.5)
        assert overall_attainment({}) == 1.0

    def test_invalid_percentile(self):
        with pytest.raises(ValueError):
            slo_report([], {"fn": 0.1}, target_percentile=0.0)


class TestUtilization:
    def test_time_weighted_mean(self):
        samples = [(0.0, 0.5), (10.0, 1.0)]
        assert time_weighted_mean(samples, horizon=20.0) == pytest.approx(0.75)
        assert time_weighted_mean([], None) == 0.0

    def test_tracker_mean_and_peak(self):
        tracker = UtilizationTracker()
        tracker.record(0.0, 6.0, 12.0)
        tracker.record(10.0, 12.0, 12.0)
        assert tracker.mean_utilization(end=20.0) == pytest.approx(0.75)
        assert tracker.peak_utilization() == pytest.approx(1.0)
        assert tracker.unused_capacity_fraction(end=20.0) == pytest.approx(0.25)

    def test_windowed_mean(self):
        tracker = UtilizationTracker()
        tracker.record(0.0, 0.0, 12.0)
        tracker.record(10.0, 12.0, 12.0)
        tracker.record(20.0, 6.0, 12.0)
        assert tracker.mean_utilization(start=10.0, end=20.0) == pytest.approx(1.0)

    def test_out_of_order_samples_rejected(self):
        tracker = UtilizationTracker()
        tracker.record(10.0, 1.0, 12.0)
        with pytest.raises(ValueError):
            tracker.record(5.0, 1.0, 12.0)

    def test_validation(self):
        tracker = UtilizationTracker()
        with pytest.raises(ValueError):
            tracker.record(0.0, 1.0, -1.0)
        with pytest.raises(ValueError):
            tracker.record(0.0, -1.0, 1.0)
        # zero capacity is legal (a fully-failed cluster) and reads as 0
        tracker.record(0.0, 0.0, 0.0)
        assert tracker.samples[-1].fraction == 0.0


class TestTimeline:
    def test_series_and_lookup(self):
        timeline = AllocationTimeline()
        timeline.record(TimelinePoint(0.0, "fn", containers=2, cpu=2.0))
        timeline.record(TimelinePoint(10.0, "fn", containers=4, cpu=4.0))
        times, cpus = timeline.cpu_series("fn")
        assert times == [0.0, 10.0]
        assert cpus == [2.0, 4.0]
        assert timeline.cpu_at("fn", 5.0) == 2.0
        assert timeline.cpu_at("fn", 15.0) == 4.0
        assert timeline.functions() == ["fn"]

    def test_fraction_below_threshold(self):
        timeline = AllocationTimeline()
        for t, cpu in ((0.0, 6.0), (10.0, 4.0), (20.0, 6.0), (30.0, 2.0)):
            timeline.record(TimelinePoint(t, "fn", containers=1, cpu=cpu))
        assert timeline.fraction_below("fn", 6.0) == pytest.approx(0.5)
        assert timeline.fraction_below("fn", 6.0, start=0.0, end=10.0) == pytest.approx(0.5)

    def test_mean_cpu_and_total_series(self):
        timeline = AllocationTimeline()
        timeline.record(TimelinePoint(0.0, "a", containers=1, cpu=2.0))
        timeline.record(TimelinePoint(0.0, "b", containers=1, cpu=1.0))
        timeline.record(TimelinePoint(10.0, "a", containers=2, cpu=4.0))
        assert timeline.mean_cpu("a") == pytest.approx(3.0)
        times, totals = timeline.total_cpu_series()
        assert totals == [3.0, 5.0]

    def test_out_of_order_rejected(self):
        timeline = AllocationTimeline()
        timeline.record(TimelinePoint(10.0, "fn", containers=1, cpu=1.0))
        with pytest.raises(ValueError):
            timeline.record(TimelinePoint(5.0, "fn", containers=1, cpu=1.0))


class TestCollector:
    def test_epoch_snapshot_feeds_timeline_and_utilization(self):
        collector = MetricsCollector()
        snapshot = EpochSnapshot(
            time=10.0, overloaded=False, total_cpu=12.0, allocated_cpu=6.0,
            functions={"fn": FunctionEpochStats("fn", 3, 3.0, 3, 20.0, 10.0)},
        )
        collector.record_epoch(snapshot)
        assert collector.epochs[0].utilization == pytest.approx(0.5)
        assert collector.timeline.cpu_at("fn", 10.0) == 3.0
        assert collector.mean_utilization() == pytest.approx(0.5)

    def test_request_accounting_and_summary(self):
        collector = MetricsCollector()
        request = completed_request()
        collector.record_request(request)
        collector.record_completion(request)
        collector.record_drop(2)
        collector.increment("creations", 3)
        summary = collector.summary({"fn": 0.1})
        assert summary["arrivals"] == 1
        assert summary["completions"] == 1
        assert summary["drops"] == 2
        assert summary["slo"]["fn"] == pytest.approx(1.0)
        assert collector.throughput("fn") == 1

    def test_completed_and_dropped_filters(self):
        collector = MetricsCollector()
        good, bad = completed_request(name="a"), dropped_request(name="b")
        collector.record_request(good)
        collector.record_request(bad)
        assert len(collector.completed_requests("a")) == 1
        assert len(collector.completed_requests("b")) == 0
        assert len(collector.dropped_requests()) == 1


class TestStreamingPercentiles:
    """Opt-in constant-memory percentile mode (PR-1)."""

    def test_p2_quantile_converges(self):
        import numpy as np
        from repro.metrics.streaming import P2Quantile

        rng = np.random.default_rng(42)
        data = rng.exponential(0.1, 30_000)
        for p in (0.5, 0.9, 0.95, 0.99):
            estimator = P2Quantile(p)
            for value in data:
                estimator.add(value)
            exact = float(np.quantile(data, p))
            assert estimator.value() == pytest.approx(exact, rel=0.05)

    def test_p2_small_sample_exact(self):
        from repro.metrics.streaming import P2Quantile

        estimator = P2Quantile(0.5)
        assert estimator.value() == 0.0
        for value in (3.0, 1.0, 2.0):
            estimator.add(value)
        assert estimator.value() == 2.0

    def test_p2_validation(self):
        from repro.metrics.streaming import P2Quantile

        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    def test_streaming_summary_robust_to_zero_wait_atom(self):
        # >50% of simulated waits are exactly zero (idle-container hits); the
        # quantile sketch must not get stranded below the true p95 the way a
        # pure P2 estimator does on such an atom
        import numpy as np
        from repro.metrics.streaming import StreamingSummary

        rng = np.random.default_rng(13)
        positives = rng.exponential(1.0, 5_000)
        waits = np.concatenate([np.zeros(6_000), positives])
        rng.shuffle(waits)
        streaming = StreamingSummary()
        streaming.extend(waits)
        exact95 = float(np.quantile(waits, 0.95))
        assert streaming.summary().p95 == pytest.approx(exact95, rel=0.15)
        assert streaming.summary().median == 0.0

    def test_p2_sketch_fails_loudly_on_the_zero_wait_atom(self):
        # Regression for the documented P² caveat: selecting the unsafe
        # estimator for a zero-atom stream must raise, never silently
        # return a stranded marker value.
        import numpy as np
        from repro.metrics.streaming import (
            StreamingSummary,
            UnsafeSketchError,
            ZERO_ATOM_UNSAFE_FRACTION,
        )

        rng = np.random.default_rng(13)
        positives = rng.exponential(1.0, 5_000)
        waits = np.concatenate([np.zeros(6_000), positives])
        rng.shuffle(waits)
        streaming = StreamingSummary(sketch="p2")
        streaming.extend(waits)
        assert streaming.zero_fraction >= ZERO_ATOM_UNSAFE_FRACTION
        with pytest.raises(UnsafeSketchError, match="zero"):
            streaming.quantile(0.95)
        with pytest.raises(UnsafeSketchError):
            streaming.summary()

    def test_p2_sketch_still_works_on_continuous_streams(self):
        # The P² mode stays usable for what it is safe for: continuous
        # distributions with no heavy atom.
        import numpy as np
        from repro.metrics.streaming import StreamingSummary

        rng = np.random.default_rng(42)
        data = rng.exponential(0.1, 30_000)
        streaming = StreamingSummary(sketch="p2")
        streaming.extend(data)
        assert streaming.zero_fraction == 0.0
        exact95 = float(np.quantile(data, 0.95))
        assert streaming.quantile(0.95) == pytest.approx(exact95, rel=0.05)
        # untracked quantiles are a usage error, not a silent fallback
        with pytest.raises(ValueError):
            streaming.quantile(0.42)

    def test_sketch_selection_validation(self):
        from repro.metrics.streaming import StreamingSummary

        with pytest.raises(ValueError):
            StreamingSummary(sketch="nope")
        with pytest.raises(ValueError):
            MetricsCollector(streaming_percentiles=True, percentile_sketch="nope")

    def test_collector_with_p2_sketch_raises_on_zero_atom_query(self):
        # End-to-end: a collector configured with the unsafe sketch fails
        # loudly at waiting_summary() time for waiting-time-shaped data.
        from repro.metrics.streaming import UnsafeSketchError

        collector = MetricsCollector(streaming_percentiles=True,
                                     store_requests=False,
                                     percentile_sketch="p2")
        for i in range(200):
            wait = 0.0 if i % 2 == 0 else 0.05  # 50% zero-wait atom
            request = completed_request(name="fn", wait=wait)
            collector.record_request(request)
            collector.record_completion(request)
        with pytest.raises(UnsafeSketchError):
            collector.waiting_summary("fn")
        # the safe default keeps working on the same stream
        safe = MetricsCollector(streaming_percentiles=True, store_requests=False)
        for i in range(200):
            request = completed_request(name="fn", wait=0.0 if i % 2 == 0 else 0.05)
            safe.record_request(request)
            safe.record_completion(request)
        assert safe.waiting_summary("fn").p95 == pytest.approx(0.05)

    def test_reservoir_quantiles_validation(self):
        from repro.metrics.streaming import ReservoirQuantiles

        with pytest.raises(ValueError):
            ReservoirQuantiles(max_samples=5)
        sketch = ReservoirQuantiles()
        assert sketch.quantile(0.5) == 0.0  # empty sketch
        with pytest.raises(ValueError):
            sketch.quantile(1.5)

    def test_streaming_summary_matches_stored_mode(self):
        import numpy as np
        from repro.metrics.streaming import StreamingSummary

        rng = np.random.default_rng(7)
        waits = rng.exponential(0.05, 20_000)
        streaming = StreamingSummary()
        streaming.extend(waits)
        summary = streaming.summary()
        assert summary.count == waits.size
        assert summary.mean == pytest.approx(float(waits.mean()), rel=1e-6)
        assert summary.minimum == pytest.approx(float(waits.min()))
        assert summary.maximum == pytest.approx(float(waits.max()))
        assert summary.p95 == pytest.approx(float(np.quantile(waits, 0.95)), rel=0.05)
        assert summary.p99 == pytest.approx(float(np.quantile(waits, 0.99)), rel=0.05)

    def test_collector_streaming_mode(self):
        collector = MetricsCollector(streaming_percentiles=True, store_requests=False)
        for i in range(500):
            request = completed_request(arrival=float(i), wait=0.01 * (i % 10))
            collector.record_request(request)
            collector.record_completion(request)
        assert collector.requests == []            # nothing retained
        summary = collector.waiting_summary()
        assert summary.count == 500
        assert 0.0 <= summary.median <= 0.09
        per_function = collector.waiting_summary("fn")
        assert per_function.count == 500
        assert collector.waiting_summary("other").count == 0
        assert collector.counters["completions"] == 500

    def test_streaming_mode_rejects_warmup(self):
        collector = MetricsCollector(streaming_percentiles=True, store_requests=False)
        with pytest.raises(ValueError):
            collector.waiting_summary(warmup=10.0)

    def test_store_requests_off_requires_streaming(self):
        with pytest.raises(ValueError):
            MetricsCollector(store_requests=False)

    def test_default_behaviour_unchanged(self):
        collector = MetricsCollector()
        request = completed_request()
        collector.record_request(request)
        collector.record_completion(request)
        assert collector.requests == [request]
        assert collector.waiting_summary().count == 1

    def test_percentile_accepts_ndarray_and_iterables(self):
        import numpy as np

        arr = np.linspace(0.0, 1.0, 101)
        assert percentile(arr, 0.95) == pytest.approx(0.95)
        assert percentile(iter(list(arr)), 0.5) == pytest.approx(0.5)
        assert percentile(arr.astype(np.float32), 0.5) == pytest.approx(0.5, abs=1e-6)
