"""Shared pytest fixtures.

Also makes the test suite runnable straight from a source checkout (or
when the editable install is unavailable) by putting ``src/`` on the
import path.
"""

import sys
from pathlib import Path

import numpy as np
import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.cluster.cluster import ClusterConfig, EdgeCluster, FunctionDeployment  # noqa: E402
from repro.sim.engine import SimulationEngine  # noqa: E402


@pytest.fixture
def engine() -> SimulationEngine:
    """A fresh simulation engine."""
    return SimulationEngine()


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic numpy generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def paper_cluster(engine) -> EdgeCluster:
    """The paper's 3-node / 4-vCPU / 16-GB edge cluster."""
    return EdgeCluster(engine, ClusterConfig())


@pytest.fixture
def simple_deployment() -> FunctionDeployment:
    """A 1-vCPU / 512-MB function with a 100 ms SLO."""
    return FunctionDeployment(name="fn", cpu=1.0, memory_mb=512, slo_deadline=0.1)
