"""Integration tests for the LaSS controller on the simulated edge cluster."""

import pytest

from repro.cluster.cluster import ClusterConfig
from repro.core.controller import ControllerConfig, ReclamationPolicy
from repro.simulation import SimulationRunner, run_fixed_allocation
from repro.workloads.functions import get_function, microbenchmark
from repro.workloads.generator import WorkloadBinding
from repro.workloads.schedules import StaticRate, StepSchedule


def run_single(rate, duration=120.0, slo=0.1, policy=ReclamationPolicy.DEFLATION,
               cluster_config=None, seed=11, profile=None):
    profile = profile or microbenchmark(0.1)
    runner = SimulationRunner(
        workloads=[WorkloadBinding(profile, StaticRate(rate, duration=duration), slo_deadline=slo)],
        cluster_config=cluster_config or ClusterConfig(node_count=4, cpu_per_node=8),
        controller_config=ControllerConfig(reclamation=policy),
        seed=seed,
    )
    return runner.run(duration=duration)


class TestSteadyStateAutoscaling:
    def test_allocation_converges_to_model_prediction(self):
        result = run_single(rate=30.0)
        from repro.core.queueing.sizing import required_containers
        expected = required_containers(30.0, 10.0, 0.1, 0.95).containers
        _, counts = result.container_timeline("microbenchmark")
        # after warm-up the allocation should sit at the model's answer
        steady = counts[len(counts) // 2:]
        assert max(steady) <= expected + 1
        assert min(steady) >= expected - 1

    def test_slo_met_in_steady_state(self):
        result = run_single(rate=30.0, duration=180.0)
        summary = result.waiting_summary("microbenchmark", warmup=40.0)
        assert summary.count > 1000
        assert summary.p95 <= 0.1 * 1.3

    def test_most_requests_complete(self):
        result = run_single(rate=20.0)
        arrivals = result.metrics.counters["arrivals"]
        completions = result.metrics.counters["completions"]
        assert completions >= 0.97 * arrivals

    def test_zero_load_releases_containers(self):
        profile = microbenchmark(0.1)
        schedule = StepSchedule([(0.0, 20.0), (60.0, 0.0)], duration=200.0)
        runner = SimulationRunner(
            workloads=[WorkloadBinding(profile, schedule, slo_deadline=0.1)],
            cluster_config=ClusterConfig(node_count=4, cpu_per_node=8),
            controller_config=ControllerConfig(lazy_termination=False),
            seed=3,
        )
        result = runner.run(duration=200.0)
        _, counts = result.container_timeline("microbenchmark")
        assert counts[-1] <= 1

    def test_scale_up_tracks_load_increase(self):
        profile = microbenchmark(0.1)
        schedule = StepSchedule([(0.0, 10.0), (100.0, 40.0)], duration=200.0)
        runner = SimulationRunner(
            workloads=[WorkloadBinding(profile, schedule, slo_deadline=0.1)],
            cluster_config=ClusterConfig(node_count=4, cpu_per_node=8),
            seed=5,
        )
        result = runner.run(duration=200.0)
        timeline = result.metrics.timeline.series("microbenchmark")
        early = [p.containers for p in timeline if p.time < 90]
        late = [p.containers for p in timeline if p.time > 150]
        assert max(late) > max(early)

    def test_reactive_scale_up_happens_within_seconds_of_burst(self):
        # load doubles at t=60; the 5-second rate tick should add containers
        # well before the next 10-second epoch boundary plus lag
        profile = microbenchmark(0.1)
        schedule = StepSchedule([(0.0, 10.0), (60.0, 40.0)], duration=120.0)
        runner = SimulationRunner(
            workloads=[WorkloadBinding(profile, schedule, slo_deadline=0.1)],
            cluster_config=ClusterConfig(node_count=4, cpu_per_node=8),
            seed=6,
        )
        result = runner.run(duration=120.0)
        assert result.metrics.counters.get("reactive_scale_ups", 0) >= 1


class TestFixedAllocationHarness:
    def test_fixed_allocation_never_autoscale(self):
        binding = WorkloadBinding(microbenchmark(0.1), StaticRate(20.0, duration=60.0))
        result = run_fixed_allocation(binding, containers=4, duration=60.0)
        _, counts = result.container_timeline("microbenchmark")
        assert all(c == 4 for c in counts) or counts == []
        assert result.cluster.container_count("microbenchmark") == 4

    def test_deflation_plan_applied(self):
        binding = WorkloadBinding(get_function("squeezenet"), StaticRate(10.0, duration=30.0))
        result = run_fixed_allocation(
            binding, containers=3, duration=30.0, deflation_plan=[0.7, 1.0, 1.0]
        )
        fractions = sorted(c.cpu_fraction for c in result.cluster.containers_of("squeezenet"))
        assert fractions[0] == pytest.approx(0.7)

    def test_deflation_plan_length_mismatch_rejected(self):
        binding = WorkloadBinding(get_function("squeezenet"), StaticRate(10.0, duration=30.0))
        with pytest.raises(ValueError):
            run_fixed_allocation(binding, containers=3, duration=30.0, deflation_plan=[0.7])


class TestOverloadFairShare:
    def make_overloaded_runner(self, policy, seed=21):
        # two functions, equal weights, each demanding well over half the cluster
        micro = microbenchmark(0.1)      # 0.4 vCPU containers
        squeeze = get_function("squeezenet")   # 1.0 vCPU containers
        duration = 240.0
        runner = SimulationRunner(
            workloads=[
                WorkloadBinding(micro, StaticRate(250.0, duration=duration),
                                slo_deadline=0.1, user="u1"),
                WorkloadBinding(squeeze, StaticRate(90.0, duration=duration),
                                slo_deadline=0.1, user="u2"),
            ],
            cluster_config=ClusterConfig(),   # 12 vCPU total
            controller_config=ControllerConfig(reclamation=policy),
            seed=seed,
            warm_start_containers={"microbenchmark": 2, "squeezenet": 2},
        )
        return runner, duration

    @pytest.mark.parametrize("policy", [ReclamationPolicy.TERMINATION, ReclamationPolicy.DEFLATION])
    def test_overload_detected_and_fair_share_respected(self, policy):
        runner, duration = self.make_overloaded_runner(policy)
        result = runner.run(duration=duration)
        epochs = result.metrics.epochs
        assert any(e.overloaded for e in epochs)
        guaranteed = runner.controller.guaranteed_cpu_shares()
        # in the second half (steady overload) each function holds at least
        # its guaranteed share minus one container of slack
        for name in ("microbenchmark", "squeezenet"):
            dep = runner.cluster.deployment(name)
            late = [e.functions[name].cpu for e in epochs if e.time > duration / 2]
            assert late, "no late epochs recorded"
            assert min(late) >= guaranteed[name] - dep.cpu - 1e-6

    def test_total_allocation_never_exceeds_cluster(self):
        runner, duration = self.make_overloaded_runner(ReclamationPolicy.DEFLATION)
        result = runner.run(duration=duration)
        for epoch in result.metrics.epochs:
            assert epoch.allocated_cpu <= epoch.total_cpu + 1e-6

    def test_deflation_policy_actually_deflates(self):
        runner, duration = self.make_overloaded_runner(ReclamationPolicy.DEFLATION)
        result = runner.run(duration=duration)
        assert result.metrics.counters.get("deflations", 0) > 0

    def test_termination_policy_never_deflates(self):
        runner, duration = self.make_overloaded_runner(ReclamationPolicy.TERMINATION)
        result = runner.run(duration=duration)
        assert result.metrics.counters.get("deflations", 0) == 0
        assert result.metrics.counters.get("terminations", 0) > 0


class TestControllerUnit:
    def test_guaranteed_shares_follow_weights(self):
        micro = microbenchmark(0.1)
        squeeze = get_function("squeezenet")
        runner = SimulationRunner(
            workloads=[
                WorkloadBinding(micro, StaticRate(1.0, duration=10.0), weight=1.0, user="u1"),
                WorkloadBinding(squeeze, StaticRate(1.0, duration=10.0), weight=1.0, user="u2"),
            ],
            cluster_config=ClusterConfig(),
            seed=1,
        )
        shares = runner.controller.guaranteed_cpu_shares()
        assert shares["microbenchmark"] == pytest.approx(6.0)
        assert shares["squeezenet"] == pytest.approx(6.0)

    def test_run_epoch_returns_snapshot(self):
        runner = SimulationRunner(
            workloads=[WorkloadBinding(microbenchmark(0.1), StaticRate(5.0, duration=30.0))],
            cluster_config=ClusterConfig(),
            seed=1,
        )
        snapshot = runner.controller.run_epoch()
        assert snapshot.total_cpu == 12.0
        assert "microbenchmark" in snapshot.functions

    def test_unknown_function_dispatch_rejected(self):
        runner = SimulationRunner(
            workloads=[WorkloadBinding(microbenchmark(0.1), StaticRate(5.0, duration=30.0))],
            cluster_config=ClusterConfig(),
            seed=1,
        )
        from repro.sim.request import Request
        with pytest.raises(KeyError):
            runner.controller.dispatch(Request(function_name="ghost", arrival_time=0.0, work=0.1))

    def test_duplicate_workload_names_rejected(self):
        with pytest.raises(ValueError):
            SimulationRunner(
                workloads=[
                    WorkloadBinding(microbenchmark(0.1), StaticRate(1.0, duration=1.0)),
                    WorkloadBinding(microbenchmark(0.2), StaticRate(1.0, duration=1.0)),
                ],
            )

    def test_invalid_controller_config(self):
        with pytest.raises(ValueError):
            ControllerConfig(epoch_length=0.0)
        with pytest.raises(ValueError):
            ControllerConfig(percentile=1.0)
