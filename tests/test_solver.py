"""Tests for the memoized, batched control-plane solver.

Three contracts are covered:

1. **Kernel regression** — :func:`wait_probabilities` (the genuinely
   candidate-vectorised kernel that replaced the per-candidate Python
   loop formerly masquerading as ``_wait_probability_vectorised``)
   matches the scalar :class:`~repro.core.queueing.mmc.MMcQueue` bound
   across a (λ, μ, c, t) grid, including unstable and zero-load edges.
2. **Oracle equivalence** — across ~200 parameter combinations and all
   four cache/warm-start configurations, :class:`SizingSolver` returns
   the same container counts as the reference ``required_containers``
   and the naive ``required_containers_naive`` (including ``λ = 0`` and
   near-instability ``ρ → 1`` edges).
3. **Shortcut mechanics** — warm starts stay exact under drifts and
   jumps, the LRU memo actually hits/evicts, batching aligns results
   positionally, and :func:`caches_disabled` forces cold solves.
"""

import math

import numpy as np
import pytest

from repro.core.queueing.heterogeneous import HeterogeneousMMcQueue
from repro.core.queueing.mmc import MMcQueue
from repro.core.queueing.sizing import (
    SizingResult,
    required_containers,
    required_containers_fast,
    required_containers_heterogeneous,
    required_containers_naive,
)
from repro.core.queueing.solver import (
    SizingQuery,
    SizingSolver,
    caches_disabled,
    log_factorials,
    wait_probabilities,
)

#: the oracle-equivalence grid: 9 λ × 2 μ × 4 t × 3 p = 216 combinations.
#: 49.95 and 99.9 sit a hair under instability for small c at μ = 10
#: (ρ = 0.999 at the stability minimum); 0.0 exercises the zero-load
#: shortcut; 149.5 forces triple-digit container counts.
GRID_LAMS = (0.0, 0.5, 3.0, 9.9, 17.0, 49.95, 88.0, 99.9, 149.5)
GRID_MUS = (1.0, 10.0)
GRID_BUDGETS = (0.0, 0.02, 0.1, 0.5)
GRID_PERCENTILES = (0.5, 0.95, 0.99)


def grid():
    """Yield every (λ, μ, t, p) combination of the equivalence grid."""
    for lam in GRID_LAMS:
        for mu in GRID_MUS:
            for budget in GRID_BUDGETS:
                for percentile in GRID_PERCENTILES:
                    yield lam, mu, budget, percentile


class TestKernel:
    def test_matches_scalar_mmc_over_grid(self):
        for lam in (0.0, 2.0, 19.7, 49.95, 60.0, 149.5):
            for mu in (3.0, 10.0):
                for t in (0.0, 0.03, 0.1, 0.7):
                    cs = np.array([1, 2, 5, 17, 64, 200])
                    got = wait_probabilities(lam, mu, cs, t)
                    for c, value in zip(cs, got):
                        queue = MMcQueue(lam, mu, int(c))
                        expected = (
                            queue.wait_bound_probability(t) if queue.is_stable else 0.0
                        )
                        assert value == pytest.approx(expected, rel=1e-10, abs=1e-12), (
                            lam, mu, int(c), t,
                        )

    def test_broadcasts_per_row_parameters(self):
        lams = np.array([10.0, 20.0, 0.0, 500.0])
        mus = np.array([10.0, 5.0, 3.0, 10.0])
        cs = np.array([3, 9, 2, 60])
        ts = np.array([0.1, 0.05, 0.2, 0.02])
        got = wait_probabilities(lams, mus, cs, ts)
        for lam, mu, c, t, value in zip(lams, mus, cs, ts, got):
            queue = MMcQueue(float(lam), float(mu), int(c))
            expected = queue.wait_bound_probability(t) if queue.is_stable else 0.0
            assert value == pytest.approx(expected, rel=1e-10, abs=1e-12)

    def test_edge_rows(self):
        # unstable → 0, zero load → 1, negative budget → 0
        got = wait_probabilities(
            np.array([100.0, 0.0, 10.0]), 10.0, np.array([5, 4, 4]),
            np.array([0.1, 0.1, -0.5]),
        )
        assert list(got) == [0.0, 1.0, 0.0]

    def test_scalar_inputs_give_zero_d_result_shape(self):
        got = wait_probabilities(20.0, 10.0, 4, 0.1)
        assert got.shape == ()
        assert float(got) == pytest.approx(
            MMcQueue(20.0, 10.0, 4).wait_bound_probability(0.1), rel=1e-10
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            wait_probabilities(1.0, 10.0, np.array([0]), 0.1)
        with pytest.raises(ValueError):
            wait_probabilities(-1.0, 10.0, np.array([1]), 0.1)
        with pytest.raises(ValueError):
            wait_probabilities(1.0, 0.0, np.array([1]), 0.1)

    def test_log_factorial_table_grows_and_is_exact(self):
        from scipy import special

        table = log_factorials(5000)
        assert table.shape[0] >= 5001
        np.testing.assert_array_equal(
            table[:5001], special.gammaln(np.arange(5001, dtype=float) + 1.0)
        )


class TestOracleEquivalence:
    @pytest.mark.parametrize("cache_size,warm_start", [
        (65_536, True), (65_536, False), (0, True), (0, False),
    ])
    def test_grid_matches_reference_and_naive(self, cache_size, warm_start):
        solver = SizingSolver(cache_size=cache_size, warm_start=warm_start)
        combos = 0
        for lam, mu, budget, percentile in grid():
            reference = required_containers(lam, mu, budget, percentile)
            naive = required_containers_naive(lam, mu, budget, percentile)
            # shared warm key across the grid walk: successive solves for
            # the same key exercise anchors far from the next optimum
            got = solver.solve(lam, mu, budget, percentile, key="grid")
            again = solver.solve(lam, mu, budget, percentile, key="grid")
            assert got.containers == reference.containers == naive.containers, (
                lam, mu, budget, percentile,
            )
            assert again.containers == got.containers
            combos += 1
        assert combos == 216

    def test_zero_load(self):
        result = SizingSolver().solve(0.0, 10.0, 0.1)
        assert result == SizingResult(0, 1.0, 0.1, 0)

    def test_near_instability_edge(self):
        # ρ = 0.999 at the stability minimum: the search has to climb
        # well past ⌈λ/μ⌉ for tight budgets
        solver = SizingSolver()
        for percentile in (0.95, 0.99):
            reference = required_containers(99.9, 10.0, 0.0, percentile)
            got = solver.solve(99.9, 10.0, 0.0, percentile)
            assert got.containers == reference.containers
            assert got.achieved_probability >= percentile

    def test_current_containers_lower_bound(self):
        solver = SizingSolver()
        for current in (0, 1, 7, 40, 200):
            reference = required_containers(30.0, 10.0, 0.1, 0.95,
                                            current_containers=current)
            got = solver.solve(30.0, 10.0, 0.1, 0.95, current_containers=current)
            assert got.containers == reference.containers
            assert got.achieved_probability == pytest.approx(
                reference.achieved_probability, rel=1e-9
            )

    def test_max_containers_raises_like_reference(self):
        with pytest.raises(ValueError):
            required_containers(50.0, 10.0, 0.0, 0.99, max_containers=6)
        with pytest.raises(ValueError):
            SizingSolver().solve(50.0, 10.0, 0.0, 0.99, max_containers=6)

    def test_validation_mirrors_reference(self):
        solver = SizingSolver()
        with pytest.raises(ValueError):
            solver.solve(-1.0, 10.0, 0.1)
        with pytest.raises(ValueError):
            solver.solve(1.0, -1.0, 0.1)
        with pytest.raises(ValueError):
            solver.solve(1.0, 1.0, -0.1)
        with pytest.raises(ValueError):
            solver.solve(1.0, 1.0, 0.1, percentile=1.5)

    def test_fast_path_still_matches_reference(self):
        # regression for the satellite: required_containers_fast now runs
        # on the solver kernel and must stay exact
        for lam in (5.0, 17.0, 60.0, 140.0, 999.0):
            for budget in (0.05, 0.1, 0.3):
                reference = required_containers(lam, 10.0, budget, 0.95).containers
                fast = required_containers_fast(lam, 10.0, budget, 0.95).containers
                assert fast == reference


class TestWarmStart:
    def test_drifting_sequence_matches_reference(self):
        solver = SizingSolver()
        lam = 200.0
        for epoch in range(120):
            lam = max(1.0, lam * (1.0 + 0.15 * math.sin(float(epoch))))
            if epoch == 47:
                lam = 3000.0     # upward jump far beyond the warm window
            if epoch == 80:
                lam = 12.0       # collapse far below it
            reference = required_containers(lam, 10.0, 0.1, 0.95).containers
            got = solver.solve(lam, 10.0, 0.1, 0.95, key="fn").containers
            assert got == reference, (epoch, lam)
        assert solver.stats.warm_hits > 0
        assert solver.stats.full_searches >= 1

    def test_warm_hit_costs_three_probes(self):
        solver = SizingSolver(cache_size=0)  # no memo: isolate the warm path
        first = solver.solve(200.0, 10.0, 0.1, 0.95, key="fn")
        steady = solver.solve(200.0, 10.0, 0.1, 0.95, key="fn")
        assert steady.containers == first.containers
        assert steady.iterations == 3

    def test_keys_are_isolated(self):
        solver = SizingSolver(cache_size=0)
        solver.solve(500.0, 10.0, 0.1, 0.95, key="big")
        small = solver.solve(5.0, 10.0, 0.1, 0.95, key="small")
        assert small.containers == required_containers(5.0, 10.0, 0.1, 0.95).containers

    def test_disabled_warm_start_never_records_anchors(self):
        solver = SizingSolver(warm_start=False)
        solver.solve(200.0, 10.0, 0.1, 0.95, key="fn")
        assert solver._warm == {}
        assert solver.stats.warm_hits == 0


class TestMemo:
    def test_exact_key_hit_skips_all_evaluation(self):
        solver = SizingSolver()
        cold = solver.solve(88.0, 10.0, 0.1, 0.95)
        hit = solver.solve(88.0, 10.0, 0.1, 0.95)
        assert hit.containers == cold.containers
        assert hit.iterations == 0
        assert solver.stats.cache_hits == 1

    def test_nearby_keys_do_not_collide(self):
        solver = SizingSolver()
        a = solver.solve(88.0, 10.0, 0.1, 0.95)
        b = solver.solve(88.00000001, 10.0, 0.1, 0.95)
        assert solver.stats.cache_hits == 0
        assert abs(a.containers - b.containers) <= 1

    def test_lru_evicts_oldest(self):
        solver = SizingSolver(cache_size=2, warm_start=False)
        solver.solve(10.0, 10.0, 0.1, 0.95)
        solver.solve(20.0, 10.0, 0.1, 0.95)
        solver.solve(30.0, 10.0, 0.1, 0.95)   # evicts the 10.0 entry
        assert len(solver._solutions) == 2
        solver.solve(10.0, 10.0, 0.1, 0.95)
        assert solver.stats.cache_hits == 0

    def test_clear_resets_state(self):
        solver = SizingSolver()
        solver.solve(88.0, 10.0, 0.1, 0.95, key="fn")
        solver.clear()
        assert len(solver._solutions) == 0
        assert solver._warm == {}

    def test_caches_disabled_context_forces_cold_solves(self):
        solver = SizingSolver()
        solver.solve(88.0, 10.0, 0.1, 0.95, key="fn")
        with caches_disabled():
            result = solver.solve(88.0, 10.0, 0.1, 0.95, key="fn")
            assert result.iterations > 0          # not a cache hit
            assert solver.stats.cache_hits == 0
        hit = solver.solve(88.0, 10.0, 0.1, 0.95, key="fn")
        assert hit.iterations == 0                # re-enabled afterwards

    def test_cache_hit_respects_max_containers(self):
        solver = SizingSolver()
        cold = solver.solve(50.0, 10.0, 0.0, 0.99)
        assert cold.containers > 8
        with pytest.raises(ValueError):
            solver.solve(50.0, 10.0, 0.0, 0.99, max_containers=8)


class TestBatch:
    def test_results_align_positionally(self):
        queries = [
            SizingQuery(lam=lam, mu=10.0, wait_budget=0.1, key=i)
            for i, lam in enumerate((90.0, 0.0, 5.0, 320.0, 17.0))
        ]
        results = SizingSolver().solve_batch(queries)
        for query, result in zip(queries, results):
            expected = required_containers(query.lam, 10.0, 0.1).containers
            assert result.containers == expected

    def test_epoch_sequence_mixes_hits_warm_and_cold(self):
        solver = SizingSolver()
        rates = [60.0 + 17.0 * i for i in range(12)]
        for epoch in range(6):
            drifted = [round(r * (1.0 + 0.02 * epoch), 2) for r in rates]
            queries = [
                SizingQuery(lam=lam, mu=10.0, wait_budget=0.1, key=i)
                for i, lam in enumerate(drifted)
            ]
            results = solver.solve_batch(queries)
            for lam, result in zip(drifted, results):
                assert result.containers == required_containers(lam, 10.0, 0.1).containers
        assert solver.stats.warm_hits > 0
        assert solver.stats.batches == 6

    def test_duplicate_queries_share_one_solve(self):
        solver = SizingSolver()
        queries = [SizingQuery(lam=88.0, mu=10.0, wait_budget=0.1)] * 5
        results = solver.solve_batch(queries)
        assert len({r.containers for r in results}) == 1
        assert solver.stats.cache_hits == 4

    def test_duplicates_survive_within_batch_eviction(self):
        # cache_size=1: the second leader evicts the first leader's entry
        # before its follower resolves — the follower must recompute, not
        # crash, and stay exact
        solver = SizingSolver(cache_size=1)
        q1 = SizingQuery(lam=88.0, mu=10.0, wait_budget=0.1)
        q2 = SizingQuery(lam=40.0, mu=10.0, wait_budget=0.1)
        results = solver.solve_batch([q1, q2, q1])
        assert results[0].containers == results[2].containers
        assert results[0].containers == required_containers(88.0, 10.0, 0.1).containers
        assert results[1].containers == required_containers(40.0, 10.0, 0.1).containers


class TestHeterogeneous:
    def test_matches_reference_over_grid(self):
        solver = SizingSolver()
        for lam in (10.0, 50.0, 60.0):
            for deflation in (0.9, 0.7, 0.5):
                base = required_containers(lam, 10.0, 0.1, 0.95).containers
                existing = [10.0 * deflation] * max(base, 1)
                reference = required_containers_heterogeneous(
                    lam, existing, 10.0, 0.1
                )
                got = solver.solve_heterogeneous(lam, existing, 10.0, 0.1, key="fn")
                again = solver.solve_heterogeneous(lam, existing, 10.0, 0.1, key="fn")
                assert got.containers == reference.containers
                assert again.containers == reference.containers
                assert got.achieved_probability == pytest.approx(
                    reference.achieved_probability, rel=1e-9
                )
        assert solver.stats.cache_hits > 0

    def test_zero_load_keeps_existing(self):
        result = SizingSolver().solve_heterogeneous(0.0, [7.0, 10.0], 10.0, 0.1)
        assert result.containers == 2
        assert result.achieved_probability == 1.0

    def test_warm_drift_stays_exact(self):
        solver = SizingSolver(cache_size=0)
        for lam in (40.0, 44.0, 48.0, 80.0, 30.0):
            existing = [7.0] * 5
            reference = required_containers_heterogeneous(lam, existing, 10.0, 0.1)
            got = solver.solve_heterogeneous(lam, existing, 10.0, 0.1, key="fn")
            assert got.containers == reference.containers

    def test_cache_hit_respects_max_additional(self):
        solver = SizingSolver()
        generous = solver.solve_heterogeneous(50.0, [1.0], 1.0, 0.1,
                                              max_additional=1000)
        assert generous.containers > 6
        with pytest.raises(ValueError):
            required_containers_heterogeneous(50.0, [1.0], 1.0, 0.1,
                                              max_additional=5)
        with pytest.raises(ValueError):
            solver.solve_heterogeneous(50.0, [1.0], 1.0, 0.1, max_additional=5)

    def test_validation(self):
        solver = SizingSolver()
        with pytest.raises(ValueError):
            solver.solve_heterogeneous(1.0, [1.0], 0.0, 0.1)
        with pytest.raises(ValueError):
            solver.solve_heterogeneous(1.0, [-1.0], 1.0, 0.1)
        with pytest.raises(ValueError):
            solver.solve_heterogeneous(-1.0, [1.0], 1.0, 0.1)

    def test_vectorised_chain_weights_match_direct_recurrence(self):
        # the cumsum vectorisation of HeterogeneousMMcQueue.log_unnormalised
        queue = HeterogeneousMMcQueue(15.0, [10.0, 7.0, 5.0])
        log_weights = queue.log_unnormalised(50)
        log_lam = math.log(15.0)
        log_s = np.log(np.cumsum([5.0, 7.0, 10.0]))
        expected = 0.0
        for n in range(1, 51):
            expected = expected + log_lam - log_s[min(n, 3) - 1]
            assert log_weights[n] == pytest.approx(expected, rel=1e-12)
