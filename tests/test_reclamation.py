"""Tests for the termination and deflation reclamation policies (paper §4.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.container import Container
from repro.core.allocation.reclamation import (
    CreateAction,
    DeflationPolicy,
    TerminationPolicy,
)


def containers(name: str, count: int, cpu: float, current: float = None):
    result = []
    for _ in range(count):
        container = Container(function_name=name, node_name="n", standard_cpu=cpu, memory_mb=256)
        if current is not None:
            container.deflate_to(current)
        result.append(container)
    return result


class TestTerminationPolicy:
    def test_no_action_when_targets_match(self):
        pool = {"a": containers("a", 3, 1.0)}
        plan = TerminationPolicy().plan(pool, {"a": 3.0}, {"a": 1.0}, free_cpu=9.0)
        assert plan.is_empty()

    def test_terminates_down_to_target_count(self):
        pool = {"a": containers("a", 5, 2.0)}
        plan = TerminationPolicy().plan(pool, {"a": 6.0}, {"a": 2.0})
        assert len(plan.terminations) == 2
        assert not plan.deflations

    def test_terminates_smallest_containers_first(self):
        small = containers("a", 1, 2.0, current=1.0)[0]
        big = containers("a", 1, 2.0)[0]
        plan = TerminationPolicy().plan({"a": [small, big]}, {"a": 2.0}, {"a": 2.0})
        assert len(plan.terminations) == 1
        assert plan.terminations[0].container_id == small.container_id

    def test_creates_whole_containers_for_underallocated(self):
        pool = {"a": containers("a", 5, 2.0), "b": containers("b", 1, 0.5)}
        plan = TerminationPolicy().plan(
            pool, {"a": 6.0, "b": 3.0}, {"a": 2.0, "b": 0.5}, free_cpu=0.0
        )
        created_b = [c for c in plan.creations if c.function_name == "b"]
        assert len(created_b) == 5
        assert all(c.cpu == pytest.approx(0.5) for c in created_b)

    def test_creation_limited_by_available_capacity(self):
        pool = {"b": containers("b", 0, 1.0)}
        plan = TerminationPolicy().plan({"b": []}, {"b": 10.0}, {"b": 1.0}, free_cpu=2.0)
        assert len(plan.creations) == 2

    def test_fragment_left_when_freed_capacity_smaller_than_standard(self):
        # terminating a 2-vCPU container to satisfy a 0.5-vCPU need leaves
        # 1.5 vCPU stranded (the paper's fragmentation argument, §6.6)
        pool = {"mobile": containers("mobile", 5, 2.0), "malware": containers("malware", 4, 0.5)}
        plan = TerminationPolicy().plan(
            pool, {"mobile": 9.5, "malware": 2.5}, {"mobile": 2.0, "malware": 0.5}, free_cpu=0.0
        )
        assert len(plan.terminations) == 1           # one whole MobileNet container
        created = [c for c in plan.creations if c.function_name == "malware"]
        assert len(created) == 1                      # malware gets its one container
        freed = 2.0
        used = 0.5
        assert freed - used == pytest.approx(1.5)     # the stranded fragment

    def test_restores_deflated_containers_when_not_shrinking(self):
        pool = {"a": containers("a", 2, 1.0, current=0.7)}
        plan = TerminationPolicy().plan(pool, {"a": 2.0}, {"a": 1.0})
        assert len(plan.inflations) == 2


class TestDeflationPolicy:
    def test_no_action_when_targets_match(self):
        pool = {"a": containers("a", 3, 1.0)}
        plan = DeflationPolicy().plan(pool, {"a": 3.0}, {"a": 1.0}, free_cpu=9.0)
        assert plan.is_empty()

    def test_deflates_instead_of_terminating(self):
        pool = {"a": containers("a", 5, 2.0)}
        plan = DeflationPolicy(threshold=0.3).plan(pool, {"a": 9.0}, {"a": 2.0})
        assert not plan.terminations
        assert len(plan.deflations) == 5
        total_after = sum(d.cpu for d in plan.deflations)
        assert total_after == pytest.approx(9.0)

    def test_deflation_respects_threshold(self):
        pool = {"a": containers("a", 5, 2.0)}
        plan = DeflationPolicy(threshold=0.3).plan(pool, {"a": 8.0}, {"a": 2.0})
        for action in plan.deflations:
            assert action.cpu >= 2.0 * 0.7 - 1e-9

    def test_terminates_when_deflation_alone_is_insufficient(self):
        # target 4.0 from 5x2.0 = 10.0: even at 30% deflation five containers
        # hold 7.0, so containers must also be terminated
        pool = {"a": containers("a", 5, 2.0)}
        plan = DeflationPolicy(threshold=0.3).plan(pool, {"a": 4.0}, {"a": 2.0})
        assert plan.terminations
        survivors = 5 - len(plan.terminations)
        total = survivors * 2.0
        for action in plan.deflations:
            total -= 2.0 - action.cpu
        assert total <= 4.0 + 1e-9
        assert total >= 4.0 - 2.0 * 0.3 * survivors - 1e-9

    def test_keeps_more_containers_than_termination(self):
        pool_term = {"a": containers("a", 5, 2.0)}
        pool_defl = {"a": containers("a", 5, 2.0)}
        target = {"a": 7.0}
        std = {"a": 2.0}
        term_plan = TerminationPolicy().plan(pool_term, target, std)
        defl_plan = DeflationPolicy().plan(pool_defl, target, std)
        term_survivors = 5 - len(term_plan.terminations)
        defl_survivors = 5 - len(defl_plan.terminations)
        assert defl_survivors > term_survivors

    def test_uses_fragments_via_deflated_creation(self):
        # 1.5 vCPU free can host a deflated 2-vCPU container (>= 70% of standard)
        pool = {"a": []}
        plan = DeflationPolicy(threshold=0.3).plan({"a": []}, {"a": 1.5}, {"a": 2.0}, free_cpu=1.5)
        assert len(plan.creations) == 1
        assert plan.creations[0].cpu == pytest.approx(1.5)

    def test_no_deflated_creation_when_disabled(self):
        plan = DeflationPolicy(threshold=0.3, allow_deflated_creation=False).plan(
            {"a": []}, {"a": 1.5}, {"a": 2.0}, free_cpu=1.5
        )
        assert not plan.creations

    def test_inflates_before_creating(self):
        pool = {"a": containers("a", 2, 2.0, current=1.4)}
        plan = DeflationPolicy().plan(pool, {"a": 4.0}, {"a": 2.0}, free_cpu=2.0)
        assert len(plan.inflations) == 2
        assert sum(i.cpu for i in plan.inflations) == pytest.approx(4.0)

    def test_reclaimed_capacity_feeds_creations(self):
        pool = {
            "over": containers("over", 5, 2.0),
            "under": containers("under", 2, 0.5),
        }
        plan = DeflationPolicy().plan(
            pool, {"over": 9.0, "under": 2.0}, {"over": 2.0, "under": 0.5}, free_cpu=0.0
        )
        created = [c for c in plan.creations if c.function_name == "under"]
        assert sum(c.cpu for c in created) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeflationPolicy(threshold=0.0)
        with pytest.raises(ValueError):
            DeflationPolicy(threshold=0.3, increment=0.5)

    @given(
        count=st.integers(min_value=1, max_value=10),
        cpu=st.sampled_from([0.5, 1.0, 2.0]),
        target_fraction=st.floats(min_value=0.1, max_value=1.0),
        threshold=st.floats(min_value=0.1, max_value=0.5),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_deflation_meets_target_and_threshold(self, count, cpu, target_fraction, threshold):
        pool = {"a": containers("a", count, cpu)}
        current_total = count * cpu
        target = current_total * target_fraction
        plan = DeflationPolicy(threshold=threshold).plan(pool, {"a": target}, {"a": cpu})
        terminated = {t.container_id for t in plan.terminations}
        survivors = [c for c in pool["a"] if c.container_id not in terminated]
        levels = {c.container_id: c.current_cpu for c in survivors}
        for action in plan.deflations:
            levels[action.container_id] = action.cpu
        total_after = sum(levels.values())
        # never exceeds the target (within epsilon)
        assert total_after <= target + 1e-6
        # every surviving container respects the deflation threshold
        for c in survivors:
            assert levels[c.container_id] >= cpu * (1 - threshold) - 1e-9
            assert levels[c.container_id] <= cpu + 1e-9
