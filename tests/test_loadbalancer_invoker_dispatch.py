"""Unit tests for the WRR load balancer, invokers, and the shared-queue dispatcher."""

import pytest

from repro.cluster.cluster import ClusterConfig, EdgeCluster, FunctionDeployment
from repro.cluster.container import Container
from repro.cluster.invoker import InvokerCommand, InvokerPool
from repro.cluster.loadbalancer import WeightedRoundRobinBalancer, proportional_split
from repro.core.dispatch import SharedQueueDispatcher
from repro.sim.request import Request, RequestStatus


def warm_container(cpu=1.0, name="fn") -> Container:
    container = Container(function_name=name, node_name="n0", standard_cpu=cpu, memory_mb=128)
    container.mark_warm(0.0)
    return container


def make_request(name="fn", work=0.1, arrival=0.0) -> Request:
    return Request(function_name=name, arrival_time=arrival, work=work)


class TestWeightedRoundRobin:
    def test_equal_weights_round_robin_evenly(self):
        balancer = WeightedRoundRobinBalancer()
        containers = [warm_container() for _ in range(3)]
        counts = balancer.dispatch_counts("fn", containers, 300)
        assert all(count == 100 for count in counts.values())

    def test_weights_follow_cpu_allocation(self):
        balancer = WeightedRoundRobinBalancer()
        big, small = warm_container(cpu=2.0), warm_container(cpu=1.0)
        counts = balancer.dispatch_counts("fn", [big, small], 300)
        assert counts[big.container_id] == 200
        assert counts[small.container_id] == 100

    def test_deflated_container_receives_less(self):
        balancer = WeightedRoundRobinBalancer()
        a, b = warm_container(), warm_container()
        b.deflate_to(0.5)
        counts = balancer.dispatch_counts("fn", [a, b], 300)
        assert counts[a.container_id] == 200
        assert counts[b.container_id] == 100

    def test_smooth_interleaving_not_bursty(self):
        balancer = WeightedRoundRobinBalancer()
        big, small = warm_container(cpu=3.0), warm_container(cpu=1.0)
        picks = [balancer.pick("fn", [big, small]).container_id for _ in range(8)]
        # the small container should never wait more than 4 picks in a row
        assert small.container_id in picks[:4]
        assert small.container_id in picks[4:]

    def test_returns_none_without_available_containers(self):
        balancer = WeightedRoundRobinBalancer()
        cold = Container(function_name="fn", node_name="n0", standard_cpu=1.0, memory_mb=128)
        assert balancer.pick("fn", []) is None
        assert balancer.pick("fn", [cold]) is None

    def test_state_pruned_for_gone_containers(self):
        balancer = WeightedRoundRobinBalancer()
        a, b = warm_container(), warm_container()
        balancer.pick("fn", [a, b])
        balancer.pick("fn", [a])
        assert b.container_id not in balancer._scores["fn"]

    def test_pick_least_loaded(self, engine):
        balancer = WeightedRoundRobinBalancer()
        a, b = warm_container(), warm_container()
        a.submit(make_request(work=10.0), engine)
        chosen = balancer.pick_least_loaded("fn", [a, b])
        assert chosen is b

    def test_reset(self):
        balancer = WeightedRoundRobinBalancer()
        balancer.pick("fn", [warm_container()])
        balancer.reset("fn")
        assert "fn" not in balancer._scores


class TestProportionalSplit:
    def test_sums_to_total(self):
        assert sum(proportional_split([1, 2, 3], 17)) == 17

    def test_exact_proportions(self):
        assert proportional_split([1.0, 1.0], 10) == [5, 5]
        assert proportional_split([2.0, 1.0], 9) == [6, 3]

    def test_zero_weights_split_evenly(self):
        assert sum(proportional_split([0.0, 0.0, 0.0], 7)) == 7

    def test_empty_and_invalid(self):
        assert proportional_split([], 5) == []
        with pytest.raises(ValueError):
            proportional_split([1.0], -1)
        with pytest.raises(ValueError):
            proportional_split([-1.0], 1)


class TestInvokers:
    @pytest.fixture
    def cluster(self, engine):
        cluster = EdgeCluster(engine, ClusterConfig())
        cluster.deploy(FunctionDeployment(name="fn", cpu=1.0, memory_mb=256))
        return cluster

    def test_create_terminate_resize_logged(self, engine, cluster):
        pool = InvokerPool(cluster)
        invoker = pool["node-0"]
        container = invoker.create_container("fn")
        invoker.resize_container(container.container_id, 0.7)
        invoker.terminate_container(container.container_id)
        counts = invoker.command_counts()
        assert counts[InvokerCommand.CREATE] == 1
        assert counts[InvokerCommand.RESIZE] == 1
        assert counts[InvokerCommand.TERMINATE] == 1

    def test_pool_routes_by_container_node(self, engine, cluster):
        pool = InvokerPool(cluster)
        container = pool["node-1"].create_container("fn")
        assert pool.invoker_for_container(container.container_id).node_name == "node-1"

    def test_terminate_returns_dropped_requests(self, engine, cluster):
        pool = InvokerPool(cluster)
        container = pool["node-0"].create_container("fn")
        engine.run(until=1.0)
        container.submit(make_request(work=10.0), engine)
        dropped = pool["node-0"].terminate_container(container.container_id)
        assert len(dropped) == 1

    def test_total_command_counts(self, engine, cluster):
        pool = InvokerPool(cluster)
        pool["node-0"].create_container("fn")
        pool["node-1"].create_container("fn")
        totals = pool.total_command_counts()
        assert totals[InvokerCommand.CREATE] == 2


class TestSharedQueueDispatcher:
    def test_dispatches_to_idle_container_immediately(self, engine):
        dispatcher = SharedQueueDispatcher(engine)
        container = warm_container()
        request = make_request()
        assert dispatcher.submit(request, [container]) is True
        engine.run()
        assert request.status is RequestStatus.COMPLETED
        assert request.waiting_time == 0.0

    def test_queues_when_all_containers_busy(self, engine):
        dispatcher = SharedQueueDispatcher(engine)
        container = warm_container()
        first, second = make_request(work=0.2), make_request(work=0.2)
        dispatcher.submit(first, [container])
        assert dispatcher.submit(second, [container]) is False
        assert dispatcher.queue_length("fn") == 1
        engine.run()
        assert second.status is RequestStatus.COMPLETED
        assert second.waiting_time == pytest.approx(0.2)

    def test_behaves_like_shared_queue_not_per_container(self, engine):
        # with 2 containers and 3 requests, the third runs on whichever
        # container frees first — total makespan 2 service times, not 3
        dispatcher = SharedQueueDispatcher(engine)
        containers = [warm_container(), warm_container()]
        requests = [make_request(work=0.1) for _ in range(3)]
        for request in requests:
            dispatcher.submit(request, containers)
        engine.run()
        assert max(r.completion_time for r in requests) == pytest.approx(0.2)

    def test_drain_moves_queued_work_to_new_containers(self, engine):
        dispatcher = SharedQueueDispatcher(engine)
        request = make_request()
        dispatcher.submit(request, [])          # nothing warm yet
        assert dispatcher.queue_length("fn") == 1
        container = warm_container()
        started = dispatcher.drain("fn", [container])
        assert started == 1
        engine.run()
        assert request.status is RequestStatus.COMPLETED

    def test_completion_callback_fires(self, engine):
        seen = []
        dispatcher = SharedQueueDispatcher(engine, on_complete=lambda r, c: seen.append(r))
        dispatcher.submit(make_request(), [warm_container()])
        engine.run()
        assert len(seen) == 1

    def test_skips_requests_dropped_while_queued(self, engine):
        dispatcher = SharedQueueDispatcher(engine)
        request = make_request()
        dispatcher.submit(request, [])
        request.mark_dropped(1.0)
        started = dispatcher.drain("fn", [warm_container()])
        assert started == 0

    def test_total_queued_counts_all_functions(self, engine):
        dispatcher = SharedQueueDispatcher(engine)
        dispatcher.submit(make_request(name="a"), [])
        dispatcher.submit(make_request(name="b"), [])
        assert dispatcher.total_queued() == 2

    def test_larger_containers_get_more_dispatches(self, engine):
        dispatcher = SharedQueueDispatcher(engine)
        big = warm_container(cpu=2.0)
        small = warm_container(cpu=1.0)
        small.deflate_to(1.0)
        # submit many short requests with gaps so both are idle each time
        completions = {big.container_id: 0, small.container_id: 0}

        def count(request, container):
            completions[container.container_id] += 1

        dispatcher._on_complete = count
        for i in range(30):
            request = make_request(work=0.001, arrival=i * 1.0)
            engine.schedule_at(i * 1.0, lambda r=request: dispatcher.submit(r, [big, small]))
        engine.run()
        assert completions[big.container_id] == 20
        assert completions[small.container_id] == 10


class TestIncrementalIdleSets:
    """Cluster-attached dispatch: idle sets maintained by state hooks."""

    @pytest.fixture
    def cluster(self, engine):
        cluster = EdgeCluster(engine, ClusterConfig())
        cluster.deploy(FunctionDeployment(name="fn", cpu=1.0, memory_mb=256))
        return cluster

    def _warm(self, engine, cluster, count=1):
        containers = [cluster.create_container("fn") for _ in range(count)]
        engine.run(until=engine.now + cluster.config.cold_start_latency + 1e-6)
        return containers

    def test_warm_container_enters_idle_set(self, engine, cluster):
        dispatcher = SharedQueueDispatcher(engine)
        dispatcher.attach_cluster(cluster)
        [container] = self._warm(engine, cluster)
        request = make_request()
        assert dispatcher.submit(request) is True  # no container list needed
        engine.run()
        assert request.status is RequestStatus.COMPLETED
        assert request.container_id == container.container_id

    def test_attach_indexes_preexisting_containers(self, engine, cluster):
        [container] = self._warm(engine, cluster)
        dispatcher = SharedQueueDispatcher(engine)
        dispatcher.attach_cluster(cluster)  # attached after the container warmed
        assert dispatcher.submit(make_request()) is True

    def test_busy_container_leaves_idle_set(self, engine, cluster):
        dispatcher = SharedQueueDispatcher(engine)
        dispatcher.attach_cluster(cluster)
        self._warm(engine, cluster)
        first, second = make_request(work=0.2), make_request(work=0.2)
        assert dispatcher.submit(first) is True
        assert dispatcher.submit(second) is False  # only container busy -> queued
        engine.run()
        assert second.status is RequestStatus.COMPLETED
        # FCFS through the shared queue: the second starts when the first ends
        assert second.start_time == pytest.approx(first.completion_time)

    def test_draining_container_not_dispatchable(self, engine, cluster):
        dispatcher = SharedQueueDispatcher(engine)
        dispatcher.attach_cluster(cluster)
        [container] = self._warm(engine, cluster)
        container.mark_draining()
        assert dispatcher.submit(make_request()) is False
        # rescuing the container makes it dispatchable again without a rescan
        container.unmark_draining()
        assert dispatcher.submit(make_request()) is True

    def test_terminated_container_removed_from_idle_set(self, engine, cluster):
        dispatcher = SharedQueueDispatcher(engine)
        dispatcher.attach_cluster(cluster)
        [container] = self._warm(engine, cluster)
        cluster.terminate_container(container.container_id)
        assert dispatcher.submit(make_request()) is False
        assert dispatcher.queue_length("fn") == 1

    def test_completion_returns_container_to_idle_set(self, engine, cluster):
        dispatcher = SharedQueueDispatcher(engine)
        dispatcher.attach_cluster(cluster)
        self._warm(engine, cluster)
        first = make_request(work=0.1)
        dispatcher.submit(first)
        engine.run()
        assert first.status is RequestStatus.COMPLETED
        # the container completed and must be dispatchable again
        assert dispatcher.submit(make_request()) is True

    def test_deflated_container_stays_dispatchable(self, engine, cluster):
        dispatcher = SharedQueueDispatcher(engine)
        dispatcher.attach_cluster(cluster)
        [container] = self._warm(engine, cluster)
        cluster.deflate_container(container.container_id, 0.5)
        request = make_request(work=0.1)
        assert dispatcher.submit(request) is True
        engine.run()
        # half the CPU -> double the service time under the default curve
        assert request.service_time == pytest.approx(0.2)

    def test_stale_entries_discarded_lazily(self, engine, cluster):
        dispatcher = SharedQueueDispatcher(engine)
        dispatcher.attach_cluster(cluster)
        [container] = self._warm(engine, cluster)
        # bypass the dispatcher: the idle entry is now stale
        container.submit(make_request(work=0.5), engine)
        assert dispatcher.submit(make_request()) is False  # stale entry discarded, queued
        assert dispatcher.queue_length("fn") == 1

    def test_drain_without_explicit_list(self, engine, cluster):
        dispatcher = SharedQueueDispatcher(engine)
        dispatcher.attach_cluster(cluster)
        request = make_request()
        dispatcher.submit(request)               # queued: nothing warm yet
        assert dispatcher.queue_length("fn") == 1
        self._warm(engine, cluster)
        assert dispatcher.drain("fn") == 1
        engine.run()
        assert request.status is RequestStatus.COMPLETED

    def test_deflation_then_termination_under_queue(self, engine, cluster):
        dispatcher = SharedQueueDispatcher(engine)
        dispatcher.attach_cluster(cluster)
        first, second = self._warm(engine, cluster, count=2)
        blocked = [make_request(work=1.0) for _ in range(4)]
        for request in blocked:
            dispatcher.submit(request)
        assert dispatcher.queue_length("fn") == 2
        dropped = cluster.terminate_container(first.container_id)
        assert len(dropped) == 1                 # the one running on the victim
        engine.run()
        # the survivor works through the shared queue alone
        done = [r for r in blocked if r.status is RequestStatus.COMPLETED]
        assert len(done) == 3
        assert all(r.container_id == second.container_id for r in done)


class TestUnattachedDispatcherHygiene:
    def test_unattached_dispatcher_does_not_pin_containers(self, engine):
        """Baseline controllers pass explicit lists and never attach a cluster;
        the idle index must stay empty or terminated containers leak."""
        dispatcher = SharedQueueDispatcher(engine)
        for _ in range(5):
            container = warm_container()
            dispatcher.submit(make_request(work=0.01), [container])
            engine.run()
            container.terminate(engine.now)
        assert all(not index for index in dispatcher._idle.values())

    def test_watch_container_tracks_standalone_container(self, engine):
        dispatcher = SharedQueueDispatcher(engine)
        container = warm_container()
        dispatcher.watch_container(container)
        request = make_request()
        assert dispatcher.submit(request) is True   # no explicit list needed
        engine.run()
        assert request.status is RequestStatus.COMPLETED
        container.terminate(engine.now)
        assert all(not index for index in dispatcher._idle.values())

    def test_watch_container_refuses_cluster_owned_containers(self, engine):
        cluster = EdgeCluster(engine, ClusterConfig())
        cluster.deploy(FunctionDeployment(name="fn", cpu=1.0, memory_mb=256))
        container = cluster.create_container("fn")
        dispatcher = SharedQueueDispatcher(engine)
        with pytest.raises(ValueError):
            dispatcher.watch_container(container)
