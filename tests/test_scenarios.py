"""Tests for the declarative scenario subsystem.

Covers the three contracts the subsystem promises:

1. **Serialization** — every spec (including every registered experiment
   and example) round-trips exactly through JSON.
2. **Registry completeness** — all nine paper experiments (table1,
   fig3…fig9) are registered, and the experiment renderers cover
   exactly the registered names (no hard-coded list drift).
3. **Sweep determinism** — expanding and running a sweep with
   ``workers=1`` and ``workers=4`` yields byte-identical results JSON,
   and so does running with the control-plane solver's caches disabled
   (memoization and warm starts change the work, never the answers).
"""

import json

import pytest

from repro.experiments import RENDERERS
from repro.scenarios import (
    AllocationSpec,
    ScenarioSpec,
    ScheduleSpec,
    SweepRunner,
    SweepSpec,
    WorkloadSpec,
    apply_overrides,
    build,
    canonical_json,
    derive_shard_seed,
    example_names,
    experiment_names,
    names,
    run_scenario,
)
from repro.scenarios.sweep import SweepAxis


class TestSerialization:
    def test_every_registered_entry_round_trips(self):
        for name in names():
            spec = build(name)
            if isinstance(spec, SweepSpec):
                rebuilt = SweepSpec.from_json(spec.to_json())
            else:
                rebuilt = ScenarioSpec.from_json(spec.to_json())
            assert rebuilt == spec, f"{name} did not round-trip"

    def test_expanded_shards_round_trip(self):
        sweep = build("fig3", mus=(10.0,), slo_deadlines=(0.1,),
                      arrival_rates=(10.0, 20.0), duration=30.0)
        for shard in sweep.expand():
            assert ScenarioSpec.from_json(shard.to_json()) == shard

    def test_round_trip_through_plain_json_text(self):
        spec = build("fig6", step_duration=10.0)
        text = json.dumps(spec.to_dict(), indent=2, sort_keys=True)
        assert ScenarioSpec.from_dict(json.loads(text)) == spec

    def test_schedule_specs_build_correct_schedules(self):
        static = ScheduleSpec.static(rate=7.5, duration=30.0).build()
        assert static.rate(1.0) == 7.5 and static.rate(31.0) == 0.0
        stair = ScheduleSpec.staircase((1.0, 2.0), 10.0).build()
        assert stair.rate(5.0) == 1.0 and stair.rate(15.0) == 2.0
        steps = ScheduleSpec.steps([(0.0, 3.0), (10.0, 6.0)], duration=20.0).build()
        assert steps.rate(12.0) == 6.0 and steps.rate(25.0) == 0.0

    def test_azure_schedule_matches_synthesize_azure_traces(self):
        import dataclasses

        import numpy as np

        from repro.workloads.azure import DEFAULT_AZURE_CONFIGS, synthesize_azure_traces

        reference = synthesize_azure_traces(duration_minutes=5, seed=123)
        for index, (name, config) in enumerate(sorted(DEFAULT_AZURE_CONFIGS.items())):
            schedule = ScheduleSpec.azure(
                config=dataclasses.asdict(config), duration_minutes=5,
                seed=123, index=index,
            ).build()
            np.testing.assert_array_equal(schedule.counts, reference[name].counts)

    def test_validation_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", kind="nope")
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", kind="simulate")  # no workloads
        with pytest.raises(ValueError):
            ScenarioSpec(
                name="x", kind="fixed",
                workloads=(WorkloadSpec("squeezenet", ScheduleSpec.static(1.0)),),
            )  # fixed without allocation
        with pytest.raises(ValueError):
            AllocationSpec()  # neither containers nor sizing
        with pytest.raises(ValueError):
            AllocationSpec(containers=2, sizing={"model": "mmc"})  # both
        with pytest.raises(ValueError):
            ScheduleSpec("static", {})  # missing rate
        w = WorkloadSpec("squeezenet", ScheduleSpec.static(1.0))
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", workloads=(w, w))  # duplicate functions
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", workloads=(w,), metrics=("nope",))


class TestRegistry:
    def test_every_paper_artefact_has_a_spec(self):
        expected = {"table1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
                    # fig9-at-scale (streaming trace replay), fig10 (recovery),
                    # fig11 (policy shootout) and fig12 (federation routers)
                    # are the repo's own extensions
                    "fig9-at-scale", "fig10", "fig11", "fig12"}
        assert set(experiment_names()) == expected

    def test_renderers_cover_exactly_the_registered_experiments(self):
        assert set(RENDERERS) == set(experiment_names())

    def test_examples_are_registered(self):
        assert {"quickstart", "video-analytics-burst",
                "overload-fair-share", "azure-replay"} <= set(example_names())

    def test_fig8_sweep_has_three_arms(self):
        sweep = build("fig8", phase_duration=10.0)
        shards = sweep.expand()
        assert len(shards) == 3
        kinds = [s.kind for s in shards]
        assert kinds.count("simulate") == 2 and kinds.count("openwhisk") == 1
        policies = {s.controller.reclamation for s in shards if s.kind == "simulate"}
        assert policies == {"termination", "deflation"}

    def test_fig9_arms_share_the_base_seed(self):
        sweep = build("fig9", duration_minutes=2)
        shards = sweep.expand()
        assert len(shards) == 2
        assert shards[0].seed == shards[1].seed == sweep.base.seed

    def test_unknown_name_raises_with_available_list(self):
        with pytest.raises(KeyError, match="available"):
            build("no-such-scenario")


class TestOverridesAndSeeds:
    def test_apply_overrides_reaches_nested_fields(self):
        spec = build("quickstart", duration=50.0)
        out = apply_overrides(spec, {
            "workloads.0.schedule.params.rate": 42.0,
            "controller.reclamation": "termination",
            "seed": 99,
        })
        assert out.workloads[0].schedule.params["rate"] == 42.0
        assert out.controller.reclamation == "termination"
        assert out.seed == 99
        # the original is untouched (specs are frozen values)
        assert spec.workloads[0].schedule.params["rate"] == 20.0

    def test_apply_overrides_rejects_unknown_paths(self):
        spec = build("quickstart", duration=50.0)
        with pytest.raises(KeyError, match="does not resolve"):
            apply_overrides(spec, {"sedd": 99})  # typo'd top-level key
        with pytest.raises(KeyError, match="does not resolve"):
            apply_overrides(spec, {"controler.reclamation": "termination"})
        with pytest.raises(KeyError, match="does not resolve"):
            apply_overrides(spec, {"workloads.5.slo_deadline": 0.2})

    def test_derive_shard_seed_is_stable_and_override_sensitive(self):
        a = derive_shard_seed(1, {"x": 1})
        assert a == derive_shard_seed(1, {"x": 1})
        assert a != derive_shard_seed(1, {"x": 2})
        assert a != derive_shard_seed(2, {"x": 1})

    def test_axes_expand_as_cartesian_product_in_order(self):
        base = build("quickstart", duration=30.0)
        sweep = SweepSpec(
            name="grid",
            base=base,
            axes=(
                SweepAxis("workloads.0.schedule.params.rate", (5.0, 10.0)),
                SweepAxis("controller.reclamation", ("termination", "deflation")),
            ),
        )
        shards = sweep.expand()
        combos = [(s.workloads[0].schedule.params["rate"], s.controller.reclamation)
                  for s in shards]
        assert combos == [(5.0, "termination"), (5.0, "deflation"),
                          (10.0, "termination"), (10.0, "deflation")]
        # derived seeds are unique per shard but reproducible across expansions
        seeds = [s.seed for s in shards]
        assert len(set(seeds)) == len(seeds)
        assert [s.seed for s in sweep.expand()] == seeds


class TestExecution:
    def test_fixed_scenario_with_explicit_containers(self):
        spec = ScenarioSpec(
            name="unit-fixed",
            kind="fixed",
            workloads=(
                WorkloadSpec("squeezenet", ScheduleSpec.static(10.0, duration=20.0),
                             slo_deadline=0.1),
            ),
            allocation=AllocationSpec(containers=3),
            duration=20.0,
            seed=5,
            metrics=("waiting", "counters"),
        )
        data = run_scenario(spec).data
        assert data["allocation"]["containers"] == 3
        assert data["metrics"]["functions"]["squeezenet"]["waiting"]["count"] > 0

    def test_fixed_scenario_honours_an_explicit_cluster(self):
        from repro.scenarios import ClusterSpec

        spec = ScenarioSpec(
            name="unit-fixed-cluster",
            kind="fixed",
            workloads=(
                WorkloadSpec("geofence", ScheduleSpec.static(5.0, duration=10.0),
                             slo_deadline=0.1),
            ),
            allocation=AllocationSpec(containers=1),
            cluster=ClusterSpec(node_count=2, cpu_per_node=1.0),
            duration=10.0,
            metrics=("counters",),
        )
        outcome = run_scenario(spec)
        assert len(outcome.sim.cluster.nodes) == 2
        assert outcome.sim.cluster.config.cpu_per_node == 1.0

    def test_results_envelope_echoes_the_spec(self):
        spec = build("quickstart", duration=20.0)
        data = run_scenario(spec).data
        assert data["schema"] == "repro/scenario-result@1"
        assert ScenarioSpec.from_dict(data["scenario"]) == spec

    def test_results_json_is_reproducible(self):
        spec = build("quickstart", duration=20.0)
        first = canonical_json(run_scenario(spec).data)
        second = canonical_json(run_scenario(spec).data)
        assert first == second


class TestSweepDeterminism:
    @pytest.fixture(scope="class")
    def sweep(self):
        return build("fig3", mus=(10.0,), slo_deadlines=(0.1,),
                     arrival_rates=(10.0, 20.0, 30.0, 40.0), duration=30.0, seed=3)

    def test_parallel_equals_serial_bytes(self, sweep):
        serial = SweepRunner(sweep, workers=1).run_json()
        parallel = SweepRunner(sweep, workers=4).run_json()
        assert serial == parallel

    def test_results_arrive_in_expansion_order(self, sweep):
        results = SweepRunner(sweep, workers=4).run()["results"]
        rates = [r["scenario"]["workloads"][0]["schedule"]["params"]["rate"]
                 for r in results]
        assert rates == [10.0, 20.0, 30.0, 40.0]


class TestSolverCacheDeterminism:
    """Solver memo / warm-start on vs off must not change a single byte."""

    def _controller_sweep(self):
        """A small controller-driven sweep (the solver sits on its epoch path)."""
        base = build("quickstart", duration=30.0)
        return SweepSpec(
            name="solver-cache-guard",
            base=base,
            axes=(SweepAxis("workloads.0.schedule.params.rate", (10.0, 25.0)),),
        )

    def test_results_json_identical_with_and_without_caches(self):
        from repro.core.queueing.solver import caches_disabled

        sweep = self._controller_sweep()
        cached = SweepRunner(sweep, workers=1).run_json()
        with caches_disabled():
            cold = SweepRunner(sweep, workers=1).run_json()
        assert cached == cold

    def test_scenario_json_identical_with_config_flags_off(self):
        from repro.scenarios import ControllerSpec

        spec = build("quickstart", duration=30.0)
        flags_off = apply_overrides(spec, {
            "controller.sizing_cache": False,
            "controller.sizing_warm_start": False,
        })
        # the spec echo differs (it records the flags), but every result
        # payload must be identical
        on = run_scenario(spec).data
        off = run_scenario(flags_off).data
        assert ControllerSpec.from_dict(off["scenario"]["controller"]).sizing_cache is False
        on.pop("scenario")
        off.pop("scenario")
        assert canonical_json(on) == canonical_json(off)
