"""Tests for the function catalogue, rate schedules, generators, and Azure traces."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.azure import (
    AzureTraceConfig,
    DEFAULT_AZURE_CONFIGS,
    synthesize_azure_trace,
    synthesize_azure_traces,
    trace_statistics,
)
from repro.workloads.functions import (
    FUNCTION_CATALOG,
    get_function,
    microbenchmark,
    proportional_speed_curve,
    slack_speed_curve,
    table1_rows,
)
from repro.workloads.generator import generate_arrival_times
from repro.workloads.schedules import (
    CompositeSchedule,
    RampSchedule,
    StaticRate,
    StepSchedule,
    TraceSchedule,
)


class TestFunctionCatalog:
    def test_table1_sizes(self):
        assert get_function("mobilenet").cpu == 2.0
        assert get_function("mobilenet").memory_mb == 1024
        assert get_function("geofence").cpu == 0.3
        assert get_function("geofence").memory_mb == 128
        assert microbenchmark().cpu == 0.4

    def test_table1_has_seven_functions(self):
        assert len(table1_rows()) == 7
        assert len(FUNCTION_CATALOG) == 7

    def test_unknown_function_raises(self):
        with pytest.raises(KeyError):
            get_function("nope")

    def test_service_rate_inverse_of_mean(self):
        profile = microbenchmark(0.2)
        assert profile.service_rate == pytest.approx(5.0)

    def test_sample_work_matches_mean(self, rng):
        profile = get_function("squeezenet")
        samples = [profile.sample_work(rng) for _ in range(5000)]
        assert np.mean(samples) == pytest.approx(profile.mean_service_time, rel=0.05)

    def test_slack_curve_shape(self):
        speed = slack_speed_curve(slack=0.3, slack_penalty=0.1)
        assert speed(1.0) == pytest.approx(1.0)
        # inside the slack region the penalty is small
        assert speed(0.7) >= 1.0 / 1.1 - 1e-9
        # beyond the slack region speed drops roughly proportionally
        assert speed(0.35) == pytest.approx(speed(0.7) * 0.5, rel=1e-6)
        # monotone in CPU
        values = [speed(f) for f in np.linspace(0.05, 1.0, 50)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_proportional_curve(self):
        speed = proportional_speed_curve()
        assert speed(0.5) == pytest.approx(0.5)

    def test_service_time_at_deflation(self):
        profile = get_function("squeezenet")
        assert profile.service_time_at(1.0) == pytest.approx(profile.mean_service_time)
        assert profile.service_time_at(0.7) <= profile.mean_service_time * 1.2
        assert profile.service_time_at(0.3) > profile.service_time_at(0.7)

    def test_mobilenet_has_little_slack(self):
        mobilenet = get_function("mobilenet")
        squeezenet = get_function("squeezenet")
        # at 30% deflation MobileNet slows down more than SqueezeNet
        assert (mobilenet.service_time_at(0.7) / mobilenet.mean_service_time) > (
            squeezenet.service_time_at(0.7) / squeezenet.mean_service_time
        )

    def test_to_deployment_carries_speed_curve(self):
        profile = get_function("squeezenet")
        deployment = profile.to_deployment(weight=2.0, user="u1", slo_deadline=0.2)
        assert deployment.cpu == profile.cpu
        assert deployment.weight == 2.0
        assert deployment.user == "u1"
        assert deployment.speed_of_cpu(0.5) == pytest.approx(profile.speed_curve()(0.5))

    def test_to_service_profile_interpolates(self):
        service_profile = get_function("squeezenet").to_service_profile()
        assert service_profile.mean_service_time(1.0) == pytest.approx(0.10)
        assert service_profile.mean_service_time(0.5) > 0.10

    def test_with_service_time(self):
        fast = microbenchmark(0.1).with_service_time(0.05)
        assert fast.mean_service_time == 0.05
        assert fast.distribution.mean == pytest.approx(0.05)


class TestSchedules:
    def test_static_rate(self):
        schedule = StaticRate(10.0, duration=60.0)
        assert schedule.rate(30.0) == 10.0
        assert schedule.rate(61.0) == 0.0
        assert schedule.max_rate(0, 100) == 10.0
        assert schedule.end_time == 60.0

    def test_step_schedule(self):
        schedule = StepSchedule([(0.0, 5.0), (60.0, 30.0)], duration=120.0)
        assert schedule.rate(10.0) == 5.0
        assert schedule.rate(60.0) == 30.0
        assert schedule.rate(119.0) == 30.0
        assert schedule.rate(121.0) == 0.0
        assert schedule.max_rate(0.0, 120.0) == 30.0
        assert schedule.rate(-1.0) == 0.0

    def test_staircase_builder(self):
        schedule = StepSchedule.staircase([5, 10, 15], step_duration=60.0)
        assert schedule.rate(30.0) == 5
        assert schedule.rate(90.0) == 10
        assert schedule.rate(150.0) == 15
        assert schedule.end_time == 180.0

    def test_ramp_schedule(self):
        schedule = RampSchedule([(0.0, 0.0), (100.0, 50.0)])
        assert schedule.rate(50.0) == pytest.approx(25.0)
        assert schedule.max_rate(0.0, 100.0) == pytest.approx(50.0)

    def test_trace_schedule(self):
        schedule = TraceSchedule([60, 120, 0], interval=60.0)
        assert schedule.rate(30.0) == pytest.approx(1.0)
        assert schedule.rate(90.0) == pytest.approx(2.0)
        assert schedule.rate(150.0) == 0.0
        assert schedule.rate(500.0) == 0.0
        assert schedule.total_invocations() == 180
        assert schedule.end_time == 180.0
        assert schedule.max_rate(0.0, 180.0) == pytest.approx(2.0)

    def test_composite_schedule(self):
        composite = CompositeSchedule([StaticRate(5.0, duration=10.0), StaticRate(3.0, duration=20.0)])
        assert composite.rate(5.0) == 8.0
        assert composite.rate(15.0) == 3.0
        assert composite.end_time == 20.0

    def test_mean_rate_and_expected_arrivals(self):
        schedule = StepSchedule([(0.0, 10.0), (50.0, 20.0)], duration=100.0)
        assert schedule.mean_rate(0.0, 100.0) == pytest.approx(15.0, rel=0.05)
        assert schedule.expected_arrivals(0.0, 100.0) == pytest.approx(1500.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            StaticRate(-1.0)
        with pytest.raises(ValueError):
            StepSchedule([])
        with pytest.raises(ValueError):
            RampSchedule([(0.0, 1.0)])
        with pytest.raises(ValueError):
            TraceSchedule([])
        with pytest.raises(ValueError):
            TraceSchedule([-1.0])


class TestArrivalGeneration:
    def test_static_rate_count_matches_expectation(self, rng):
        times = generate_arrival_times(StaticRate(20.0, duration=200.0), rng, horizon=200.0)
        assert len(times) == pytest.approx(4000, rel=0.1)
        assert all(0 <= t <= 200.0 for t in times)
        assert times == sorted(times)

    def test_step_change_reflected_in_counts(self, rng):
        schedule = StepSchedule([(0.0, 5.0), (100.0, 50.0)], duration=200.0)
        times = np.array(generate_arrival_times(schedule, rng, horizon=200.0))
        first = (times < 100.0).sum()
        second = (times >= 100.0).sum()
        assert first == pytest.approx(500, rel=0.2)
        assert second == pytest.approx(5000, rel=0.1)

    def test_zero_rate_produces_nothing(self, rng):
        assert generate_arrival_times(StaticRate(0.0, duration=100.0), rng, horizon=100.0) == []

    def test_interarrival_times_exponential(self, rng):
        times = np.array(generate_arrival_times(StaticRate(50.0, duration=400.0), rng, horizon=400.0))
        gaps = np.diff(times)
        assert gaps.mean() == pytest.approx(1 / 50.0, rel=0.05)
        assert gaps.std() == pytest.approx(1 / 50.0, rel=0.1)   # CV ≈ 1 for Poisson

    @given(rate=st.floats(min_value=1.0, max_value=50.0), seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_property_counts_scale_with_rate(self, rate, seed):
        rng = np.random.default_rng(seed)
        times = generate_arrival_times(StaticRate(rate, duration=100.0), rng, horizon=100.0)
        assert len(times) == pytest.approx(rate * 100, rel=0.35, abs=30)


class TestAzureTraces:
    def test_trace_length_and_nonnegative(self, rng):
        counts = synthesize_azure_trace(AzureTraceConfig(mean_rate=10.0), 60, rng)
        assert len(counts) == 60
        assert (counts >= 0).all()

    def test_steady_trace_mean_close_to_config(self, rng):
        counts = synthesize_azure_trace(AzureTraceConfig(mean_rate=20.0), 240, rng)
        assert counts.mean() == pytest.approx(20.0 * 60, rel=0.35)

    def test_sporadic_trace_is_bursty(self, rng):
        counts = synthesize_azure_trace(
            AzureTraceConfig(mean_rate=2.0, sporadic=True), 240, rng
        )
        stats_peak_to_mean = counts.max() / max(counts.mean(), 1e-9)
        assert stats_peak_to_mean > 2.0

    def test_synthesize_traces_reproducible(self):
        first = synthesize_azure_traces(duration_minutes=30, seed=7)
        second = synthesize_azure_traces(duration_minutes=30, seed=7)
        for name in first:
            assert (first[name].counts == second[name].counts).all()

    def test_different_seeds_differ(self):
        a = synthesize_azure_traces(duration_minutes=30, seed=1)
        b = synthesize_azure_traces(duration_minutes=30, seed=2)
        assert any((a[name].counts != b[name].counts).any() for name in a)

    def test_default_configs_cover_six_functions(self):
        traces = synthesize_azure_traces(duration_minutes=10)
        assert set(traces) == set(DEFAULT_AZURE_CONFIGS)
        assert set(traces) <= set(FUNCTION_CATALOG)

    def test_trace_statistics(self):
        traces = synthesize_azure_traces(duration_minutes=30)
        stats = trace_statistics(traces)
        for name, entry in stats.items():
            assert entry["total"] == pytest.approx(traces[name].total_invocations())
            assert entry["peak_per_minute"] >= entry["mean_per_minute"]

    def test_validation(self):
        with pytest.raises(ValueError):
            AzureTraceConfig(mean_rate=-1.0)
        with pytest.raises(ValueError):
            AzureTraceConfig(mean_rate=1.0, burst_probability=2.0)
        with pytest.raises(ValueError):
            synthesize_azure_trace(AzureTraceConfig(mean_rate=1.0), 0, np.random.default_rng(0))
