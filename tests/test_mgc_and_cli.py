"""Tests for the M/G/c extension and the command-line interface."""

import pytest

from repro.cli import main
from repro.core.queueing.distributions import Deterministic, Exponential, LogNormal
from repro.core.queueing.mgc import MGcQueue, required_containers_mgc
from repro.core.queueing.mmc import MMcQueue
from repro.core.queueing.sizing import required_containers


class TestMGcQueue:
    def test_exponential_scv_reduces_to_mmc(self):
        mgc = MGcQueue(lam=20.0, mean_service_time=0.1, scv=1.0, c=4)
        mmc = MMcQueue(20.0, 10.0, 4)
        assert mgc.mean_wait == pytest.approx(mmc.mean_wait)
        assert mgc.probability_of_waiting == pytest.approx(mmc.probability_of_waiting)
        assert mgc.wait_percentile(0.95) == pytest.approx(mmc.wait_percentile_exact(0.95), rel=1e-6)

    def test_deterministic_service_halves_the_wait(self):
        exponential = MGcQueue(20.0, 0.1, scv=1.0, c=4)
        deterministic = MGcQueue(20.0, 0.1, scv=0.0, c=4)
        assert deterministic.mean_wait == pytest.approx(0.5 * exponential.mean_wait)

    def test_high_variability_increases_the_wait(self):
        low = MGcQueue(20.0, 0.1, scv=0.04, c=4)
        high = MGcQueue(20.0, 0.1, scv=4.0, c=4)
        assert high.mean_wait > low.mean_wait

    def test_from_distribution_closed_forms(self):
        assert MGcQueue.from_distribution(10.0, Exponential(0.1), 3).scv == 1.0
        assert MGcQueue.from_distribution(10.0, Deterministic(0.1), 3).scv == 0.0
        assert MGcQueue.from_distribution(10.0, LogNormal(0.1, cv=0.2), 3).scv == pytest.approx(0.04)

    def test_wait_cdf_monotone_and_bounded(self):
        queue = MGcQueue(30.0, 0.1, scv=0.5, c=5)
        values = [queue.wait_cdf(t) for t in (0.0, 0.05, 0.1, 0.3, 1.0)]
        assert all(0 <= v <= 1 for v in values)
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_percentile_inverts_cdf(self):
        queue = MGcQueue(30.0, 0.1, scv=0.5, c=5)
        p95 = queue.wait_percentile(0.95)
        assert queue.wait_cdf(p95) == pytest.approx(0.95, abs=1e-9)

    def test_unstable_system(self):
        queue = MGcQueue(100.0, 0.1, scv=1.0, c=5)
        assert not queue.is_stable
        assert queue.mean_wait == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            MGcQueue(-1.0, 0.1, 1.0, 1)
        with pytest.raises(ValueError):
            MGcQueue(1.0, 0.0, 1.0, 1)
        with pytest.raises(ValueError):
            MGcQueue(1.0, 0.1, -1.0, 1)
        with pytest.raises(ValueError):
            MGcQueue(1.0, 0.1, 1.0, 0)


class TestMGcSizing:
    def test_exponential_scv_matches_exact_mmc_percentile_sizing(self):
        # with SCV=1 the M/G/c sizing should be within one container of the
        # paper's M/M/c-based Algorithm 1
        for lam in (10.0, 30.0, 60.0):
            mmc = required_containers(lam, 10.0, 0.1, 0.95).containers
            mgc = required_containers_mgc(lam, 0.1, 1.0, 0.1, 0.95).containers
            assert abs(mgc - mmc) <= 1

    def test_low_variability_never_needs_more_containers(self):
        for lam in (20.0, 50.0, 90.0):
            exponential = required_containers_mgc(lam, 0.1, 1.0, 0.1, 0.95).containers
            low_var = required_containers_mgc(lam, 0.1, 0.04, 0.1, 0.95).containers
            assert low_var <= exponential

    def test_high_variability_needs_at_least_as_many(self):
        exponential = required_containers_mgc(60.0, 0.1, 1.0, 0.1, 0.95).containers
        bursty = required_containers_mgc(60.0, 0.1, 4.0, 0.1, 0.95).containers
        assert bursty >= exponential

    def test_zero_load(self):
        assert required_containers_mgc(0.0, 0.1, 1.0, 0.1).containers == 0

    def test_meets_declared_percentile(self):
        result = required_containers_mgc(40.0, 0.1, 0.25, 0.05, 0.99)
        assert result.achieved_probability >= 0.99

    def test_validation(self):
        with pytest.raises(ValueError):
            required_containers_mgc(-1.0, 0.1, 1.0, 0.1)
        with pytest.raises(ValueError):
            required_containers_mgc(1.0, 0.1, 1.0, 0.1, percentile=2.0)


class TestCli:
    def test_size_command(self, capsys):
        code = main(["size", "--rate", "30", "--service-time", "0.1", "--slo", "0.1"])
        output = capsys.readouterr().out
        assert code == 0
        assert "M/M/c (Algorithm 1): 5 containers" in output
        assert "M/G/c" in output

    def test_functions_command(self, capsys):
        code = main(["functions"])
        output = capsys.readouterr().out
        assert code == 0
        assert "mobilenet" in output and "2 vCPU + 1024 MB" in output

    def test_experiment_table1(self, capsys):
        code = main(["experiment", "table1"])
        assert code == 0
        assert "squeezenet" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "fig99"]) == 2

    def test_simulate_command(self, capsys):
        code = main([
            "simulate", "--function", "squeezenet", "--rate", "15",
            "--duration", "90", "--slo", "0.1", "--seed", "3",
        ])
        output = capsys.readouterr().out
        assert code == 0
        assert "SLO attainment" in output

    def test_policies_command(self, capsys):
        code = main(["policies"])
        output = capsys.readouterr().out
        assert code == 0
        for name in ("lass", "openwhisk", "reactive", "static", "hybrid", "noop"):
            assert name in output

    def test_simulate_command_with_policy(self, capsys):
        code = main([
            "simulate", "--function", "squeezenet", "--rate", "10",
            "--duration", "60", "--slo", "0.2", "--seed", "3",
            "--policy", "static",
            "--policy-params", '{"allocations": {"squeezenet": 3}}',
        ])
        output = capsys.readouterr().out
        assert code == 0
        assert "policy              : static" in output

    def test_size_command_rejects_missing_args(self):
        with pytest.raises(SystemExit):
            main(["size", "--rate", "30"])
