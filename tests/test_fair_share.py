"""Tests for weighted fair-share allocation (paper §4.1), including Lemmas 1 and 2."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.allocation.fair_share import (
    fair_share_allocation,
    guaranteed_shares,
    is_overloaded,
    progressive_filling,
)


class TestGuaranteedShares:
    def test_equal_weights_split_evenly(self):
        shares = guaranteed_shares({"a": 1.0, "b": 1.0}, 12, discrete=True)
        assert shares == {"a": 6.0, "b": 6.0}

    def test_weighted_split(self):
        shares = guaranteed_shares({"a": 1.0, "b": 2.0}, 12, discrete=True)
        assert shares == {"a": 4.0, "b": 8.0}

    def test_discrete_floors(self):
        shares = guaranteed_shares({"a": 1.0, "b": 1.0, "c": 1.0}, 10, discrete=True)
        assert shares == {"a": 3.0, "b": 3.0, "c": 3.0}

    def test_continuous_shares(self):
        shares = guaranteed_shares({"a": 1.0, "b": 1.0, "c": 1.0}, 10, discrete=False)
        assert sum(shares.values()) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            guaranteed_shares({"a": 0.0}, 10)
        with pytest.raises(ValueError):
            guaranteed_shares({"a": 1.0}, -1)


class TestOverloadDetection:
    def test_paper_definition(self):
        assert is_overloaded({"a": 7, "b": 6}, 12)
        assert not is_overloaded({"a": 6, "b": 6}, 12)


class TestFairShareAllocation:
    def test_no_overload_returns_demands(self):
        result = fair_share_allocation({"a": 3, "b": 4}, {"a": 1, "b": 1}, 12)
        assert not result.is_overloaded
        assert result.allocations == {"a": 3.0, "b": 4.0}

    def test_lemma1_all_overloaded_get_exact_guaranteed_share(self):
        # Lemma 1: every function overloaded -> each gets exactly floor(w_i/sum w * C)
        demands = {"a": 20, "b": 30, "c": 25}
        weights = {"a": 1.0, "b": 2.0, "c": 1.0}
        result = fair_share_allocation(demands, weights, 12)
        assert result.is_overloaded
        assert set(result.overloaded) == {"a", "b", "c"}
        assert result.allocations == result.guaranteed
        assert result.allocations == {"a": 3.0, "b": 6.0, "c": 3.0}

    def test_lemma2_overloaded_functions_get_at_least_guaranteed(self):
        demands = {"well": 2, "over1": 20, "over2": 9}
        weights = {"well": 1.0, "over1": 1.0, "over2": 1.0}
        result = fair_share_allocation(demands, weights, 12)
        assert result.is_overloaded
        assert "well" in result.well_behaved
        assert result.allocations["well"] == 2.0
        for name in result.overloaded:
            assert result.allocations[name] >= result.guaranteed[name]

    def test_well_behaved_functions_unaffected(self):
        demands = {"small": 1, "big": 100}
        weights = {"small": 1.0, "big": 1.0}
        result = fair_share_allocation(demands, weights, 12)
        assert result.allocations["small"] == 1.0
        assert result.allocations["big"] == 11.0

    def test_never_exceeds_capacity(self):
        demands = {"a": 50, "b": 60, "c": 10}
        result = fair_share_allocation(demands, {"a": 1, "b": 1, "c": 1}, 24)
        assert result.total_allocated() <= 24 + 1e-9

    def test_continuous_units(self):
        demands = {"a": 9.5, "b": 4.0}
        result = fair_share_allocation(demands, {"a": 1.0, "b": 1.0}, 12.0, discrete=False)
        assert result.is_overloaded
        assert result.allocations["b"] == pytest.approx(4.0)
        assert result.allocations["a"] == pytest.approx(8.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fair_share_allocation({}, {}, 12)
        with pytest.raises(ValueError):
            fair_share_allocation({"a": 1}, {}, 12)
        with pytest.raises(ValueError):
            fair_share_allocation({"a": -1}, {"a": 1}, 12)

    @given(
        data=st.dictionaries(
            keys=st.sampled_from(["f1", "f2", "f3", "f4", "f5"]),
            values=st.tuples(
                st.integers(min_value=0, max_value=60),     # demand
                st.floats(min_value=0.5, max_value=5.0),    # weight
            ),
            min_size=1, max_size=5,
        ),
        capacity=st.integers(min_value=1, max_value=48),
    )
    @settings(max_examples=120, deadline=None)
    def test_property_lemma2_and_capacity(self, data, capacity):
        demands = {k: float(v[0]) for k, v in data.items()}
        weights = {k: v[1] for k, v in data.items()}
        result = fair_share_allocation(demands, weights, capacity)
        # never exceed capacity under overload
        if result.is_overloaded:
            assert result.total_allocated() <= capacity + 1e-6
            # Lemma 2: overloaded functions receive at least their guaranteed share
            for name in result.overloaded:
                assert result.allocations[name] >= result.guaranteed[name] - 1e-9
            # well-behaved functions get exactly their demand
            for name in result.well_behaved:
                assert result.allocations[name] == pytest.approx(demands[name])
        else:
            assert result.allocations == pytest.approx(demands)


class TestProgressiveFilling:
    def test_matches_single_pass_when_everyone_is_greedy(self):
        demands = {"a": 30.0, "b": 40.0}
        weights = {"a": 1.0, "b": 1.0}
        single = fair_share_allocation(demands, weights, 12, discrete=False)
        filled = progressive_filling(demands, weights, 12, discrete=False)
        assert filled.allocations == pytest.approx(single.allocations)

    def test_redistributes_unused_slice(self):
        # b's proportional slice (6) exceeds its demand (5); the surplus goes to a
        demands = {"a": 20.0, "b": 5.0}
        weights = {"a": 1.0, "b": 1.0}
        filled = progressive_filling(demands, weights, 12, discrete=False)
        assert filled.allocations["b"] == pytest.approx(5.0)
        assert filled.allocations["a"] == pytest.approx(7.0)

    def test_demand_above_fair_slice_is_capped_at_the_slice(self):
        # max-min fairness: b wants slightly more than its slice and gets
        # exactly the slice, not its full demand
        demands = {"a": 20.0, "b": 7.0}
        filled = progressive_filling(demands, {"a": 1.0, "b": 1.0}, 12, discrete=False)
        assert filled.allocations["b"] == pytest.approx(6.0)
        assert filled.allocations["a"] == pytest.approx(6.0)

    def test_never_allocates_more_than_demand(self):
        demands = {"a": 2.0, "b": 3.0, "c": 100.0}
        filled = progressive_filling(demands, {"a": 1, "b": 1, "c": 1}, 50, discrete=False)
        for name, demand in demands.items():
            assert filled.allocations[name] <= demand + 1e-9

    def test_wastes_nothing_while_demand_remains(self):
        demands = {"a": 10.0, "b": 9.0}
        filled = progressive_filling(demands, {"a": 1, "b": 1}, 12, discrete=False)
        assert sum(filled.allocations.values()) == pytest.approx(12.0)

    def test_no_overload_returns_demands(self):
        demands = {"a": 3.0, "b": 4.0}
        filled = progressive_filling(demands, {"a": 1, "b": 1}, 12, discrete=False)
        assert filled.allocations == pytest.approx(demands)

    @given(
        data=st.dictionaries(
            keys=st.sampled_from(["f1", "f2", "f3", "f4"]),
            values=st.tuples(
                st.floats(min_value=0.0, max_value=50.0),
                st.floats(min_value=0.5, max_value=4.0),
            ),
            min_size=1, max_size=4,
        ),
        capacity=st.floats(min_value=1.0, max_value=40.0),
    )
    @settings(max_examples=120, deadline=None)
    def test_property_filling_invariants(self, data, capacity):
        demands = {k: v[0] for k, v in data.items()}
        weights = {k: v[1] for k, v in data.items()}
        result = progressive_filling(demands, weights, capacity, discrete=False)
        total_demand = sum(demands.values())
        # allocations never exceed demands nor capacity
        for name in demands:
            assert result.allocations[name] <= demands[name] + 1e-6
        assert sum(result.allocations.values()) <= capacity + 1e-6
        # work-conserving: either all demand met or all capacity used
        assert (
            sum(result.allocations.values()) >= min(total_demand, capacity) - 1e-5
        )
        # Lemma 2 analogue: an overloaded function gets at least
        # min(its demand, its guaranteed share)
        for name in result.overloaded:
            floor_share = min(demands[name], result.guaranteed[name])
            assert result.allocations[name] >= floor_share - 1e-6
