"""Tests for the baseline controllers (vanilla OpenWhisk, static, reactive)."""

import pytest

from repro.baselines.openwhisk import OpenWhiskConfig, VanillaOpenWhiskController
from repro.baselines.reactive import ConcurrencyAutoscaler, ReactiveControllerConfig
from repro.baselines.static_allocation import StaticAllocationController
from repro.cluster.cluster import ClusterConfig, EdgeCluster
from repro.metrics.collector import MetricsCollector
from repro.sim.engine import SimulationEngine
from repro.sim.rng import RngStreams
from repro.workloads.functions import get_function, microbenchmark
from repro.workloads.generator import ArrivalGenerator
from repro.workloads.schedules import StaticRate, StepSchedule


def build(controller_factory, bindings, duration, cluster_config=None, seed=31):
    engine = SimulationEngine()
    cluster = EdgeCluster(engine, cluster_config or ClusterConfig())
    metrics = MetricsCollector()
    for profile, schedule, slo, user in bindings:
        cluster.deploy(profile.to_deployment(user=user, slo_deadline=slo))
    controller = controller_factory(engine, cluster, metrics)
    controller.start()
    rng = RngStreams(seed)
    for profile, schedule, slo, user in bindings:
        ArrivalGenerator(
            engine=engine, profile=profile, schedule=schedule,
            dispatch=controller.dispatch, rng=rng.stream(f"a:{profile.name}"),
            slo_deadline=slo, horizon=duration,
        ).start()
    engine.run(until=duration + 5.0)
    return controller, metrics, cluster


class TestStaticAllocation:
    def test_creates_exactly_the_requested_containers(self):
        bindings = [(microbenchmark(0.1), StaticRate(20.0, duration=60.0), 0.1, "u")]
        controller, metrics, cluster = build(
            lambda e, c, m: StaticAllocationController(e, c, {"microbenchmark": 4}, m),
            bindings, duration=60.0,
        )
        assert cluster.container_count("microbenchmark") == 4
        assert metrics.counters["creations"] == 4

    def test_serves_requests_when_adequately_provisioned(self):
        bindings = [(microbenchmark(0.1), StaticRate(20.0, duration=60.0), 0.1, "u")]
        _, metrics, _ = build(
            lambda e, c, m: StaticAllocationController(e, c, {"microbenchmark": 4}, m),
            bindings, duration=60.0,
        )
        assert metrics.counters["completions"] >= 0.95 * metrics.counters["arrivals"]

    def test_underprovisioned_allocation_builds_a_backlog(self):
        bindings = [(microbenchmark(0.1), StaticRate(40.0, duration=60.0), 0.1, "u")]
        controller, metrics, _ = build(
            lambda e, c, m: StaticAllocationController(e, c, {"microbenchmark": 2}, m),
            bindings, duration=60.0,
        )
        # offered load 4 Erlangs onto 2 containers: most requests cannot finish
        assert metrics.counters["completions"] < 0.7 * metrics.counters["arrivals"]

    def test_negative_allocation_rejected(self, engine):
        cluster = EdgeCluster(engine, ClusterConfig())
        with pytest.raises(ValueError):
            StaticAllocationController(engine, cluster, {"fn": -1})


class TestReactiveAutoscaler:
    def test_scales_up_with_concurrency(self):
        bindings = [(microbenchmark(0.1), StaticRate(30.0, duration=120.0), 0.1, "u")]
        controller, metrics, cluster = build(
            lambda e, c, m: ConcurrencyAutoscaler(e, c, ReactiveControllerConfig(), m),
            bindings, duration=120.0,
            cluster_config=ClusterConfig(node_count=4, cpu_per_node=8),
        )
        # the reactive scaler oscillates around the 3-Erlang offered load, so
        # assert on the time-averaged allocation rather than the (noisy)
        # point-in-time container count at the end of the run
        counts = [e.functions["microbenchmark"].containers for e in metrics.epochs[2:]]
        assert sum(counts) / len(counts) >= 2
        assert metrics.counters["completions"] >= 0.9 * metrics.counters["arrivals"]

    def test_scales_down_when_load_stops(self):
        schedule = StepSchedule([(0.0, 30.0), (60.0, 0.0)], duration=180.0)
        bindings = [(microbenchmark(0.1), schedule, 0.1, "u")]
        _, _, cluster = build(
            lambda e, c, m: ConcurrencyAutoscaler(e, c, ReactiveControllerConfig(), m),
            bindings, duration=180.0,
            cluster_config=ClusterConfig(node_count=4, cpu_per_node=8),
        )
        assert cluster.container_count("microbenchmark") <= 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ReactiveControllerConfig(target_concurrency=0.0)
        with pytest.raises(ValueError):
            ReactiveControllerConfig(evaluation_interval=0.0)
        with pytest.raises(ValueError):
            ReactiveControllerConfig(smoothing=0.0)


class TestVanillaOpenWhisk:
    def overload_bindings(self, duration):
        return [
            (get_function("binaryalert"), StaticRate(50.0, duration=duration), 0.1, "u1"),
            (get_function("mobilenet"), StepSchedule([(0.0, 0.0), (30.0, 12.0)], duration=duration),
             0.5, "u2"),
        ]

    def test_light_load_is_served_fine(self):
        bindings = [(microbenchmark(0.1), StaticRate(10.0, duration=60.0), 0.1, "u")]
        controller, metrics, _ = build(
            lambda e, c, m: VanillaOpenWhiskController(e, c, OpenWhiskConfig(), m),
            bindings, duration=60.0,
        )
        assert not controller.failed_nodes()
        assert metrics.counters["completions"] >= 0.9 * metrics.counters["arrivals"]

    def test_overload_causes_cascading_invoker_failure(self):
        duration = 150.0
        controller, metrics, cluster = build(
            lambda e, c, m: VanillaOpenWhiskController(e, c, OpenWhiskConfig(), m),
            self.overload_bindings(duration), duration=duration,
        )
        # the memory-only packing overcommits CPU and invokers start failing
        assert len(controller.failed_nodes()) >= 1
        # a large fraction of the offered requests is lost
        lost = metrics.counters["arrivals"] - metrics.counters["completions"]
        assert lost > 0.3 * metrics.counters["arrivals"]

    def test_memory_only_packing_overcommits_cpu(self):
        duration = 90.0
        controller, _, cluster = build(
            lambda e, c, m: VanillaOpenWhiskController(e, c, OpenWhiskConfig(overcommit_failure_factor=100.0), m),
            self.overload_bindings(duration), duration=duration,
        )
        # with failures disabled (huge threshold) the scheduler happily
        # allocates more standard CPU than the node has
        assert any(
            sum(c.standard_cpu for c in node.containers) > node.cpu_capacity
            for node in cluster.nodes
        )

    def test_lass_survives_the_same_workload(self):
        # the §6.6 contrast: LaSS keeps serving where OpenWhisk collapses
        from repro.core.controller import ControllerConfig
        from repro.simulation import SimulationRunner
        from repro.workloads.generator import WorkloadBinding

        duration = 150.0
        runner = SimulationRunner(
            workloads=[
                WorkloadBinding(get_function("binaryalert"), StaticRate(50.0, duration=duration),
                                slo_deadline=0.1, user="u1"),
                WorkloadBinding(get_function("mobilenet"),
                                StepSchedule([(0.0, 0.0), (30.0, 12.0)], duration=duration),
                                slo_deadline=0.5, user="u2"),
            ],
            cluster_config=ClusterConfig(),
            controller_config=ControllerConfig(),
            seed=31,
        )
        result = runner.run(duration=duration)
        completions = result.metrics.counters["completions"]
        arrivals = result.metrics.counters["arrivals"]
        assert completions >= 0.9 * arrivals
        assert all(not node.unresponsive for node in runner.cluster.nodes)
