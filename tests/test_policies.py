"""Conformance suite for the control-plane policy layer.

Every registered policy must behave as a well-formed
:class:`~repro.core.policy.ControlPolicy`:

1. **Drop-in execution** — it runs through ``kind="simulate"`` scenarios
   via the registry (no bespoke harness).
2. **Seed determinism** — the same spec produces byte-identical results
   JSON on repeated runs, healthy *and* under a node-failure fault
   schedule.
3. **Fault hooks** — node failure/recovery events reach the policy (the
   counters prove the injector ran against it) without crashing it.
4. **Spec round-tripping** — ``ControllerSpec.policy`` /
   ``policy_params`` survive ``to_dict``/``from_dict`` exactly, and the
   serialised form of a default (LaSS) controller is unchanged from the
   pre-policy layout.

Plus the specific compatibility contracts of the refactor: the
``kind="openwhisk"`` alias produces the same payload as
``kind="simulate"`` + ``policy="openwhisk"``, and ``repro.baselines``
imports still resolve.
"""

import dataclasses
import json

import pytest

from repro.core.policy import (
    ControlPolicy,
    PolicyContext,
    build_policy,
    get_policy,
    policy_names,
    register_policy,
)
from repro.scenarios import (
    ControllerSpec,
    ScenarioSpec,
    ScheduleSpec,
    WorkloadSpec,
    apply_overrides,
    build,
    canonical_json,
    run_scenario,
)

#: Parametrisation comes from the live registry, so a policy registered
#: by a future PR is conformance-covered automatically (if it needs
#: params, it must add a POLICY_OVERRIDES entry or its cases fail).
ALL_POLICIES = tuple(policy_names())

#: Per-policy knobs for the conformance scenario: the static policy needs
#: an explicit allocation; noop scales nothing, so it gets prewarmed
#: containers to serve from.
POLICY_OVERRIDES = {
    "static": {"controller.policy_params": {"allocations": {"squeezenet": 3}}},
    "noop": {"warm_start": {"squeezenet": 3}},
}

FAULTS = {
    "node_failures": [{"node": "node-0", "fail_at": 15.0, "recover_at": 30.0}],
    "crash_probability": 0.0,
    "crash_functions": None,
    "cold_start": None,
}


def conformance_spec(policy: str, faulted: bool = False) -> ScenarioSpec:
    """A small squeezenet scenario running the given policy."""
    base = ScenarioSpec(
        name=f"conformance-{policy}",
        kind="simulate",
        workloads=(
            WorkloadSpec("squeezenet", ScheduleSpec.static(15.0, duration=45.0),
                         slo_deadline=0.1),
        ),
        duration=45.0,
        seed=17,
        metrics=("waiting", "slo", "utilization", "counters", "generated"),
    )
    overrides = {"controller.policy": policy}
    overrides.update(POLICY_OVERRIDES.get(policy, {}))
    if faulted:
        overrides["faults"] = FAULTS
    return apply_overrides(base, overrides)


class TestRegistry:
    def test_all_builtin_policies_registered(self):
        assert {"lass", "hybrid", "reactive", "static",
                "openwhisk", "noop"} <= set(ALL_POLICIES)

    def test_unknown_policy_raises_with_available_names(self):
        with pytest.raises(KeyError, match="available"):
            get_policy("no-such-policy")

    def test_unknown_policy_rejected_at_spec_construction(self):
        with pytest.raises(ValueError, match="unknown policy"):
            ControllerSpec(policy="no-such-policy")

    def test_lass_and_noop_reject_policy_params(self):
        with pytest.raises(ValueError, match="lass"):
            ControllerSpec(policy="lass", policy_params={"x": 1})
        with pytest.raises(ValueError, match="noop"):
            ControllerSpec(policy="noop", policy_params={"x": 1})

    def test_static_requires_allocations(self):
        with pytest.raises(ValueError, match="allocations"):
            ControllerSpec(policy="static")
        with pytest.raises(ValueError, match="allocations"):
            ControllerSpec(policy="static", policy_params={"allocations": {}})
        ControllerSpec(policy="static", policy_params={"allocations": {"f": 2}})

    def test_bad_policy_params_rejected_at_spec_construction(self):
        with pytest.raises(ValueError, match="reactive"):
            ControllerSpec(policy="reactive", policy_params={"nope": 1})
        with pytest.raises(ValueError, match="hybrid"):
            ControllerSpec(policy="hybrid", policy_params={"nope": 1})
        with pytest.raises(ValueError, match="openwhisk"):
            ControllerSpec(policy="openwhisk", policy_params={"nope": 1})
        # valid params construct fine
        ControllerSpec(policy="hybrid", policy_params={"scale_down_patience": 2})

    def test_third_party_registration_and_duplicate_rejection(self):
        from repro.core.policy import _REGISTRY

        @register_policy("test-dummy", "a test-only policy")
        def _build_dummy(context, params):
            return build_policy("noop", context)

        try:
            assert "test-dummy" in policy_names()
            ControllerSpec(policy="test-dummy")  # spec layer sees it immediately
            with pytest.raises(ValueError, match="registered twice"):
                register_policy("test-dummy", "again")(lambda c, p: None)
        finally:
            # don't leak the dummy into the rest of the session
            _REGISTRY.pop("test-dummy", None)


class TestControllerSpecRoundTrip:
    def test_policy_fields_round_trip_exactly(self):
        spec = ControllerSpec(policy="reactive",
                              policy_params={"target_concurrency": 1.5,
                                             "evaluation_interval": 2.0})
        rebuilt = ControllerSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec
        assert rebuilt.policy == "reactive"
        assert rebuilt.policy_params == {"target_concurrency": 1.5,
                                         "evaluation_interval": 2.0}

    def test_default_controller_serialises_without_policy_keys(self):
        # pre-policy specs (and their results envelopes) must keep their
        # exact historical bytes: the default policy is omitted
        data = ControllerSpec().to_dict()
        assert "policy" not in data and "policy_params" not in data
        assert ControllerSpec.from_dict(data) == ControllerSpec()

    def test_non_default_policy_is_serialised(self):
        data = ControllerSpec(policy="hybrid").to_dict()
        assert data["policy"] == "hybrid"
        assert "policy_params" not in data

    def test_build_strips_policy_fields(self):
        config = ControllerSpec(policy="reactive").build()
        assert not hasattr(config, "policy")
        assert config.epoch_length == 10.0

    def test_openwhisk_kind_rejects_other_policies(self):
        spec = build("fig8", phase_duration=10.0).expand()[2]
        assert spec.kind == "openwhisk"
        with pytest.raises(ValueError, match="cannot run policy"):
            apply_overrides(spec, {"controller.policy": "reactive"})


class TestConformance:
    """Every registered policy through the same scenario, healthy + faulted."""

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_healthy_run_is_seed_deterministic(self, policy):
        spec = conformance_spec(policy)
        first = canonical_json(run_scenario(spec).data)
        second = canonical_json(run_scenario(spec).data)
        assert first == second

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_faulted_run_is_deterministic_and_hooks_fire(self, policy):
        spec = conformance_spec(policy, faulted=True)
        first = run_scenario(spec).data
        second = run_scenario(spec).data
        assert canonical_json(first) == canonical_json(second)
        faults = first["faults"]
        # the injector drove the policy's hooks through the full outage
        assert faults["node_failures"] == 1
        assert first["metrics"]["counters"].get("node_recoveries", 0) == 1
        assert 0.0 < faults["capacity_availability"] < 1.0

    @pytest.mark.parametrize("policy", ("lass", "hybrid", "reactive", "static"))
    def test_scaling_policies_serve_the_load(self, policy):
        data = run_scenario(conformance_spec(policy)).data
        counters = data["metrics"]["counters"]
        assert counters["completions"] >= 0.9 * counters["arrivals"]

    def test_guaranteed_cpu_metric_rejected_for_non_fair_share_policies(self):
        spec = conformance_spec("reactive")
        spec = apply_overrides(spec, {"metrics": ["counters", "guaranteed_cpu"]})
        with pytest.raises(ValueError, match="fair-share"):
            run_scenario(spec)

    def test_noop_serves_from_prewarmed_containers_only(self):
        data = run_scenario(conformance_spec("noop")).data
        counters = data["metrics"]["counters"]
        assert counters["completions"] >= 0.9 * counters["arrivals"]
        assert "creations" not in counters  # noop never creates a container

    @pytest.mark.parametrize("policy", ("lass", "reactive", "static", "hybrid"))
    def test_crash_faults_reach_dispatcher_policies(self, policy):
        spec = conformance_spec(policy)
        crash = dict(FAULTS, node_failures=[], crash_probability=0.2)
        spec = apply_overrides(spec, {"faults": crash})
        data = run_scenario(spec).data
        assert data["faults"]["container_crashes"] > 0

    def test_crash_faults_reach_the_openwhisk_choke_point(self):
        spec = conformance_spec("openwhisk")
        crash = dict(FAULTS, node_failures=[], crash_probability=0.2)
        spec = apply_overrides(spec, {"faults": crash})
        data = run_scenario(spec).data
        assert data["faults"]["container_crashes"] > 0


class TestOpenWhiskAlias:
    def test_alias_payload_matches_simulate_plus_policy(self):
        sweep = build("fig8", phase_duration=20.0)
        alias = [s for s in sweep.expand() if s.kind == "openwhisk"][0]
        folded = apply_overrides(alias, {"kind": "simulate",
                                         "controller.policy": "openwhisk"})
        a = run_scenario(alias).data
        b = run_scenario(folded).data
        # the envelopes differ only in the spec echo
        assert a["scenario"]["kind"] == "openwhisk"
        assert b["scenario"]["kind"] == "simulate"
        a.pop("scenario")
        b.pop("scenario")
        assert canonical_json(a) == canonical_json(b)

    def test_alias_reports_the_openwhisk_group(self):
        sweep = build("fig8", phase_duration=20.0)
        alias = [s for s in sweep.expand() if s.kind == "openwhisk"][0]
        data = run_scenario(alias).data
        assert set(data) == {"schema", "scenario", "metrics", "openwhisk"}
        assert set(data["metrics"]) == {"counters"}
        for key in ("failed_invokers", "all_invokers_failed", "completions",
                    "arrivals", "drops"):
            assert key in data["openwhisk"]


class TestShootout:
    def test_fig11_arms_cover_policies_times_fault_status(self):
        from repro.scenarios.registry import SHOOTOUT_POLICIES

        sweep = build("fig11", duration=60.0)
        shards = sweep.expand()
        assert len(shards) == 2 * len(SHOOTOUT_POLICIES)
        # every arm shares the base seed (identical randomness design)
        assert {s.seed for s in shards} == {sweep.base.seed}
        for policy in SHOOTOUT_POLICIES:
            arms = [s for s in shards if s.controller.policy == policy]
            assert len(arms) == 2
            assert sorted(bool(s.faults) for s in arms) == [False, True]

    def test_shootout_round_trips(self):
        from repro.scenarios.sweep import SweepSpec

        sweep = build("policy-shootout", duration=60.0)
        assert SweepSpec.from_json(sweep.to_json()) == sweep

    def test_fig11_renderer_produces_one_row_per_arm(self):
        from repro.experiments.fig11_policies import format_fig11, run_fig11

        result = run_fig11(duration=45.0)
        text = format_fig11(result)
        assert len(result.arms) == 10
        for arm in result.arms:
            assert arm.policy in text
        lass = result.arm("lass", faulted=False)
        assert lass is not None and lass.served_fraction > 0.9


class TestRunnerPolicyParameter:
    def test_runner_accepts_a_custom_factory(self):
        from repro.simulation import SimulationRunner
        from repro.workloads import StaticRate, WorkloadBinding, get_function

        seen = {}

        def factory(context: PolicyContext) -> ControlPolicy:
            policy = build_policy("noop", context)
            seen["policy"] = policy
            return policy

        runner = SimulationRunner(
            workloads=[WorkloadBinding(get_function("squeezenet"),
                                       StaticRate(5.0, duration=20.0))],
            seed=3,
            policy=factory,
            warm_start_containers={"squeezenet": 2},
        )
        result = runner.run(duration=20.0)
        assert runner.policy is seen["policy"]
        assert result.controller is seen["policy"]
        assert result.metrics.counters["completions"] > 0

    def test_policy_params_require_a_registered_name(self):
        from repro.simulation import SimulationRunner
        from repro.workloads import StaticRate, WorkloadBinding, get_function

        with pytest.raises(ValueError, match="registered policy name"):
            SimulationRunner(
                workloads=[WorkloadBinding(get_function("squeezenet"),
                                           StaticRate(5.0, duration=10.0))],
                policy=lambda context: build_policy("noop", context),
                policy_params={"x": 1},
            )


class TestBaselineShims:
    def test_legacy_imports_resolve_to_the_policy_classes(self):
        from repro import baselines
        from repro.policies.openwhisk import VanillaOpenWhiskController
        from repro.policies.reactive import ConcurrencyAutoscaler
        from repro.policies.static_allocation import StaticAllocationController

        assert baselines.VanillaOpenWhiskController is VanillaOpenWhiskController
        assert baselines.ConcurrencyAutoscaler is ConcurrencyAutoscaler
        assert baselines.StaticAllocationController is StaticAllocationController

        from repro.baselines.openwhisk import VanillaOpenWhiskController as ShimOW
        from repro.baselines.reactive import ConcurrencyAutoscaler as ShimRA
        from repro.baselines.static_allocation import StaticAllocationController as ShimSA

        assert ShimOW is VanillaOpenWhiskController
        assert ShimRA is ConcurrencyAutoscaler
        assert ShimSA is StaticAllocationController

    def test_every_builtin_policy_is_a_control_policy(self):
        from repro.core.controller import LassController
        from repro.policies import (
            ConcurrencyAutoscaler,
            HybridPolicy,
            NoOpPolicy,
            StaticAllocationController,
            VanillaOpenWhiskController,
        )

        for cls in (LassController, ConcurrencyAutoscaler, HybridPolicy,
                    NoOpPolicy, StaticAllocationController,
                    VanillaOpenWhiskController):
            assert issubclass(cls, ControlPolicy)
