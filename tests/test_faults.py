"""Fault-injection subsystem: specs, failure semantics, and determinism.

Covers the whole stack the ``src/repro/faults/`` subsystem cuts through:

* spec validation and exact JSON round-trips (including the
  empty-spec-normalises-to-``None`` rule on :class:`ScenarioSpec`);
* container/cluster failure semantics (evict vs. terminate, node
  capacity accounting, placement exclusion);
* controller reactions (requeue, reactive re-provisioning, reclamation
  suppression);
* end-to-end recovery scenarios, the availability/recovery metrics, and
  the registered fig10 experiment;
* the metamorphic determinism properties: same seed ⇒ byte-identical
  results JSON; faults disabled ⇒ byte-identical to the healthy run;
  ``workers=1`` ≡ ``workers=N`` for fault-carrying sweeps.
"""

import json

import pytest

from repro.cluster.cluster import ClusterConfig, EdgeCluster, FunctionDeployment
from repro.cluster.container import Container, ContainerState
from repro.cluster.node import InsufficientCapacityError
from repro.faults import ColdStartSpec, FaultSpec, NodeFailureSpec, node_outage
from repro.scenarios import build, run_scenario
from repro.scenarios.spec import ScenarioSpec, ScheduleSpec, WorkloadSpec, canonical_json
from repro.scenarios.sweep import SweepRunner, SweepSpec
from repro.sim.engine import SimulationEngine
from repro.sim.request import Request, RequestStatus


def _deployment(name="fn", cpu=1.0, memory=512.0) -> FunctionDeployment:
    """A small single-function deployment for cluster-level tests."""
    return FunctionDeployment(name=name, cpu=cpu, memory_mb=memory)


def _warm_container(engine, cluster, name="fn"):
    """Create one container and run the engine through its cold start."""
    container = cluster.create_container(name)
    engine.run(until=engine.now + cluster.config.cold_start_latency + 1e-6)
    assert container.state is ContainerState.WARM
    return container


class TestFaultSpec:
    def test_round_trip_exact(self):
        spec = FaultSpec(
            node_failures=(NodeFailureSpec("node-0", 10.0, 20.0),
                           NodeFailureSpec("node-1", 30.0, None)),
            crash_probability=0.05,
            crash_functions=("squeezenet",),
            cold_start=ColdStartSpec("lognormal", {"mu": -0.7, "sigma": 0.5}),
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec
        assert FaultSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeFailureSpec("node-0", -1.0)
        with pytest.raises(ValueError):
            NodeFailureSpec("node-0", 10.0, 5.0)  # recovery before failure
        with pytest.raises(ValueError):
            NodeFailureSpec("", 1.0)
        with pytest.raises(ValueError):
            FaultSpec(crash_probability=1.0)
        with pytest.raises(ValueError):
            ColdStartSpec("nope", {})
        with pytest.raises(ValueError):
            ColdStartSpec("uniform", {"low": 2.0, "high": 1.0})
        with pytest.raises(ValueError):
            ColdStartSpec("constant", {})

    def test_is_empty(self):
        assert FaultSpec().is_empty()
        assert not node_outage("node-0", 1.0, 2.0).is_empty()
        assert not FaultSpec(crash_probability=0.1).is_empty()
        assert not FaultSpec(cold_start=ColdStartSpec("constant", {"latency": 1.0})).is_empty()

    def test_cold_start_samplers(self, rng):
        constant = ColdStartSpec("constant", {"latency": 0.25}).build(rng)
        assert constant() == 0.25
        uniform = ColdStartSpec("uniform", {"low": 0.1, "high": 0.2}).build(rng)
        assert all(0.1 <= uniform() <= 0.2 for _ in range(50))
        lognormal = ColdStartSpec("lognormal", {"mu": 0.0, "sigma": 0.3}).build(rng)
        assert all(lognormal() > 0 for _ in range(50))


class TestScenarioSpecFaults:
    def _workload(self):
        return WorkloadSpec("squeezenet", ScheduleSpec.static(10.0, duration=60.0))

    def test_empty_fault_spec_normalises_to_none(self):
        spec = ScenarioSpec(name="x", workloads=(self._workload(),),
                            faults=FaultSpec())
        assert spec.faults is None
        healthy = ScenarioSpec(name="x", workloads=(self._workload(),))
        assert canonical_json(spec.to_dict()) == canonical_json(healthy.to_dict())

    def test_faults_round_trip(self):
        spec = ScenarioSpec(
            name="x", workloads=(self._workload(),),
            faults=node_outage("node-0", 10.0, 20.0),
        )
        rebuilt = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec
        assert rebuilt.faults is not None

    def test_faults_rejected_for_non_simulate_kinds(self):
        from repro.scenarios.spec import AllocationSpec

        with pytest.raises(ValueError):
            ScenarioSpec(
                name="x", kind="fixed", workloads=(self._workload(),),
                allocation=AllocationSpec(containers=2),
                faults=node_outage("node-0", 1.0, None),
            )


class TestEvictionSemantics:
    def test_evict_fails_running_and_salvages_queued(self, engine):
        container = Container("fn", "node-0", standard_cpu=1.0, memory_mb=128.0)
        container.mark_warm(0.0)
        running = Request("fn", arrival_time=0.0, work=1.0)
        queued = [Request("fn", arrival_time=0.1, work=1.0),
                  Request("fn", arrival_time=0.2, work=1.0)]
        container.submit(running, engine)  # starts immediately (container idle)
        for request in queued:
            container.submit(request, engine)
        assert running.status is RequestStatus.RUNNING

        interrupted, salvaged = container.evict(0.5)
        assert container.state is ContainerState.TERMINATED
        assert interrupted == [running]
        assert running.status is RequestStatus.DROPPED
        assert salvaged == queued
        assert all(r.status is RequestStatus.QUEUED for r in salvaged)
        # idempotent
        assert container.evict(0.6) == ([], [])

    def test_terminate_still_drops_everything(self, engine):
        container = Container("fn", "node-0", standard_cpu=1.0, memory_mb=128.0)
        container.mark_warm(0.0)
        queued = Request("fn", arrival_time=0.1, work=1.0)
        queued.mark_queued()
        container._queue.append(queued)
        dropped = container.terminate(0.5)
        assert queued in dropped and queued.status is RequestStatus.DROPPED


class TestClusterNodeFailure:
    def _cluster(self, engine):
        cluster = EdgeCluster(engine, ClusterConfig(node_count=3, cpu_per_node=4.0))
        cluster.deploy(_deployment())
        return cluster

    def test_capacity_accounting_and_placement(self, engine):
        cluster = self._cluster(engine)
        assert cluster.total_cpu == 12.0
        assert cluster.configured_cpu == 12.0
        cluster.fail_node("node-1")
        assert cluster.total_cpu == 8.0
        assert cluster.configured_cpu == 12.0
        assert all(cluster.find_node_for(1.0, 128.0).name != "node-1"
                   for _ in range(3))
        with pytest.raises(InsufficientCapacityError):
            cluster.create_container("fn", node=cluster.node("node-1"))
        cluster.recover_node("node-1")
        assert cluster.total_cpu == 12.0

    def test_fail_node_evicts_with_salvage(self, engine):
        cluster = self._cluster(engine)
        node = cluster.node("node-0")
        container = cluster.create_container("fn", node=node)
        engine.run(until=cluster.config.cold_start_latency + 1e-6)
        running = Request("fn", arrival_time=1.0, work=5.0)
        waiting = Request("fn", arrival_time=1.1, work=5.0)
        container.submit(running, engine)
        container.submit(waiting, engine)

        interrupted, salvaged = cluster.fail_node("node-0")
        assert [r.request_id for r in interrupted] == [running.request_id]
        assert [r.request_id for r in salvaged] == [waiting.request_id]
        assert cluster.get_container(container.container_id) is None
        assert not cluster.has_containers("fn")
        # idempotent
        assert cluster.fail_node("node-0") == ([], [])
        with pytest.raises(KeyError):
            cluster.fail_node("node-99")

    def test_cold_start_sampler_overrides_constant(self, engine):
        cluster = self._cluster(engine)
        cluster.cold_start_sampler = lambda: 2.0
        container = cluster.create_container("fn")
        engine.run(until=1.0)
        assert container.state is ContainerState.STARTING
        engine.run(until=2.0 + 1e-6)
        assert container.state is ContainerState.WARM


def _quick_recovery_spec(**overrides):
    """The registered recovery scenario at test-friendly sizes."""
    params = dict(duration=120.0, fail_at=40.0, recover_at=80.0, seed=21)
    params.update(overrides)
    return build("node-failure-recovery", **params)


class TestRecoveryScenario:
    def test_availability_and_recovery_metrics(self):
        out = run_scenario(_quick_recovery_spec())
        faults = out.data["faults"]
        # one third of capacity gone for one third of the run
        assert faults["capacity_availability"] == pytest.approx(8 / 9)
        assert faults["node_failures"] == 1
        assert faults["node_recoveries"] == 1
        (record,) = faults["recoveries"]
        assert record["node"] == "node-0"
        assert record["containers_lost"] > 0
        # the controller replaced the lost containers on surviving nodes:
        # recovery takes one cold start, not the whole outage
        assert record["recovery_time"] is not None
        assert record["recovery_time"] < 40.0
        assert faults["request_availability"] <= 1.0
        # SLO metrics still present alongside the fault group
        assert "slo" in out.data["metrics"]["functions"]["squeezenet"]

    def test_reclamation_suppressed_during_recovery(self):
        # Drive the controller directly: an over-provisioned function wants
        # to scale down every epoch, but a fault notification opens the
        # grace window and the lazy termination marks must be withheld
        # until it closes.
        from repro.core.controller import ControllerConfig, LassController

        engine = SimulationEngine()
        cluster = EdgeCluster(engine, ClusterConfig(node_count=3, cpu_per_node=4.0))
        cluster.deploy(_deployment())
        controller = LassController(
            engine, cluster,
            config=ControllerConfig(epoch_length=10.0, online_learning=False,
                                    fault_recovery_grace=30.0),
        )
        for _ in range(4):
            cluster.create_container("fn")
        engine.run(until=0.6)  # past the cold start
        controller.start()
        controller.on_node_failed("node-1", [])  # grace until t≈30.6

        engine.run(until=25.0)  # epochs at t=10, t=20: inside the window
        counters = controller.metrics.counters
        assert counters["reclamations_suppressed"] > 0
        assert counters.get("lazy_marks", 0) == 0
        live = cluster.containers_of("fn")
        assert all(c.state is not ContainerState.DRAINING for c in live)

        engine.run(until=45.0)  # epoch at t=40: the window has closed
        assert counters["lazy_marks"] > 0
        assert any(c.state is ContainerState.DRAINING
                   for c in cluster.containers_of("fn"))

    def test_overlapping_failure_windows_rejected(self):
        # Overlap would let one window's recovery revive a node another
        # window still holds down, silently corrupting the availability
        # integral — it is a spec error, caught at construction.
        with pytest.raises(ValueError, match="overlap"):
            FaultSpec(node_failures=(NodeFailureSpec("node-0", 20.0, 60.0),
                                     NodeFailureSpec("node-0", 40.0, 100.0)))
        with pytest.raises(ValueError, match="permanent"):
            FaultSpec(node_failures=(NodeFailureSpec("node-0", 20.0, None),
                                     NodeFailureSpec("node-0", 40.0, 100.0)))
        # disjoint windows on one node, and same times on different nodes, are fine
        FaultSpec(node_failures=(NodeFailureSpec("node-0", 20.0, 60.0),
                                 NodeFailureSpec("node-0", 60.0, 100.0),
                                 NodeFailureSpec("node-1", 20.0, 60.0)))

    def test_requests_keep_completing_through_the_outage(self):
        out = run_scenario(_quick_recovery_spec())
        sim = out.sim
        completed = sim.metrics.completed_requests("squeezenet")
        # completions exist strictly inside the outage window
        during = [r for r in completed if 45.0 <= r.arrival_time <= 75.0]
        assert during, "no requests completed during the outage"

    def test_total_blackout_survives_and_recovers(self):
        # every node down at once: zero capacity must not crash the epoch
        # loop, and service must come back one cold start after the nodes do
        base = _quick_recovery_spec(faulted=False)
        spec = ScenarioSpec.from_dict({
            **base.to_dict(),
            "name": "blackout",
            "faults": {
                "node_failures": [
                    {"node": f"node-{i}", "fail_at": 40.0, "recover_at": 70.0}
                    for i in range(3)
                ],
                "crash_probability": 0.0,
                "crash_functions": None,
                "cold_start": None,
            },
        })
        out = run_scenario(spec)
        faults = out.data["faults"]
        assert faults["node_failures"] == 3
        assert faults["node_recoveries"] == 3
        # the warm capacity lost with the first node can only come back one
        # cold start after the blackout ends (the later failures evict only
        # the still-STARTING replacements, so their records close at 0)
        assert faults["max_recovery_time"] == pytest.approx(30.5)
        # traffic resumes after the blackout
        completed = out.sim.metrics.completed_requests("squeezenet")
        assert any(r.arrival_time > 75.0 for r in completed)

    def test_permanent_failure_never_recovers_node(self):
        out = run_scenario(_quick_recovery_spec(recover_at=None))
        faults = out.data["faults"]
        assert faults["node_recoveries"] == 0
        (record,) = faults["recoveries"]
        assert record["recover_at"] is None
        # capacity stays down for the remaining 2/3 of the run
        assert faults["capacity_availability"] == pytest.approx(1 - (2 / 3) * (1 / 3))


class TestCrashOnDispatch:
    def test_certain_crash_fails_the_request_and_replaces_the_container(self):
        spec = build("flaky-containers", crash_probability=0.5, duration=60.0)
        out = run_scenario(spec)
        faults = out.data["faults"]
        assert faults["container_crashes"] > 0
        assert faults["failed_requests"] >= faults["container_crashes"]
        counters = out.data["metrics"]["counters"]
        # the controller kept replacing crashed containers
        assert counters["creations"] > faults["container_crashes"] / 2
        assert counters["completions"] > 0

    def test_crash_functions_filter(self):
        base = build("rolling-node-churn", phase=30.0)
        spec = ScenarioSpec.from_dict({
            **base.to_dict(),
            "faults": {
                "node_failures": [],
                "crash_probability": 0.9,
                "crash_functions": ["geofence"],
                "cold_start": None,
            },
        })
        out = run_scenario(spec)
        sim = out.sim
        # squeezenet is exempt: none of its requests may be dropped
        assert not sim.metrics.dropped_requests("squeezenet")
        assert out.data["faults"]["container_crashes"] > 0


class TestFaultDeterminism:
    """The metamorphic properties the issue pins."""

    def test_same_seed_same_bytes(self):
        a = run_scenario(_quick_recovery_spec()).data
        b = run_scenario(_quick_recovery_spec()).data
        assert canonical_json(a) == canonical_json(b)

    def test_flaky_same_seed_same_bytes(self):
        spec = build("flaky-containers", duration=60.0)
        a = run_scenario(spec).data
        b = run_scenario(ScenarioSpec.from_json(spec.to_json())).data
        assert canonical_json(a) == canonical_json(b)

    def test_disabled_faults_match_healthy_run_exactly(self):
        healthy = _quick_recovery_spec(faulted=False)
        assert healthy.faults is None
        # the disabled arm carries an explicit *empty* fault schedule through
        # from_dict, exercising the normalisation path end to end
        disabled = ScenarioSpec.from_dict({
            **healthy.to_dict(),
            "faults": {"node_failures": [], "crash_probability": 0.0,
                       "crash_functions": None, "cold_start": None},
        })
        assert disabled.faults is None
        healthy_bytes = canonical_json(run_scenario(healthy).data)
        disabled_bytes = canonical_json(run_scenario(disabled).data)
        assert healthy_bytes == disabled_bytes
        # and a faulted run genuinely differs (the injection is real)
        faulted_bytes = canonical_json(run_scenario(_quick_recovery_spec()).data)
        assert faulted_bytes != healthy_bytes

    def test_empty_fault_spec_builds_no_injector(self):
        # SimulationRunner's is_empty() short-circuit: an empty FaultSpec
        # must not construct an injector (no interceptor, no sampler, no
        # extra RNG streams) — the mechanism behind byte-identity above
        from repro.simulation import SimulationRunner

        spec = _quick_recovery_spec(faulted=False)
        bindings = [w.build() for w in spec.workloads]
        armed = SimulationRunner(workloads=bindings, seed=spec.seed,
                                 fault_spec=FaultSpec())
        assert armed.fault_injector is None
        assert armed.controller.dispatcher.interceptor is None
        assert armed.cluster.cold_start_sampler is None
        assert "faults:crash" not in armed.rng.names()

    def test_sweep_workers_identity_with_faults(self):
        sweep = build("fig10", duration=90.0, fail_at=30.0, recover_at=60.0)
        serial = SweepRunner(sweep, workers=1).run()
        parallel = SweepRunner(sweep, workers=2).run()
        assert canonical_json(serial) == canonical_json(parallel)

    def test_fig10_healthy_arm_is_truly_healthy(self):
        sweep = build("fig10", duration=90.0, fail_at=30.0, recover_at=60.0)
        shards = sweep.expand()
        assert [s.name for s in shards] == ["fig10-faulted", "fig10-healthy"]
        assert shards[0].faults is not None and shards[1].faults is None
        # seed_mode="base": both arms replay identical randomness
        assert shards[0].seed == shards[1].seed


class TestFig10Experiment:
    def test_renderer_runs_and_reports_recovery(self):
        from repro.experiments.fig10_recovery import format_fig10, run_fig10

        result = run_fig10(duration=90.0, fail_at=30.0, recover_at=60.0)
        assert result.faulted.capacity_availability < 1.0
        assert result.healthy.capacity_availability is None
        assert result.faulted.completions > 0
        text = format_fig10(result)
        assert "capacity availability" in text and "recovery time" in text

    def test_registered_as_experiment(self):
        from repro.scenarios.registry import experiment_names

        assert "fig10" in experiment_names()
