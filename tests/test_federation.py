"""Federation layer: specs, routers, failover semantics, determinism.

Four clusters of coverage:

* spec-level: :class:`~repro.federation.spec.FederationSpec` /
  :class:`~repro.faults.spec.SiteBlackoutSpec` /
  :class:`~repro.faults.spec.WanPartitionSpec` validation and exact
  JSON round-trips, plus the ``ScenarioSpec.federation`` gate;
* registry-level: the three built-in global routers and their
  parameter validation;
* behaviour: blackout failover, WAN-partition edge autonomy,
  requeue-at-head on rejoin, and the site-scoped availability records
  (a site rejoining with fewer nodes still closes its record);
* determinism: every (router, failure-mode) arm of the ``fig12``
  sweep is byte-identical run-to-run, and the federated sweep is
  byte-identical across worker counts — plus hypothesis properties
  (no request ever runs on a blacked-out site; the redirect chain
  never exceeds ``max_redirects``).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults.spec import FaultSpec, SiteBlackoutSpec, WanPartitionSpec
from repro.federation.router import (
    describe_routers,
    get_router,
    router_names,
    validate_router,
)
from repro.federation.spec import FederationSpec
from repro.metrics.availability import AvailabilityTracker, RecoveryRecord
from repro.scenarios.registry import FIG12_ROUTERS, build
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ScenarioSpec, canonical_json
from repro.scenarios.sweep import SweepRunner
from repro.sim.request import RequestStatus

#: Simulation-backed hypothesis examples are expensive; keep the count
#: modest and derandomized so CI time is predictable.
SIM_PROPERTY_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


def _federation_dict(**overrides):
    """A small three-site federation as a plain dict."""
    data = {
        "sites": [
            {"name": "edge-a", "node_count": 3, "cpu_per_node": 4.0,
             "memory_per_node_mb": 16384.0, "cold_start_latency": 0.5,
             "policy": "lass"},
            {"name": "edge-b", "node_count": 2, "cpu_per_node": 4.0,
             "memory_per_node_mb": 16384.0, "cold_start_latency": 0.5,
             "policy": "lass"},
            {"name": "cloud", "node_count": 4, "cpu_per_node": 8.0,
             "memory_per_node_mb": 32768.0, "cold_start_latency": 1.5,
             "policy": "lass", "cloud": True},
        ],
        "router": "latency-aware",
        "wan_latency": 0.05,
        "wan_overrides": {"edge-a->edge-b": 0.02},
        "origins": {"geofence": "edge-a"},
        "probe_interval": 5.0,
        "probe_backoff_base": 1.0,
        "probe_backoff_cap": 8.0,
        "max_redirects": 3,
    }
    data.update(overrides)
    return data


def _scenario_dict(duration=60.0, seed=7, faults=None, **federation_overrides):
    """A federated scenario as a plain dict (geofence traffic at edge-a)."""
    data = {
        "name": "fed-test",
        "kind": "simulate",
        "duration": duration,
        "seed": seed,
        "workloads": [
            {"function": "geofence",
             "schedule": {"kind": "static", "params": {"rate": 20.0, "duration": None}},
             "slo_deadline": 0.1},
        ],
        "controller": {"policy": "lass"},
        "warm_start": {"geofence": 1},
        "metrics": ["waiting", "slo", "utilization", "counters", "generated"],
        "federation": _federation_dict(**federation_overrides),
    }
    if faults is not None:
        data["faults"] = faults
    return data


# ----------------------------------------------------------------------
# Fault-spec families
# ----------------------------------------------------------------------
class TestSiteFaultSpecs:
    def test_blackout_round_trip(self):
        spec = FaultSpec(site_blackouts=(
            SiteBlackoutSpec("edge-a", fail_at=10.0, recover_at=20.0,
                             rejoin_nodes=2),
        ))
        clone = FaultSpec.from_dict(spec.to_dict())
        assert canonical_json(clone.to_dict()) == canonical_json(spec.to_dict())
        assert clone.site_blackouts[0].rejoin_nodes == 2

    def test_partition_round_trip(self):
        spec = FaultSpec(wan_partitions=(
            WanPartitionSpec("edge-b", start_at=5.0, heal_at=15.0),
        ))
        clone = FaultSpec.from_dict(spec.to_dict())
        assert canonical_json(clone.to_dict()) == canonical_json(spec.to_dict())

    def test_site_fault_keys_omitted_when_empty(self):
        # pre-federation fault envelopes must keep their exact bytes
        data = FaultSpec(crash_probability=0.1).to_dict()
        assert "site_blackouts" not in data
        assert "wan_partitions" not in data

    def test_rejoin_nodes_requires_recover_at(self):
        with pytest.raises(ValueError, match="rejoin_nodes"):
            SiteBlackoutSpec("edge-a", fail_at=10.0, rejoin_nodes=2)

    def test_rejoin_nodes_must_be_positive(self):
        with pytest.raises(ValueError, match="rejoin_nodes"):
            SiteBlackoutSpec("edge-a", fail_at=10.0, recover_at=20.0,
                             rejoin_nodes=0)

    def test_overlapping_blackouts_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            FaultSpec(site_blackouts=(
                SiteBlackoutSpec("edge-a", fail_at=10.0, recover_at=30.0),
                SiteBlackoutSpec("edge-a", fail_at=20.0, recover_at=40.0),
            ))

    def test_overlapping_partitions_on_distinct_sites_ok(self):
        spec = FaultSpec(wan_partitions=(
            WanPartitionSpec("edge-a", start_at=10.0, heal_at=30.0),
            WanPartitionSpec("edge-b", start_at=20.0, heal_at=40.0),
        ))
        assert spec.has_site_faults() and not spec.has_node_faults()


# ----------------------------------------------------------------------
# Federation spec
# ----------------------------------------------------------------------
class TestFederationSpec:
    def test_round_trip_is_exact(self):
        spec = FederationSpec.from_dict(_federation_dict())
        clone = FederationSpec.from_dict(spec.to_dict())
        assert canonical_json(clone.to_dict()) == canonical_json(spec.to_dict())

    def test_latency_matrix_is_symmetric_with_overrides(self):
        spec = FederationSpec.from_dict(_federation_dict())
        assert spec.latency("edge-a", "edge-a") == 0.0
        assert spec.latency("edge-a", "edge-b") == 0.02
        assert spec.latency("edge-b", "edge-a") == 0.02  # symmetric fallback
        assert spec.latency("edge-b", "cloud") == 0.05   # default

    def test_duplicate_site_names_rejected(self):
        sites = [{"name": "edge-a"}, {"name": "edge-a"}]
        with pytest.raises(ValueError, match="duplicate"):
            FederationSpec.from_dict(_federation_dict(sites=sites))

    def test_unknown_router_rejected(self):
        with pytest.raises(ValueError, match="unknown router"):
            FederationSpec.from_dict(_federation_dict(router="teleport"))

    def test_wan_override_key_must_name_known_sites(self):
        with pytest.raises(ValueError, match="unknown site"):
            FederationSpec.from_dict(
                _federation_dict(wan_overrides={"edge-a->mars": 0.1}))

    def test_spillover_requires_a_cloud_site(self):
        sites = [{"name": "edge-a"}, {"name": "edge-b"}]
        with pytest.raises(ValueError, match="cloud"):
            FederationSpec.from_dict(
                _federation_dict(sites=sites, router="spillover-to-cloud"))

    def test_spillover_accepts_explicit_cloud_site_param(self):
        sites = [{"name": "edge-a"}, {"name": "edge-b"}]
        spec = FederationSpec.from_dict(_federation_dict(
            sites=sites, router="spillover-to-cloud",
            router_params={"cloud_site": "edge-b"}))
        assert spec.cloud_site() == "edge-b"

    def test_origin_defaults_to_first_site(self):
        spec = FederationSpec.from_dict(_federation_dict(origins={}))
        assert spec.origin_of("anything") == "edge-a"


# ----------------------------------------------------------------------
# Router registry
# ----------------------------------------------------------------------
class TestRouterRegistry:
    def test_builtins_registered(self):
        assert set(FIG12_ROUTERS) <= set(router_names())
        assert set(describe_routers()) == set(router_names())

    def test_unknown_router_raises_with_available(self):
        with pytest.raises(KeyError, match="nearest-site"):
            get_router("teleport")

    def test_spillover_rejects_unknown_params(self):
        with pytest.raises(ValueError, match="unknown"):
            validate_router("spillover-to-cloud", {"warp_factor": 9})

    def test_nearest_site_rejects_any_params(self):
        with pytest.raises(ValueError, match="unknown"):
            validate_router("nearest-site", {"anything": 1})


# ----------------------------------------------------------------------
# ScenarioSpec.federation gate
# ----------------------------------------------------------------------
class TestScenarioFederationValidation:
    def test_round_trip_and_key_omitted_when_absent(self):
        spec = ScenarioSpec.from_dict(_scenario_dict())
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert canonical_json(clone.to_dict()) == canonical_json(spec.to_dict())
        plain = _scenario_dict()
        del plain["federation"]
        assert "federation" not in ScenarioSpec.from_dict(plain).to_dict()

    def test_site_faults_without_federation_rejected(self):
        data = _scenario_dict(
            faults={"site_blackouts": [{"site": "edge-a", "fail_at": 10.0,
                                        "recover_at": None, "rejoin_nodes": None}]})
        del data["federation"]
        with pytest.raises(ValueError, match="federation"):
            ScenarioSpec.from_dict(data)

    def test_node_faults_with_federation_rejected(self):
        data = _scenario_dict(
            faults={"node_failures": [{"node": "node-0", "fail_at": 10.0,
                                       "recover_at": 20.0}]})
        with pytest.raises(ValueError, match="site-level"):
            ScenarioSpec.from_dict(data)

    def test_blackout_site_must_exist(self):
        data = _scenario_dict(
            faults={"site_blackouts": [{"site": "mars", "fail_at": 10.0,
                                        "recover_at": None, "rejoin_nodes": None}]})
        with pytest.raises(ValueError, match="mars"):
            ScenarioSpec.from_dict(data)

    def test_rejoin_nodes_cannot_exceed_site_nodes(self):
        data = _scenario_dict(
            faults={"site_blackouts": [{"site": "edge-b", "fail_at": 10.0,
                                        "recover_at": 20.0, "rejoin_nodes": 5}]})
        with pytest.raises(ValueError, match="rejoin_nodes"):
            ScenarioSpec.from_dict(data)

    def test_origins_must_name_workload_functions(self):
        data = _scenario_dict(origins={"mobilenet": "edge-a"})
        with pytest.raises(ValueError, match="mobilenet"):
            ScenarioSpec.from_dict(data)

    def test_timeline_metric_rejected(self):
        data = _scenario_dict()
        data["metrics"] = ["waiting", "timeline"]
        with pytest.raises(ValueError, match="timeline"):
            ScenarioSpec.from_dict(data)


# ----------------------------------------------------------------------
# Site-scoped availability records (a rejoined site may be smaller)
# ----------------------------------------------------------------------
class TestSiteScopedAvailability:
    def test_full_rejoin_closes_when_warm_targets_met(self):
        tracker = AvailabilityTracker()
        tracker.open_site_record("edge-a", 10.0, containers_lost=3,
                                 warm_targets={"geofence": 2})
        tracker.site_rejoined("edge-a", 30.0, capacity_ratio=1.0)
        assert not tracker.check_site_recovery("edge-a", 31.0,
                                               lambda fn: {"geofence": 1}[fn])
        assert tracker.check_site_recovery("edge-a", 33.5,
                                           lambda fn: {"geofence": 2}[fn])
        (record,) = tracker.records
        assert record.scope == "site"
        assert record.recovery_time == pytest.approx(23.5)

    def test_smaller_rejoin_clamps_warm_targets(self):
        # the satellite fix: rejoining with fewer nodes clamps the warm
        # targets proportionally, so the record can still close
        tracker = AvailabilityTracker()
        tracker.open_site_record("edge-a", 10.0, containers_lost=6,
                                 warm_targets={"geofence": 4})
        tracker.site_rejoined("edge-a", 30.0, capacity_ratio=0.5)
        assert tracker.check_site_recovery("edge-a", 32.0,
                                           lambda fn: {"geofence": 2}[fn])
        (record,) = tracker.records
        assert record.recovery_time == pytest.approx(22.0)

    def test_zero_capacity_rejoin_leaves_record_open(self):
        tracker = AvailabilityTracker()
        tracker.open_site_record("edge-a", 10.0, containers_lost=3,
                                 warm_targets={"geofence": 2})
        tracker.site_rejoined("edge-a", 30.0, capacity_ratio=0.0)
        assert not tracker.check_site_recovery("edge-a", 99.0,
                                               lambda fn: 99)
        (record,) = tracker.records
        assert record.recovery_time is None

    def test_scope_serialized_only_for_site_records(self):
        tracker = AvailabilityTracker()
        tracker.open_site_record("edge-a", 10.0, containers_lost=0,
                                 warm_targets={})
        (site_record,) = tracker.records
        assert site_record.as_dict()["scope"] == "site"
        node_tracker = AvailabilityTracker()
        node_tracker.open_record(RecoveryRecord(
            node="node-0", fail_at=5.0, recover_at=None,
            containers_lost=1, warm_targets={"geofence": 1}))
        (node_record,) = node_tracker.records
        assert "scope" not in node_record.as_dict()


# ----------------------------------------------------------------------
# Behaviour: failover, edge autonomy, requeue-at-head
# ----------------------------------------------------------------------
class TestFederatedBehaviour:
    def test_blackout_fails_over_and_recovers(self):
        data = _scenario_dict(duration=90.0, faults={"site_blackouts": [
            {"site": "edge-a", "fail_at": 32.0, "recover_at": 63.0,
             "rejoin_nodes": 2}]})
        outcome = run_scenario(ScenarioSpec.from_dict(data))
        faults = outcome.data["faults"]
        assert faults["site_blackouts"] == 1
        assert faults["site_recoveries"] == 1
        assert faults["unrecovered_parked"] == 0
        assert 0.0 < faults["capacity_availability"] < 1.0
        recovery = faults["sites"]["edge-a"]["mean_recovery_time"]
        assert recovery is not None and recovery > 0.0
        router = outcome.data["federation"]["router"]
        # traffic really moved: some work ran away from the origin site
        assert sum(count for site, count in router["dispatched"].items()
                   if site != "edge-a") > 0

    def test_partition_serves_locally_and_merges_back(self):
        data = _scenario_dict(duration=90.0, faults={"wan_partitions": [
            {"site": "edge-a", "start_at": 32.0, "heal_at": 63.0}]})
        outcome = run_scenario(ScenarioSpec.from_dict(data))
        faults = outcome.data["faults"]
        assert faults["wan_partitions"] == 1 and faults["wan_heals"] == 1
        # no capacity was ever lost — only the WAN path
        assert faults["capacity_availability"] == 1.0
        assert faults["failed_requests"] == 0
        router = outcome.data["federation"]["router"]
        # the origin site kept serving its own arrivals while unreachable
        assert router["local_autonomy"] > 0

    def test_degraded_slo_stays_within_capacity_bound(self):
        # the acceptance criterion: under a full origin-site blackout the
        # latency-aware router keeps serving — nothing is lost beyond
        # the blackout's own interrupted requests, and attainment does
        # not collapse below the healthy arm by more than the capacity
        # the federation actually lost
        healthy = run_scenario(ScenarioSpec.from_dict(
            _scenario_dict(duration=90.0)))
        faulted = run_scenario(ScenarioSpec.from_dict(_scenario_dict(
            duration=90.0, faults={"site_blackouts": [
                {"site": "edge-a", "fail_at": 32.0, "recover_at": 63.0,
                 "rejoin_nodes": 2}]})))
        h = healthy.data["metrics"]["functions"]["geofence"]["slo"]["attainment"]
        f = faulted.data["metrics"]["functions"]["geofence"]["slo"]["attainment"]
        lost_capacity = 1.0 - faulted.data["faults"]["capacity_availability"]
        assert f >= h - lost_capacity - 0.05
        assert faulted.data["faults"]["request_availability"] > 0.99


# ----------------------------------------------------------------------
# Determinism: bytes per arm, bytes across workers
# ----------------------------------------------------------------------
def _arm_specs(duration=30.0):
    """The nine fig12 shard specs (3 routers x 3 failure modes)."""
    return build("fig12", duration=duration).expand()


def test_fig12_covers_every_router_and_failure_mode():
    specs = _arm_specs()
    arms = {(s.federation.router,
             "healthy" if s.faults is None or s.faults.is_empty()
             else "blackout" if s.faults.site_blackouts else "partition")
            for s in specs}
    assert arms == {(router, mode) for router in FIG12_ROUTERS
                    for mode in ("healthy", "blackout", "partition")}


@pytest.mark.parametrize("index", range(9))
def test_fig12_arm_bytes_are_run_to_run_identical(index):
    spec = _arm_specs()[index]
    first = canonical_json(run_scenario(spec).data)
    second = canonical_json(run_scenario(spec).data)
    assert first == second, spec.name


def test_federated_sweep_bytes_identical_across_workers():
    sweep = build("fig12", duration=30.0)
    serial = SweepRunner(sweep, workers=1).run_json()
    parallel = SweepRunner(sweep, workers=4).run_json()
    assert serial == parallel


# ----------------------------------------------------------------------
# Hypothesis properties
# ----------------------------------------------------------------------
@given(seed=st.integers(min_value=0, max_value=2**16),
       fail_at=st.floats(min_value=12.0, max_value=28.0),
       dark=st.floats(min_value=6.0, max_value=25.0))
@SIM_PROPERTY_SETTINGS
def test_no_request_ever_runs_on_a_blacked_out_site(seed, fail_at, dark):
    """During the dark window, nothing starts on the dead site's nodes."""
    recover_at = fail_at + dark
    data = _scenario_dict(duration=60.0, seed=seed, faults={"site_blackouts": [
        {"site": "edge-a", "fail_at": fail_at, "recover_at": recover_at,
         "rejoin_nodes": None}]})
    outcome = run_scenario(ScenarioSpec.from_dict(data))
    offenders = [
        r for r in outcome.sim.metrics.requests
        if r.node_name is not None and r.node_name.startswith("edge-a/")
        and r.start_time is not None
        and fail_at < r.start_time < recover_at
        and r.status is not RequestStatus.FAILED
    ]
    assert not offenders, [(r.request_id, r.start_time) for r in offenders]


@given(seed=st.integers(min_value=0, max_value=2**16),
       max_redirects=st.integers(min_value=0, max_value=3),
       fail_at=st.floats(min_value=12.0, max_value=28.0))
@SIM_PROPERTY_SETTINGS
def test_redirect_chain_never_exceeds_the_bound(seed, max_redirects, fail_at):
    """The per-request redirect-hop count respects ``max_redirects``."""
    data = _scenario_dict(duration=60.0, seed=seed,
                          max_redirects=max_redirects,
                          faults={"site_blackouts": [
                              {"site": "edge-a", "fail_at": fail_at,
                               "recover_at": fail_at + 15.0,
                               "rejoin_nodes": None}]})
    outcome = run_scenario(ScenarioSpec.from_dict(data))
    router = outcome.data["federation"]["router"]
    assert router["max_redirect_hops"] <= max_redirects
    assert set(router["drops"]) <= {"no_healthy_site", "router_refused",
                                    "redirect_exhausted"}
