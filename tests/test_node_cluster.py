"""Unit tests for nodes, the edge cluster, and its control operations."""

import pytest

from repro.cluster.cluster import ClusterConfig, EdgeCluster, FunctionDeployment
from repro.cluster.container import Container, ContainerState
from repro.cluster.node import InsufficientCapacityError, Node, total_capacity


def make_container(cpu=1.0, memory=512, name="fn") -> Container:
    return Container(function_name=name, node_name="", standard_cpu=cpu, memory_mb=memory)


class TestNode:
    def test_capacity_accounting(self):
        node = Node("n0", cpu_capacity=4.0, memory_capacity_mb=16384)
        node.add_container(make_container(cpu=1.5, memory=1024))
        assert node.cpu_allocated == pytest.approx(1.5)
        assert node.cpu_free == pytest.approx(2.5)
        assert node.memory_allocated_mb == pytest.approx(1024)
        assert node.cpu_utilization == pytest.approx(1.5 / 4.0)

    def test_rejects_cpu_overflow(self):
        node = Node("n0", 2.0, 4096)
        node.add_container(make_container(cpu=1.5))
        with pytest.raises(InsufficientCapacityError):
            node.add_container(make_container(cpu=1.0))

    def test_rejects_memory_overflow(self):
        node = Node("n0", 8.0, 1024)
        node.add_container(make_container(cpu=1.0, memory=800))
        with pytest.raises(InsufficientCapacityError):
            node.add_container(make_container(cpu=1.0, memory=400))

    def test_memory_only_packing_allows_cpu_overcommit(self):
        node = Node("n0", 2.0, 16384)
        node.add_container(make_container(cpu=2.0), enforce_cpu=True)
        node.add_container(make_container(cpu=2.0), enforce_cpu=False)
        assert node.cpu_overcommitted

    def test_duplicate_container_rejected(self):
        node = Node("n0", 4.0, 4096)
        container = make_container()
        node.add_container(container)
        with pytest.raises(ValueError):
            node.add_container(container)

    def test_remove_and_lookup(self):
        node = Node("n0", 4.0, 4096)
        container = make_container()
        node.add_container(container)
        assert node.get_container(container.container_id) is container
        assert node.remove_container(container.container_id) is container
        assert node.get_container(container.container_id) is None

    def test_terminated_containers_release_capacity(self):
        node = Node("n0", 4.0, 4096)
        container = make_container(cpu=2.0)
        node.add_container(container)
        container.mark_warm(0.0)
        container.terminate(1.0)
        assert node.cpu_allocated == 0.0

    def test_can_fit_and_room_for(self):
        node = Node("n0", 4.0, 4096)
        assert node.can_fit(4.0, 4096)
        assert not node.can_fit(4.1, 100)
        assert node.room_for(1.0, 1024) == 4
        assert node.room_for(2.0, 4096) == 1

    def test_containers_of_filters_by_function(self):
        node = Node("n0", 4.0, 8192)
        node.add_container(make_container(name="a"))
        node.add_container(make_container(name="b"))
        assert len(node.containers_of("a")) == 1

    def test_total_capacity_helper(self):
        nodes = [Node(f"n{i}", 4.0, 16384) for i in range(3)]
        agg = total_capacity(nodes)
        assert agg["cpu"] == 12.0
        assert agg["memory_mb"] == 3 * 16384

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Node("n0", 0.0, 1024)


class TestClusterConfig:
    def test_paper_defaults(self):
        config = ClusterConfig()
        assert config.node_count == 3
        assert config.cpu_per_node == 4.0
        assert config.total_cpu() == 12.0
        assert config.total_memory_mb() == 3 * 16 * 1024

    def test_build_nodes(self):
        nodes = ClusterConfig(node_count=2, cpu_per_node=8).build_nodes()
        assert len(nodes) == 2
        assert all(n.cpu_capacity == 8 for n in nodes)


class TestFunctionDeployment:
    def test_validation(self):
        with pytest.raises(ValueError):
            FunctionDeployment(name="f", cpu=0, memory_mb=128)
        with pytest.raises(ValueError):
            FunctionDeployment(name="f", cpu=1, memory_mb=0)
        with pytest.raises(ValueError):
            FunctionDeployment(name="f", cpu=1, memory_mb=128, weight=0)
        with pytest.raises(ValueError):
            FunctionDeployment(name="f", cpu=1, memory_mb=128, slo_percentile=1.5)


class TestEdgeCluster:
    def test_deploy_and_lookup(self, paper_cluster, simple_deployment):
        paper_cluster.deploy(simple_deployment)
        assert paper_cluster.deployment("fn") is simple_deployment
        assert paper_cluster.function_names == ["fn"]
        with pytest.raises(ValueError):
            paper_cluster.deploy(simple_deployment)
        with pytest.raises(KeyError):
            paper_cluster.deployment("missing")

    def test_create_container_pays_cold_start(self, engine, paper_cluster, simple_deployment):
        paper_cluster.deploy(simple_deployment)
        container = paper_cluster.create_container("fn")
        assert container.state is ContainerState.STARTING
        engine.run(until=paper_cluster.config.cold_start_latency + 0.001)
        assert container.state is ContainerState.WARM

    def test_warm_hook_invoked(self, engine, paper_cluster, simple_deployment):
        paper_cluster.deploy(simple_deployment)
        warmed = []
        paper_cluster.on_container_warm(warmed.append)
        paper_cluster.create_container("fn")
        engine.run(until=1.0)
        assert len(warmed) == 1

    def test_capacity_in_containers(self, paper_cluster, simple_deployment):
        paper_cluster.deploy(simple_deployment)
        assert paper_cluster.capacity_in_containers("fn") == 12

    def test_cpu_accounting(self, engine, paper_cluster, simple_deployment):
        paper_cluster.deploy(simple_deployment)
        for _ in range(3):
            paper_cluster.create_container("fn")
        assert paper_cluster.cpu_allocated == pytest.approx(3.0)
        assert paper_cluster.cpu_free == pytest.approx(9.0)
        assert paper_cluster.cpu_utilization == pytest.approx(0.25)
        assert paper_cluster.cpu_allocated_to("fn") == pytest.approx(3.0)

    def test_terminate_releases_capacity(self, engine, paper_cluster, simple_deployment):
        paper_cluster.deploy(simple_deployment)
        container = paper_cluster.create_container("fn")
        paper_cluster.terminate_container(container.container_id)
        assert paper_cluster.cpu_allocated == 0.0
        assert paper_cluster.get_container(container.container_id) is None

    def test_deflate_and_inflate(self, engine, paper_cluster, simple_deployment):
        paper_cluster.deploy(simple_deployment)
        container = paper_cluster.create_container("fn")
        released = paper_cluster.deflate_container(container.container_id, 0.7)
        assert released == pytest.approx(0.3)
        gained = paper_cluster.inflate_container(container.container_id)
        assert gained == pytest.approx(0.3)

    def test_create_fails_when_full(self, engine, paper_cluster):
        big = FunctionDeployment(name="big", cpu=4.0, memory_mb=1024)
        paper_cluster.deploy(big)
        for _ in range(3):
            paper_cluster.create_container("big")
        with pytest.raises(InsufficientCapacityError):
            paper_cluster.create_container("big")

    def test_best_fit_node_selection(self, engine, paper_cluster):
        small = FunctionDeployment(name="small", cpu=0.5, memory_mb=128)
        paper_cluster.deploy(small)
        first = paper_cluster.create_container("small")
        second = paper_cluster.create_container("small")
        # best-fit packs the second container onto the same node
        assert first.node_name == second.node_name

    def test_room_for(self, engine, paper_cluster):
        big = FunctionDeployment(name="big", cpu=2.0, memory_mb=1024)
        paper_cluster.deploy(big)
        assert paper_cluster.room_for("big") == 6
        paper_cluster.create_container("big")
        assert paper_cluster.room_for("big") == 5

    def test_containers_sorted_smallest_cpu_first(self, engine, paper_cluster, simple_deployment):
        paper_cluster.deploy(simple_deployment)
        a = paper_cluster.create_container("fn")
        b = paper_cluster.create_container("fn")
        paper_cluster.deflate_container(b.container_id, 0.6)
        ordered = paper_cluster.containers_of("fn")
        assert ordered[0].container_id == b.container_id

    def test_undeploy_terminates_containers(self, engine, paper_cluster, simple_deployment):
        paper_cluster.deploy(simple_deployment)
        paper_cluster.create_container("fn")
        paper_cluster.undeploy("fn")
        assert paper_cluster.all_containers() == []
        assert paper_cluster.function_names == []

    def test_cluster_requires_nodes(self, engine):
        with pytest.raises(ValueError):
            EdgeCluster(engine, ClusterConfig(), nodes=[])
