"""Smoke and shape tests for the experiment harnesses (shortened durations).

These check that each table/figure harness runs end to end and that the
qualitative findings of the paper hold (who wins, in which direction),
not the absolute numbers — the full-length runs are recorded in
EXPERIMENTS.md.
"""

import pytest

from repro.experiments.fig3_homogeneous import format_fig3, fraction_meeting_slo, run_fig3
from repro.experiments.fig4_heterogeneous import run_fig4
from repro.experiments.fig4_heterogeneous import fraction_meeting_slo as fig4_fraction
from repro.experiments.fig5_scalability import format_fig5, max_time_seconds, run_fig5
from repro.experiments.fig6_autoscaling import (
    default_rate_profiles,
    run_fig6,
    tracking_correlation,
)
from repro.experiments.fig7_deflation import (
    FIG7_FUNCTIONS,
    run_fig7,
    slowdown_at,
    small_penalty_at_threshold,
)
from repro.experiments.fig8_reclamation import build_workloads, run_fig8
from repro.experiments.fig9_azure import build_tree, run_fig9
from repro.experiments.table1_functions import (
    catalogue_consistency_checks,
    format_table1,
    run_table1,
)


class TestTable1:
    def test_rows_match_paper(self):
        rows = run_table1()
        assert len(rows) == 7
        assert ("mobilenet", "Python", "2 vCPU + 1024 MB") in rows
        assert ("geofence", "JavaScript", "0.3 vCPU + 128 MB") in rows

    def test_catalogue_consistent(self):
        assert catalogue_consistency_checks() == []

    def test_format_renders_all_rows(self):
        text = format_table1()
        for name in ("microbenchmark", "mobilenet", "binaryalert", "image-resizer"):
            assert name in text


class TestFig3:
    @pytest.fixture(scope="class")
    def points(self):
        return run_fig3(mus=(10.0,), slo_deadlines=(0.1, 0.2),
                        arrival_rates=(10.0, 30.0, 50.0), duration=150.0, seed=300)

    def test_measured_p95_close_to_slo(self, points):
        assert fraction_meeting_slo(points, tolerance=0.4) >= 0.8

    def test_container_count_grows_with_rate(self, points):
        by_slo = [p for p in points if p.slo_deadline == 0.1]
        rates = sorted(p.arrival_rate for p in by_slo)
        counts = [next(p.containers for p in by_slo if p.arrival_rate == r) for r in rates]
        assert counts == sorted(counts)

    def test_looser_slo_needs_no_more_containers(self, points):
        for rate in (10.0, 30.0, 50.0):
            tight = next(p for p in points if p.slo_deadline == 0.1 and p.arrival_rate == rate)
            loose = next(p for p in points if p.slo_deadline == 0.2 and p.arrival_rate == rate)
            assert loose.containers <= tight.containers

    def test_format(self, points):
        assert "p95 wait(ms)" in format_fig3(points)


class TestFig4:
    @pytest.fixture(scope="class")
    def points(self):
        return run_fig4(proportions=(0.5, 1.0), arrival_rates=(20.0, 60.0), duration=90.0, seed=400)

    def test_slo_met_despite_deflated_containers(self, points):
        assert fig4_fraction(points, tolerance=0.4) >= 0.75

    def test_heterogeneous_model_adds_capacity_when_needed(self, points):
        assert all(p.total_containers >= p.homogeneous_containers for p in points)
        fully_deflated = [p for p in points if p.deflated_proportion == 1.0]
        assert any(p.total_containers > p.homogeneous_containers for p in fully_deflated)


class TestFig5:
    @pytest.fixture(scope="class")
    def points(self):
        return run_fig5(container_counts=(10, 100, 400), repeats=1)

    def test_fast_path_stays_sub_second(self, points):
        assert max_time_seconds(points, "fast") < 1.0

    def test_naive_cost_grows_with_container_count(self, points):
        small = [p.compute_seconds for p in points
                 if p.implementation == "naive" and p.spike == "2x" and p.current_containers == 10]
        large = [p.compute_seconds for p in points
                 if p.implementation == "naive" and p.spike == "2x" and p.current_containers == 400]
        assert small and large
        assert large[0] > small[0]

    def test_both_implementations_agree_at_moderate_scale(self, points):
        # the naive float accumulation loses precision for very large
        # container counts (the same limitation the paper reports for its
        # Scala implementation), so agreement is only required up to ~100
        by_key = {}
        for p in points:
            if p.current_containers > 100:
                continue
            by_key.setdefault((p.spike, p.current_containers), {})[p.implementation] = p.new_containers
        assert by_key
        for key, answers in by_key.items():
            assert answers["naive"] == answers["fast"]

    def test_format(self, points):
        assert "time (ms)" in format_fig5(points)


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig6(step_duration=40.0, seed=600)

    def test_allocation_tracks_both_workloads(self, result):
        micro_rates, mobile_rates = default_rate_profiles()
        assert tracking_correlation(micro_rates, 40.0, result.micro_timeline) > 0.4
        assert tracking_correlation(mobile_rates, 40.0, result.mobilenet_timeline) > 0.4

    def test_peak_allocation_exceeds_trough(self, result):
        _, counts = result.micro_timeline
        assert max(counts) >= min(c for c in counts if c > 0) + 2

    def test_containers_during_step_helper(self, result):
        low = result.containers_during_step("microbenchmark", 0)
        high = result.containers_during_step("microbenchmark", 5)
        assert high > low


class TestFig7:
    @pytest.fixture(scope="class")
    def points(self):
        return run_fig7()

    def test_all_functions_and_ratios_covered(self, points):
        assert {p.function_name for p in points} == set(FIG7_FUNCTIONS)
        assert len({p.deflation_ratio for p in points}) == 8

    def test_small_penalty_up_to_30_percent_for_non_mobilenet(self, points):
        verdicts = small_penalty_at_threshold(points, threshold=0.3, max_penalty=0.2)
        assert all(verdicts.values())

    def test_mobilenet_degrades_roughly_proportionally(self, points):
        slowdown = slowdown_at(points, "mobilenet", 0.5)
        assert slowdown == pytest.approx(1 / 0.5, rel=0.15)

    def test_service_time_monotone_in_deflation(self, points):
        for name in FIG7_FUNCTIONS:
            series = sorted(
                (p.deflation_ratio, p.service_time) for p in points if p.function_name == name
            )
            times = [s for _, s in series]
            assert all(b >= a - 1e-12 for a, b in zip(times, times[1:]))

    def test_measured_mode_matches_analytic_at_zero_deflation(self):
        measured = run_fig7(functions=("squeezenet",), deflation_ratios=(0.0, 0.3),
                            measured=True, duration=40.0)
        analytic = run_fig7(functions=("squeezenet",), deflation_ratios=(0.0, 0.3))
        m0 = next(p for p in measured if p.deflation_ratio == 0.0)
        a0 = next(p for p in analytic if p.deflation_ratio == 0.0)
        assert m0.service_time == pytest.approx(a0.service_time, rel=0.3)


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig8(phase_duration=90.0, seed=800)

    def test_both_policies_keep_functions_at_fair_share(self, result):
        for outcome in (result.termination, result.deflation):
            for name, violation in outcome.fair_share_violations.items():
                assert violation <= 0.1, f"{outcome.policy}: {name} violated fair share"

    def test_deflation_improves_utilization(self, result):
        assert result.deflation.mean_utilization > result.termination.mean_utilization
        assert result.utilization_improvement > 0.0

    def test_deflation_causes_less_churn(self, result):
        term_ops = result.termination.container_operations
        defl_ops = result.deflation.container_operations
        assert (defl_ops["creations"] + defl_ops["terminations"]) <= (
            term_ops["creations"] + term_ops["terminations"]
        )
        assert defl_ops["deflations"] > 0
        assert term_ops["deflations"] == 0

    def test_openwhisk_baseline_collapses(self, result):
        assert result.openwhisk is not None
        assert result.openwhisk.failed_invokers >= 1
        assert result.openwhisk.completions < 0.7 * result.openwhisk.arrivals

    def test_workload_has_five_phases(self):
        bindings, duration = build_workloads(60.0)
        assert duration == 300.0
        assert {b.profile.name for b in bindings} == {"binaryalert", "mobilenet"}


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig9(duration_minutes=6, seed=900, trace_seed=77)

    def test_deflation_improves_utilization(self, result):
        assert result.deflation.mean_utilization >= result.termination.mean_utilization

    def test_deflation_reduces_churn(self, result):
        assert result.churn_reduction >= 0
        assert result.deflation.churn <= result.termination.churn

    def test_cluster_is_highly_utilised(self, result):
        assert result.termination.mean_utilization > 0.5

    def test_tree_matches_weight_split(self):
        tree = build_tree()
        shares = tree.guaranteed_shares(12.0)
        user1 = shares["shufflenet"] + shares["geofence"] + shares["image-resizer"]
        user2 = shares["mobilenet"] + shares["squeezenet"] + shares["binaryalert"]
        assert user1 == pytest.approx(4.0)
        assert user2 == pytest.approx(8.0)

    def test_trace_totals_recorded(self, result):
        assert set(result.trace_totals) == {
            "mobilenet", "shufflenet", "squeezenet", "binaryalert", "geofence", "image-resizer"
        }
