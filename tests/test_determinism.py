"""Determinism regression tests for the fast-path simulation core.

The PR-1 refactor (tuple-keyed event heap, vectorized batched arrivals,
bucketized rate windows, incremental idle sets) must not change what a
seeded run computes:

* the same seed must produce bit-identical metrics run-to-run, and
* the vectorized arrival path (``arrival_batch_size=256``) must produce
  **identical per-epoch metrics** to the old-equivalent per-event path
  (``arrival_batch_size=1``, one scheduled event per arrival, exactly
  the cadence of the seed implementation).

The second property holds because the thinning sampler's RNG consumption
is independent of the batch size and per-request work is drawn from a
dedicated stream (see ``repro/workloads/generator.py``).
"""

import pytest

from repro.simulation import SimulationRunner
from repro.workloads.functions import microbenchmark
from repro.workloads.generator import WorkloadBinding
from repro.workloads.schedules import StaticRate, StepSchedule


def _fig3_style_runner(seed: int, batch_size: int) -> SimulationRunner:
    """A Figure 3-style scenario: one function under a static Poisson load."""
    return SimulationRunner(
        workloads=[
            WorkloadBinding(
                profile=microbenchmark(0.1),
                schedule=StaticRate(25.0, duration=120.0),
                slo_deadline=0.1,
            )
        ],
        seed=seed,
        arrival_batch_size=batch_size,
    )


def _epoch_fingerprint(result):
    """Everything an epoch snapshot records, as a comparable value."""
    return [
        (
            epoch.time,
            epoch.overloaded,
            epoch.total_cpu,
            epoch.allocated_cpu,
            tuple(
                sorted(
                    (
                        name,
                        stats.containers,
                        stats.cpu,
                        stats.desired_containers,
                        stats.arrival_rate_estimate,
                        stats.service_rate_estimate,
                    )
                    for name, stats in epoch.functions.items()
                )
            ),
        )
        for epoch in result.metrics.epochs
    ]


class TestSeededReproducibility:
    def test_same_seed_same_metrics(self):
        first = _fig3_style_runner(seed=11, batch_size=256).run(duration=120.0)
        second = _fig3_style_runner(seed=11, batch_size=256).run(duration=120.0)
        assert first.generated_requests == second.generated_requests
        assert _epoch_fingerprint(first) == _epoch_fingerprint(second)
        assert first.waiting_summary().as_dict() == second.waiting_summary().as_dict()

    def test_different_seed_different_realisation(self):
        first = _fig3_style_runner(seed=11, batch_size=256).run(duration=120.0)
        second = _fig3_style_runner(seed=12, batch_size=256).run(duration=120.0)
        assert first.generated_requests != second.generated_requests or (
            _epoch_fingerprint(first) != _epoch_fingerprint(second)
        )


class TestBatchSizeInvariance:
    """Fast path vs. old-equivalent per-event path: identical numbers."""

    @pytest.mark.parametrize("seed", [1, 7])
    def test_fig3_per_epoch_metrics_identical(self, seed):
        fast = _fig3_style_runner(seed=seed, batch_size=256).run(duration=120.0)
        per_event = _fig3_style_runner(seed=seed, batch_size=1).run(duration=120.0)
        assert fast.generated_requests == per_event.generated_requests
        assert _epoch_fingerprint(fast) == _epoch_fingerprint(per_event)
        assert fast.waiting_summary().as_dict() == per_event.waiting_summary().as_dict()
        assert (
            fast.metrics.counters["completions"] == per_event.metrics.counters["completions"]
        )

    def test_step_schedule_and_multiple_functions(self):
        from dataclasses import replace

        def build(batch_size):
            return SimulationRunner(
                workloads=[
                    WorkloadBinding(
                        profile=replace(microbenchmark(0.1), name="fn-a"),
                        schedule=StepSchedule.staircase([5.0, 30.0, 5.0], 40.0),
                        slo_deadline=0.1,
                    ),
                    WorkloadBinding(
                        profile=replace(microbenchmark(0.2), name="fn-b"),
                        schedule=StaticRate(10.0, duration=120.0),
                        slo_deadline=0.2,
                    ),
                ],
                seed=5,
                arrival_batch_size=batch_size,
            )

        fast = build(256).run(duration=120.0)
        per_event = build(1).run(duration=120.0)
        assert fast.generated_requests == per_event.generated_requests
        assert _epoch_fingerprint(fast) == _epoch_fingerprint(per_event)
