"""Unit tests for the container model: lifecycle, execution, deflation."""

import pytest

from repro.cluster.container import Container, ContainerError, ContainerState
from repro.sim.request import Request, RequestStatus


def make_container(**kwargs) -> Container:
    defaults = dict(function_name="fn", node_name="node-0", standard_cpu=1.0, memory_mb=512)
    defaults.update(kwargs)
    return Container(**defaults)


def make_request(arrival=0.0, work=0.1) -> Request:
    return Request(function_name="fn", arrival_time=arrival, work=work)


class TestLifecycle:
    def test_starts_in_starting_state(self):
        container = make_container()
        assert container.state is ContainerState.STARTING
        assert not container.is_available

    def test_mark_warm(self):
        container = make_container()
        container.mark_warm(0.5)
        assert container.state is ContainerState.WARM
        assert container.warm_since == 0.5
        assert container.is_available and container.is_idle

    def test_cannot_warm_twice(self):
        container = make_container()
        container.mark_warm(0.5)
        with pytest.raises(ContainerError):
            container.mark_warm(0.6)

    def test_draining_and_rescue(self):
        container = make_container()
        container.mark_warm(0.0)
        container.mark_draining()
        assert container.state is ContainerState.DRAINING
        assert not container.is_available
        container.unmark_draining()
        assert container.state is ContainerState.WARM

    def test_terminate_drops_queued_and_running_work(self, engine):
        container = make_container()
        container.mark_warm(0.0)
        first, second = make_request(), make_request()
        container.submit(first, engine)
        container.submit(second, engine)
        dropped = container.terminate(1.0)
        assert {r.request_id for r in dropped} == {first.request_id, second.request_id}
        assert first.status is RequestStatus.DROPPED
        assert container.state is ContainerState.TERMINATED

    def test_terminate_is_idempotent(self):
        container = make_container()
        container.mark_warm(0.0)
        assert container.terminate(1.0) == []
        assert container.terminate(2.0) == []


class TestDeflation:
    def test_deflate_by_ratio(self):
        container = make_container(standard_cpu=2.0)
        released = container.deflate_by(0.3)
        assert released == pytest.approx(0.6)
        assert container.current_cpu == pytest.approx(1.4)
        assert container.deflation_ratio == pytest.approx(0.3)

    def test_deflate_to_absolute_level(self):
        container = make_container(standard_cpu=2.0)
        container.deflate_to(1.5)
        assert container.cpu_fraction == pytest.approx(0.75)

    def test_deflate_never_exceeds_standard(self):
        container = make_container(standard_cpu=1.0)
        released = container.deflate_to(5.0)
        assert container.current_cpu == 1.0
        assert released == 0.0

    def test_inflate_restores_standard(self):
        container = make_container(standard_cpu=2.0)
        container.deflate_by(0.5)
        consumed = container.inflate()
        assert consumed == pytest.approx(1.0)
        assert container.current_cpu == 2.0

    def test_invalid_deflation_ratio_rejected(self):
        container = make_container()
        with pytest.raises(ValueError):
            container.deflate_by(1.0)
        with pytest.raises(ValueError):
            container.deflate_by(-0.1)

    def test_cannot_resize_terminated_container(self):
        container = make_container()
        container.mark_warm(0.0)
        container.terminate(1.0)
        with pytest.raises(ContainerError):
            container.deflate_to(0.5)

    def test_speed_follows_curve(self):
        container = make_container(standard_cpu=2.0, speed_of_cpu=lambda f: f**2)
        container.deflate_to(1.0)
        assert container.speed == pytest.approx(0.25)

    def test_default_speed_proportional(self):
        container = make_container(standard_cpu=2.0)
        container.deflate_to(1.0)
        assert container.speed == pytest.approx(0.5)


class TestExecution:
    def test_request_executes_for_work_divided_by_speed(self, engine):
        container = make_container()
        container.mark_warm(0.0)
        request = make_request(work=0.2)
        container.submit(request, engine)
        engine.run()
        assert request.status is RequestStatus.COMPLETED
        assert request.service_time == pytest.approx(0.2)

    def test_deflated_container_runs_slower(self, engine):
        container = make_container(standard_cpu=1.0)
        container.deflate_to(0.5)
        container.mark_warm(0.0)
        request = make_request(work=0.2)
        container.submit(request, engine)
        engine.run()
        assert request.service_time == pytest.approx(0.4)

    def test_fcfs_order(self, engine):
        container = make_container()
        container.mark_warm(0.0)
        first = make_request(work=0.1)
        second = make_request(work=0.1)
        container.submit(first, engine)
        container.submit(second, engine)
        engine.run()
        assert first.completion_time < second.completion_time
        assert second.waiting_time == pytest.approx(0.1)

    def test_completion_callback_invoked(self, engine):
        container = make_container()
        container.mark_warm(0.0)
        seen = []
        container.submit(make_request(), engine, on_complete=lambda r, c: seen.append((r, c)))
        engine.run()
        assert len(seen) == 1
        assert seen[0][1] is container

    def test_queued_request_starts_when_container_warms(self, engine):
        container = make_container()
        request = make_request()
        container.submit(request, engine)      # still cold
        assert request.status is RequestStatus.QUEUED
        container.mark_warm(1.0)
        container.on_warm_start(engine)
        engine.run()
        assert request.status is RequestStatus.COMPLETED

    def test_cannot_submit_to_terminated_container(self, engine):
        container = make_container()
        container.mark_warm(0.0)
        container.terminate(0.5)
        with pytest.raises(ContainerError):
            container.submit(make_request(), engine)

    def test_in_flight_and_queue_length(self, engine):
        container = make_container()
        container.mark_warm(0.0)
        container.submit(make_request(work=10.0), engine)
        container.submit(make_request(work=10.0), engine)
        assert container.in_flight == 2
        assert container.queue_length == 1
        assert not container.is_idle

    def test_utilization_tracks_busy_time(self, engine):
        container = make_container()
        container.mark_warm(0.0)
        container.submit(make_request(work=0.5), engine)
        engine.run()
        engine.schedule(0.5, lambda: None)
        engine.run()
        assert container.utilization(engine.now) == pytest.approx(0.5, abs=0.01)

    def test_completed_requests_counter(self, engine):
        container = make_container()
        container.mark_warm(0.0)
        for _ in range(3):
            container.submit(make_request(work=0.01), engine)
        engine.run()
        assert container.completed_requests == 3

    def test_draining_container_finishes_queued_work(self, engine):
        container = make_container()
        container.mark_warm(0.0)
        first = make_request(work=0.1)
        second = make_request(work=0.1)
        container.submit(first, engine)
        container.submit(second, engine)
        container.mark_draining()
        engine.run()
        assert first.status is RequestStatus.COMPLETED
        assert second.status is RequestStatus.COMPLETED


class TestValidation:
    def test_positive_sizes_required(self):
        with pytest.raises(ValueError):
            make_container(standard_cpu=0.0)
        with pytest.raises(ValueError):
            make_container(memory_mb=-1)
