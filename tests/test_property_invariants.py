"""Property-based invariant tests for the fast-path machinery.

The PR-1/PR-3 fast paths (tuple-keyed event heap, bucketized sliding
windows, vectorised/memoized sizing solver) each replaced a simple
implementation with an optimised one whose correctness rests on an
invariant.  These tests state those invariants as *properties* over
randomised inputs (hypothesis), rather than as a handful of
hand-picked examples:

* **event-heap ordering** — callbacks execute in nondecreasing
  ``(time, priority)`` order with scheduling order as the tie-break,
  regardless of entry shape (bare fast-path tuples vs. Event records)
  and insertion order;
* **sliding-window counts** — the O(1) bucketized ring buffer brackets
  a naive exact oracle: it never under-counts the true window and
  never over-counts beyond one extra bucket of history;
* **solver equality** — the memoized/warm-started
  :class:`~repro.core.queueing.solver.SizingSolver` and the vectorised
  fast path agree *exactly* with the reference Algorithm 1 on random
  ``(λ, μ, c, t, p)`` draws.

All properties run with ``derandomize=True``: hypothesis derives its
examples from the test name alone, so CI failures are reproducible and
the suite stays deterministic run-to-run.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.estimation.sliding_window import SlidingWindowCounter
from repro.core.queueing.sizing import required_containers, required_containers_fast
from repro.core.queueing.solver import SizingQuery, SizingSolver
from repro.sim.engine import SimulationEngine

#: Shared hypothesis profile: deterministic examples, no wall-clock deadline
#: (CI hosts are noisy; these properties are CPU-bound, not flaky).
PROPERTY_SETTINGS = settings(max_examples=60, deadline=None, derandomize=True)


# ----------------------------------------------------------------------
# Event-heap ordering
# ----------------------------------------------------------------------
@PROPERTY_SETTINGS
@given(
    entries=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0,
                      allow_nan=False, allow_infinity=False),
            st.sampled_from([SimulationEngine.PRIORITY_DATA,
                             SimulationEngine.PRIORITY_FAULT,
                             SimulationEngine.PRIORITY_CONTROL]),
            st.booleans(),  # True: bare call_later entry, False: Event record
        ),
        min_size=1,
        max_size=60,
    )
)
def test_event_heap_executes_in_time_priority_schedule_order(entries):
    """Execution order is the stable sort of (time, priority, schedule seq)."""
    engine = SimulationEngine()
    executed = []
    for index, (delay, priority, bare) in enumerate(entries):
        if bare:
            engine.call_later(delay, executed.append, index, priority=priority)
        else:
            engine.schedule(delay, executed.append, index, priority=priority)
    engine.run()

    assert sorted(executed) == list(range(len(entries)))
    keys = [(entries[i][0], entries[i][1], i) for i in executed]
    assert keys == sorted(keys), "events fired out of (time, priority, seq) order"


@PROPERTY_SETTINGS
@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=50.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=40,
    ),
    cancel_mask=st.lists(st.booleans(), min_size=1, max_size=40),
)
def test_event_heap_cancellation_skips_exactly_the_cancelled(delays, cancel_mask):
    """Cancelled events never fire and are counted as cancelled, not processed."""
    engine = SimulationEngine()
    fired = []
    events = [engine.schedule(delay, fired.append, i) for i, delay in enumerate(delays)]
    cancelled = set()
    for i, (event, cancel) in enumerate(zip(events, cancel_mask)):
        if cancel:
            event.cancel()
            cancelled.add(i)
    engine.run()
    assert set(fired) == set(range(len(delays))) - cancelled
    assert engine.events_cancelled == len(cancelled & set(range(len(delays))))


# ----------------------------------------------------------------------
# Sliding-window counts vs. a naive oracle
# ----------------------------------------------------------------------
def _naive_count(timestamps, now, window):
    """The exact trailing-window oracle: events in (now - window, now]."""
    return sum(1 for t in timestamps if now - window < t <= now)


@PROPERTY_SETTINGS
@given(
    deltas=st.lists(
        st.floats(min_value=0.0, max_value=7.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=80,
    ),
    window=st.floats(min_value=1.0, max_value=60.0,
                     allow_nan=False, allow_infinity=False),
    query_gap=st.floats(min_value=0.0, max_value=30.0,
                        allow_nan=False, allow_infinity=False),
)
def test_sliding_window_brackets_the_exact_oracle(deltas, window, query_gap):
    """Bucketized count ∈ [exact window, exact window + one bucket of history].

    The documented contract (see the module docstring of
    ``repro.core.estimation.sliding_window``): bucket-granularity
    eviction may include the oldest partially-overlapping bucket, so an
    unaligned query over-approximates by at most one bucket — and never
    under-counts, which would delay burst detection.
    """
    counter = SlidingWindowCounter(window)
    timestamps = []
    now = 0.0
    for delta in deltas:
        now += delta
        counter.record(now)
        timestamps.append(now)
    query_time = now + query_gap

    got = counter.count(query_time)
    exact = _naive_count(timestamps, query_time, window)
    padded = _naive_count(timestamps, query_time, window + counter.bucket_width)
    assert exact <= got <= padded, (
        f"window count {got} outside [{exact}, {padded}] "
        f"(window={window}, bucket={counter.bucket_width})"
    )


@PROPERTY_SETTINGS
@given(
    deltas=st.lists(
        st.floats(min_value=0.0, max_value=4.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=60,
    ),
    window=st.sampled_from([10.0, 30.0, 120.0]),
)
def test_sliding_window_aligned_queries_are_exact(deltas, window):
    """Queries on bucket boundaries (the controller's cadence) match the oracle.

    Alignment is exact up to events lying on a boundary themselves: a
    bucket-edge event is retired with its whole bucket, so the oracle is
    evaluated on the half-open bucket span the ring actually keeps.
    """
    counter = SlidingWindowCounter(window)
    bucket = counter.bucket_width
    timestamps = []
    now = 0.0
    for delta in deltas:
        now += delta
        counter.record(now)
        timestamps.append(now)
    # the next bucket boundary at or after the last event
    query_time = math.ceil(now / bucket) * bucket
    got = counter.count(query_time)
    # buckets fully inside the window: (query - window, query], snapped to
    # the bucket grid the ring keeps (left edge exclusive)
    left = math.floor((query_time - window) / bucket) * bucket
    exact = sum(1 for t in timestamps if left < t <= query_time)
    assert got == exact


# ----------------------------------------------------------------------
# Solver vs. reference sizing equality
# ----------------------------------------------------------------------
_LAM = st.floats(min_value=0.05, max_value=400.0,
                 allow_nan=False, allow_infinity=False)
_MU = st.floats(min_value=0.2, max_value=50.0,
                allow_nan=False, allow_infinity=False)
_BUDGET = st.floats(min_value=0.005, max_value=2.0,
                    allow_nan=False, allow_infinity=False)
_PERCENTILE = st.floats(min_value=0.5, max_value=0.995,
                        allow_nan=False, allow_infinity=False)
_CURRENT = st.integers(min_value=0, max_value=50)


@PROPERTY_SETTINGS
@given(lam=_LAM, mu=_MU, budget=_BUDGET, percentile=_PERCENTILE, current=_CURRENT)
def test_fast_sizing_equals_reference_on_random_draws(lam, mu, budget,
                                                      percentile, current):
    """The vectorised fast path returns the reference container count exactly."""
    reference = required_containers(lam, mu, budget, percentile,
                                    current_containers=current)
    fast = required_containers_fast(lam, mu, budget, percentile,
                                    current_containers=current)
    assert fast.containers == reference.containers
    assert fast.achieved_probability >= percentile


@PROPERTY_SETTINGS
@given(
    draws=st.lists(
        st.tuples(_LAM, _MU, _BUDGET, _PERCENTILE),
        min_size=1, max_size=12,
    )
)
def test_memoized_warm_started_solver_equals_reference_in_batches(draws):
    """SizingSolver (cache + warm starts + batching) ≡ reference, per draw.

    The warm-start slots are keyed per function; feeding each key a
    random *sequence* of draws exercises the drift/jump re-anchoring
    logic, and the batch API exercises the lockstep cold-search ladder.
    """
    solver = SizingSolver(cache_size=1024, warm_start=True)
    # sequential per-key solves (warm-start path)
    for index, (lam, mu, budget, percentile) in enumerate(draws):
        key = f"fn-{index % 3}"
        got = solver.solve(lam, mu, budget, percentile, key=key)
        want = required_containers(lam, mu, budget, percentile)
        assert got.containers == want.containers, (lam, mu, budget, percentile)
    # one batched call over all draws (duplicates dedupe internally)
    queries = [
        SizingQuery(lam=lam, mu=mu, wait_budget=budget, percentile=percentile,
                    current_containers=0, key=f"fn-{i % 3}")
        for i, (lam, mu, budget, percentile) in enumerate(draws)
    ]
    batched = solver.solve_batch(queries)
    for (lam, mu, budget, percentile), result in zip(draws, batched):
        want = required_containers(lam, mu, budget, percentile)
        assert result.containers == want.containers
