"""Property-based invariant tests for the fast-path machinery.

The PR-1/PR-3 fast paths (tuple-keyed event heap, bucketized sliding
windows, vectorised/memoized sizing solver) each replaced a simple
implementation with an optimised one whose correctness rests on an
invariant.  These tests state those invariants as *properties* over
randomised inputs (hypothesis), rather than as a handful of
hand-picked examples:

* **event-heap ordering** — callbacks execute in nondecreasing
  ``(time, priority)`` order with scheduling order as the tie-break,
  regardless of entry shape (bare fast-path tuples vs. Event records)
  and insertion order;
* **sliding-window counts** — the O(1) bucketized ring buffer brackets
  a naive exact oracle: it never under-counts the true window and
  never over-counts beyond one extra bucket of history;
* **solver equality** — the memoized/warm-started
  :class:`~repro.core.queueing.solver.SizingSolver` and the vectorised
  fast path agree *exactly* with the reference Algorithm 1 on random
  ``(λ, μ, c, t, p)`` draws.

All properties run with ``derandomize=True``: hypothesis derives its
examples from the test name alone, so CI failures are reproducible and
the suite stays deterministic run-to-run.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.estimation.sliding_window import SlidingWindowCounter
from repro.core.queueing.sizing import required_containers, required_containers_fast
from repro.core.queueing.solver import SizingQuery, SizingSolver
from repro.sim.engine import SimulationEngine

#: Shared hypothesis profile: deterministic examples, no wall-clock deadline
#: (CI hosts are noisy; these properties are CPU-bound, not flaky).
PROPERTY_SETTINGS = settings(max_examples=60, deadline=None, derandomize=True)


# ----------------------------------------------------------------------
# Event-heap ordering
# ----------------------------------------------------------------------
@PROPERTY_SETTINGS
@given(
    entries=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0,
                      allow_nan=False, allow_infinity=False),
            st.sampled_from([SimulationEngine.PRIORITY_DATA,
                             SimulationEngine.PRIORITY_FAULT,
                             SimulationEngine.PRIORITY_CONTROL]),
            st.booleans(),  # True: bare call_later entry, False: Event record
        ),
        min_size=1,
        max_size=60,
    )
)
def test_event_heap_executes_in_time_priority_schedule_order(entries):
    """Execution order is the stable sort of (time, priority, schedule seq)."""
    engine = SimulationEngine()
    executed = []
    for index, (delay, priority, bare) in enumerate(entries):
        if bare:
            engine.call_later(delay, executed.append, index, priority=priority)
        else:
            engine.schedule(delay, executed.append, index, priority=priority)
    engine.run()

    assert sorted(executed) == list(range(len(entries)))
    keys = [(entries[i][0], entries[i][1], i) for i in executed]
    assert keys == sorted(keys), "events fired out of (time, priority, seq) order"


@PROPERTY_SETTINGS
@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=50.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=40,
    ),
    cancel_mask=st.lists(st.booleans(), min_size=1, max_size=40),
)
def test_event_heap_cancellation_skips_exactly_the_cancelled(delays, cancel_mask):
    """Cancelled events never fire and are counted as cancelled, not processed."""
    engine = SimulationEngine()
    fired = []
    events = [engine.schedule(delay, fired.append, i) for i, delay in enumerate(delays)]
    cancelled = set()
    for i, (event, cancel) in enumerate(zip(events, cancel_mask)):
        if cancel:
            event.cancel()
            cancelled.add(i)
    engine.run()
    assert set(fired) == set(range(len(delays))) - cancelled
    assert engine.events_cancelled == len(cancelled & set(range(len(delays))))


# ----------------------------------------------------------------------
# Sliding-window counts vs. a naive oracle
# ----------------------------------------------------------------------
def _naive_count(timestamps, now, window):
    """The exact trailing-window oracle: events in (now - window, now]."""
    return sum(1 for t in timestamps if now - window < t <= now)


@PROPERTY_SETTINGS
@given(
    deltas=st.lists(
        st.floats(min_value=0.0, max_value=7.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=80,
    ),
    window=st.floats(min_value=1.0, max_value=60.0,
                     allow_nan=False, allow_infinity=False),
    query_gap=st.floats(min_value=0.0, max_value=30.0,
                        allow_nan=False, allow_infinity=False),
)
def test_sliding_window_brackets_the_exact_oracle(deltas, window, query_gap):
    """Bucketized count ∈ [exact window, exact window + one bucket of history].

    The documented contract (see the module docstring of
    ``repro.core.estimation.sliding_window``): bucket-granularity
    eviction may include the oldest partially-overlapping bucket, so an
    unaligned query over-approximates by at most one bucket — and never
    under-counts, which would delay burst detection.
    """
    counter = SlidingWindowCounter(window)
    timestamps = []
    now = 0.0
    for delta in deltas:
        now += delta
        counter.record(now)
        timestamps.append(now)
    query_time = now + query_gap

    got = counter.count(query_time)
    exact = _naive_count(timestamps, query_time, window)
    padded = _naive_count(timestamps, query_time, window + counter.bucket_width)
    assert exact <= got <= padded, (
        f"window count {got} outside [{exact}, {padded}] "
        f"(window={window}, bucket={counter.bucket_width})"
    )


@PROPERTY_SETTINGS
@given(
    deltas=st.lists(
        st.floats(min_value=0.0, max_value=4.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=60,
    ),
    window=st.sampled_from([10.0, 30.0, 120.0]),
)
def test_sliding_window_aligned_queries_are_exact(deltas, window):
    """Queries on bucket boundaries (the controller's cadence) match the oracle.

    Alignment is exact up to events lying on a boundary themselves: a
    bucket-edge event is retired with its whole bucket, so the oracle is
    evaluated on the half-open bucket span the ring actually keeps.
    """
    counter = SlidingWindowCounter(window)
    bucket = counter.bucket_width
    timestamps = []
    now = 0.0
    for delta in deltas:
        now += delta
        counter.record(now)
        timestamps.append(now)
    # the next bucket boundary at or after the last event
    query_time = math.ceil(now / bucket) * bucket
    got = counter.count(query_time)
    # buckets fully inside the window: (query - window, query], snapped to
    # the bucket grid the ring keeps (left edge exclusive)
    left = math.floor((query_time - window) / bucket) * bucket
    exact = sum(1 for t in timestamps if left < t <= query_time)
    assert got == exact


# ----------------------------------------------------------------------
# Solver vs. reference sizing equality
# ----------------------------------------------------------------------
_LAM = st.floats(min_value=0.05, max_value=400.0,
                 allow_nan=False, allow_infinity=False)
_MU = st.floats(min_value=0.2, max_value=50.0,
                allow_nan=False, allow_infinity=False)
_BUDGET = st.floats(min_value=0.005, max_value=2.0,
                    allow_nan=False, allow_infinity=False)
_PERCENTILE = st.floats(min_value=0.5, max_value=0.995,
                        allow_nan=False, allow_infinity=False)
_CURRENT = st.integers(min_value=0, max_value=50)


@PROPERTY_SETTINGS
@given(lam=_LAM, mu=_MU, budget=_BUDGET, percentile=_PERCENTILE, current=_CURRENT)
def test_fast_sizing_equals_reference_on_random_draws(lam, mu, budget,
                                                      percentile, current):
    """The vectorised fast path returns the reference container count exactly."""
    reference = required_containers(lam, mu, budget, percentile,
                                    current_containers=current)
    fast = required_containers_fast(lam, mu, budget, percentile,
                                    current_containers=current)
    assert fast.containers == reference.containers
    assert fast.achieved_probability >= percentile


@PROPERTY_SETTINGS
@given(
    draws=st.lists(
        st.tuples(_LAM, _MU, _BUDGET, _PERCENTILE),
        min_size=1, max_size=12,
    )
)
def test_memoized_warm_started_solver_equals_reference_in_batches(draws):
    """SizingSolver (cache + warm starts + batching) ≡ reference, per draw.

    The warm-start slots are keyed per function; feeding each key a
    random *sequence* of draws exercises the drift/jump re-anchoring
    logic, and the batch API exercises the lockstep cold-search ladder.
    """
    solver = SizingSolver(cache_size=1024, warm_start=True)
    # sequential per-key solves (warm-start path)
    for index, (lam, mu, budget, percentile) in enumerate(draws):
        key = f"fn-{index % 3}"
        got = solver.solve(lam, mu, budget, percentile, key=key)
        want = required_containers(lam, mu, budget, percentile)
        assert got.containers == want.containers, (lam, mu, budget, percentile)
    # one batched call over all draws (duplicates dedupe internally)
    queries = [
        SizingQuery(lam=lam, mu=mu, wait_budget=budget, percentile=percentile,
                    current_containers=0, key=f"fn-{i % 3}")
        for i, (lam, mu, budget, percentile) in enumerate(draws)
    ]
    batched = solver.solve_batch(queries)
    for (lam, mu, budget, percentile), result in zip(draws, batched):
        want = required_containers(lam, mu, budget, percentile)
        assert result.containers == want.containers


# ----------------------------------------------------------------------
# Columnar-kernel invariants (PR 7)
# ----------------------------------------------------------------------
def _quantile_state(quantile):
    """Everything observable about a StreamingQuantile, RNG included."""
    return (list(quantile._sorted), quantile._count, quantile._rng.getstate())


def _estimator_state(estimator):
    """Full observable state of an OnlineServiceTimeEstimator."""
    return (
        {key: _quantile_state(bucket) for key, bucket in estimator._buckets.items()},
        {key: list(totals) for key, totals in estimator._totals.items()},
    )


@PROPERTY_SETTINGS
@given(
    entries=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0,
                      allow_nan=False, allow_infinity=False),
            st.sampled_from([SimulationEngine.PRIORITY_DATA,
                             SimulationEngine.PRIORITY_FAULT,
                             SimulationEngine.PRIORITY_CONTROL]),
        ),
        min_size=1, max_size=50,
    ),
    split=st.integers(min_value=0, max_value=50),
    cancel_stride=st.integers(min_value=2, max_value=7),
)
def test_schedule_many_events_matches_one_at_a_time(entries, split, cancel_stride):
    """Batched completion scheduling ≡ per-event scheduling, exactly.

    ``schedule_many_events`` must preserve ``(time, priority, seq)`` heap
    order relative to one-at-a-time insertion — including when the batch
    is split into two consecutive calls at an arbitrary point — and its
    Event handles must cancel exactly like individually scheduled ones.
    Per-priority runs are scheduled in the same order on both engines, so
    sequence numbers line up and the execution orders must be identical.
    """
    split = min(split, len(entries))

    batched_engine = SimulationEngine()
    batched_order = []
    batched_events = []
    serial_engine = SimulationEngine()
    serial_order = []
    serial_events = []

    for sub, base in ((entries[:split], 0), (entries[split:], split)):
        for priority in (SimulationEngine.PRIORITY_FAULT,
                         SimulationEngine.PRIORITY_DATA,
                         SimulationEngine.PRIORITY_CONTROL):
            run = [(base + offset, time) for offset, (time, p) in enumerate(sub)
                   if p == priority]
            if not run:
                continue
            batched_events.extend(batched_engine.schedule_many_events(
                [(time, batched_order.append, (index,)) for index, time in run],
                priority=priority,
            ))
            for index, time in run:
                serial_events.append(serial_engine.schedule(
                    time, serial_order.append, index, priority=priority))

    # cancel the same subset of handles on both engines
    for position in range(0, len(batched_events), cancel_stride):
        batched_events[position].cancel()
        serial_events[position].cancel()

    batched_engine.run()
    serial_engine.run()
    assert batched_order == serial_order
    assert batched_engine.events_processed == serial_engine.events_processed


@PROPERTY_SETTINGS
@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=10.0,
                  allow_nan=False, allow_infinity=False),
        min_size=0, max_size=80,
    ),
    split=st.integers(min_value=0, max_value=80),
)
def test_streaming_quantile_add_many_is_batch_split_invariant(values, split):
    """``add_many`` ≡ per-element ``add`` with identical RNG consumption.

    Reservoir contents, counts *and the RNG state itself* must match
    after any split of the stream into batches — the property the
    columnar flush relies on when it folds a whole drain's completions
    in one call.
    """
    from repro.core.estimation.service_time import StreamingQuantile

    split = min(split, len(values))
    reference = StreamingQuantile(max_samples=16, seed=3)
    for value in values:
        reference.add(value)

    batched = StreamingQuantile(max_samples=16, seed=3)
    batched.add_many(values[:split])
    batched.add_many(values[split:])
    assert _quantile_state(batched) == _quantile_state(reference)


@PROPERTY_SETTINGS
@given(
    observations=st.lists(
        st.tuples(
            st.sampled_from([0.25, 0.5, 0.75, 1.0]),
            st.floats(min_value=0.0, max_value=5.0,
                      allow_nan=False, allow_infinity=False),
        ),
        min_size=0, max_size=60,
    ),
    split=st.integers(min_value=0, max_value=60),
)
def test_observe_many_is_batch_split_invariant(observations, split):
    """``observe_many`` ≡ per-element ``observe`` across arbitrary splits.

    Covers both the mixed-bucket grouping path and the single-bucket
    fast path (hypothesis shrinks toward uniform cpu fractions), with
    per-bucket reservoir RNG state compared exactly.
    """
    from repro.core.estimation.service_time import OnlineServiceTimeEstimator

    split = min(split, len(observations))
    reference = OnlineServiceTimeEstimator(max_samples_per_bucket=16)
    for cpu_fraction, service_time in observations:
        reference.observe(cpu_fraction, service_time)

    batched = OnlineServiceTimeEstimator(max_samples_per_bucket=16)
    for chunk in (observations[:split], observations[split:]):
        batched.observe_many([cpu for cpu, _ in chunk],
                             [service for _, service in chunk])
    assert _estimator_state(batched) == _estimator_state(reference)


@PROPERTY_SETTINGS
@given(
    deltas=st.lists(
        st.floats(min_value=0.0, max_value=12.0,
                  allow_nan=False, allow_infinity=False),
        min_size=0, max_size=60,
    ),
    window=st.floats(min_value=4.0, max_value=60.0,
                     allow_nan=False, allow_infinity=False),
    split=st.integers(min_value=0, max_value=60),
)
def test_record_many_is_batch_split_invariant(deltas, window, split):
    """``record_many`` ≡ per-element ``record`` across arbitrary splits."""
    timestamps = []
    now = 0.0
    for delta in deltas:
        now += delta
        timestamps.append(now)
    split = min(split, len(timestamps))

    reference = SlidingWindowCounter(window)
    for timestamp in timestamps:
        reference.record(timestamp)

    batched = SlidingWindowCounter(window)
    batched.record_many(timestamps[:split])
    batched.record_many(timestamps[split:])

    assert batched._counts == reference._counts
    assert batched._head == reference._head
    query = (timestamps[-1] if timestamps else 0.0) + 1.0
    assert batched.count(query) == reference.count(query)


@PROPERTY_SETTINGS
@given(
    rate=st.floats(min_value=1.0, max_value=50.0),
    duration=st.floats(min_value=5.0, max_value=40.0),
    seed=st.integers(min_value=0, max_value=2**16),
    batch_size=st.sampled_from([1, 7, 256]),
)
def test_materialized_arrivals_match_event_driven_pump(rate, duration, seed,
                                                       batch_size):
    """Bulk arrival materialization consumes RNG exactly like the pump.

    The columnar plane samples every (arrival time, work) pair for a
    generation up front; the event plane interleaves the same draws one
    batch at a time through engine events.  For every batch size — 1
    reproduces the seed cadence — both orderings must yield the
    identical (time, work) stream from the shared RNG.
    """
    from dataclasses import replace

    import numpy as np

    from repro.workloads.functions import microbenchmark
    from repro.workloads.generator import ArrivalGenerator
    from repro.workloads.schedules import StaticRate

    profile = replace(microbenchmark(0.05), name="prop-fn")

    bulk = ArrivalGenerator(
        SimulationEngine(), profile, StaticRate(rate, duration=duration),
        dispatch=lambda request: None, rng=np.random.default_rng(seed),
        slo_deadline=0.1, batch_size=batch_size,
    )
    times, works = bulk.materialize_arrivals()

    pumped = []
    engine = SimulationEngine()
    generator = ArrivalGenerator(
        engine, profile, StaticRate(rate, duration=duration),
        dispatch=lambda request: pumped.append(
            (request.arrival_time, request.work)),
        rng=np.random.default_rng(seed), slo_deadline=0.1,
        batch_size=batch_size,
    )
    generator.start()
    engine.run()

    assert times == [t for t, _ in pumped]
    assert works == [w for _, w in pumped]
