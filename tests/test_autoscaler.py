"""Tests for the model-driven autoscaler (paper §3.3)."""

import pytest

from repro.core.allocation.autoscaler import Autoscaler
from repro.core.queueing.sizing import required_containers


class TestAutoscaler:
    def test_matches_algorithm1_for_homogeneous_containers(self):
        scaler = Autoscaler(percentile=0.95)
        decision = scaler.desired_containers(
            "fn", arrival_rate=30.0, service_rate=10.0, slo_deadline=0.1
        )
        expected = required_containers(30.0, 10.0, 0.1, 0.95).containers
        assert decision.desired_containers == expected
        assert decision.achieved_probability >= 0.95
        assert not decision.used_heterogeneous_model

    def test_zero_rate_scales_to_zero(self):
        scaler = Autoscaler()
        decision = scaler.desired_containers("fn", 0.0, 10.0, 0.1, current_containers=4)
        assert decision.desired_containers == 0
        assert decision.scale_down

    def test_min_containers_floor(self):
        scaler = Autoscaler()
        decision = scaler.desired_containers("fn", 0.0, 10.0, 0.1, min_containers=2)
        assert decision.desired_containers == 2

    def test_scale_up_down_flags_and_delta(self):
        scaler = Autoscaler()
        up = scaler.desired_containers("fn", 50.0, 10.0, 0.1, current_containers=2)
        assert up.scale_up and up.delta > 0
        down = scaler.desired_containers("fn", 5.0, 10.0, 0.1, current_containers=10)
        assert down.scale_down and down.delta < 0

    def test_heterogeneous_path_used_when_rates_differ(self):
        scaler = Autoscaler()
        decision = scaler.desired_containers(
            "fn", arrival_rate=30.0, service_rate=10.0, slo_deadline=0.1,
            current_containers=4, existing_service_rates=[7.0, 7.0, 10.0, 10.0],
        )
        assert decision.used_heterogeneous_model
        assert decision.desired_containers >= 4

    def test_heterogeneous_needs_at_least_homogeneous(self):
        scaler = Autoscaler()
        hom = scaler.desired_containers("fn", 40.0, 10.0, 0.1).desired_containers
        het = scaler.desired_containers(
            "fn", 40.0, 10.0, 0.1,
            existing_service_rates=[7.0] * hom,
        ).desired_containers
        assert het >= hom

    def test_headroom_containers_added(self):
        base = Autoscaler().desired_containers("fn", 30.0, 10.0, 0.1).desired_containers
        padded = Autoscaler(headroom_containers=2).desired_containers(
            "fn", 30.0, 10.0, 0.1
        ).desired_containers
        assert padded == base + 2

    def test_subtract_service_percentile_is_more_conservative(self):
        plain = Autoscaler(subtract_service_percentile=False).desired_containers(
            "fn", 30.0, 10.0, 0.5
        ).desired_containers
        conservative = Autoscaler(subtract_service_percentile=True).desired_containers(
            "fn", 30.0, 10.0, 0.5
        ).desired_containers
        assert conservative >= plain

    def test_fast_and_reference_paths_agree(self):
        fast = Autoscaler(use_fast_sizing=True)
        slow = Autoscaler(use_fast_sizing=False)
        for lam in (5.0, 25.0, 80.0):
            assert (
                fast.desired_containers("fn", lam, 10.0, 0.1).desired_containers
                == slow.desired_containers("fn", lam, 10.0, 0.1).desired_containers
            )

    def test_minimum_stable_containers(self):
        scaler = Autoscaler()
        assert scaler.minimum_stable_containers(0.0, 10.0) == 0
        assert scaler.minimum_stable_containers(25.0, 10.0) == 3
        assert scaler.minimum_stable_containers(30.0, 10.0) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            Autoscaler(percentile=1.5)
        with pytest.raises(ValueError):
            Autoscaler(headroom_containers=-1)
        with pytest.raises(ValueError):
            Autoscaler().desired_containers("fn", -1.0, 10.0, 0.1)
        with pytest.raises(ValueError):
            Autoscaler().desired_containers("fn", 1.0, 0.0, 0.1)
        with pytest.raises(ValueError):
            Autoscaler().minimum_stable_containers(1.0, 0.0)
