"""Equivalence harness for the streaming trace replay (PR 9).

Four contracts are pinned here:

1. **Chunked ≡ monolithic synthesis** — byte-for-byte, at every chunk
   size, because NumPy ``Generator.poisson`` consumes the bit stream
   element-sequentially (a hypothesis property) and the azure generator
   draws in two ordered passes.
2. **Sharded ≡ whole-process replay** — the merged envelope is
   byte-identical across worker counts, run-twice stable, and — with an
   exhaustive sketch — identical across *different* shard
   decompositions of the same population.
3. **Reservoir-merge determinism** — the cross-shard percentile merge
   is order-insensitive (a pure function of the multiset of shard
   states), with regression tests on both the raw merge and the full
   envelope merge.
4. **Edge cases fail eagerly** — invalid trace configs, invalid
   replay params, and degraded sweep envelopes raise instead of
   producing silently-wrong numbers.
"""

from __future__ import annotations

import json
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.streaming import ReservoirQuantiles, merge_reservoir_states
from repro.scenarios import build, canonical_json
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.sweep import SweepRunner
from repro.scenarios.trace_shard import (
    TRACE_MERGE_SCHEMA,
    merge_trace_shards,
    run_trace_replay,
    shard_ranges,
)
from repro.workloads.azure import (
    AzureTraceConfig,
    azure_rate_series,
    synthesize_azure_trace,
    synthesize_azure_traces,
    trace_statistics,
)
from repro.workloads.stream import (
    iter_azure_trace_chunks,
    population_function,
    trace_rng,
)

#: Tiny population knobs reused across the equivalence tests.
SMALL = dict(functions=24, duration_minutes=6, chunk_minutes=4, sketch_size=64)


def _small_sweep(shards: int, **overrides):
    """The fig9-at-scale sweep at smoke scale."""
    kwargs = dict(SMALL, shards=shards)
    kwargs.update(overrides)
    return build("fig9-at-scale", **kwargs)


# ----------------------------------------------------------------------
# 1. chunked ingestion ≡ monolithic synthesis
# ----------------------------------------------------------------------
CHUNK_CONFIGS = {
    "steady": AzureTraceConfig(mean_rate=5.0, variability=0.4),
    "sporadic": AzureTraceConfig(mean_rate=2.0, sporadic=True),
    "zero-rate": AzureTraceConfig(mean_rate=0.0),
}


@pytest.mark.parametrize("label", sorted(CHUNK_CONFIGS))
@pytest.mark.parametrize("duration", [1, 17, 60])
@pytest.mark.parametrize("chunk", [1, 4, 60, 70])
def test_chunked_equals_monolithic(label, duration, chunk):
    """Concatenated chunks match the one-shot synthesis byte-for-byte."""
    config = CHUNK_CONFIGS[label]
    whole = synthesize_azure_trace(config, duration, np.random.default_rng(7))
    rng = np.random.default_rng(7)
    parts = list(iter_azure_trace_chunks(config, duration, rng, chunk))
    chunked = np.concatenate(parts)
    assert chunked.tobytes() == whole.tobytes()
    # and the generators end in the same state: a consumer could keep
    # drawing from either and stay in lockstep
    reference = np.random.default_rng(7)
    synthesize_azure_trace(config, duration, reference)
    assert rng.bit_generator.state == reference.bit_generator.state


def test_chunk_count_and_sizes():
    """Chunks tile the duration: all full-size except a shorter tail."""
    config = CHUNK_CONFIGS["steady"]
    parts = list(iter_azure_trace_chunks(config, 10, np.random.default_rng(1), 4))
    assert [len(p) for p in parts] == [4, 4, 2]


def test_chunk_minutes_must_be_positive():
    with pytest.raises(ValueError, match="chunk_minutes"):
        list(iter_azure_trace_chunks(CHUNK_CONFIGS["steady"], 10,
                                     np.random.default_rng(1), 0))


def test_rate_series_rejects_bad_duration():
    with pytest.raises(ValueError, match="duration_minutes"):
        azure_rate_series(CHUNK_CONFIGS["steady"], 0, np.random.default_rng(1))


@settings(max_examples=50, deadline=None, derandomize=True)
@given(
    lams=st.lists(st.floats(min_value=0.0, max_value=50.0), max_size=40),
    chunk=st.integers(min_value=1, max_value=45),
)
def test_poisson_batch_split_invariance(lams, chunk):
    """``Generator.poisson`` consumes the bit stream element-sequentially.

    This is the NumPy behaviour the whole chunked path rests on: drawing
    consecutive sub-arrays on one generator yields exactly the values —
    and exactly the final RNG state — of one whole-array call, for any
    split, including zero rates and empty sub-arrays.
    """
    lam = np.asarray(lams, dtype=float)
    whole_rng = np.random.default_rng(123)
    whole = whole_rng.poisson(lam)
    split_rng = np.random.default_rng(123)
    parts = [split_rng.poisson(lam[i:i + chunk])
             for i in range(0, len(lams), chunk)]
    chunked = np.concatenate(parts) if parts else np.empty(0, dtype=whole.dtype)
    assert np.array_equal(whole, chunked)
    assert whole_rng.bit_generator.state == split_rng.bit_generator.state


# ----------------------------------------------------------------------
# 2. sharded replay ≡ whole-process replay
# ----------------------------------------------------------------------
def test_workers_one_equals_four_bytes():
    """The standard runner guarantee holds for trace_replay shards."""
    sweep = _small_sweep(shards=4)
    serial = SweepRunner(sweep, workers=1).run()
    parallel = SweepRunner(sweep, workers=4).run()
    assert canonical_json(serial) == canonical_json(parallel)
    assert canonical_json(merge_trace_shards(serial)) == \
        canonical_json(merge_trace_shards(parallel))


def test_run_twice_is_byte_stable():
    """Two independent builds+runs produce identical merged bytes."""
    first = merge_trace_shards(SweepRunner(_small_sweep(shards=3), workers=1).run())
    second = merge_trace_shards(SweepRunner(_small_sweep(shards=3), workers=1).run())
    assert canonical_json(first) == canonical_json(second)


def test_shard_decomposition_invariance_with_exhaustive_sketch():
    """shards=1 and shards=4 merge to the same totals, rates, percentiles.

    With a sketch large enough to retain every observation the merge is
    exact, so *different* decompositions of the same population must
    agree on every derived number — the strongest form of "sharding
    never changes results".
    """
    merged = {}
    for shards in (1, 4):
        sweep = _small_sweep(shards=shards, sketch_size=10_000)
        merged[shards] = merge_trace_shards(SweepRunner(sweep, workers=1).run())
    for group in ("totals", "rates", "percentiles", "minutes"):
        assert canonical_json(merged[1][group]) == canonical_json(merged[4][group])
    assert merged[4]["percentiles"]["per_minute_invocations"]["exact"] is True
    assert merged[4]["shard_count"] == 4


def test_sampled_sketch_counters_still_invariant():
    """Even when sketches overflow, the integer counters never drift."""
    merged = {}
    for shards in (1, 4):
        sweep = _small_sweep(shards=shards, sketch_size=16)
        merged[shards] = merge_trace_shards(SweepRunner(sweep, workers=1).run())
    assert merged[1]["totals"] == merged[4]["totals"]
    assert merged[1]["percentiles"]["per_minute_invocations"]["exact"] is False


def test_per_function_results_independent_of_shard():
    """A single function replays identically whatever shard runs it."""
    sweep = _small_sweep(shards=1)
    base = next(iter(sweep.expand()))
    from repro.scenarios.sweep import apply_overrides

    one = apply_overrides(base, {"params.function_range": [5, 6],
                                 "name": "solo"})
    wide = apply_overrides(base, {"params.function_range": [0, 24],
                                  "name": "wide"})
    solo = run_trace_replay(one).data["replay"]
    whole = run_trace_replay(wide).data["replay"]
    # the solo shard's invocations are bounded by (and consistent with)
    # the whole population's — and re-running it is byte-stable
    assert solo["invocations"] <= whole["invocations"]
    assert canonical_json(run_trace_replay(one).data) == \
        canonical_json(run_trace_replay(one).data)


def test_population_function_is_pure():
    """Functions derive from (seed, index) only — byte-stable, index-local."""
    population = {"seed": 2021, "sporadic_fraction": 0.4,
                  "rate_log10_mean": -2.0, "rate_log10_sigma": 0.8,
                  "functions": 100}
    a = population_function(17, population)
    b = population_function(17, population)
    assert a == b
    assert a.name == "fn-000017"
    assert a.config.mean_rate > 0
    assert a.slo_deadline > a.service_time > 0
    counts_a = synthesize_azure_trace(a.config, 5, trace_rng(2019, 17))
    counts_b = synthesize_azure_trace(b.config, 5, trace_rng(2019, 17))
    assert counts_a.tobytes() == counts_b.tobytes()


def test_shard_ranges_tile_exactly():
    for functions, shards in ((10, 3), (24, 4), (7, 7), (1, 1), (100, 1)):
        ranges = shard_ranges(functions, shards)
        assert ranges[0][0] == 0 and ranges[-1][1] == functions
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo
        sizes = [hi - lo for lo, hi in ranges]
        assert max(sizes) - min(sizes) <= 1
    with pytest.raises(ValueError):
        shard_ranges(10, 11)
    with pytest.raises(ValueError):
        shard_ranges(10, 0)
    with pytest.raises(ValueError):
        shard_ranges(0, 1)


# ----------------------------------------------------------------------
# 3. reservoir-merge determinism
# ----------------------------------------------------------------------
def _reservoir_state(values, max_samples=4096):
    sketch = ReservoirQuantiles(max_samples=max_samples)
    for value in values:
        sketch.add(float(value))
    return sketch.state()


def test_reservoir_state_snapshot():
    state = _reservoir_state([3.0, 1.0, 2.0], max_samples=10)
    assert state == {"count": 3, "max_samples": 10, "samples": [1.0, 2.0, 3.0]}
    overflowed = _reservoir_state(range(100), max_samples=10)
    assert overflowed["count"] == 100
    assert len(overflowed["samples"]) == 10
    assert overflowed["samples"] == sorted(overflowed["samples"])


def test_merge_is_order_insensitive():
    """Permuting shard states can never change a merged byte."""
    rng = random.Random(5)
    states = [_reservoir_state([rng.uniform(0, 100) for _ in range(40)],
                               max_samples=16)  # sampled regime
              for _ in range(6)]
    reference = merge_reservoir_states(states)
    for _ in range(10):
        rng.shuffle(states)
        assert canonical_json(merge_reservoir_states(states)) == \
            canonical_json(reference)


def test_merge_exact_equals_any_decomposition():
    """With full retention, the merge is a pure function of the pooled data."""
    rng = random.Random(9)
    values = [rng.uniform(0, 50) for _ in range(200)]
    pooled = merge_reservoir_states([_reservoir_state(values)])
    for k in (2, 5, 8):
        cuts = sorted(rng.sample(range(1, len(values)), k - 1))
        groups = [values[a:b] for a, b in
                  zip([0] + cuts, cuts + [len(values)])]
        split = merge_reservoir_states([_reservoir_state(g) for g in groups])
        assert canonical_json(split) == canonical_json(pooled)
    assert pooled["exact"] is True
    assert pooled["count"] == 200


def test_merge_flags_sampled_states_and_validates_quantiles():
    sampled = merge_reservoir_states([_reservoir_state(range(100),
                                                       max_samples=10)])
    assert sampled["exact"] is False
    empty = merge_reservoir_states([])
    assert empty == {"count": 0, "exact": True,
                     "p50": 0.0, "p90": 0.0, "p95": 0.0, "p99": 0.0}
    with pytest.raises(ValueError, match="quantiles"):
        merge_reservoir_states([_reservoir_state([1.0])], quantiles=(1.5,))


def test_merge_trace_shards_permutation_regression():
    """Shuffling the sweep's results list never changes merged bytes."""
    envelope = SweepRunner(_small_sweep(shards=4), workers=1).run()
    reference = canonical_json(merge_trace_shards(envelope))
    shuffled = dict(envelope)
    results = list(envelope["results"])
    rng = random.Random(3)
    for _ in range(5):
        rng.shuffle(results)
        shuffled["results"] = list(results)
        assert canonical_json(merge_trace_shards(shuffled)) == reference


def test_merge_rejects_bad_envelopes():
    envelope = SweepRunner(_small_sweep(shards=2), workers=1).run()
    assert merge_trace_shards(envelope)["schema"] == TRACE_MERGE_SCHEMA

    with pytest.raises(ValueError, match="envelope"):
        merge_trace_shards({"schema": "something-else"})
    degraded = dict(envelope, incomplete=True)
    with pytest.raises(ValueError, match="incomplete"):
        merge_trace_shards(degraded)
    with pytest.raises(ValueError, match="no shard results"):
        merge_trace_shards(dict(envelope, results=[]))
    # a non-replay result in the list
    alien = dict(envelope, results=[{"scenario": {"name": "x"}}])
    with pytest.raises(ValueError, match="not a trace_replay result"):
        merge_trace_shards(alien)
    # a gap in the coverage
    gappy = dict(envelope, results=[envelope["results"][1]])
    with pytest.raises(ValueError, match="tile"):
        merge_trace_shards(gappy)
    # duplicated shard → overlap
    doubled = dict(envelope, results=list(envelope["results"])
                   + [envelope["results"][0]])
    with pytest.raises(ValueError, match="tile"):
        merge_trace_shards(doubled)


# ----------------------------------------------------------------------
# 4. edge cases fail eagerly (trace configs, stats, replay params)
# ----------------------------------------------------------------------
def test_azure_config_validation():
    with pytest.raises(ValueError, match="mean_rate"):
        AzureTraceConfig(mean_rate=-1.0)
    with pytest.raises(ValueError, match="burst_probability"):
        AzureTraceConfig(mean_rate=1.0, burst_probability=1.5)
    with pytest.raises(ValueError, match="burst_duration"):
        AzureTraceConfig(mean_rate=1.0, burst_duration_minutes=0.0)
    with pytest.raises(ValueError, match="burst_multiplier"):
        AzureTraceConfig(mean_rate=1.0, burst_multiplier=0.0)
    with pytest.raises(ValueError, match="variability"):
        AzureTraceConfig(mean_rate=1.0, variability=-0.1)


def test_trace_statistics_edge_cases():
    assert trace_statistics({}) == {}

    single = synthesize_azure_traces(
        {"only": AzureTraceConfig(mean_rate=5.0)}, duration_minutes=10, seed=1)
    stats = trace_statistics(single)
    assert set(stats) == {"only"}
    assert stats["only"]["total"] == float(sum(single["only"].counts))

    zero = synthesize_azure_traces(
        {"idle": AzureTraceConfig(mean_rate=0.0)}, duration_minutes=10, seed=1)
    idle = trace_statistics(zero)["idle"]
    assert idle["total"] == 0.0
    assert idle["zero_minutes"] == 10.0
    assert idle["peak_to_mean"] == float("inf")


def test_trace_replay_spec_validates_eagerly():
    good = {
        "population": {"functions": 10, "seed": 1, "sporadic_fraction": 0.4,
                       "rate_log10_mean": -2.0, "rate_log10_sigma": 0.8},
        "trace_seed": 2019, "duration_minutes": 5, "chunk_minutes": 3,
        "sketch_size": 16, "function_range": [0, 10],
    }
    ScenarioSpec(name="ok", kind="trace_replay", params=good)

    def bad(**changes):
        params = json.loads(json.dumps(good))
        params.update(changes)
        return params

    with pytest.raises(ValueError, match="missing keys"):
        ScenarioSpec(name="x", kind="trace_replay",
                     params={k: v for k, v in good.items() if k != "trace_seed"})
    with pytest.raises(ValueError, match="population missing key"):
        ScenarioSpec(name="x", kind="trace_replay",
                     params=bad(population={"functions": 10}))
    with pytest.raises(ValueError, match="sporadic_fraction"):
        ScenarioSpec(name="x", kind="trace_replay", params=bad(
            population=dict(good["population"], sporadic_fraction=1.5)))
    with pytest.raises(ValueError, match="rate_log10_sigma"):
        ScenarioSpec(name="x", kind="trace_replay", params=bad(
            population=dict(good["population"], rate_log10_sigma=-1.0)))
    with pytest.raises(ValueError, match="functions"):
        ScenarioSpec(name="x", kind="trace_replay", params=bad(
            population=dict(good["population"], functions=0)))
    with pytest.raises(ValueError, match="duration_minutes"):
        ScenarioSpec(name="x", kind="trace_replay", params=bad(duration_minutes=0))
    with pytest.raises(ValueError, match="chunk_minutes"):
        ScenarioSpec(name="x", kind="trace_replay", params=bad(chunk_minutes=0))
    with pytest.raises(ValueError, match="sketch_size"):
        ScenarioSpec(name="x", kind="trace_replay", params=bad(sketch_size=5))
    with pytest.raises(ValueError, match="function_range"):
        ScenarioSpec(name="x", kind="trace_replay", params=bad(function_range=[4]))
    with pytest.raises(ValueError, match="function_range"):
        ScenarioSpec(name="x", kind="trace_replay",
                     params=bad(function_range=[6, 6]))
    with pytest.raises(ValueError, match="function_range"):
        ScenarioSpec(name="x", kind="trace_replay",
                     params=bad(function_range=[0, 11]))
    with pytest.raises(ValueError, match="workloads"):
        from repro.scenarios.spec import ScheduleSpec, WorkloadSpec
        ScenarioSpec(name="x", kind="trace_replay", params=good, workloads=(
            WorkloadSpec("squeezenet", ScheduleSpec.static(1.0)),))


def test_trace_replay_spec_round_trips():
    """from_dict(to_dict()) reproduces the shard spec exactly."""
    spec = next(iter(_small_sweep(shards=3).expand()))
    clone = ScenarioSpec.from_dict(spec.to_dict())
    assert canonical_json(clone.to_dict()) == canonical_json(spec.to_dict())


# ----------------------------------------------------------------------
# The experiment wrapper and its text rendering
# ----------------------------------------------------------------------
def test_fig9_at_scale_experiment_end_to_end():
    from repro.experiments import run_fig9_at_scale
    from repro.experiments.fig9_at_scale import format_fig9_at_scale

    result = run_fig9_at_scale(functions=24, duration_minutes=6, shards=4,
                               workers=2, chunk_minutes=4, sketch_size=1000)
    assert result.functions == 24
    assert result.shard_count == 4
    assert result.duration_minutes == 6
    assert result.invocations == result.merged["totals"]["invocations"]
    assert 0.0 <= result.overload_fraction <= 1.0
    assert 0.0 <= result.zero_fraction <= 1.0
    text = format_fig9_at_scale(result)
    assert "Azure-scale streaming replay" in text
    assert "24 functions" in text and "4 shards" in text


# ----------------------------------------------------------------------
# CLI: the replay verb end to end
# ----------------------------------------------------------------------
def test_cli_replay_byte_identical_across_workers(tmp_path):
    from repro.cli import main

    args = ["replay", "--functions", "24", "--minutes", "6", "--shards", "4",
            "--chunk-minutes", "4", "--sketch-size", "64"]
    out1 = tmp_path / "one.json"
    out4 = tmp_path / "four.json"
    assert main(args + ["-j", "1", "-o", str(out1)]) == 0
    assert main(args + ["-j", "4", "-o", str(out4)]) == 0
    assert out1.read_bytes() == out4.read_bytes()
    merged = json.loads(out1.read_text())
    assert merged["schema"] == TRACE_MERGE_SCHEMA
    assert merged["totals"]["functions"] == 24
    assert merged["shard_count"] == 4


def test_cli_replay_usage_errors(tmp_path):
    from repro.cli import main

    assert main(["replay", "--resume"]) == 2
    assert main(["replay", "--functions", "4", "--shards", "9",
                 "--minutes", "2"]) == 2
