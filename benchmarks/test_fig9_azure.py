"""Figure 9: Azure-like trace replay with six functions and two users."""

from repro.experiments.fig9_azure import run_fig9


def test_fig9_azure_trace_replay(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig9(duration_minutes=8, seed=91, trace_seed=2019),
        rounds=1, iterations=1,
    )
    termination, deflation = result.termination, result.deflation

    # 1. The cluster is highly utilised in both runs (the experiment is
    #    set up so total demand stresses the 12-vCPU cluster).
    assert termination.mean_utilization > 0.5

    # 2. The deflation policy wastes less capacity than termination
    #    (paper: 87.7% -> 93% utilisation).
    assert deflation.mean_utilization >= termination.mean_utilization

    # 3. Deflation causes far fewer container create/terminate operations,
    #    i.e. fewer cold starts and rerun requests.
    assert deflation.churn <= termination.churn

    # 4. Every function is tracked in the timelines and the guaranteed
    #    shares follow the 1:2 user weighting.
    user1 = sum(termination.guaranteed_cpu[f] for f in ("shufflenet", "geofence", "image-resizer"))
    user2 = sum(termination.guaranteed_cpu[f] for f in ("mobilenet", "squeezenet", "binaryalert"))
    assert abs(user1 - 4.0) < 1e-6
    assert abs(user2 - 8.0) < 1e-6
