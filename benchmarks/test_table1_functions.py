"""Benchmark / regeneration of Table 1: the function catalogue."""

from repro.experiments.table1_functions import catalogue_consistency_checks, run_table1


def test_table1_catalogue(benchmark):
    rows = benchmark(run_table1)
    assert len(rows) == 7
    assert catalogue_consistency_checks() == []
