"""Benchmark-suite configuration.

Each benchmark module regenerates one table or figure of the paper
(usually at a reduced duration so the whole suite stays in the minutes
range) and asserts the paper's qualitative finding on the result.  Run
with::

    pytest benchmarks/ --benchmark-only

Full-length runs, and the paper-vs-measured comparison, are recorded in
EXPERIMENTS.md.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
