"""Figure 8: fair share and reclamation under overload (two functions)."""

from repro.experiments.fig8_reclamation import run_fig8


def test_fig8_reclamation_policies(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig8(phase_duration=90.0, seed=81, include_openwhisk=True),
        rounds=1, iterations=1,
    )
    termination, deflation = result.termination, result.deflation

    # 1. Both LaSS policies keep every function that wants more than its
    #    guaranteed share at or above that share during overload.
    for outcome in (termination, deflation):
        for name, violation in outcome.fair_share_violations.items():
            assert violation <= 0.1

    # 2. Deflation leaves less capacity unused than termination
    #    (paper: 78.2% -> 83.2% mean utilisation, ~+5-6 points).
    assert deflation.mean_utilization > termination.mean_utilization
    assert result.utilization_improvement > 0.0

    # 3. Deflation reduces container churn (fewer creations + terminations).
    assert (deflation.container_operations["creations"]
            + deflation.container_operations["terminations"]) <= (
        termination.container_operations["creations"]
        + termination.container_operations["terminations"]
    )

    # 4. Vanilla OpenWhisk collapses on the same workload (cascading
    #    invoker failure, most requests lost).
    assert result.openwhisk is not None
    assert result.openwhisk.failed_invokers >= 1
    assert result.openwhisk.completions < 0.7 * result.openwhisk.arrivals
