"""Figure 4: P95 waiting time with heterogeneous (deflated) containers stays near the SLO."""

from repro.experiments.fig4_heterogeneous import fraction_meeting_slo, run_fig4


def run_reduced():
    return run_fig4(
        proportions=(0.25, 0.5, 0.75, 1.0),
        arrival_rates=(20.0, 60.0, 100.0),
        duration=120.0,
        seed=41,
    )


def test_fig4_heterogeneous_model_validation(benchmark):
    points = benchmark.pedantic(run_reduced, rounds=1, iterations=1)
    # across every deflation proportion and rate the heterogeneous sizing
    # keeps the measured P95 waiting time near the 100 ms SLO
    assert fraction_meeting_slo(points, tolerance=0.4) >= 0.8
    # the heterogeneous model never asks for fewer containers than the
    # homogeneous provisioning it starts from
    assert all(p.total_containers >= p.homogeneous_containers for p in points)
