"""Figure 3: P95 waiting time with homogeneous containers stays near the SLO."""

from repro.experiments.fig3_homogeneous import fraction_meeting_slo, run_fig3


def run_reduced():
    return run_fig3(
        mus=(5.0, 10.0),
        slo_deadlines=(0.1, 0.2),
        arrival_rates=(10.0, 30.0, 50.0),
        duration=150.0,
        seed=31,
    )


def test_fig3_homogeneous_model_validation(benchmark):
    points = benchmark.pedantic(run_reduced, rounds=1, iterations=1)
    # the paper's finding: measured P95 waiting times are below or close to
    # the SLO deadline across arrival rates, service rates, and deadlines
    assert fraction_meeting_slo(points, tolerance=0.4) >= 0.8
    # container counts grow with the arrival rate for every configuration
    for mu in (5.0, 10.0):
        for slo in (0.1, 0.2):
            series = sorted(
                (p.arrival_rate, p.containers)
                for p in points
                if p.mu == mu and p.slo_deadline == slo
            )
            counts = [c for _, c in series]
            assert counts == sorted(counts)
