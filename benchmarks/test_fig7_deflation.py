"""Figure 7: effect of CPU deflation on service time for all six functions."""

from repro.experiments.fig7_deflation import (
    FIG7_FUNCTIONS,
    run_fig7,
    slowdown_at,
    small_penalty_at_threshold,
)


def test_fig7_deflation_response_curves(benchmark):
    points = benchmark.pedantic(lambda: run_fig7(measured=False), rounds=1, iterations=1)
    # the paper's finding: for five of the six functions, 30% deflation only
    # costs a small service-time penalty...
    verdicts = small_penalty_at_threshold(points, threshold=0.3, max_penalty=0.2)
    assert all(verdicts.values())
    # ...while MobileNet (saturated at 2 vCPU) slows down roughly in
    # proportion to the reclaimed CPU
    assert slowdown_at(points, "mobilenet", 0.5) >= 1.7
    # beyond the slack region service time rises monotonically for everyone
    for name in FIG7_FUNCTIONS:
        series = sorted((p.deflation_ratio, p.service_time) for p in points
                        if p.function_name == name)
        values = [v for _, v in series]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))


def test_fig7_measured_in_simulator(benchmark):
    """Verify the simulator's containers actually honour the deflation curves."""
    points = benchmark.pedantic(
        lambda: run_fig7(functions=("squeezenet", "mobilenet"),
                         deflation_ratios=(0.0, 0.3, 0.5), measured=True, duration=60.0),
        rounds=1, iterations=1,
    )
    squeeze_30 = slowdown_at(points, "squeezenet", 0.3)
    mobile_30 = slowdown_at(points, "mobilenet", 0.3)
    assert squeeze_30 < mobile_30
