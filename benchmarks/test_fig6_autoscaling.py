"""Figure 6: model-driven autoscaling tracks two time-varying workloads."""

from repro.experiments.fig6_autoscaling import (
    default_rate_profiles,
    run_fig6,
    tracking_correlation,
)


def test_fig6_autoscaling_tracks_workload(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig6(step_duration=40.0, seed=61), rounds=1, iterations=1
    )
    micro_rates, mobile_rates = default_rate_profiles()
    # allocations rise and fall with each function's own workload
    assert tracking_correlation(micro_rates, 40.0, result.micro_timeline) > 0.4
    assert tracking_correlation(mobile_rates, 40.0, result.mobilenet_timeline) > 0.4
    # the micro-benchmark's peak allocation (30 req/s) clearly exceeds its
    # trough allocation (5 req/s)
    _, micro_counts = result.micro_timeline
    assert max(micro_counts) >= min(c for c in micro_counts if c > 0) + 2
