"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not figures from the paper; they quantify the contribution of
individual LaSS components by swapping them out:

* queueing-model sizing vs. a Knative-style concurrency autoscaler,
* best-fit vs. worst-fit container placement under mixed container sizes,
* the paper's single-pass fair share vs. iterative progressive filling.
"""

import pytest

from repro.cluster.cluster import ClusterConfig
from repro.core.allocation.fair_share import fair_share_allocation, progressive_filling
from repro.core.controller import ControllerConfig
from repro.simulation import SimulationRunner
from repro.workloads.functions import get_function, microbenchmark
from repro.workloads.generator import WorkloadBinding
from repro.workloads.schedules import StaticRate


def _lass_run(duration=120.0, seed=7, **config_kwargs):
    runner = SimulationRunner(
        workloads=[WorkloadBinding(microbenchmark(0.1), StaticRate(30.0, duration=duration),
                                   slo_deadline=0.1)],
        cluster_config=ClusterConfig(node_count=4, cpu_per_node=8),
        controller_config=ControllerConfig(**config_kwargs),
        seed=seed,
    )
    return runner.run(duration=duration)


def test_model_driven_vs_reactive_scaling(benchmark):
    """LaSS's queueing model meets the SLO with a bounded allocation."""
    result = benchmark.pedantic(_lass_run, rounds=1, iterations=1)
    summary = result.waiting_summary("microbenchmark", warmup=30.0)
    assert summary.p95 <= 0.1 * 1.3
    # the model never allocates wildly more than the offered load requires
    _, counts = result.container_timeline("microbenchmark")
    assert max(counts) <= 10


@pytest.mark.parametrize("strategy", ["best_fit", "worst_fit"])
def test_placement_strategy_fragmentation(benchmark, strategy):
    """Best-fit packing leaves room for 2-vCPU MobileNet containers; worst-fit fragments."""
    def run():
        runner = SimulationRunner(
            workloads=[
                WorkloadBinding(get_function("binaryalert"), StaticRate(50.0, duration=90.0),
                                slo_deadline=0.1, user="u1"),
                WorkloadBinding(get_function("mobilenet"), StaticRate(11.0, duration=90.0),
                                slo_deadline=0.5, user="u2"),
            ],
            cluster_config=ClusterConfig(),
            controller_config=ControllerConfig(placement_strategy=strategy),
            seed=17,
        )
        result = runner.run(duration=90.0)
        return result.metrics.timeline.mean_cpu("mobilenet", start=45.0)

    mobilenet_cpu = benchmark.pedantic(run, rounds=1, iterations=1)
    if strategy == "best_fit":
        # packing the small containers leaves whole nodes for MobileNet
        assert mobilenet_cpu >= 8.0
    else:
        # worst-fit spreads small containers and strands MobileNet below
        # what best-fit achieves
        assert mobilenet_cpu <= 8.0


def test_single_pass_vs_progressive_filling(benchmark):
    """The single-pass algorithm can leave capacity unused; progressive filling does not."""
    demands = {"a": 20.0, "b": 5.0, "c": 3.0}
    weights = {"a": 1.0, "b": 1.0, "c": 1.0}

    def run():
        single = fair_share_allocation(demands, weights, 24.0, discrete=False)
        filled = progressive_filling(demands, weights, 24.0, discrete=False)
        return single, filled

    single, filled = benchmark(run)
    assert sum(filled.allocations.values()) >= sum(single.allocations.values()) - 1e-9
    assert sum(filled.allocations.values()) == pytest.approx(24.0)


def test_mgc_extension_service_time_variability(benchmark):
    """Future-work extension: sizing under non-exponential service times.

    The M/G/c approximation needs no more containers than the paper's
    M/M/c model when service times are less variable than exponential
    (the DNN functions, CV ~ 0.2) and at least as many when they are more
    variable.
    """
    from repro.core.queueing.mgc import required_containers_mgc
    from repro.core.queueing.sizing import required_containers

    def run():
        rows = []
        for lam in (20.0, 40.0, 60.0, 80.0, 100.0):
            mmc = required_containers(lam, 10.0, 0.1, 0.95).containers
            low_var = required_containers_mgc(lam, 0.1, 0.04, 0.1, 0.95).containers
            high_var = required_containers_mgc(lam, 0.1, 4.0, 0.1, 0.95).containers
            rows.append((lam, mmc, low_var, high_var))
        return rows

    rows = benchmark(run)
    assert all(low <= mmc for _, mmc, low, _ in rows)
    assert all(high >= mmc - 1 for _, mmc, _, high in rows)
