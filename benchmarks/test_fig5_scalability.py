"""Figure 5: compute time of the allocation algorithm vs. number of containers."""

import pytest

from repro.core.queueing.sizing import (
    required_containers_fast,
    required_containers_naive,
)
from repro.experiments.fig5_scalability import max_time_seconds, run_fig5


def test_fig5_scalability_curves(benchmark):
    points = benchmark.pedantic(
        lambda: run_fig5(container_counts=(10, 100, 500, 1000), repeats=1),
        rounds=1, iterations=1,
    )
    # the paper's finding: the optimised implementation reacts in well under
    # a second even with 1000 running containers and a doubled workload
    assert max_time_seconds(points, "fast") < 1.0
    # and the naive implementation's cost grows with the container count
    naive_2x = {p.current_containers: p.compute_seconds for p in points
                if p.implementation == "naive" and p.spike == "2x"}
    assert naive_2x[1000] > naive_2x[10]


@pytest.mark.parametrize("containers", [100, 500, 1000])
def test_fast_sizing_latency(benchmark, containers):
    """Micro-benchmark: one sizing decision after a 2x spike (the Julia-path stand-in)."""
    lam = 0.9 * containers * 10.0 * 2.0
    result = benchmark(
        required_containers_fast, lam, 10.0, 0.1, 0.99, containers
    )
    assert result.containers >= containers


@pytest.mark.parametrize("containers", [10, 50, 100])
def test_naive_sizing_latency(benchmark, containers):
    """Micro-benchmark: the same decision through the naive (Scala stand-in) path."""
    lam = 0.9 * containers * 10.0 * 2.0
    result = benchmark(
        required_containers_naive, lam, 10.0, 0.1, 0.99, containers
    )
    assert result.containers >= containers
