"""Benchmark scenario definitions.

Each scenario is a plain function that builds its workload through the
public API only (``SimulationEngine``, ``SharedQueueDispatcher``,
``SimulationRunner``), so the same scenario code can time the seed
implementation and every later fast path.  Scenarios return a dict of
measurements; the harness in :mod:`benchmarks.perf.run_perf` wraps them
with repetition and JSON output.
"""

from __future__ import annotations

import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import Callable, Dict, Optional

_SRC = Path(__file__).resolve().parents[2] / "src"
if str(_SRC) not in sys.path:  # allow running as a plain script
    sys.path.insert(0, str(_SRC))

from repro.cluster.container import Container  # noqa: E402
from repro.core.dispatch import SharedQueueDispatcher  # noqa: E402
from repro.sim.engine import SimulationEngine  # noqa: E402
from repro.sim.request import Request  # noqa: E402
from repro.simulation import SimulationRunner  # noqa: E402
from repro.workloads.functions import microbenchmark  # noqa: E402
from repro.workloads.generator import WorkloadBinding  # noqa: E402
from repro.workloads.schedules import StaticRate  # noqa: E402


def bench_event_loop(
    n_events: int = 1_000_000,
    engine_factory: Callable[[], object] = SimulationEngine,
) -> Dict[str, float]:
    """Pure schedule + fire of ``n_events`` trivial events.

    Half the events are pre-scheduled up front; the other half form a
    self-rescheduling chain, which is the pattern the simulator actually
    produces (completions scheduling the next completion).
    """
    engine = engine_factory()
    # Measure each engine's best fire-and-forget scheduling path: the seed
    # engine only has schedule(); the fast engine adds args-only call_later.
    sched = getattr(engine, "call_later", None) or engine.schedule
    fired = [0]

    def tick() -> None:
        fired[0] += 1

    half = n_events // 2
    start = time.perf_counter()
    for i in range(half):
        sched(float(i % 997) + 1.0, tick)

    remaining = [n_events - half]

    def chain() -> None:
        fired[0] += 1
        remaining[0] -= 1
        if remaining[0] > 0:
            sched(0.5, chain)

    engine.schedule(0.25, chain)
    engine.run()
    elapsed = time.perf_counter() - start
    assert fired[0] == n_events, (fired[0], n_events)
    return {"events": float(n_events), "seconds": elapsed, "events_per_sec": n_events / elapsed}


def bench_schedule_many(
    n_events: int = 1_000_000,
    engine_factory: Callable[[], object] = SimulationEngine,
) -> Optional[Dict[str, float]]:
    """Batch-scheduling throughput via ``schedule_many`` (fast engines only).

    Returns ``None`` when the engine does not expose ``schedule_many``
    (the seed engine), so the harness can skip the row.
    """
    engine = engine_factory()
    if not hasattr(engine, "schedule_many"):
        return None
    fired = [0]

    def tick(t: float) -> None:
        fired[0] += 1

    start = time.perf_counter()
    batch = 4096
    scheduled = 0
    base = 1.0
    while scheduled < n_events:
        count = min(batch, n_events - scheduled)
        engine.schedule_many((base + i * 1e-6, tick, (base + i * 1e-6,)) for i in range(count))
        scheduled += count
        base += 1.0
        engine.run(until=base - 0.5)
    engine.run()
    elapsed = time.perf_counter() - start
    assert fired[0] == n_events, (fired[0], n_events)
    return {"events": float(n_events), "seconds": elapsed, "events_per_sec": n_events / elapsed}


def bench_dispatch(
    n_requests: int = 100_000, n_containers: int = 16, incremental: bool = True
) -> Dict[str, float]:
    """Dispatcher throughput: submit/complete cycles over warm containers.

    Requests are injected faster than the containers can serve them, so
    the shared queue is continuously exercised (submit, queue, drain on
    completion) — the controller data path minus rate estimation.

    ``incremental=True`` uses the cluster-attached idle index (the PR-1
    fast path) when the dispatcher supports it; ``incremental=False``
    forces the seed calling convention of passing the container list on
    every submit.  On the seed dispatcher the flag is ignored.
    """
    engine = SimulationEngine()
    dispatcher = SharedQueueDispatcher(engine)
    containers = []
    for _ in range(n_containers):
        c = Container("fn", "node-0", standard_cpu=1.0, memory_mb=128.0)
        c.mark_warm(0.0)
        containers.append(c)

    use_index = incremental and hasattr(dispatcher, "watch_container")
    if use_index:
        for c in containers:
            dispatcher.watch_container(c)

    service = 1e-4
    gap = service / (n_containers * 2)  # 2x overload: the queue stays busy

    if use_index:
        def inject(i: int) -> None:
            dispatcher.submit(Request(function_name="fn", arrival_time=engine.now, work=service))
    else:
        def inject(i: int) -> None:
            dispatcher.submit(
                Request(function_name="fn", arrival_time=engine.now, work=service), containers
            )

    start = time.perf_counter()
    for i in range(n_requests):
        engine.schedule_at(1.0 + i * gap, inject, i)
    engine.run()
    elapsed = time.perf_counter() - start
    done = sum(c.completed_requests for c in containers)
    assert done == n_requests, (done, n_requests)
    return {
        "requests": float(n_requests),
        "seconds": elapsed,
        "dispatches_per_sec": n_requests / elapsed,
    }


def bench_end_to_end(
    functions: int = 4,
    rate_per_function: float = 50.0,
    duration: float = 300.0,
    seed: int = 7,
) -> Dict[str, float]:
    """A Figure 5-style scalability run through the full stack.

    Several identical functions under sustained Poisson load on a larger
    cluster: arrivals, rate estimation, autoscaling, dispatch, execution
    and metrics all on the hot path.  Wall-clock seconds and simulated
    events/sec are the headline numbers.
    """
    bindings = []
    for i in range(functions):
        profile = replace(microbenchmark(0.05), name=f"bench-fn-{i}")
        bindings.append(
            WorkloadBinding(
                profile=profile,
                schedule=StaticRate(rate_per_function, duration=duration),
                slo_deadline=0.1,
            )
        )
    from repro.cluster.cluster import ClusterConfig

    runner = SimulationRunner(
        workloads=bindings,
        cluster_config=ClusterConfig(node_count=8, cpu_per_node=8.0),
        seed=seed,
        warm_start_containers={b.profile.name: 2 for b in bindings},
    )
    start = time.perf_counter()
    result = runner.run(duration=duration)
    elapsed = time.perf_counter() - start
    arrivals = sum(result.generated_requests.values())
    completions = result.metrics.counters.get("completions", 0)
    return {
        "seconds": elapsed,
        "arrivals": float(arrivals),
        "completions": float(completions),
        "sim_events": float(runner.engine.events_processed),
        "sim_events_per_sec": runner.engine.events_processed / elapsed,
        "p95_wait": result.waiting_summary(warmup=30.0).p95,
    }
