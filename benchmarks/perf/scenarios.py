"""Benchmark scenario definitions.

Each scenario is a plain function that builds its workload through the
public API only (``SimulationEngine``, ``SharedQueueDispatcher``,
``SimulationRunner``), so the same scenario code can time the seed
implementation and every later fast path.  Scenarios return a dict of
measurements; the harness in :mod:`benchmarks.perf.run_perf` wraps them
with repetition and JSON output.
"""

from __future__ import annotations

import math
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import Callable, Dict, Optional

# allow running as a plain script: src/ for the library, benchmarks/ for
# the sibling baseline modules deferred into function bodies
for _path in (Path(__file__).resolve().parents[2] / "src",
              Path(__file__).resolve().parents[1]):
    if str(_path) not in sys.path:
        sys.path.insert(0, str(_path))

from repro.cluster.container import Container  # noqa: E402
from repro.core.dispatch import SharedQueueDispatcher  # noqa: E402
from repro.sim.engine import SimulationEngine  # noqa: E402
from repro.sim.request import Request  # noqa: E402
from repro.simulation import SimulationRunner  # noqa: E402
from repro.workloads.functions import microbenchmark  # noqa: E402
from repro.workloads.generator import WorkloadBinding  # noqa: E402
from repro.workloads.schedules import StaticRate  # noqa: E402


def bench_event_loop(
    n_events: int = 1_000_000,
    engine_factory: Callable[[], object] = SimulationEngine,
) -> Dict[str, float]:
    """Pure schedule + fire of ``n_events`` trivial events.

    Half the events are pre-scheduled up front; the other half form a
    self-rescheduling chain, which is the pattern the simulator actually
    produces (completions scheduling the next completion).
    """
    engine = engine_factory()
    # Measure each engine's best fire-and-forget scheduling path: the seed
    # engine only has schedule(); the fast engine adds args-only call_later.
    sched = getattr(engine, "call_later", None) or engine.schedule
    fired = [0]

    def tick() -> None:
        fired[0] += 1

    half = n_events // 2
    start = time.perf_counter()
    for i in range(half):
        sched(float(i % 997) + 1.0, tick)

    remaining = [n_events - half]

    def chain() -> None:
        fired[0] += 1
        remaining[0] -= 1
        if remaining[0] > 0:
            sched(0.5, chain)

    engine.schedule(0.25, chain)
    engine.run()
    elapsed = time.perf_counter() - start
    assert fired[0] == n_events, (fired[0], n_events)
    return {"events": float(n_events), "seconds": elapsed, "events_per_sec": n_events / elapsed}


def bench_schedule_many(
    n_events: int = 1_000_000,
    engine_factory: Callable[[], object] = SimulationEngine,
) -> Optional[Dict[str, float]]:
    """Batch-scheduling throughput via ``schedule_many`` (fast engines only).

    Returns ``None`` when the engine does not expose ``schedule_many``
    (the seed engine), so the harness can skip the row.
    """
    engine = engine_factory()
    if not hasattr(engine, "schedule_many"):
        return None
    fired = [0]

    def tick(t: float) -> None:
        fired[0] += 1

    start = time.perf_counter()
    batch = 4096
    scheduled = 0
    base = 1.0
    while scheduled < n_events:
        count = min(batch, n_events - scheduled)
        engine.schedule_many((base + i * 1e-6, tick, (base + i * 1e-6,)) for i in range(count))
        scheduled += count
        base += 1.0
        engine.run(until=base - 0.5)
    engine.run()
    elapsed = time.perf_counter() - start
    assert fired[0] == n_events, (fired[0], n_events)
    return {"events": float(n_events), "seconds": elapsed, "events_per_sec": n_events / elapsed}


def bench_dispatch(
    n_requests: int = 100_000, n_containers: int = 16, incremental: bool = True
) -> Dict[str, float]:
    """Dispatcher throughput: submit/complete cycles over warm containers.

    Requests are injected faster than the containers can serve them, so
    the shared queue is continuously exercised (submit, queue, drain on
    completion) — the controller data path minus rate estimation.

    ``incremental=True`` uses the cluster-attached idle index (the PR-1
    fast path) when the dispatcher supports it; ``incremental=False``
    forces the seed calling convention of passing the container list on
    every submit.  On the seed dispatcher the flag is ignored.
    """
    engine = SimulationEngine()
    dispatcher = SharedQueueDispatcher(engine)
    containers = []
    for _ in range(n_containers):
        c = Container("fn", "node-0", standard_cpu=1.0, memory_mb=128.0)
        c.mark_warm(0.0)
        containers.append(c)

    use_index = incremental and hasattr(dispatcher, "watch_container")
    if use_index:
        for c in containers:
            dispatcher.watch_container(c)

    service = 1e-4
    gap = service / (n_containers * 2)  # 2x overload: the queue stays busy

    if use_index:
        def inject(i: int) -> None:
            dispatcher.submit(Request(function_name="fn", arrival_time=engine.now, work=service))
    else:
        def inject(i: int) -> None:
            dispatcher.submit(
                Request(function_name="fn", arrival_time=engine.now, work=service), containers
            )

    start = time.perf_counter()
    for i in range(n_requests):
        engine.schedule_at(1.0 + i * gap, inject, i)
    engine.run()
    elapsed = time.perf_counter() - start
    done = sum(c.completed_requests for c in containers)
    assert done == n_requests, (done, n_requests)
    return {
        "requests": float(n_requests),
        "seconds": elapsed,
        "dispatches_per_sec": n_requests / elapsed,
    }


def bench_end_to_end(
    functions: int = 4,
    rate_per_function: float = 50.0,
    duration: float = 300.0,
    seed: int = 7,
    data_plane: str = "event",
) -> Dict[str, float]:
    """A Figure 5-style scalability run through the full stack.

    Several identical functions under sustained Poisson load on a larger
    cluster: arrivals, rate estimation, autoscaling, dispatch, execution
    and metrics all on the hot path.  Wall-clock seconds and simulated
    events/sec are the headline numbers.  ``data_plane`` selects the
    request lifecycle implementation (``"event"`` or ``"columnar"``).
    """
    bindings = []
    for i in range(functions):
        profile = replace(microbenchmark(0.05), name=f"bench-fn-{i}")
        bindings.append(
            WorkloadBinding(
                profile=profile,
                schedule=StaticRate(rate_per_function, duration=duration),
                slo_deadline=0.1,
            )
        )
    from repro.cluster.cluster import ClusterConfig

    runner = SimulationRunner(
        workloads=bindings,
        cluster_config=ClusterConfig(node_count=8, cpu_per_node=8.0),
        seed=seed,
        warm_start_containers={b.profile.name: 2 for b in bindings},
        data_plane=data_plane,
    )
    start = time.perf_counter()
    result = runner.run(duration=duration)
    elapsed = time.perf_counter() - start
    arrivals = sum(result.generated_requests.values())
    completions = result.metrics.counters.get("completions", 0)
    return {
        "seconds": elapsed,
        "arrivals": float(arrivals),
        "completions": float(completions),
        "sim_events": float(runner.engine.events_processed),
        "sim_events_per_sec": runner.engine.events_processed / elapsed,
        "p95_wait": result.waiting_summary(warmup=30.0).p95,
    }


def bench_data_plane(
    functions: int = 8,
    rate_per_function: float = 100.0,
    duration: float = 300.0,
    seed: int = 7,
) -> Dict[str, float]:
    """Columnar vs event-level data plane on the fig5-style workload.

    Runs the identical workload through both request-lifecycle
    implementations in the same process (resetting the request-id
    counter in between so both planes see the same id stream) and
    reports both wall-clocks plus the in-process ratio.  The recorded
    seed end-to-end baseline provides the third reference point in
    ``run_perf`` (the "data-plane 10x" trajectory number).
    """
    import repro.sim.request as request_module
    import itertools

    timings = {}
    completions = {}
    for plane in ("event", "columnar"):
        request_module._request_counter = itertools.count(0)
        sample = bench_end_to_end(
            functions=functions,
            rate_per_function=rate_per_function,
            duration=duration,
            seed=seed,
            data_plane=plane,
        )
        timings[plane] = sample["seconds"]
        completions[plane] = sample["completions"]
    # both planes must have simulated the same workload, or the ratio
    # is meaningless (the differential suite checks full byte-equality)
    assert completions["event"] == completions["columnar"], completions
    return {
        "seconds": timings["columnar"],
        "event_seconds": timings["event"],
        "completions": completions["columnar"],
        "speedup_vs_event_plane": timings["event"] / timings["columnar"],
    }


def bench_record_path(n_requests: int = 200_000) -> Dict[str, float]:
    """Per-request record path: allocate, transition and collect requests.

    Guards the ``Request`` slots layout: before ``slots=True`` every
    request carried a redundant per-instance ``__dict__`` allocation in
    the hottest loop of the simulator.  The assertion fails if the class
    ever regresses to dict-backed instances, and the rate makes the
    regression visible in the BENCH trajectory even if the assert were
    removed.
    """
    from repro.metrics.collector import MetricsCollector

    probe = Request(function_name="probe", arrival_time=0.0, work=0.01)
    assert not hasattr(probe, "__dict__"), (
        "Request grew a per-instance __dict__ back; keep slots=True"
    )
    collector = MetricsCollector()
    start = time.perf_counter()
    for i in range(n_requests):
        request = Request(function_name="fn", arrival_time=i * 1e-4, work=0.01)
        request.mark_running(request.arrival_time, "c-0", "node-0", cold_start=False)
        request.mark_completed(request.arrival_time + 0.01)
        collector.record_request(request)
    elapsed = time.perf_counter() - start
    return {
        "requests": float(n_requests),
        "seconds": elapsed,
        "records_per_sec": n_requests / elapsed,
    }


def bench_trace_replay(
    functions: int = 1000, duration_minutes: int = 720,
    chunk_minutes: int = 360, sketch_size: int = 4096,
) -> Dict[str, float]:
    """Sustained streaming-replay throughput of one ``trace_replay`` shard.

    Runs a single-shard slice of the ``fig9-at-scale`` population
    through the constant-memory kernel (chunked synthesis → counters →
    reservoir sketch) and reports invocations/sec — the BENCH number the
    "planet-scale replay" claim is tracked by.
    """
    from repro.scenarios import build
    from repro.scenarios.trace_shard import run_trace_replay

    sweep = build(
        "fig9-at-scale", functions=functions,
        duration_minutes=duration_minutes, shards=1,
        chunk_minutes=chunk_minutes, sketch_size=sketch_size,
    )
    spec = next(iter(sweep.expand()))
    start = time.perf_counter()
    outcome = run_trace_replay(spec)
    elapsed = time.perf_counter() - start
    invocations = outcome.data["replay"]["invocations"]
    return {
        "invocations": float(invocations),
        "seconds": elapsed,
        "invocations_per_sec": invocations / elapsed,
    }


def _drifting_rate(function_index: int, epoch: int) -> float:
    """Deterministic slowly-drifting per-function arrival rate.

    A per-function base rate modulated by a slow sinusoid (period 25
    epochs, ±12 %), quantised to 2 decimals so sweep-style revisits of
    the same operating point actually repeat — the pattern real control
    loops and parameter sweeps produce.
    """
    base = 60.0 + 17.0 * function_index
    phase = 2.0 * math.pi * (epoch % 25) / 25.0 + 0.7 * function_index
    return max(0.1, round(base * (1.0 + 0.12 * math.sin(phase)), 2))


def bench_sizing_solver(
    functions: int = 64, epochs: int = 50, mu: float = 10.0,
    wait_budget: float = 0.1, percentile: float = 0.95,
) -> Dict[str, float]:
    """Warm-started epoch-sequence sizing vs the naive per-epoch search.

    Replays ``epochs`` control epochs over ``functions`` functions whose
    arrival rates drift slowly (the controller's real workload shape).
    The baseline re-runs the deliberately naive Algorithm 1
    (pure-Python, term-by-term — the paper's "Scala path") from scratch
    for every function every epoch; the live path sizes each epoch with
    one batched, memoized, warm-started ``SizingSolver`` call.  Both
    must return identical container counts — the assertion at the end
    is part of the benchmark's contract.
    """
    from repro.core.queueing.sizing import required_containers_naive  # noqa: E402
    from repro.core.queueing.solver import SizingQuery, SizingSolver  # noqa: E402

    grid = [
        [_drifting_rate(i, e) for i in range(functions)]
        for e in range(epochs)
    ]

    start = time.perf_counter()
    naive_counts = [
        [
            required_containers_naive(lam, mu, wait_budget, percentile).containers
            for lam in row
        ]
        for row in grid
    ]
    naive_seconds = time.perf_counter() - start

    solver = SizingSolver()
    start = time.perf_counter()
    solver_counts = []
    for row in grid:
        queries = [
            SizingQuery(lam=lam, mu=mu, wait_budget=wait_budget,
                        percentile=percentile, key=i)
            for i, lam in enumerate(row)
        ]
        solver_counts.append([r.containers for r in solver.solve_batch(queries)])
    solver_seconds = time.perf_counter() - start

    assert solver_counts == naive_counts, "solver diverged from the naive oracle"
    solves = float(functions * epochs)
    return {
        "solves": solves,
        "naive_seconds": naive_seconds,
        "solver_seconds": solver_seconds,
        "solves_per_sec": solves / solver_seconds,
        "naive_solves_per_sec": solves / naive_seconds,
        "speedup": naive_seconds / solver_seconds,
    }


def bench_epoch_tick(
    functions: int = 64, epochs: int = 30, arrival_rate: float = 240.0,
    baseline: bool = False,
) -> Dict[str, float]:
    """Controller epoch-tick throughput with the control plane saturated.

    Builds a real controller over a large cluster, feeds each function a
    burst-window arrival history (so the rate estimators report a high
    per-function λ), runs one untimed warm-up epoch (which creates the
    steady-state container fleet), then times ``epochs`` full
    ``run_epoch`` calls: rate estimation → EWMA → batched model solves →
    scaling plan → metrics snapshot.  ``baseline=True`` injects the
    frozen seed sizing path (per-function, per-epoch cold searches) into
    the same live controller, so the speedup isolates the solver.
    """
    from repro.cluster.cluster import ClusterConfig, EdgeCluster, FunctionDeployment  # noqa: E402
    from repro.core.controller import ControllerConfig, LassController  # noqa: E402

    engine = SimulationEngine()
    node_cpu = 48.0
    cluster = EdgeCluster(engine, ClusterConfig(node_count=functions, cpu_per_node=node_cpu))
    names = [f"tick-fn-{i}" for i in range(functions)]
    for name in names:
        cluster.deploy(FunctionDeployment(name=name, cpu=1.0, memory_mb=128.0,
                                          slo_deadline=0.1))
    controller = LassController(
        engine, cluster, ControllerConfig(),
        default_service_rates={name: 10.0 for name in names},
    )
    if baseline:
        from perf.baseline_sizing import BaselineSizingSolver  # noqa: E402

        controller.autoscaler.solver = BaselineSizingSolver()

    # Fill each function's short rate window with a spread of per-function
    # rates (±25 % around arrival_rate).  The estimators have no
    # bulk-ingest API — this reaches into controller state the same way
    # the dispatch data path does, without paying for request execution.
    now = 130.0
    for i, name in enumerate(names):
        estimator = controller._functions[name].rate_estimator
        rate = arrival_rate * (0.75 + 0.5 * i / max(1, functions - 1))
        count = int(rate * 10.0)
        for k in range(count):
            estimator.record_arrival(now - 10.0 + 10.0 * (k + 0.5) / count)
    engine.schedule(now, lambda: None)
    engine.run()

    controller.run_epoch()  # untimed warm-up: builds the container fleet
    start = time.perf_counter()
    for _ in range(epochs):
        controller.run_epoch()
    elapsed = time.perf_counter() - start
    return {
        "epochs": float(epochs),
        "functions": float(functions),
        "seconds": elapsed,
        "seconds_per_epoch": elapsed / epochs,
        "epochs_per_sec": epochs / elapsed,
        "containers": float(len(cluster.all_containers())),
    }
