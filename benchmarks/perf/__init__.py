"""Performance benchmark harness (events/sec, dispatches/sec, end-to-end runs).

Unlike the figure-regeneration benchmarks in the parent directory, these
are *trajectory* benchmarks: every PR that touches the hot path re-runs
them and records the numbers in a ``BENCH_<PR>.json`` file at the repo
root, so regressions and wins are visible across the whole history.

Run with::

    PYTHONPATH=src python benchmarks/perf/run_perf.py --quick

See ``EXPERIMENTS.md`` ("Performance") for the JSON schema and
methodology.
"""
