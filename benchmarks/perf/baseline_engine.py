"""Frozen copy of the PR-0 *seed* simulation engine — benchmark baseline only.

This file is a verbatim snapshot of ``src/repro/sim/engine.py`` as of the
seed commit (dataclass events, per-event kwargs dicts).  It exists so the
perf harness can measure the live engine against the seed implementation
in the same process under identical conditions.  Never import it from
production code and never "fix" it: its slowness is the point.

Original docstring:


The engine maintains a priority queue of timestamped events.  Each event
carries a callback; running the simulation repeatedly pops the earliest
event and invokes its callback, which may schedule further events.

Determinism guarantees
----------------------
* Events with identical timestamps are executed in the order they were
  scheduled (a monotonically increasing sequence number breaks ties).
* All randomness must come from :class:`repro.sim.rng.RngStreams`, which
  is seeded explicitly, so a simulation run is a pure function of its
  configuration and seed.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised when the engine is used incorrectly (e.g. scheduling in the past)."""


class _StopSimulation(Exception):
    """Internal control-flow exception used to stop the event loop."""


def stop_simulation() -> None:
    """Immediately stop the currently running simulation.

    May only be called from inside an event callback.
    """
    raise _StopSimulation()


@dataclass(order=True)
class Event:
    """A scheduled event.

    Events are ordered by ``(time, priority, sequence)``.  ``priority``
    allows control-plane events (e.g. the end-of-epoch controller tick)
    to run before or after data-path events that share a timestamp.
    """

    time: float
    priority: int
    sequence: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    kwargs: dict = field(compare=False, default_factory=dict)
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True


class SimulationEngine:
    """A minimal but complete discrete-event simulation engine.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock, in seconds.

    Examples
    --------
    >>> engine = SimulationEngine()
    >>> fired = []
    >>> _ = engine.schedule(1.5, lambda: fired.append(engine.now))
    >>> engine.run()
    >>> fired
    [1.5]
    """

    #: Default priority for data-path events.
    PRIORITY_DATA = 0
    #: Priority for control-plane events; runs after data events at the same time.
    PRIORITY_CONTROL = 10

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[Event] = []
        self._sequence = 0
        self._events_processed = 0
        self._running = False

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_DATA,
        **kwargs: Any,
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which can be cancelled.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        if math.isnan(delay) or math.isinf(delay):
            raise SimulationError(f"invalid delay: {delay}")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority, **kwargs)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_DATA,
        **kwargs: Any,
    ) -> Event:
        """Schedule ``callback`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time:.6f}, which is before now={self._now:.6f}"
            )
        event = Event(
            time=float(time),
            priority=priority,
            sequence=self._sequence,
            callback=callback,
            args=args,
            kwargs=kwargs,
        )
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the clock would advance strictly past this time.
            Events scheduled exactly at ``until`` are executed.
        max_events:
            Safety valve; stop after this many events.

        Returns
        -------
        float
            The simulation time when the loop stopped.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run() call)")
        self._running = True
        executed = 0
        try:
            while self._queue:
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    self._now = until
                    break
                heapq.heappop(self._queue)
                self._now = event.time
                try:
                    event.callback(*event.args, **event.kwargs)
                except _StopSimulation:
                    break
                self._events_processed += 1
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
            else:
                # queue drained; if an 'until' horizon was given, advance to it
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def step(self) -> bool:
        """Execute a single event.  Returns ``False`` if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            try:
                event.callback(*event.args, **event.kwargs)
            except _StopSimulation:
                return False
            self._events_processed += 1
            return True
        return False

    def reset(self, start_time: float = 0.0) -> None:
        """Drop all pending events and rewind the clock."""
        if self._running:
            raise SimulationError("cannot reset a running engine")
        self._queue.clear()
        self._now = float(start_time)
        self._sequence = 0
        self._events_processed = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulationEngine(now={self._now:.3f}, pending={len(self._queue)}, "
            f"processed={self._events_processed})"
        )
