"""Perf-benchmark CLI: run the trajectory benchmarks and emit ``BENCH_*.json``.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_perf.py [--quick] [--output BENCH_PR9.json]
    PYTHONPATH=src python benchmarks/perf/run_perf.py --compare BENCH_PR1.json

Two kinds of baseline are reported:

* ``in-process``: the event-loop benchmarks run the frozen seed engine
  (:mod:`benchmarks.perf.baseline_engine`), and the control-plane
  benchmarks run the naive Algorithm 1 / the frozen seed sizing path
  (:mod:`benchmarks.perf.baseline_sizing`), in the same process — so
  those speedups are measured under identical conditions on every host.
* ``recorded``: the dispatcher and end-to-end benchmarks exercise the
  whole current stack, which cannot be swapped back to the seed code at
  runtime; their baselines come from ``seed_baseline.json``, recorded on
  the PR-0 tree (machine-dependent — regenerate both files together when
  the host changes).

``--compare`` loads a prior ``BENCH_*.json`` and prints per-benchmark
deltas, so the perf trajectory across PRs is inspectable without manual
JSON diffing.

See EXPERIMENTS.md ("Performance") for the JSON schema.
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import sys
import time
from pathlib import Path
from typing import Optional

_HERE = Path(__file__).resolve().parent
_REPO = _HERE.parents[1]
for path in (str(_REPO / "src"), str(_REPO / "benchmarks")):
    if path not in sys.path:
        sys.path.insert(0, path)

from perf import scenarios  # noqa: E402
from perf.baseline_engine import SimulationEngine as BaselineEngine  # noqa: E402

SCHEMA_VERSION = 1


def _bench_row(name, unit, value, baseline, baseline_source, params):
    row = {
        "name": name,
        "unit": unit,
        "value": value,
        "params": params,
    }
    if baseline is not None:
        row["baseline"] = baseline
        row["baseline_source"] = baseline_source
        row["speedup"] = value / baseline if baseline else None
    return row


def _best_of(repeats: int, bench, *args, better="max", key=None, **kwargs):
    """Run ``bench`` ``repeats`` times and keep the best result.

    Benchmarks in one process disturb each other through GC pressure and
    allocator state; best-of-N is the standard way to approximate the
    undisturbed number.  ``better`` selects the direction on ``key``.
    """
    best = None
    for _ in range(repeats):
        gc.collect()
        result = bench(*args, **kwargs)
        if result is None:
            return None
        if best is None:
            best = result
        else:
            a, b = result[key], best[key]
            if (better == "max" and a > b) or (better == "min" and a < b):
                best = result
    return best


def run_all(quick: bool, repeats: Optional[int] = None) -> dict:
    """Run every benchmark and return the BENCH document."""
    n_events = 200_000 if quick else 1_000_000
    n_dispatch = 20_000 if quick else 100_000
    if repeats is None:
        repeats = 1 if quick else 3
    e2e_kwargs = (
        {"functions": 4, "rate_per_function": 50.0, "duration": 120.0}
        if quick
        else {"functions": 8, "rate_per_function": 100.0, "duration": 300.0}
    )
    seed_baseline = {}
    baseline_path = _HERE / "seed_baseline.json"
    if baseline_path.exists():
        seed_baseline = json.loads(baseline_path.read_text())

    rows = []

    live = _best_of(repeats, scenarios.bench_event_loop, n_events, key="events_per_sec")
    base = _best_of(
        repeats, scenarios.bench_event_loop, n_events,
        engine_factory=BaselineEngine, key="events_per_sec",
    )
    rows.append(
        _bench_row(
            "event_loop", "events_per_sec", live["events_per_sec"],
            base["events_per_sec"], "in-process seed engine copy",
            {"n_events": n_events},
        )
    )

    many = _best_of(repeats, scenarios.bench_schedule_many, n_events, key="events_per_sec")
    if many is not None:
        rows.append(
            _bench_row(
                "event_loop_schedule_many", "events_per_sec", many["events_per_sec"],
                base["events_per_sec"], "in-process seed engine copy",
                {"n_events": n_events},
            )
        )

    recorded_dispatch = seed_baseline.get("dispatch", {}).get("dispatches_per_sec")
    dispatch = _best_of(
        repeats, scenarios.bench_dispatch, n_dispatch,
        incremental=True, key="dispatches_per_sec",
    )
    rows.append(
        _bench_row(
            "dispatch_incremental", "dispatches_per_sec", dispatch["dispatches_per_sec"],
            None if quick else recorded_dispatch, "recorded seed_baseline.json",
            {"n_requests": n_dispatch},
        )
    )
    dispatch_legacy = _best_of(
        repeats, scenarios.bench_dispatch, n_dispatch,
        incremental=False, key="dispatches_per_sec",
    )
    rows.append(
        _bench_row(
            "dispatch_explicit_list", "dispatches_per_sec",
            dispatch_legacy["dispatches_per_sec"],
            None if quick else recorded_dispatch, "recorded seed_baseline.json",
            {"n_requests": n_dispatch},
        )
    )

    sizing_kwargs = (
        {"functions": 32, "epochs": 30} if quick else {"functions": 64, "epochs": 50}
    )
    sizing = _best_of(
        repeats, scenarios.bench_sizing_solver, key="solves_per_sec", **sizing_kwargs
    )
    rows.append(
        _bench_row(
            "sizing_solver_epoch_sequence", "solves_per_sec", sizing["solves_per_sec"],
            sizing["naive_solves_per_sec"],
            "in-process naive Algorithm 1 (per-epoch cold search)",
            sizing_kwargs,
        )
    )

    tick_kwargs = (
        {"functions": 24, "epochs": 8, "arrival_rate": 120.0}
        if quick
        else {"functions": 64, "epochs": 30, "arrival_rate": 240.0}
    )
    tick_live = _best_of(
        repeats, scenarios.bench_epoch_tick, key="epochs_per_sec", **tick_kwargs
    )
    tick_base = _best_of(
        repeats, scenarios.bench_epoch_tick, key="epochs_per_sec",
        baseline=True, **tick_kwargs,
    )
    rows.append(
        _bench_row(
            "controller_epoch_tick", "epochs_per_sec", tick_live["epochs_per_sec"],
            tick_base["epochs_per_sec"],
            "in-process frozen seed sizing path",
            tick_kwargs,
        )
    )

    e2e = _best_of(repeats, scenarios.bench_end_to_end, better="min", key="seconds", **e2e_kwargs)
    recorded_key = "end_to_end_quick" if quick else "end_to_end"
    recorded_e2e = seed_baseline.get(recorded_key, {}).get("seconds")
    row = _bench_row(
        "end_to_end_fig5_style", "wall_seconds", e2e["seconds"],
        None, None, e2e_kwargs,
    )
    if recorded_e2e is not None:
        row["baseline"] = recorded_e2e
        row["baseline_source"] = "recorded seed_baseline.json"
        # lower is better for wall-clock: speedup = baseline / value
        row["speedup"] = recorded_e2e / e2e["seconds"]
    row["sim_events_per_sec"] = e2e["sim_events_per_sec"]
    row["arrivals"] = e2e["arrivals"]
    rows.append(row)

    plane = _best_of(
        repeats, scenarios.bench_data_plane, better="min", key="seconds", **e2e_kwargs
    )
    plane_row = _bench_row(
        "data_plane_fig5_style", "wall_seconds", plane["seconds"],
        None, None, e2e_kwargs,
    )
    if recorded_e2e is not None:
        # same convention as end_to_end_fig5_style: wall-clock vs the
        # recorded seed end-to-end run of the identical workload — the
        # "data-plane 10x" trajectory number
        plane_row["baseline"] = recorded_e2e
        plane_row["baseline_source"] = "recorded seed_baseline.json"
        plane_row["speedup"] = recorded_e2e / plane["seconds"]
    # in-process comparison against the current event-level plane, for
    # transparency alongside the seed-relative trajectory number
    plane_row["event_plane_seconds"] = plane["event_seconds"]
    plane_row["speedup_vs_event_plane"] = plane["speedup_vs_event_plane"]
    rows.append(plane_row)

    n_records = 40_000 if quick else 200_000
    record = _best_of(
        repeats, scenarios.bench_record_path, n_records, key="records_per_sec"
    )
    rows.append(
        _bench_row(
            "request_record_path", "records_per_sec", record["records_per_sec"],
            None, None, {"n_requests": n_records},
        )
    )

    replay_kwargs = (
        {"functions": 200, "duration_minutes": 240}
        if quick
        else {"functions": 1000, "duration_minutes": 720}
    )
    replay = _best_of(
        repeats, scenarios.bench_trace_replay, key="invocations_per_sec",
        **replay_kwargs,
    )
    replay_row = _bench_row(
        "trace_replay_stream", "invocations_per_sec",
        replay["invocations_per_sec"], None, None, replay_kwargs,
    )
    replay_row["invocations"] = replay["invocations"]
    rows.append(replay_row)

    return {
        "schema_version": SCHEMA_VERSION,
        "pr": "PR9",
        "created_unix": time.time(),
        "quick": quick,
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "benchmarks": rows,
    }


def _print_comparison(document: dict, compare_path: str) -> None:
    """Print per-benchmark deltas against a prior ``BENCH_*.json``.

    Rates (``*_per_sec``) improve upward, wall-clock improves downward;
    the printed ratio is always "how much better than the prior PR"
    (> 1 means this tree is faster on that benchmark).
    """
    prior = json.loads(Path(compare_path).read_text())
    prior_rows = {row["name"]: row for row in prior.get("benchmarks", [])}
    print(f"\nvs {compare_path} (pr={prior.get('pr', '?')}, quick={prior.get('quick')}):")
    for row in document["benchmarks"]:
        old = prior_rows.get(row["name"])
        if old is None:
            print(f"  {row['name']:28s} (new in this PR)")
            continue
        new_value, old_value = row["value"], old["value"]
        if row.get("params") != old.get("params"):
            # e.g. a --quick run against a committed full-size document:
            # the workloads differ, so a value ratio would be meaningless
            print(
                f"  {row['name']:28s} {old_value:>14,.1f} vs {new_value:>14,.1f} "
                f"{row['unit']}  (params differ — not comparable)"
            )
            continue
        lower_is_better = not row["unit"].endswith("_per_sec")
        ratio = (old_value / new_value) if lower_is_better else (new_value / old_value)
        direction = "lower is better" if lower_is_better else "higher is better"
        print(
            f"  {row['name']:28s} {old_value:>14,.1f} -> {new_value:>14,.1f} "
            f"{row['unit']}  ({ratio:.2f}x, {direction})"
        )
    missing = sorted(set(prior_rows) - {row["name"] for row in document["benchmarks"]})
    for name in missing:
        print(f"  {name:28s} (dropped since {prior.get('pr', '?')})")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small sizes for CI (~20 s)")
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="best-of-N repetitions per benchmark (default: 3 full, 1 quick); "
        "raise on noisy hosts",
    )
    parser.add_argument(
        "--output", default=str(_REPO / "BENCH_PR9.json"),
        help="where to write the JSON document (default: repo root BENCH_PR9.json)",
    )
    parser.add_argument(
        "--compare", metavar="BENCH_JSON", default=None,
        help="prior BENCH_*.json to print per-benchmark deltas against",
    )
    args = parser.parse_args(argv)
    document = run_all(quick=args.quick, repeats=args.repeats)
    # atomic replace: an interrupted run never leaves a truncated BENCH file
    from repro.ioutil import atomic_write_text

    atomic_write_text(str(args.output), json.dumps(document, indent=2) + "\n")
    for row in document["benchmarks"]:
        speed = row.get("speedup")
        speed_text = f"  ({speed:.2f}x vs {row.get('baseline_source', '?')})" if speed else ""
        print(f"{row['name']:28s} {row['value']:>14,.1f} {row['unit']}{speed_text}")
    if args.compare:
        _print_comparison(document, args.compare)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
