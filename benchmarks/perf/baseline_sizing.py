"""Frozen copy of the pre-solver (PR-2) sizing fast path.

Like :mod:`benchmarks.perf.baseline_engine`, this module preserves the
*old* implementation verbatim so the solver benchmarks can measure the
live control plane against the seed behaviour in the same process, on
the same host, under identical conditions.  Do not "fix" or optimise
this code — its slowness is the baseline being measured:

* ``_wait_probability_vectorised`` is the old per-candidate Python loop
  that rebuilt ``np.arange`` + ``gammaln`` tables and ran ``logsumexp``
  on every probe;
* ``required_containers_fast`` is the old exponential + binary search
  that evaluated one candidate per kernel call;
* :class:`BaselineSizingSolver` adapts both to the
  :class:`repro.core.queueing.solver.SizingSolver` interface so they
  can be injected into a live :class:`~repro.core.allocation.autoscaler.Autoscaler`
  (no memoization, no warm starts, no batching — the seed per-epoch
  behaviour).
"""

from __future__ import annotations

import math
from typing import Hashable, List, Optional, Sequence

import numpy as np
from scipy import special

from repro.core.queueing.sizing import (
    SizingResult,
    required_containers_heterogeneous,
)
from repro.core.queueing.solver import SizingQuery


def _wait_probability_vectorised(lam: float, mu: float, cs: np.ndarray, t: float) -> np.ndarray:
    """``P(Q <= t)`` per candidate ``c`` — the seed's per-candidate Python loop."""
    r = lam / mu
    log_r = math.log(r) if r > 0 else -np.inf
    out = np.zeros(cs.shape, dtype=float)
    for idx, c in enumerate(cs):
        c = int(c)
        rho = r / c
        if rho >= 1.0:
            out[idx] = 0.0
            continue
        L = int(math.floor(t * c * mu + c - 1 + 1e-12))
        if L < 0:
            out[idx] = 0.0
            continue
        n = np.arange(L + 1)
        log_terms = n * log_r - special.gammaln(np.minimum(n, c) + 1)
        over = n > c
        if over.any():
            log_terms[over] -= (n[over] - c) * math.log(c)
        n_head = np.arange(c)
        log_head = n_head * log_r - special.gammaln(n_head + 1)
        log_tail = c * log_r - special.gammaln(c + 1) - math.log(1.0 - rho)
        log_norm = special.logsumexp(np.append(log_head, log_tail))
        out[idx] = min(1.0, float(np.exp(special.logsumexp(log_terms) - log_norm)))
    return out


def required_containers_fast(
    lam: float,
    mu: float,
    wait_budget: float,
    percentile: float = 0.95,
    current_containers: int = 0,
    max_containers: int = 100_000,
) -> SizingResult:
    """The seed's exponential + binary Algorithm 1 (one candidate per probe)."""
    if lam < 0:
        raise ValueError("arrival rate must be non-negative")
    if mu <= 0:
        raise ValueError("service rate must be positive")
    if wait_budget < 0:
        raise ValueError("wait budget must be non-negative")
    if not 0 < percentile < 1:
        raise ValueError("percentile must be in (0, 1)")
    if lam == 0:
        return SizingResult(0, 1.0, wait_budget, 0)

    min_stable = int(math.floor(lam / mu)) + 1
    lo = max(1, int(current_containers), min_stable)
    iterations = 0

    hi = lo
    batch = 1
    while hi <= max_containers:
        iterations += 1
        prob = _wait_probability_vectorised(lam, mu, np.array([hi]), wait_budget)[0]
        if prob >= percentile:
            break
        batch *= 2
        hi += batch
    else:
        raise ValueError("could not satisfy SLO within max_containers")
    hi = min(hi, max_containers)

    while lo < hi:
        mid = (lo + hi) // 2
        iterations += 1
        prob = _wait_probability_vectorised(lam, mu, np.array([mid]), wait_budget)[0]
        if prob >= percentile:
            hi = mid
        else:
            lo = mid + 1
    final_prob = _wait_probability_vectorised(lam, mu, np.array([lo]), wait_budget)[0]
    return SizingResult(containers=int(lo), achieved_probability=float(final_prob),
                        wait_budget=wait_budget, iterations=iterations)


class BaselineSizingSolver:
    """Solver-interface shim over the frozen seed sizing path.

    Injected into a live autoscaler (``autoscaler.solver = BaselineSizingSolver()``)
    to benchmark the epoch tick exactly as it behaved before the
    memoized solver existed: every function, every epoch, a fresh
    one-candidate-at-a-time search.
    """

    def solve(
        self,
        lam: float,
        mu: float,
        wait_budget: float,
        percentile: float = 0.95,
        current_containers: int = 0,
        max_containers: int = 100_000,
        key: Optional[Hashable] = None,
    ) -> SizingResult:
        """One cold seed-path solve (``key`` is accepted and ignored)."""
        return required_containers_fast(
            lam, mu, wait_budget, percentile,
            current_containers=current_containers, max_containers=max_containers,
        )

    def solve_batch(self, queries: Sequence[SizingQuery]) -> List[SizingResult]:
        """The seed had no batching: one cold solve per query."""
        return [
            self.solve(q.lam, q.mu, q.wait_budget, q.percentile,
                       q.current_containers, q.max_containers)
            for q in queries
        ]

    def solve_heterogeneous(
        self,
        lam: float,
        existing_mus: Sequence[float],
        standard_mu: float,
        wait_budget: float,
        percentile: float = 0.95,
        max_additional: int = 100_000,
        key: Optional[Hashable] = None,
    ) -> SizingResult:
        """The seed's linear heterogeneous search (uncached)."""
        return required_containers_heterogeneous(
            lam=lam, existing_mus=list(existing_mus), standard_mu=standard_mu,
            wait_budget=wait_budget, percentile=percentile,
            max_additional=max_additional,
        )


__all__ = [
    "BaselineSizingSolver",
    "required_containers_fast",
]
