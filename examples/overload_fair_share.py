#!/usr/bin/env python3
"""Overload handling: fair share + reclamation, termination vs. deflation (paper §6.6).

Two functions with equal weights — BinaryAlert malware scanning and
MobileNet inference — share the paper's 3-node cluster.  MobileNet's burst
pushes the cluster into overload while BinaryAlert's load keeps growing.
The example runs the staged workload under both reclamation policies and
under the vanilla-OpenWhisk baseline, then prints the comparison the paper
makes in Figure 8: fair-share compliance, cluster utilisation, container
churn, and what happened to OpenWhisk.

Run with:  python examples/overload_fair_share.py            (about a minute)
           python examples/overload_fair_share.py --quick    (shorter phases)
"""

import argparse

from repro.experiments.fig8_reclamation import format_fig8, run_fig8


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="use 60-second phases instead of 180-second ones")
    parser.add_argument("--skip-openwhisk", action="store_true",
                        help="skip the vanilla OpenWhisk baseline run")
    args = parser.parse_args()

    phase = 60.0 if args.quick else 180.0
    print(f"Running the five-phase overload scenario ({phase:.0f}s per phase) ...\n")
    result = run_fig8(phase_duration=phase, include_openwhisk=not args.skip_openwhisk)

    print(format_fig8(result))

    print("\n=== Interpretation ===")
    for outcome in (result.termination, result.deflation):
        worst_violation = max(outcome.fair_share_violations.values(), default=0.0)
        print(f"{outcome.policy:>12}: every function held its guaranteed share in "
              f"{(1 - worst_violation) * 100:.0f}% of overload epochs; "
              f"churn = {outcome.container_operations['creations'] + outcome.container_operations['terminations']} "
              f"create/terminate operations")
    print(f"deflation recovered {result.utilization_improvement * 100:+.1f} utilisation points "
          f"over termination during overload (paper reports ≈ +5 points, 78.2% → 83.2%)")
    if result.openwhisk is not None:
        print(f"vanilla OpenWhisk lost {result.openwhisk.failed_invokers}/3 invokers and completed "
              f"only {result.openwhisk.completions}/{result.openwhisk.arrivals} requests")


if __name__ == "__main__":
    main()
