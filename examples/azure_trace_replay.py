#!/usr/bin/env python3
"""Azure-like trace replay with six functions and two weighted users (paper §6.7).

All six realistic functions from Table 1 run concurrently, driven by
synthetic Azure-Functions-style per-minute traces (the offline substitute
for the proprietary Azure Public Dataset sample the paper uses).  The
functions are split between two users, with user 2 carrying twice the
weight of user 1, and the experiment is run under both reclamation
policies.  The output mirrors the Figure 9 discussion: utilisation,
unused capacity, container churn, and per-function mean allocations
against the guaranteed shares.

Run with:  python examples/azure_trace_replay.py --minutes 15
"""

import argparse

from repro.experiments.fig9_azure import (
    DEFAULT_USER_ASSIGNMENT,
    format_fig9,
    run_fig9,
)
from repro.workloads.azure import DEFAULT_AZURE_CONFIGS, synthesize_azure_traces, trace_statistics


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--minutes", type=int, default=15,
                        help="trace length in minutes (the paper replays 60)")
    parser.add_argument("--trace-seed", type=int, default=2019,
                        help="seed for the synthetic trace generator")
    args = parser.parse_args()

    print(f"Synthesising {args.minutes}-minute Azure-like traces for "
          f"{len(DEFAULT_AZURE_CONFIGS)} functions ...")
    traces = synthesize_azure_traces(duration_minutes=args.minutes, seed=args.trace_seed)
    for name, stats in sorted(trace_statistics(traces).items()):
        user = DEFAULT_USER_ASSIGNMENT.get(name, "?")
        print(f"  {name:<13} ({user})  mean {stats['mean_per_minute']:7.1f}/min  "
              f"peak {stats['peak_per_minute']:7.0f}/min  "
              f"peak/mean {stats['peak_to_mean']:5.1f}")

    print("\nReplaying under the termination and deflation policies ...\n")
    result = run_fig9(duration_minutes=args.minutes, trace_seed=args.trace_seed)
    print(format_fig9(result))

    print("\n=== Per-function mean CPU vs. guaranteed share (deflation policy) ===")
    outcome = result.deflation
    for name in sorted(outcome.mean_cpu_by_function):
        print(f"  {name:<13} mean {outcome.mean_cpu_by_function[name]:5.2f} vCPU   "
              f"guaranteed {outcome.guaranteed_cpu[name]:5.2f} vCPU")


if __name__ == "__main__":
    main()
