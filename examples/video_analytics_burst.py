#!/usr/bin/env python3
"""Motion-activated camera: bursty DNN inference at the edge (paper Example 1).

The paper motivates LaSS with an IoT camera that only streams frames when
it detects motion, producing a bursty workload that a DNN inference
function (here MobileNet v2) must process in near real time.  This example
drives MobileNet with an on/off workload — quiet background traffic
punctuated by motion bursts — and shows how quickly LaSS scales the
container allocation up when a burst starts and back down afterwards.

Run with:  python examples/video_analytics_burst.py
"""

from repro import ClusterConfig, ControllerConfig, SimulationRunner
from repro.workloads import StepSchedule, WorkloadBinding, get_function


def build_motion_schedule(burst_rate: float = 10.0, idle_rate: float = 2.0,
                          burst_length: float = 60.0, idle_length: float = 120.0,
                          bursts: int = 3) -> StepSchedule:
    """An on/off schedule: `bursts` motion events separated by idle periods."""
    steps = []
    t = 0.0
    for _ in range(bursts):
        steps.append((t, idle_rate))
        t += idle_length
        steps.append((t, burst_rate))
        t += burst_length
    steps.append((t, idle_rate))
    return StepSchedule(steps, duration=t + idle_length)


def main() -> None:
    mobilenet = get_function("mobilenet")
    schedule = build_motion_schedule()
    duration = schedule.end_time
    slo_deadline = 0.5   # frames must start processing within 500 ms

    runner = SimulationRunner(
        workloads=[WorkloadBinding(mobilenet, schedule, slo_deadline=slo_deadline)],
        cluster_config=ClusterConfig(node_count=4, cpu_per_node=8.0),
        # sample the arrival-rate windows every 2 seconds so bursts are
        # picked up between the 10-second control epochs
        controller_config=ControllerConfig(epoch_length=10.0, rate_sample_interval=2.0),
        seed=11,
        warm_start_containers={"mobilenet": 2},
    )
    result = runner.run(duration=duration)

    times, containers = result.container_timeline("mobilenet")
    print("=== Allocation timeline (containers over time) ===")
    previous = None
    for t, c in zip(times, containers):
        if c != previous:
            rate = schedule.rate(t)
            print(f"  t={t:6.0f}s  rate={rate:5.1f} req/s  containers={c}")
            previous = c

    summary = result.waiting_summary("mobilenet", warmup=30.0)
    slo = result.slo({"mobilenet": slo_deadline})["mobilenet"]

    # split attainment into the detection window (the first seconds of each
    # burst, where the backlog built before scale-up finishes still drains)
    # and the scaled-up remainder of each burst
    burst_starts = [t for t, rate in schedule.steps if rate > 5.0]
    detection_window = 15.0
    in_detection = lambda t: any(s <= t < s + detection_window for s in burst_starts)
    completed = result.metrics.completed_requests("mobilenet")
    late_phase = [r for r in completed if not in_detection(r.arrival_time)]
    late_ok = sum(1 for r in late_phase
                  if r.waiting_time is not None and r.waiting_time <= slo_deadline)
    late_attainment = late_ok / len(late_phase) if late_phase else 1.0

    print("\n=== Burst handling ===")
    print(f"frames processed       : {result.metrics.counters['completions']}")
    print(f"reactive scale-ups     : {result.metrics.counters.get('reactive_scale_ups', 0)}")
    print(f"burst-window switches  : {result.metrics.counters.get('burst_switches', 0)}")
    print(f"cold starts            : {result.metrics.counters.get('cold_starts', 0)}")
    print(f"P95 waiting time       : {summary.p95 * 1000:.0f} ms (SLO {slo_deadline * 1000:.0f} ms)")
    print(f"SLO attainment overall : {slo.attainment * 100:.1f}%")
    print(f"SLO attainment once scaled up (excluding the first {detection_window:.0f}s of "
          f"each burst): {late_attainment * 100:.1f}%")
    print(f"peak / trough allocation: {max(containers)} / "
          f"{min(c for c in containers if c > 0)} containers")


if __name__ == "__main__":
    main()
