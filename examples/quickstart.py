#!/usr/bin/env python3
"""Quickstart: run one serverless function on a simulated LaSS edge cluster.

This example deploys the SqueezeNet image-classification function from the
paper's Table 1 on the paper's 3-node edge cluster, offers it a constant
20 req/s, and lets the LaSS controller size its container allocation from
the M/M/c queueing model.  It then prints what the model predicted, what
the controller allocated, and the waiting-time percentiles the requests
actually experienced.

Run with:  python examples/quickstart.py
"""

from repro import ClusterConfig, ControllerConfig, SimulationRunner
from repro.core.queueing import MMcQueue, required_containers
from repro.workloads import StaticRate, WorkloadBinding, get_function


def main() -> None:
    function = get_function("squeezenet")
    arrival_rate = 20.0          # requests per second
    slo_deadline = 0.1           # 95% of requests must start within 100 ms
    duration = 300.0             # simulated seconds

    # 1. What does the queueing model say the function needs?
    sizing = required_containers(
        lam=arrival_rate, mu=function.service_rate, wait_budget=slo_deadline, percentile=0.95
    )
    queue = MMcQueue(arrival_rate, function.service_rate, sizing.containers)
    print("=== Model prediction ===")
    print(f"function             : {function.name} (1 container = {function.cpu} vCPU)")
    print(f"offered load         : {arrival_rate:.0f} req/s at mean service time "
          f"{function.mean_service_time * 1000:.0f} ms")
    print(f"containers required  : {sizing.containers}")
    print(f"predicted P(wait<=SLO): {sizing.achieved_probability:.3f}")
    print(f"predicted mean wait  : {queue.mean_wait * 1000:.1f} ms")

    # 2. Run the full system: workload generator -> WRR dispatch -> containers,
    #    with the controller re-evaluating the allocation every epoch.
    runner = SimulationRunner(
        workloads=[WorkloadBinding(function, StaticRate(arrival_rate, duration=duration),
                                   slo_deadline=slo_deadline)],
        cluster_config=ClusterConfig(),          # 3 nodes x 4 vCPU, as in the paper
        controller_config=ControllerConfig(),
        seed=7,
    )
    result = runner.run(duration=duration)

    # 3. Compare against what actually happened.
    summary = result.waiting_summary(function.name, warmup=30.0)
    slo = result.slo({function.name: slo_deadline})[function.name]
    _, containers = result.container_timeline(function.name)
    print("\n=== Measured behaviour ===")
    print(f"requests completed   : {result.metrics.counters['completions']}")
    print(f"steady-state allocation: {containers[-1]} containers")
    print(f"measured mean wait   : {summary.mean * 1000:.1f} ms")
    print(f"measured P95 wait    : {summary.p95 * 1000:.1f} ms (SLO {slo_deadline * 1000:.0f} ms)")
    print(f"SLO attainment       : {slo.attainment * 100:.1f}% "
          f"({'met' if slo.satisfied else 'violated'})")
    print(f"mean cluster utilisation: {result.mean_utilization() * 100:.1f}%")


if __name__ == "__main__":
    main()
