#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation in one go.

This is the driver behind EXPERIMENTS.md: it runs each experiment harness
at full (or near-full) length and prints the measured numbers next to the
quantity the paper reports.  Expect a few minutes of runtime.

Run with:  python examples/run_all_experiments.py
           python examples/run_all_experiments.py --quick   (shorter durations)
"""

import argparse
import time

from repro.experiments.fig3_homogeneous import format_fig3, fraction_meeting_slo, run_fig3
from repro.experiments.fig4_heterogeneous import format_fig4, run_fig4
from repro.experiments.fig4_heterogeneous import fraction_meeting_slo as fig4_fraction
from repro.experiments.fig5_scalability import format_fig5, max_time_seconds, run_fig5
from repro.experiments.fig6_autoscaling import (
    default_rate_profiles,
    run_fig6,
    tracking_correlation,
)
from repro.experiments.fig7_deflation import format_fig7, run_fig7, slowdown_at
from repro.experiments.fig8_reclamation import format_fig8, run_fig8
from repro.experiments.fig9_azure import format_fig9, run_fig9
from repro.experiments.table1_functions import format_table1


def banner(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="shorter durations everywhere")
    args = parser.parse_args()
    quick = args.quick
    started = time.time()

    banner("Table 1 — functions used in the evaluation")
    print(format_table1())

    banner("Figure 3 — P95 waiting time, homogeneous containers")
    fig3 = run_fig3(duration=120.0 if quick else 300.0)
    print(format_fig3(fig3))
    print(f"configurations with P95 wait within 1.25x SLO: "
          f"{fraction_meeting_slo(fig3, tolerance=0.25) * 100:.0f}%")

    banner("Figure 4 — P95 waiting time, heterogeneous (deflated) containers")
    fig4 = run_fig4(duration=120.0 if quick else 240.0,
                    arrival_rates=(20.0, 40.0, 60.0, 80.0, 100.0) if quick else
                    (10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0))
    print(format_fig4(fig4))
    print(f"configurations with P95 wait within 1.25x SLO: "
          f"{fig4_fraction(fig4, tolerance=0.25) * 100:.0f}%")

    banner("Figure 5 — allocation-algorithm compute time vs. container count")
    fig5 = run_fig5(repeats=1 if quick else 3)
    print(format_fig5(fig5))
    print(f"worst-case fast-path time : {max_time_seconds(fig5, 'fast') * 1000:.1f} ms")
    print(f"worst-case naive-path time: {max_time_seconds(fig5, 'naive') * 1000:.1f} ms")

    banner("Figure 6 — model-driven autoscaling under time-varying workloads")
    fig6 = run_fig6(step_duration=30.0 if quick else 60.0)
    micro_rates, mobile_rates = default_rate_profiles()
    print(f"micro-benchmark rate/allocation correlation: "
          f"{tracking_correlation(micro_rates, fig6.step_duration, fig6.micro_timeline):.2f}")
    print(f"MobileNet rate/allocation correlation      : "
          f"{tracking_correlation(mobile_rates, fig6.step_duration, fig6.mobilenet_timeline):.2f}")
    print(f"micro-benchmark containers at 5 vs 30 req/s : "
          f"{fig6.containers_during_step('microbenchmark', 0):.1f} vs "
          f"{fig6.containers_during_step('microbenchmark', 5):.1f}")

    banner("Figure 7 — service time vs. CPU deflation")
    fig7 = run_fig7()
    print(format_fig7(fig7))
    print(f"SqueezeNet slowdown at 30% deflation : {slowdown_at(fig7, 'squeezenet', 0.3):.2f}x")
    print(f"MobileNet slowdown at 50% deflation  : {slowdown_at(fig7, 'mobilenet', 0.5):.2f}x")

    banner("Figure 8 — reclamation policies under overload (2 functions)")
    fig8 = run_fig8(phase_duration=90.0 if quick else 180.0)
    print(format_fig8(fig8))

    banner("Figure 9 — Azure-like trace replay (6 functions, 2 users)")
    fig9 = run_fig9(duration_minutes=10 if quick else 30)
    print(format_fig9(fig9))

    banner("Figure 10 — node-failure recovery (fault injection)")
    from repro.experiments.fig10_recovery import format_fig10, run_fig10

    total = 180.0 if quick else 360.0
    print(format_fig10(run_fig10(fail_at=total / 3, recover_at=2 * total / 3,
                                 duration=total)))

    banner("Figure 11 — control-plane policy shootout (healthy + faulted)")
    from repro.experiments.fig11_policies import format_fig11, run_fig11

    print(format_fig11(run_fig11(duration=120.0 if quick else 360.0)))

    print(f"\nTotal runtime: {time.time() - started:.0f} s")


if __name__ == "__main__":
    main()
