"""Legacy setup shim.

The environment used for offline reproduction ships an older setuptools
without the ``wheel`` package, so PEP 660 editable installs are not
available.  This shim lets ``pip install -e . --no-use-pep517
--no-build-isolation`` (or plain ``python setup.py develop``) work; all
real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
