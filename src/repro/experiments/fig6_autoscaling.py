"""Figure 6: model-driven autoscaling under time-varying workloads (paper §6.4).

Two functions run side by side with no resource pressure:

* first half — the micro-benchmark's arrival rate climbs from 5 to 30
  req/s in steps of 5 and back down, while MobileNet's stays constant;
* second half — MobileNet's rate climbs from 3 to 8 req/s and back
  down, while the micro-benchmark's stays constant.

The expected result (Figure 6b): the number of containers allocated to
each function tracks its own workload up and down, and the constant
function's allocation stays constant.

This module is a thin renderer over the registry scenario ``"fig6"``
(``kind="simulate"``); the staircase definitions live in
:func:`repro.scenarios.registry.fig6_rate_profiles`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.cluster.cluster import ClusterConfig
from repro.scenarios import ClusterSpec, build, run_scenario
from repro.scenarios.registry import fig6_rate_profiles
from repro.simulation import SimulationResult


@dataclass
class Fig6Result:
    """The two workload schedules plus the resulting allocation timelines."""

    step_duration: float
    micro_rates: Tuple[float, ...]
    mobilenet_rates: Tuple[float, ...]
    micro_timeline: Tuple[List[float], List[int]]
    mobilenet_timeline: Tuple[List[float], List[int]]
    result: SimulationResult

    def containers_during_step(self, function_name: str, step_index: int) -> float:
        """Mean container count of a function during one workload step."""
        times, counts = (
            self.micro_timeline if function_name == "microbenchmark" else self.mobilenet_timeline
        )
        start = step_index * self.step_duration
        end = start + self.step_duration
        window = [c for t, c in zip(times, counts) if start <= t < end]
        return sum(window) / len(window) if window else 0.0


def default_rate_profiles() -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
    """The paper's rate staircases for the two functions.

    First half: micro-benchmark 5→30→5 in steps of 5, MobileNet constant 3.
    Second half: micro-benchmark constant 5, MobileNet 3→8→3 in steps of 1.
    (Delegates to the canonical definition in the scenario registry.)
    """
    return fig6_rate_profiles()


def run_fig6(
    step_duration: float = 60.0,
    cluster_config: ClusterConfig | None = None,
    seed: int = 6,
) -> Fig6Result:
    """Regenerate Figure 6 through the scenario registry.

    ``step_duration`` is the time each rate level is held; the paper holds
    each level for several minutes, 60 s keeps the default run short while
    spanning several control epochs per level.
    """
    spec = build("fig6", step_duration=step_duration, seed=seed)
    if cluster_config is not None:
        spec = dataclasses.replace(
            spec, cluster=ClusterSpec(**dataclasses.asdict(cluster_config))
        )
    outcome = run_scenario(spec)
    result = outcome.sim
    micro_rates, mobilenet_rates = default_rate_profiles()
    return Fig6Result(
        step_duration=step_duration,
        micro_rates=tuple(micro_rates),
        mobilenet_rates=tuple(mobilenet_rates),
        micro_timeline=result.container_timeline("microbenchmark"),
        mobilenet_timeline=result.container_timeline("mobilenet"),
        result=result,
    )


def tracking_correlation(rates: Sequence[float], step_duration: float,
                         timeline: Tuple[List[float], List[int]]) -> float:
    """Pearson correlation between the offered rate and the allocated containers.

    A value close to 1 means the allocation tracks the workload, which is
    the qualitative claim of Figure 6.
    """
    import numpy as np

    times, counts = timeline
    if not times:
        return 0.0
    rate_at = []
    for t in times:
        index = min(int(t // step_duration), len(rates) - 1)
        rate_at.append(rates[index])
    if len(set(rate_at)) < 2 or len(set(counts)) < 2:
        return 0.0
    return float(np.corrcoef(rate_at, counts)[0, 1])


__all__ = ["Fig6Result", "run_fig6", "default_rate_profiles", "tracking_correlation"]
