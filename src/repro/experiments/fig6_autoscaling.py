"""Figure 6: model-driven autoscaling under time-varying workloads (paper §6.4).

Two functions run side by side with no resource pressure:

* first half — the micro-benchmark's arrival rate climbs from 5 to 30
  req/s in steps of 5 and back down, while MobileNet's stays constant;
* second half — MobileNet's rate climbs from 3 to 8 req/s and back
  down, while the micro-benchmark's stays constant.

The expected result (Figure 6b): the number of containers allocated to
each function tracks its own workload up and down, and the constant
function's allocation stays constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.cluster.cluster import ClusterConfig
from repro.core.controller import ControllerConfig
from repro.simulation import SimulationResult, SimulationRunner
from repro.workloads.functions import get_function, microbenchmark
from repro.workloads.generator import WorkloadBinding
from repro.workloads.schedules import StepSchedule


@dataclass
class Fig6Result:
    """The two workload schedules plus the resulting allocation timelines."""

    step_duration: float
    micro_rates: Tuple[float, ...]
    mobilenet_rates: Tuple[float, ...]
    micro_timeline: Tuple[List[float], List[int]]
    mobilenet_timeline: Tuple[List[float], List[int]]
    result: SimulationResult

    def containers_during_step(self, function_name: str, step_index: int) -> float:
        """Mean container count of a function during one workload step."""
        times, counts = (
            self.micro_timeline if function_name == "microbenchmark" else self.mobilenet_timeline
        )
        start = step_index * self.step_duration
        end = start + self.step_duration
        window = [c for t, c in zip(times, counts) if start <= t < end]
        return sum(window) / len(window) if window else 0.0


def default_rate_profiles() -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
    """The paper's rate staircases for the two functions.

    First half: micro-benchmark 5→30→5 in steps of 5, MobileNet constant 3.
    Second half: micro-benchmark constant 5, MobileNet 3→8→3 in steps of 1.
    """
    micro_up = (5.0, 10.0, 15.0, 20.0, 25.0, 30.0)
    micro_down = (25.0, 20.0, 15.0, 10.0, 5.0)
    mobile_up = (3.0, 4.0, 5.0, 6.0, 7.0, 8.0)
    mobile_down = (7.0, 6.0, 5.0, 4.0, 3.0)
    first_half_len = len(micro_up) + len(micro_down)
    second_half_len = len(mobile_up) + len(mobile_down)
    micro = micro_up + micro_down + (5.0,) * second_half_len
    mobile = (3.0,) * first_half_len + mobile_up + mobile_down
    return micro, mobile


def run_fig6(
    step_duration: float = 60.0,
    cluster_config: ClusterConfig | None = None,
    seed: int = 6,
) -> Fig6Result:
    """Regenerate Figure 6.

    ``step_duration`` is the time each rate level is held; the paper holds
    each level for several minutes, 60 s keeps the default run short while
    spanning several control epochs per level.
    """
    micro_rates, mobilenet_rates = default_rate_profiles()
    micro_schedule = StepSchedule.staircase(micro_rates, step_duration)
    mobile_schedule = StepSchedule.staircase(mobilenet_rates, step_duration)
    duration = step_duration * len(micro_rates)

    # a roomy cluster: the point of this experiment is "no resource pressure"
    cluster_config = cluster_config or ClusterConfig(
        node_count=6, cpu_per_node=8.0, memory_per_node_mb=32 * 1024.0
    )
    runner = SimulationRunner(
        workloads=[
            WorkloadBinding(microbenchmark(0.1), micro_schedule, slo_deadline=0.1),
            WorkloadBinding(get_function("mobilenet"), mobile_schedule, slo_deadline=0.5),
        ],
        cluster_config=cluster_config,
        controller_config=ControllerConfig(epoch_length=10.0),
        seed=seed,
        warm_start_containers={"microbenchmark": 1, "mobilenet": 1},
    )
    result = runner.run(duration=duration)
    return Fig6Result(
        step_duration=step_duration,
        micro_rates=tuple(micro_rates),
        mobilenet_rates=tuple(mobilenet_rates),
        micro_timeline=result.container_timeline("microbenchmark"),
        mobilenet_timeline=result.container_timeline("mobilenet"),
        result=result,
    )


def tracking_correlation(rates: Sequence[float], step_duration: float,
                         timeline: Tuple[List[float], List[int]]) -> float:
    """Pearson correlation between the offered rate and the allocated containers.

    A value close to 1 means the allocation tracks the workload, which is
    the qualitative claim of Figure 6.
    """
    import numpy as np

    times, counts = timeline
    if not times:
        return 0.0
    rate_at = []
    for t in times:
        index = min(int(t // step_duration), len(rates) - 1)
        rate_at.append(rates[index])
    if len(set(rate_at)) < 2 or len(set(counts)) < 2:
        return 0.0
    return float(np.corrcoef(rate_at, counts)[0, 1])


__all__ = ["Fig6Result", "run_fig6", "default_rate_profiles", "tracking_correlation"]
