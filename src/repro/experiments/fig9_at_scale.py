"""Figure 9 at scale: streaming replay of an Azure-scale population.

Where :mod:`repro.experiments.fig9_azure` replays the paper's six
functions on one simulated cluster, this experiment makes the
"millions of users" scale claim falsifiable: a synthetic population of
10,000 heavy-tailed functions (a full day, tens of millions of
invocations) streams through the constant-memory replay kernel of
:mod:`repro.scenarios.trace_shard`, sharded over the sweep runner and
merged into one federated-style envelope.  The replay answers the
paper's capacity questions at population scale — how many containers
the M/M/c sizing model provisions, what fraction of function-minutes
overload that sizing, and the per-minute invocation percentiles —
without ever holding more than one chunk of one trace in memory.

The merged envelope is byte-identical across worker counts, shard
permutations, and interrupt+resume (``tests/test_trace_replay.py``);
sustained invocations/sec is tracked as the ``trace_replay_stream`` row
of ``BENCH_PR9.json``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from repro.scenarios import build
from repro.scenarios.sweep import SweepRunner
from repro.scenarios.trace_shard import merge_trace_shards


@dataclass
class Fig9AtScaleResult:
    """The merged outcome of one at-scale replay."""

    functions: int
    duration_minutes: int
    shard_count: int
    invocations: int
    sporadic_functions: int
    containers: int
    peak_per_minute: int
    overload_fraction: float
    zero_fraction: float
    percentiles: Dict[str, Any]
    merged: Dict[str, Any]          #: the full ``repro/trace-replay@1`` envelope


def run_fig9_at_scale(
    functions: int = 10_000,
    duration_minutes: int = 1440,
    shards: int = 32,
    workers: int = 1,
    chunk_minutes: int = 360,
    sketch_size: int = 4096,
    seed: int = 9,
) -> Fig9AtScaleResult:
    """Run the sharded replay and merge the shard envelopes.

    All knobs scale down proportionally for smoke tests; the defaults
    are the full synthetic day the EXPERIMENTS.md table records.
    """
    sweep = build("fig9-at-scale", functions=functions,
                  duration_minutes=duration_minutes, shards=shards,
                  chunk_minutes=chunk_minutes, sketch_size=sketch_size,
                  seed=seed)
    envelope = SweepRunner(sweep, workers=workers).run()
    merged = merge_trace_shards(envelope)
    totals = merged["totals"]
    return Fig9AtScaleResult(
        functions=totals["functions"],
        duration_minutes=merged["minutes"],
        shard_count=merged["shard_count"],
        invocations=totals["invocations"],
        sporadic_functions=totals["sporadic_functions"],
        containers=totals["containers"],
        peak_per_minute=totals["peak_per_minute"],
        overload_fraction=merged["rates"]["overload_fraction"],
        zero_fraction=merged["rates"]["zero_fraction"],
        percentiles=dict(merged["percentiles"]["per_minute_invocations"]),
        merged=merged,
    )


def format_fig9_at_scale(result: Fig9AtScaleResult) -> str:
    """Render the at-scale replay outcome as text."""
    pct = result.percentiles
    lines = [
        f"Azure-scale streaming replay: {result.functions:,} functions, "
        f"{result.duration_minutes:,} minutes, {result.shard_count} shards",
        f"  invocations        : {result.invocations:,}",
        f"  sporadic functions : {result.sporadic_functions:,} "
        f"({result.sporadic_functions / result.functions * 100:.1f}%)",
        f"  sized containers   : {result.containers:,}",
        f"  peak minute        : {result.peak_per_minute:,} invocations "
        "(one function)",
        f"  overloaded minutes : {result.overload_fraction * 100:.3f}% of "
        "function-minutes exceed the sized capacity",
        f"  idle minutes       : {result.zero_fraction * 100:.1f}% of "
        "function-minutes have zero invocations",
        f"  per-minute p50/p90/p95/p99: {pct['p50']:g} / {pct['p90']:g} / "
        f"{pct['p95']:g} / {pct['p99']:g}"
        + ("  (exact)" if pct.get("exact") else "  (sampled)"),
    ]
    return "\n".join(lines)


__all__ = ["Fig9AtScaleResult", "run_fig9_at_scale", "format_fig9_at_scale"]
