"""Table 1: the function catalogue used in the evaluation.

A thin renderer over the registry scenario ``"table1"``
(``kind="catalogue"``); the catalogue itself lives in
:mod:`repro.workloads.functions`.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.scenarios import build, run_scenario
from repro.workloads.functions import FUNCTION_CATALOG


def run_table1() -> Tuple[Tuple[str, str, str], ...]:
    """Regenerate Table 1 as ``(function, language, standard size)`` rows."""
    rows = run_scenario(build("table1")).data["rows"]
    return tuple((r["function"], r["language"], r["standard_size"]) for r in rows)


def format_table1() -> str:
    """Render Table 1 as aligned text, matching the paper's column layout."""
    rows = run_table1()
    header = ("Function", "Language(s)", "Standard Size")
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows)) for i in range(3)
    ]
    lines: List[str] = []
    lines.append("  ".join(header[i].ljust(widths[i]) for i in range(3)))
    lines.append("  ".join("-" * widths[i] for i in range(3)))
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(3)))
    return "\n".join(lines)


def catalogue_consistency_checks() -> List[str]:
    """Sanity checks the table must satisfy; returns a list of violations (empty = OK)."""
    problems: List[str] = []
    expected_sizes = {
        "microbenchmark": (0.4, 256),
        "mobilenet": (2.0, 1024),
        "shufflenet": (1.0, 512),
        "squeezenet": (1.0, 512),
        "binaryalert": (0.5, 256),
        "geofence": (0.3, 128),
        "image-resizer": (0.8, 256),
    }
    for name, (cpu, memory) in expected_sizes.items():
        profile = FUNCTION_CATALOG.get(name)
        if profile is None:
            problems.append(f"missing function {name!r}")
            continue
        if abs(profile.cpu - cpu) > 1e-9:
            problems.append(f"{name}: cpu {profile.cpu} != Table 1 value {cpu}")
        if abs(profile.memory_mb - memory) > 1e-9:
            problems.append(f"{name}: memory {profile.memory_mb} != Table 1 value {memory}")
    return problems


__all__ = ["run_table1", "format_table1", "catalogue_consistency_checks"]
