"""Figure 9: Azure-trace replay with six functions and two users (paper §6.7).

All six realistic functions run concurrently on the 3-node cluster,
driven by (synthetic) Azure-Functions-like per-minute traces.  They are
split between two users, with user 2 carrying twice the weight of user
1, so under contention user 1's functions are entitled to ~1/3 of the
cluster and user 2's to ~2/3.  The experiment is run once per
reclamation policy.

Findings to reproduce:

* deflation leaves less capacity unused than termination (87.7 % → 93 %
  utilisation in the paper, ≈ +5..6 points);
* deflation causes far fewer container create/terminate operations
  (less churn → fewer cold starts and rerun requests);
* under both policies every function receives at least its fair share
  whenever it wants it, and functions whose demand is below their fair
  share are unaffected by the choice of policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.cluster.cluster import ClusterConfig
from repro.core.allocation.hierarchy import SchedulingTree
from repro.core.controller import ControllerConfig, ReclamationPolicy
from repro.simulation import SimulationResult, SimulationRunner
from repro.workloads.azure import DEFAULT_AZURE_CONFIGS, synthesize_azure_traces
from repro.workloads.functions import get_function
from repro.workloads.generator import WorkloadBinding

#: user → functions split used in the experiment (user-2 has twice the weight)
DEFAULT_USER_ASSIGNMENT: Dict[str, str] = {
    "shufflenet": "user-1",
    "geofence": "user-1",
    "image-resizer": "user-1",
    "mobilenet": "user-2",
    "squeezenet": "user-2",
    "binaryalert": "user-2",
}

DEFAULT_USER_WEIGHTS: Dict[str, float] = {"user-1": 1.0, "user-2": 2.0}

#: per-function SLO deadlines (seconds); DNN functions get looser deadlines
DEFAULT_SLO_DEADLINES: Dict[str, float] = {
    "mobilenet": 0.5,
    "shufflenet": 0.3,
    "squeezenet": 0.2,
    "binaryalert": 0.1,
    "geofence": 0.1,
    "image-resizer": 0.15,
}


@dataclass
class Fig9PolicyOutcome:
    """What one reclamation policy achieved on the Azure-like workload."""

    policy: str
    mean_utilization: float
    unused_fraction: float
    completions: int
    drops: int
    container_operations: Dict[str, int]
    churn: int                      #: creations + terminations (cold starts + reruns proxy)
    mean_cpu_by_function: Dict[str, float]
    guaranteed_cpu: Dict[str, float]
    result: Optional[SimulationResult] = None


@dataclass
class Fig9Result:
    """Both runs of the Figure 9 experiment plus the traces they replayed."""

    duration_minutes: int
    termination: Fig9PolicyOutcome
    deflation: Fig9PolicyOutcome
    trace_totals: Dict[str, float]

    @property
    def utilization_improvement(self) -> float:
        """Deflation-minus-termination mean utilisation (paper: ≈ +5..6 points)."""
        return self.deflation.mean_utilization - self.termination.mean_utilization

    @property
    def churn_reduction(self) -> int:
        """How many fewer create/terminate operations the deflation policy needed."""
        return self.termination.churn - self.deflation.churn


def build_tree(
    assignment: Mapping[str, str] = DEFAULT_USER_ASSIGNMENT,
    user_weights: Mapping[str, float] = DEFAULT_USER_WEIGHTS,
) -> SchedulingTree:
    """The two-level user → function scheduling tree of §6.7."""
    return SchedulingTree.two_level(dict(user_weights), dict(assignment))


def _run_policy(
    policy: ReclamationPolicy,
    duration_minutes: int,
    seed: int,
    trace_seed: int,
) -> Fig9PolicyOutcome:
    schedules = synthesize_azure_traces(
        DEFAULT_AZURE_CONFIGS, duration_minutes=duration_minutes, seed=trace_seed
    )
    bindings = []
    for name, schedule in schedules.items():
        bindings.append(
            WorkloadBinding(
                profile=get_function(name),
                schedule=schedule,
                slo_deadline=DEFAULT_SLO_DEADLINES.get(name, 0.2),
                user=DEFAULT_USER_ASSIGNMENT.get(name, "user-1"),
            )
        )
    runner = SimulationRunner(
        workloads=bindings,
        cluster_config=ClusterConfig(),
        controller_config=ControllerConfig(epoch_length=10.0, reclamation=policy),
        scheduling_tree=build_tree(),
        seed=seed,
        warm_start_containers={name: 1 for name in schedules},
    )
    duration = duration_minutes * 60.0
    result = runner.run(duration=duration)
    metrics = result.metrics
    guaranteed = runner.controller.guaranteed_cpu_shares()
    mean_cpu = {
        name: metrics.timeline.mean_cpu(name) for name in schedules
    }
    operations = {
        "creations": metrics.counters.get("creations", 0),
        "terminations": metrics.counters.get("terminations", 0),
        "deflations": metrics.counters.get("deflations", 0),
        "inflations": metrics.counters.get("inflations", 0),
    }
    return Fig9PolicyOutcome(
        policy=policy.value,
        mean_utilization=metrics.mean_utilization(),
        unused_fraction=1.0 - metrics.mean_utilization(),
        completions=metrics.counters.get("completions", 0),
        drops=metrics.counters.get("drops", 0),
        container_operations=operations,
        churn=operations["creations"] + operations["terminations"],
        mean_cpu_by_function=mean_cpu,
        guaranteed_cpu=guaranteed,
        result=result,
    )


def run_fig9(
    duration_minutes: int = 60,
    seed: int = 9,
    trace_seed: int = 2019,
) -> Fig9Result:
    """Regenerate Figure 9: Azure-trace replay under both reclamation policies.

    The same synthetic traces (same ``trace_seed``) are replayed for both
    policies, so the comparison isolates the reclamation mechanism.
    """
    termination = _run_policy(ReclamationPolicy.TERMINATION, duration_minutes, seed, trace_seed)
    deflation = _run_policy(ReclamationPolicy.DEFLATION, duration_minutes, seed, trace_seed)
    schedules = synthesize_azure_traces(
        DEFAULT_AZURE_CONFIGS, duration_minutes=duration_minutes, seed=trace_seed
    )
    return Fig9Result(
        duration_minutes=duration_minutes,
        termination=termination,
        deflation=deflation,
        trace_totals={name: schedule.total_invocations() for name, schedule in schedules.items()},
    )


def format_fig9(result: Fig9Result) -> str:
    """Render the Figure 9 outcome as text."""
    lines = [f"Azure-like trace replay, {result.duration_minutes} minutes"]
    for outcome in (result.termination, result.deflation):
        lines.append(f"policy={outcome.policy}")
        lines.append(f"  mean utilisation : {outcome.mean_utilization * 100:.1f}%")
        lines.append(f"  unused capacity  : {outcome.unused_fraction * 100:.1f}%")
        lines.append(f"  completions/drops: {outcome.completions}/{outcome.drops}")
        lines.append(f"  container ops    : {outcome.container_operations}")
    lines.append(
        f"deflation - termination utilisation: {result.utilization_improvement * 100:+.1f} points"
    )
    lines.append(f"churn reduction (create+terminate ops): {result.churn_reduction}")
    return "\n".join(lines)


__all__ = [
    "Fig9Result",
    "Fig9PolicyOutcome",
    "run_fig9",
    "format_fig9",
    "build_tree",
    "DEFAULT_USER_ASSIGNMENT",
    "DEFAULT_USER_WEIGHTS",
    "DEFAULT_SLO_DEADLINES",
]
