"""Figure 9: Azure-trace replay with six functions and two users (paper §6.7).

All six realistic functions run concurrently on the 3-node cluster,
driven by (synthetic) Azure-Functions-like per-minute traces.  They are
split between two users, with user 2 carrying twice the weight of user
1, so under contention user 1's functions are entitled to ~1/3 of the
cluster and user 2's to ~2/3.  The experiment is run once per
reclamation policy.

Findings to reproduce:

* deflation leaves less capacity unused than termination (87.7 % → 93 %
  utilisation in the paper, ≈ +5..6 points);
* deflation causes far fewer container create/terminate operations
  (less churn → fewer cold starts and rerun requests);
* under both policies every function receives at least its fair share
  whenever it wants it, and functions whose demand is below their fair
  share are unaffected by the choice of policy.

This module is a thin renderer over the registry sweep ``"fig9"``: the
trace synthesis, user split, and both policy arms are declared in
:mod:`repro.scenarios.registry` (which also owns the user/weight/SLO
constants re-exported here).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.core.allocation.hierarchy import SchedulingTree
from repro.core.controller import ReclamationPolicy
from repro.scenarios import build, run_scenario
from repro.scenarios.registry import (
    FIG9_SLO_DEADLINES as DEFAULT_SLO_DEADLINES,
    FIG9_USER_ASSIGNMENT as DEFAULT_USER_ASSIGNMENT,
    FIG9_USER_WEIGHTS as DEFAULT_USER_WEIGHTS,
)
from repro.scenarios.runner import ScenarioOutcome
from repro.simulation import SimulationResult


@dataclass
class Fig9PolicyOutcome:
    """What one reclamation policy achieved on the Azure-like workload."""

    policy: str
    mean_utilization: float
    unused_fraction: float
    completions: int
    drops: int
    container_operations: Dict[str, int]
    churn: int                      #: creations + terminations (cold starts + reruns proxy)
    mean_cpu_by_function: Dict[str, float]
    guaranteed_cpu: Dict[str, float]
    result: Optional[SimulationResult] = None


@dataclass
class Fig9Result:
    """Both runs of the Figure 9 experiment plus the traces they replayed."""

    duration_minutes: int
    termination: Fig9PolicyOutcome
    deflation: Fig9PolicyOutcome
    trace_totals: Dict[str, float]

    @property
    def utilization_improvement(self) -> float:
        """Deflation-minus-termination mean utilisation (paper: ≈ +5..6 points)."""
        return self.deflation.mean_utilization - self.termination.mean_utilization

    @property
    def churn_reduction(self) -> int:
        """How many fewer create/terminate operations the deflation policy needed."""
        return self.termination.churn - self.deflation.churn


def build_tree(
    assignment: Mapping[str, str] = DEFAULT_USER_ASSIGNMENT,
    user_weights: Mapping[str, float] = DEFAULT_USER_WEIGHTS,
) -> SchedulingTree:
    """The two-level user → function scheduling tree of §6.7."""
    return SchedulingTree.two_level(dict(user_weights), dict(assignment))


def _policy_outcome(outcome: ScenarioOutcome) -> Fig9PolicyOutcome:
    """Compute one policy arm's utilisation/churn statistics from its scenario run."""
    result = outcome.sim
    metrics = result.metrics
    guaranteed = result.controller.guaranteed_cpu_shares()
    names = [w.function for w in outcome.spec.workloads]
    mean_cpu = {name: metrics.timeline.mean_cpu(name) for name in names}
    operations = {
        "creations": metrics.counters.get("creations", 0),
        "terminations": metrics.counters.get("terminations", 0),
        "deflations": metrics.counters.get("deflations", 0),
        "inflations": metrics.counters.get("inflations", 0),
    }
    return Fig9PolicyOutcome(
        policy=outcome.spec.controller.reclamation,
        mean_utilization=metrics.mean_utilization(),
        unused_fraction=1.0 - metrics.mean_utilization(),
        completions=metrics.counters.get("completions", 0),
        drops=metrics.counters.get("drops", 0),
        container_operations=operations,
        churn=operations["creations"] + operations["terminations"],
        mean_cpu_by_function=mean_cpu,
        guaranteed_cpu=guaranteed,
        result=result,
    )


def run_fig9(
    duration_minutes: int = 60,
    seed: int = 9,
    trace_seed: int = 2019,
) -> Fig9Result:
    """Regenerate Figure 9 through the scenario registry.

    The same synthetic traces (same ``trace_seed``) are replayed for both
    policies, so the comparison isolates the reclamation mechanism.
    """
    sweep = build("fig9", duration_minutes=duration_minutes, seed=seed,
                  trace_seed=trace_seed)
    termination = deflation = None
    trace_totals: Dict[str, float] = {}
    for spec in sweep.expand():
        outcome = run_scenario(spec)
        arm = _policy_outcome(outcome)
        if arm.policy == ReclamationPolicy.TERMINATION.value:
            termination = arm
        else:
            deflation = arm
        if not trace_totals:
            trace_totals = {
                w.function: w.schedule.build().total_invocations()
                for w in spec.workloads
            }
    assert termination is not None and deflation is not None
    return Fig9Result(
        duration_minutes=duration_minutes,
        termination=termination,
        deflation=deflation,
        trace_totals=trace_totals,
    )


def format_fig9(result: Fig9Result) -> str:
    """Render the Figure 9 outcome as text."""
    lines = [f"Azure-like trace replay, {result.duration_minutes} minutes"]
    for outcome in (result.termination, result.deflation):
        lines.append(f"policy={outcome.policy}")
        lines.append(f"  mean utilisation : {outcome.mean_utilization * 100:.1f}%")
        lines.append(f"  unused capacity  : {outcome.unused_fraction * 100:.1f}%")
        lines.append(f"  completions/drops: {outcome.completions}/{outcome.drops}")
        lines.append(f"  container ops    : {outcome.container_operations}")
    lines.append(
        f"deflation - termination utilisation: {result.utilization_improvement * 100:+.1f} points"
    )
    lines.append(f"churn reduction (create+terminate ops): {result.churn_reduction}")
    return "\n".join(lines)


__all__ = [
    "Fig9Result",
    "Fig9PolicyOutcome",
    "run_fig9",
    "format_fig9",
    "build_tree",
    "DEFAULT_USER_ASSIGNMENT",
    "DEFAULT_USER_WEIGHTS",
    "DEFAULT_SLO_DEADLINES",
]
