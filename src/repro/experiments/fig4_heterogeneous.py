"""Figure 4: model validation with heterogeneous (deflated) containers (§6.2.2).

The SqueezeNet function is first provisioned with just enough
homogeneous containers for the offered load; a given proportion of
those containers (25, 50, 75, or 100 %) is then deflated, leaving the
function under-provisioned with heterogeneous containers.  LaSS reacts
by adding standard-size containers using the Alves et al. model
(:func:`repro.core.queueing.sizing.required_containers_heterogeneous`),
and the measured P95 waiting time must stay below the 100 ms SLO.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.queueing.sizing import (
    required_containers,
    required_containers_heterogeneous,
)
from repro.simulation import run_fixed_allocation
from repro.workloads.functions import get_function
from repro.workloads.generator import WorkloadBinding
from repro.workloads.schedules import StaticRate


@dataclass(frozen=True)
class Fig4Point:
    """One point of Figure 4: a (deflated proportion, λ) configuration."""

    deflated_proportion: float
    arrival_rate: float
    homogeneous_containers: int
    deflated_containers: int
    total_containers: int
    slo_deadline: float
    measured_p95_wait: float
    completed: int

    @property
    def slo_met(self) -> bool:
        """Whether the measured P95 waiting time is within the SLO deadline."""
        return self.measured_p95_wait <= self.slo_deadline + 1e-9


def run_fig4(
    proportions: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    arrival_rates: Sequence[float] = (10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0),
    slo_deadline: float = 0.1,
    deflation_fraction: float = 0.3,
    duration: float = 240.0,
    percentile: float = 0.95,
    warmup: float = 20.0,
    seed: int = 4,
) -> List[Fig4Point]:
    """Regenerate Figure 4.

    Parameters
    ----------
    proportions:
        Fractions of the initially provisioned containers that get deflated.
    deflation_fraction:
        How much CPU each selected container loses (the paper deflates
        "randomly"; 30 % — the reclamation threshold τ — is the maximum
        LaSS itself would apply).
    """
    function = get_function("squeezenet")
    mu = function.service_rate
    speed = function.speed_curve()
    deflated_speed = speed(1.0 - deflation_fraction)
    points: List[Fig4Point] = []
    rng = np.random.default_rng(seed)

    for proportion in proportions:
        for lam in arrival_rates:
            base = required_containers(lam=lam, mu=mu, wait_budget=slo_deadline,
                                       percentile=percentile)
            n_deflated = int(round(proportion * base.containers))
            n_deflated = min(n_deflated, base.containers)
            existing_mus = [mu * deflated_speed] * n_deflated + [mu] * (
                base.containers - n_deflated
            )
            total = required_containers_heterogeneous(
                lam=lam,
                existing_mus=existing_mus,
                standard_mu=mu,
                wait_budget=slo_deadline,
                percentile=percentile,
            )
            # container line-up handed to the simulator: the deflated ones
            # first, then the surviving standard ones, then the additions
            deflation_plan = [1.0 - deflation_fraction] * n_deflated + [1.0] * (
                total.containers - n_deflated
            )
            binding = WorkloadBinding(
                profile=function,
                schedule=StaticRate(lam, duration=duration),
                slo_deadline=slo_deadline,
            )
            result = run_fixed_allocation(
                binding=binding,
                containers=total.containers,
                duration=duration,
                seed=seed + int(lam) + int(proportion * 100),
                deflation_plan=deflation_plan,
            )
            summary = result.waiting_summary(function.name, warmup=warmup)
            points.append(
                Fig4Point(
                    deflated_proportion=proportion,
                    arrival_rate=lam,
                    homogeneous_containers=base.containers,
                    deflated_containers=n_deflated,
                    total_containers=total.containers,
                    slo_deadline=slo_deadline,
                    measured_p95_wait=summary.p95,
                    completed=summary.count,
                )
            )
    return points


def format_fig4(points: Sequence[Fig4Point]) -> str:
    """Render the Figure 4 measurements as an aligned text table."""
    lines = [
        f"{'deflated%':>9} {'lambda':>7} {'c_hom':>6} {'c_total':>8} "
        f"{'p95 wait(ms)':>13} {'met':>4}"
    ]
    for p in points:
        lines.append(
            f"{p.deflated_proportion * 100:>9.0f} {p.arrival_rate:>7.0f} "
            f"{p.homogeneous_containers:>6d} {p.total_containers:>8d} "
            f"{p.measured_p95_wait * 1000:>13.1f} {'yes' if p.slo_met else 'NO':>4}"
        )
    return "\n".join(lines)


def fraction_meeting_slo(points: Sequence[Fig4Point], tolerance: float = 0.25) -> float:
    """Fraction of configurations whose P95 wait is within (1+tolerance)×SLO."""
    if not points:
        return 1.0
    ok = sum(1 for p in points if p.measured_p95_wait <= p.slo_deadline * (1 + tolerance))
    return ok / len(points)


__all__ = ["Fig4Point", "run_fig4", "format_fig4", "fraction_meeting_slo"]
