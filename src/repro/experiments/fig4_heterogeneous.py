"""Figure 4: model validation with heterogeneous (deflated) containers (§6.2.2).

The SqueezeNet function is first provisioned with just enough
homogeneous containers for the offered load; a given proportion of
those containers (25, 50, 75, or 100 %) is then deflated, leaving the
function under-provisioned with heterogeneous containers.  LaSS reacts
by adding standard-size containers using the Alves et al. model
(:func:`repro.core.queueing.sizing.required_containers_heterogeneous`),
and the measured P95 waiting time must stay below the 100 ms SLO.

This module is a thin renderer over the registry sweep ``"fig4"`` — a
grid of ``kind="fixed"`` scenarios whose ``heterogeneous`` sizing model
derives the mixed-speed container line-up per shard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.scenarios import build, run_scenario


@dataclass(frozen=True)
class Fig4Point:
    """One point of Figure 4: a (deflated proportion, λ) configuration."""

    deflated_proportion: float
    arrival_rate: float
    homogeneous_containers: int
    deflated_containers: int
    total_containers: int
    slo_deadline: float
    measured_p95_wait: float
    completed: int

    @property
    def slo_met(self) -> bool:
        """Whether the measured P95 waiting time is within the SLO deadline."""
        return self.measured_p95_wait <= self.slo_deadline + 1e-9


def run_fig4(
    proportions: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    arrival_rates: Sequence[float] = (10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0),
    slo_deadline: float = 0.1,
    deflation_fraction: float = 0.3,
    duration: float = 240.0,
    percentile: float = 0.95,
    warmup: float = 20.0,
    seed: int = 4,
) -> List[Fig4Point]:
    """Regenerate Figure 4 through the scenario registry.

    Parameters
    ----------
    proportions:
        Fractions of the initially provisioned containers that get deflated.
    deflation_fraction:
        How much CPU each selected container loses (the paper deflates
        "randomly"; 30 % — the reclamation threshold τ — is the maximum
        LaSS itself would apply).
    """
    sweep = build(
        "fig4",
        proportions=proportions,
        arrival_rates=arrival_rates,
        slo_deadline=slo_deadline,
        deflation_fraction=deflation_fraction,
        duration=duration,
        percentile=percentile,
        warmup=warmup,
        seed=seed,
    )
    grid = [(proportion, lam) for proportion in proportions for lam in arrival_rates]
    points: List[Fig4Point] = []
    for (proportion, lam), spec in zip(grid, sweep.expand()):
        data = run_scenario(spec).data
        waiting = data["metrics"]["functions"]["squeezenet"]["waiting"]
        allocation = data["allocation"]
        points.append(
            Fig4Point(
                deflated_proportion=proportion,
                arrival_rate=lam,
                homogeneous_containers=allocation["homogeneous_containers"],
                deflated_containers=allocation["deflated_containers"],
                total_containers=allocation["containers"],
                slo_deadline=slo_deadline,
                measured_p95_wait=waiting["p95"],
                completed=waiting["count"],
            )
        )
    return points


def format_fig4(points: Sequence[Fig4Point]) -> str:
    """Render the Figure 4 measurements as an aligned text table."""
    lines = [
        f"{'deflated%':>9} {'lambda':>7} {'c_hom':>6} {'c_total':>8} "
        f"{'p95 wait(ms)':>13} {'met':>4}"
    ]
    for p in points:
        lines.append(
            f"{p.deflated_proportion * 100:>9.0f} {p.arrival_rate:>7.0f} "
            f"{p.homogeneous_containers:>6d} {p.total_containers:>8d} "
            f"{p.measured_p95_wait * 1000:>13.1f} {'yes' if p.slo_met else 'NO':>4}"
        )
    return "\n".join(lines)


def fraction_meeting_slo(points: Sequence[Fig4Point], tolerance: float = 0.25) -> float:
    """Fraction of configurations whose P95 wait is within (1+tolerance)×SLO."""
    if not points:
        return 1.0
    ok = sum(1 for p in points if p.measured_p95_wait <= p.slo_deadline * (1 + tolerance))
    return ok / len(points)


__all__ = ["Fig4Point", "run_fig4", "format_fig4", "fraction_meeting_slo"]
