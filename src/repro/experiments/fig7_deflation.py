"""Figure 7: effect of CPU deflation on function service time (paper §6.5).

All six realistic functions are run inside containers whose CPU
allocation is progressively deflated; the mean service time is measured
at each deflation ratio.  The paper's findings to reproduce:

* for five of the six functions, deflating by up to ~30 % costs only a
  small service-time penalty;
* beyond that, service time grows roughly linearly with deflation;
* MobileNet, which already saturates its 2 vCPUs, degrades nearly
  proportionally from the start (the worst case for deflation), but
  shows no anomalous behaviour even at 50 %+ deflation.

Two modes are provided: the *analytic* curve straight from the function
profiles (fast, used by the benchmark), and a *measured* mode that runs
each (function, deflation level) pair through the simulator at low load
and reports the empirical mean service time — verifying that the
simulator's containers actually honour the deflation response.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.simulation import run_fixed_allocation
from repro.workloads.functions import FUNCTION_CATALOG, FunctionProfile, get_function
from repro.workloads.generator import WorkloadBinding
from repro.workloads.schedules import StaticRate

#: The six realistic functions shown in Figure 7 (the micro-benchmark is excluded).
FIG7_FUNCTIONS = (
    "geofence",
    "binaryalert",
    "image-resizer",
    "squeezenet",
    "shufflenet",
    "mobilenet",
)


@dataclass(frozen=True)
class Fig7Point:
    """Service time of one function at one deflation ratio."""

    function_name: str
    is_dnn: bool
    deflation_ratio: float
    service_time: float
    relative_slowdown: float   #: service time divided by the un-deflated service time


def run_fig7(
    functions: Sequence[str] = FIG7_FUNCTIONS,
    deflation_ratios: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7),
    measured: bool = False,
    duration: float = 60.0,
    seed: int = 7,
) -> List[Fig7Point]:
    """Regenerate Figure 7 (both sub-plots: non-DNN and DNN functions).

    Parameters
    ----------
    measured:
        If true, actually run requests through deflated containers in the
        simulator and report empirical means; otherwise evaluate the
        profiles' deflation response curves directly.
    """
    points: List[Fig7Point] = []
    for name in functions:
        profile = get_function(name)
        baseline = profile.mean_service_time
        for ratio in deflation_ratios:
            if measured:
                service_time = _measured_service_time(profile, ratio, duration, seed)
            else:
                service_time = profile.service_time_at(1.0 - ratio)
            points.append(
                Fig7Point(
                    function_name=name,
                    is_dnn=profile.is_dnn,
                    deflation_ratio=ratio,
                    service_time=service_time,
                    relative_slowdown=service_time / baseline,
                )
            )
    return points


def _measured_service_time(
    profile: FunctionProfile, ratio: float, duration: float, seed: int
) -> float:
    """Empirical mean service time at one deflation level (single container, light load)."""
    # light load: well below one container's capacity so queueing never interferes
    lam = 0.3 * profile.service_rate
    binding = WorkloadBinding(
        profile=profile, schedule=StaticRate(lam, duration=duration), slo_deadline=None
    )
    result = run_fixed_allocation(
        binding=binding,
        containers=1,
        duration=duration,
        seed=seed,
        deflation_plan=[1.0 - ratio],
    )
    completed = result.metrics.completed_requests(profile.name)
    times = [r.service_time for r in completed if r.service_time is not None]
    if not times:
        return float("nan")
    return sum(times) / len(times)


def format_fig7(points: Sequence[Fig7Point]) -> str:
    """Render the Figure 7 curves as an aligned text table."""
    lines = [f"{'function':>14} {'dnn':>4} {'deflation%':>11} {'service (ms)':>13} {'slowdown':>9}"]
    for p in points:
        lines.append(
            f"{p.function_name:>14} {'yes' if p.is_dnn else 'no':>4} "
            f"{p.deflation_ratio * 100:>11.0f} {p.service_time * 1000:>13.1f} "
            f"{p.relative_slowdown:>9.2f}"
        )
    return "\n".join(lines)


def slowdown_at(points: Sequence[Fig7Point], function_name: str, ratio: float) -> float:
    """The relative slowdown of one function at one deflation ratio."""
    for p in points:
        if p.function_name == function_name and abs(p.deflation_ratio - ratio) < 1e-9:
            return p.relative_slowdown
    raise KeyError(f"no point for {function_name!r} at ratio {ratio}")


def small_penalty_at_threshold(points: Sequence[Fig7Point], threshold: float = 0.3,
                               max_penalty: float = 0.2) -> Dict[str, bool]:
    """Whether each non-MobileNet function's slowdown at ``threshold`` deflation is small.

    The paper's claim: "for 5 of the functions tested, deflating the CPU by
    30 % only yields a small penalty on service time."
    """
    verdicts: Dict[str, bool] = {}
    for name in {p.function_name for p in points}:
        if name == "mobilenet":
            continue
        slowdown = slowdown_at(points, name, threshold)
        verdicts[name] = slowdown <= 1.0 + max_penalty
    return verdicts


__all__ = [
    "Fig7Point",
    "FIG7_FUNCTIONS",
    "run_fig7",
    "format_fig7",
    "slowdown_at",
    "small_penalty_at_threshold",
]
