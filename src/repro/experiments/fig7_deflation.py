"""Figure 7: effect of CPU deflation on function service time (paper §6.5).

All six realistic functions are run inside containers whose CPU
allocation is progressively deflated; the mean service time is measured
at each deflation ratio.  The paper's findings to reproduce:

* for five of the six functions, deflating by up to ~30 % costs only a
  small service-time penalty;
* beyond that, service time grows roughly linearly with deflation;
* MobileNet, which already saturates its 2 vCPUs, degrades nearly
  proportionally from the start (the worst case for deflation), but
  shows no anomalous behaviour even at 50 %+ deflation.

Two modes are provided: the *analytic* curve straight from the function
profiles (fast, used by the benchmark), and a *measured* mode that runs
each (function, deflation level) pair through the simulator at low load
and reports the empirical mean service time — verifying that the
simulator's containers actually honour the deflation response.

This module is a thin renderer over the registry scenario ``"fig7"``
(``kind="deflation_curve"``); both evaluation modes live in
:mod:`repro.scenarios.runner`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.scenarios import build, run_scenario
from repro.scenarios.registry import FIG7_FUNCTIONS


@dataclass(frozen=True)
class Fig7Point:
    """Service time of one function at one deflation ratio."""

    function_name: str
    is_dnn: bool
    deflation_ratio: float
    service_time: float
    relative_slowdown: float   #: service time divided by the un-deflated service time


def run_fig7(
    functions: Sequence[str] = FIG7_FUNCTIONS,
    deflation_ratios: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7),
    measured: bool = False,
    duration: float = 60.0,
    seed: int = 7,
) -> List[Fig7Point]:
    """Regenerate Figure 7 (both sub-plots) through the scenario registry.

    Parameters
    ----------
    measured:
        If true, actually run requests through deflated containers in the
        simulator and report empirical means; otherwise evaluate the
        profiles' deflation response curves directly.
    """
    spec = build(
        "fig7",
        functions=functions,
        deflation_ratios=deflation_ratios,
        measured=measured,
        duration=duration,
        seed=seed,
    )
    return [
        Fig7Point(
            function_name=row["function"],
            is_dnn=row["is_dnn"],
            deflation_ratio=row["deflation_ratio"],
            service_time=row["service_time"],
            relative_slowdown=row["relative_slowdown"],
        )
        for row in run_scenario(spec).data["rows"]
    ]


def format_fig7(points: Sequence[Fig7Point]) -> str:
    """Render the Figure 7 curves as an aligned text table."""
    lines = [f"{'function':>14} {'dnn':>4} {'deflation%':>11} {'service (ms)':>13} {'slowdown':>9}"]
    for p in points:
        lines.append(
            f"{p.function_name:>14} {'yes' if p.is_dnn else 'no':>4} "
            f"{p.deflation_ratio * 100:>11.0f} {p.service_time * 1000:>13.1f} "
            f"{p.relative_slowdown:>9.2f}"
        )
    return "\n".join(lines)


def slowdown_at(points: Sequence[Fig7Point], function_name: str, ratio: float) -> float:
    """The relative slowdown of one function at one deflation ratio."""
    for p in points:
        if p.function_name == function_name and abs(p.deflation_ratio - ratio) < 1e-9:
            return p.relative_slowdown
    raise KeyError(f"no point for {function_name!r} at ratio {ratio}")


def small_penalty_at_threshold(points: Sequence[Fig7Point], threshold: float = 0.3,
                               max_penalty: float = 0.2) -> Dict[str, bool]:
    """Whether each non-MobileNet function's slowdown at ``threshold`` deflation is small.

    The paper's claim: "for 5 of the functions tested, deflating the CPU by
    30 % only yields a small penalty on service time."
    """
    verdicts: Dict[str, bool] = {}
    for name in {p.function_name for p in points}:
        if name == "mobilenet":
            continue
        slowdown = slowdown_at(points, name, threshold)
        verdicts[name] = slowdown <= 1.0 + max_penalty
    return verdicts


__all__ = [
    "Fig7Point",
    "FIG7_FUNCTIONS",
    "run_fig7",
    "format_fig7",
    "slowdown_at",
    "small_penalty_at_threshold",
]
