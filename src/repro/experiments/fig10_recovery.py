"""Figure 10: recovery from a mid-run node failure (fault injection).

This experiment goes beyond the paper's evaluation, which assumes a
perfectly healthy cluster: it measures how the LaSS sizing/reclamation
loop behaves when a third of the testbed disappears mid-run.  One
SqueezeNet workload runs at steady load on the 3-node cluster; at
``fail_at`` node-0 — the node best-fit packing loads with all the
containers — crashes (they are evicted: running requests fail, queued
requests are salvaged and requeued) and at ``recover_at`` it returns
empty.

Two arms replay *identical* randomness (``seed_mode="base"``, the same
design as the Figure 8/9 policy comparisons), so every difference is
caused by the outage alone:

* **healthy** — the scenario without its fault schedule (byte-identical
  to a spec that never had one, a property the metamorphic tests pin);
* **faulted** — the same run with the node outage injected.

The interesting outputs are the fault group of the results envelope —
capacity/request availability and the controller's *recovery time* (how
long until every function regained its pre-failure warm-container
count, i.e. the re-provisioning loop's reaction, not the node's) —
side-by-side with the SLO damage: P95 waiting time and attainment.

This module is a thin renderer over the registry sweep ``"fig10"``,
like every other experiment since the scenario subsystem landed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.scenarios import build, run_scenario


@dataclass
class Fig10Arm:
    """One arm's headline numbers (healthy or faulted)."""

    name: str
    completions: int
    failed_requests: int
    p95_wait: float
    slo_attainment: Optional[float]
    mean_utilization: float
    capacity_availability: Optional[float]
    request_availability: Optional[float]
    mean_recovery_time: Optional[float]


@dataclass
class Fig10Result:
    """Both arms of the recovery experiment."""

    node: str
    fail_at: float
    recover_at: float
    healthy: Fig10Arm
    faulted: Fig10Arm

    @property
    def p95_degradation(self) -> float:
        """Faulted-minus-healthy P95 waiting time (seconds)."""
        return self.faulted.p95_wait - self.healthy.p95_wait


def _arm(data: Dict[str, Any], function: str) -> Fig10Arm:
    """Extract one arm's summary from its scenario results envelope."""
    metrics = data["metrics"]
    func = metrics["functions"][function]
    slo = func.get("slo")
    faults = data.get("faults")
    return Fig10Arm(
        name=data["scenario"]["name"],
        completions=metrics["counters"].get("completions", 0),
        failed_requests=(faults or {}).get("failed_requests", 0),
        p95_wait=func["waiting"]["p95"],
        slo_attainment=slo["attainment"] if slo else None,
        mean_utilization=metrics["cluster"]["mean_utilization"],
        capacity_availability=(faults or {}).get("capacity_availability"),
        request_availability=(faults or {}).get("request_availability"),
        mean_recovery_time=(faults or {}).get("mean_recovery_time"),
    )


def run_fig10(
    rate: float = 20.0,
    fail_at: float = 120.0,
    recover_at: float = 240.0,
    duration: float = 360.0,
    seed: int = 21,
) -> Fig10Result:
    """Regenerate Figure 10: the node-failure recovery comparison."""
    sweep = build("fig10", rate=rate, fail_at=fail_at, recover_at=recover_at,
                  duration=duration, seed=seed)
    healthy = faulted = None
    function = sweep.base.workloads[0].function
    for spec in sweep.expand():
        outcome = run_scenario(spec)
        arm = _arm(outcome.data, function)
        if spec.faults is None:
            healthy = arm
        else:
            faulted = arm
    assert healthy is not None and faulted is not None
    node = sweep.base.faults.node_failures[0].node
    return Fig10Result(node=node, fail_at=fail_at, recover_at=recover_at,
                       healthy=healthy, faulted=faulted)


def format_fig10(result: Fig10Result) -> str:
    """Render the Figure 10 outcome as text."""
    lines = [
        f"{result.node} down from t={result.fail_at:g}s to t={result.recover_at:g}s",
    ]
    for arm in (result.healthy, result.faulted):
        lines.append(f"arm={arm.name}")
        lines.append(f"  completed requests        : {arm.completions}")
        lines.append(f"  failed requests           : {arm.failed_requests}")
        lines.append(f"  P95 waiting time          : {arm.p95_wait * 1000:.1f} ms")
        if arm.slo_attainment is not None:
            lines.append(f"  SLO attainment            : {arm.slo_attainment * 100:.1f}%")
        lines.append(f"  mean utilisation          : {arm.mean_utilization * 100:.1f}%")
        if arm.capacity_availability is not None:
            lines.append(f"  capacity availability     : {arm.capacity_availability * 100:.2f}%")
            lines.append(f"  request availability      : {arm.request_availability * 100:.2f}%")
            recovery = (f"{arm.mean_recovery_time:.1f} s"
                        if arm.mean_recovery_time is not None else "never")
            lines.append(f"  mean recovery time        : {recovery}")
    lines.append(f"P95 degradation under the outage: {result.p95_degradation * 1000:+.1f} ms")
    return "\n".join(lines)


__all__ = ["Fig10Arm", "Fig10Result", "run_fig10", "format_fig10"]
