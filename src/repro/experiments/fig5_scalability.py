"""Figure 5: scalability of the allocation algorithm (paper §6.3).

The paper measures how long the allocation algorithm takes to react to
a load spike as a function of the number of containers the function
already has, for two spike sizes (a 10 % increase and a doubling), and
compares its original Scala implementation against an optimised Julia
one.  The Julia path stays under ~100 ms even at 1000 containers.

Here the two implementations are the pure-Python reference
(:func:`required_containers`, incrementing ``c`` one at a time) and the
vectorised fast path (:func:`required_containers_fast`, exponential +
binary search with numpy inner loops).  The *shape* to reproduce: the
fast path's reaction time stays roughly flat (sub-second, typically
well under 100 ms) as the container count grows into the thousands,
while the reference path grows with the container count.

This module is a thin renderer over the registry scenario ``"fig5"``
(``kind="sizing_benchmark"``); the timing loop itself lives in
:mod:`repro.scenarios.runner`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.scenarios import build, run_scenario


@dataclass(frozen=True)
class Fig5Point:
    """Timing of one allocation computation."""

    implementation: str          #: "naive" (Scala stand-in), "reference", or "fast" (Julia stand-in)
    spike: str                   #: "10%" or "2x"
    current_containers: int
    new_containers: int
    compute_seconds: float


def run_fig5(
    container_counts: Sequence[int] = (10, 50, 100, 250, 500, 750, 1000),
    mu: float = 10.0,
    slo_deadline: float = 0.1,
    percentile: float = 0.99,
    spikes: Sequence[str] = ("10%", "2x"),
    implementations: Sequence[str] = ("naive", "fast"),
    repeats: int = 3,
) -> List[Fig5Point]:
    """Regenerate Figure 5: allocation-algorithm compute time vs. container count.

    ``implementations`` selects which sizing paths to time: "naive" is the
    pure-Python term-by-term path (the stand-in for the paper's Scala
    implementation), "reference" is the log-space incremental path, and
    "fast" is the vectorised binary-search path (the Julia stand-in).
    """
    spec = build(
        "fig5",
        container_counts=container_counts,
        mu=mu,
        slo_deadline=slo_deadline,
        percentile=percentile,
        spikes=spikes,
        implementations=implementations,
        repeats=repeats,
    )
    return [
        Fig5Point(
            implementation=row["implementation"],
            spike=row["spike"],
            current_containers=row["current_containers"],
            new_containers=row["new_containers"],
            compute_seconds=row["compute_seconds"],
        )
        for row in run_scenario(spec).data["rows"]
    ]


def format_fig5(points: Sequence[Fig5Point]) -> str:
    """Render the Figure 5 timings as an aligned text table."""
    lines = [f"{'impl':>10} {'spike':>6} {'containers':>11} {'new c':>6} {'time (ms)':>10}"]
    for p in points:
        lines.append(
            f"{p.implementation:>10} {p.spike:>6} {p.current_containers:>11d} "
            f"{p.new_containers:>6d} {p.compute_seconds * 1000:>10.2f}"
        )
    return "\n".join(lines)


def max_time_seconds(points: Sequence[Fig5Point], implementation: str) -> float:
    """The worst-case compute time of one implementation across all points."""
    relevant = [p.compute_seconds for p in points if p.implementation == implementation]
    return max(relevant) if relevant else 0.0


__all__ = ["Fig5Point", "run_fig5", "format_fig5", "max_time_seconds"]
