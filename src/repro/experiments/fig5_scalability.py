"""Figure 5: scalability of the allocation algorithm (paper §6.3).

The paper measures how long the allocation algorithm takes to react to
a load spike as a function of the number of containers the function
already has, for two spike sizes (a 10 % increase and a doubling), and
compares its original Scala implementation against an optimised Julia
one.  The Julia path stays under ~100 ms even at 1000 containers.

Here the two implementations are the pure-Python reference
(:func:`required_containers`, incrementing ``c`` one at a time) and the
vectorised fast path (:func:`required_containers_fast`, exponential +
binary search with numpy inner loops).  The *shape* to reproduce: the
fast path's reaction time stays roughly flat (sub-second, typically
well under 100 ms) as the container count grows into the thousands,
while the reference path grows with the container count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.core.queueing.sizing import (
    required_containers,
    required_containers_fast,
    required_containers_naive,
)


@dataclass(frozen=True)
class Fig5Point:
    """Timing of one allocation computation."""

    implementation: str          #: "naive" (Scala stand-in), "reference", or "fast" (Julia stand-in)
    spike: str                   #: "10%" or "2x"
    current_containers: int
    new_containers: int
    compute_seconds: float


def _workload_for_containers(containers: int, mu: float, wait_budget: float,
                             percentile: float) -> float:
    """Find an arrival rate for which the model picks ≈ ``containers`` containers.

    We invert the sizing function coarsely: the model's answer is close to
    the offered load plus a sub-linear safety margin, so λ ≈ 0.9·c·μ is a
    good starting point, refined with a few correction steps.
    """
    lam = 0.9 * containers * mu
    for _ in range(8):
        got = required_containers_fast(lam, mu, wait_budget, percentile).containers
        if got == containers:
            return lam
        lam *= containers / max(1, got)
    return lam


def run_fig5(
    container_counts: Sequence[int] = (10, 50, 100, 250, 500, 750, 1000),
    mu: float = 10.0,
    slo_deadline: float = 0.1,
    percentile: float = 0.99,
    spikes: Sequence[str] = ("10%", "2x"),
    implementations: Sequence[str] = ("naive", "fast"),
    repeats: int = 3,
) -> List[Fig5Point]:
    """Regenerate Figure 5: allocation-algorithm compute time vs. container count.

    ``implementations`` selects which sizing paths to time: "naive" is the
    pure-Python term-by-term path (the stand-in for the paper's Scala
    implementation), "reference" is the log-space incremental path, and
    "fast" is the vectorised binary-search path (the Julia stand-in).
    """
    impl_map: dict[str, Callable] = {
        "naive": required_containers_naive,
        "reference": required_containers,
        "fast": required_containers_fast,
    }
    spike_map = {"10%": 1.1, "2x": 2.0}
    points: List[Fig5Point] = []
    for count in container_counts:
        base_lam = _workload_for_containers(count, mu, slo_deadline, percentile)
        for spike in spikes:
            spiked_lam = base_lam * spike_map[spike]
            for name in implementations:
                func = impl_map[name]
                best = float("inf")
                result = None
                for _ in range(repeats):
                    start = time.perf_counter()
                    result = func(
                        lam=spiked_lam,
                        mu=mu,
                        wait_budget=slo_deadline,
                        percentile=percentile,
                        current_containers=count,
                    )
                    best = min(best, time.perf_counter() - start)
                points.append(
                    Fig5Point(
                        implementation=name,
                        spike=spike,
                        current_containers=count,
                        new_containers=result.containers,
                        compute_seconds=best,
                    )
                )
    return points


def format_fig5(points: Sequence[Fig5Point]) -> str:
    """Render the Figure 5 timings as an aligned text table."""
    lines = [f"{'impl':>10} {'spike':>6} {'containers':>11} {'new c':>6} {'time (ms)':>10}"]
    for p in points:
        lines.append(
            f"{p.implementation:>10} {p.spike:>6} {p.current_containers:>11d} "
            f"{p.new_containers:>6d} {p.compute_seconds * 1000:>10.2f}"
        )
    return "\n".join(lines)


def max_time_seconds(points: Sequence[Fig5Point], implementation: str) -> float:
    """The worst-case compute time of one implementation across all points."""
    relevant = [p.compute_seconds for p in points if p.implementation == implementation]
    return max(relevant) if relevant else 0.0


__all__ = ["Fig5Point", "run_fig5", "format_fig5", "max_time_seconds"]
