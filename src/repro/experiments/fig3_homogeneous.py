"""Figure 3: model validation with homogeneous containers (paper §6.2.1).

The micro-benchmark function is configured with service rates μ = 5 and
10 req/s and SLO deadlines of 100 ms and 200 ms.  For each arrival rate
λ in {10, 20, 30, 40, 50} the queueing model picks the container count
``c``; the function then runs with exactly ``c`` containers and the
measured 95th-percentile waiting time is compared against the SLO.

The paper's criterion: the measured P95 waiting time should be "below
or close to the SLO deadline" for every configuration.

This module is a thin renderer: the experiment itself lives in the
scenario registry (``repro.scenarios.registry``, name ``"fig3"``) as a
sweep of ``kind="fixed"`` scenarios, and :func:`run_fig3` maps the
unified scenario results back onto :class:`Fig3Point` rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.scenarios import build, run_scenario


@dataclass(frozen=True)
class Fig3Point:
    """One bar of Figure 3: a (μ, SLO, λ) configuration and its measurement."""

    mu: float
    slo_deadline: float
    arrival_rate: float
    containers: int
    predicted_p95_bound: float
    measured_p95_wait: float
    measured_mean_wait: float
    measured_max_wait: float
    completed: int

    @property
    def slo_met(self) -> bool:
        """Whether the measured P95 waiting time is within the SLO deadline."""
        return self.measured_p95_wait <= self.slo_deadline + 1e-9


def run_fig3(
    mus: Sequence[float] = (5.0, 10.0),
    slo_deadlines: Sequence[float] = (0.1, 0.2),
    arrival_rates: Sequence[float] = (10.0, 20.0, 30.0, 40.0, 50.0),
    duration: float = 300.0,
    percentile: float = 0.95,
    warmup: float = 20.0,
    seed: int = 3,
) -> List[Fig3Point]:
    """Regenerate Figure 3 (all four sub-plots) through the scenario registry.

    ``duration`` defaults to 300 simulated seconds per configuration
    (the paper runs 30 minutes of wall-clock time per point; the
    steady-state percentiles converge much earlier in simulation).
    """
    sweep = build(
        "fig3",
        mus=mus,
        slo_deadlines=slo_deadlines,
        arrival_rates=arrival_rates,
        duration=duration,
        percentile=percentile,
        warmup=warmup,
        seed=seed,
    )
    grid = [(mu, slo, lam) for mu in mus for slo in slo_deadlines for lam in arrival_rates]
    points: List[Fig3Point] = []
    for (mu, slo, lam), spec in zip(grid, sweep.expand()):
        data = run_scenario(spec).data
        waiting = data["metrics"]["functions"]["microbenchmark"]["waiting"]
        points.append(
            Fig3Point(
                mu=mu,
                slo_deadline=slo,
                arrival_rate=lam,
                containers=data["allocation"]["containers"],
                predicted_p95_bound=slo,
                measured_p95_wait=waiting["p95"],
                measured_mean_wait=waiting["mean"],
                measured_max_wait=waiting["max"],
                completed=waiting["count"],
            )
        )
    return points


def format_fig3(points: Sequence[Fig3Point]) -> str:
    """Render the Figure 3 measurements as an aligned text table."""
    lines = [
        f"{'mu':>5} {'SLO(ms)':>8} {'lambda':>7} {'c':>4} "
        f"{'p95 wait(ms)':>13} {'mean(ms)':>9} {'met':>4}"
    ]
    for p in points:
        lines.append(
            f"{p.mu:>5.0f} {p.slo_deadline * 1000:>8.0f} {p.arrival_rate:>7.0f} "
            f"{p.containers:>4d} {p.measured_p95_wait * 1000:>13.1f} "
            f"{p.measured_mean_wait * 1000:>9.1f} {'yes' if p.slo_met else 'NO':>4}"
        )
    return "\n".join(lines)


def fraction_meeting_slo(points: Sequence[Fig3Point], tolerance: float = 0.25) -> float:
    """Fraction of configurations whose P95 wait is within (1+tolerance)×SLO.

    The paper accepts "below or close to" the deadline; the tolerance
    captures the "close to" part for the inherently noisy percentile
    estimate.
    """
    if not points:
        return 1.0
    ok = sum(1 for p in points if p.measured_p95_wait <= p.slo_deadline * (1 + tolerance))
    return ok / len(points)


__all__ = ["Fig3Point", "run_fig3", "format_fig3", "fraction_meeting_slo"]
