"""Experiment renderers: one module per table/figure of the paper's evaluation.

Since the scenario subsystem landed, the experiments themselves are
*data*: each figure/table is a registered
:class:`~repro.scenarios.spec.ScenarioSpec` or
:class:`~repro.scenarios.sweep.SweepSpec` in
:mod:`repro.scenarios.registry`.  The modules here are thin renderers —
each ``run_*`` function builds its registry entry, executes it through
:func:`~repro.scenarios.runner.run_scenario`, and maps the unified
results back onto the figure's traditional dataclasses; each
``format_*`` helper renders those as text.  The benchmark suite under
``benchmarks/`` invokes these renderers (usually with shortened
durations) and EXPERIMENTS.md records the full-length results against
the paper's numbers.

| Paper artefact | Renderer |
|----------------|----------|
| Table 1        | :mod:`repro.experiments.table1_functions` |
| Figure 3       | :mod:`repro.experiments.fig3_homogeneous` |
| Figure 4       | :mod:`repro.experiments.fig4_heterogeneous` |
| Figure 5       | :mod:`repro.experiments.fig5_scalability` |
| Figure 6       | :mod:`repro.experiments.fig6_autoscaling` |
| Figure 7       | :mod:`repro.experiments.fig7_deflation` |
| Figure 8       | :mod:`repro.experiments.fig8_reclamation` |
| Figure 9       | :mod:`repro.experiments.fig9_azure` |
| Figure 9 at scale* | :mod:`repro.experiments.fig9_at_scale` |
| Figure 10*     | :mod:`repro.experiments.fig10_recovery` |
| Figure 11*     | :mod:`repro.experiments.fig11_policies` |
| Figure 12*     | :mod:`repro.experiments.fig12_federation` |

(*) Figure 9 at scale and Figures 10–12 are this reproduction's own
extensions — the Azure-scale streaming trace replay, node failure
recovery under fault injection, the control-plane policy shootout, and
the geo-distributed federation router comparison — not figures of the
source paper.
"""

from typing import Callable, Dict, Optional

from repro.experiments.table1_functions import run_table1, format_table1
from repro.experiments.fig3_homogeneous import run_fig3, Fig3Point
from repro.experiments.fig4_heterogeneous import run_fig4, Fig4Point
from repro.experiments.fig5_scalability import run_fig5, Fig5Point
from repro.experiments.fig6_autoscaling import run_fig6, Fig6Result
from repro.experiments.fig7_deflation import run_fig7, Fig7Point
from repro.experiments.fig8_reclamation import run_fig8, Fig8Result
from repro.experiments.fig9_azure import run_fig9, Fig9Result
from repro.experiments.fig9_at_scale import run_fig9_at_scale, Fig9AtScaleResult
from repro.experiments.fig10_recovery import run_fig10, Fig10Result
from repro.experiments.fig11_policies import run_fig11, Fig11Result
from repro.experiments.fig12_federation import run_fig12, Fig12Result


def _render_table1(duration: Optional[float]) -> str:
    """Table 1 text (``duration`` is ignored; the catalogue is static)."""
    return format_table1()


def _render_fig3(duration: Optional[float]) -> str:
    """Figure 3 text table at the given (or default) per-point duration."""
    from repro.experiments.fig3_homogeneous import format_fig3

    return format_fig3(run_fig3(duration=duration or 300.0))


def _render_fig4(duration: Optional[float]) -> str:
    """Figure 4 text table at the given (or default) per-point duration."""
    from repro.experiments.fig4_heterogeneous import format_fig4

    return format_fig4(run_fig4(duration=duration or 240.0))


def _render_fig5(duration: Optional[float]) -> str:
    """Figure 5 timing table (``duration`` does not apply)."""
    from repro.experiments.fig5_scalability import format_fig5

    return format_fig5(run_fig5())


def _render_fig6(duration: Optional[float]) -> str:
    """Figure 6 micro-benchmark allocation timeline, one line per sample."""
    result = run_fig6(step_duration=duration or 60.0)
    times, counts = result.micro_timeline
    return "\n".join(
        f"t={t:7.1f}s  microbenchmark containers={c}" for t, c in zip(times, counts)
    )


def _render_fig7(duration: Optional[float]) -> str:
    """Figure 7 deflation-response table (analytic mode)."""
    from repro.experiments.fig7_deflation import format_fig7

    return format_fig7(run_fig7())


def _render_fig8(duration: Optional[float]) -> str:
    """Figure 8 policy comparison at the given (or default) phase duration."""
    from repro.experiments.fig8_reclamation import format_fig8

    return format_fig8(run_fig8(phase_duration=duration or 180.0))


def _render_fig9(duration: Optional[float]) -> str:
    """Figure 9 trace-replay comparison; ``duration`` is minutes of trace."""
    from repro.experiments.fig9_azure import format_fig9

    return format_fig9(run_fig9(duration_minutes=int(duration or 30)))


def _render_fig9_at_scale(duration: Optional[float]) -> str:
    """Figure 9 at-scale streaming replay; ``duration`` is minutes of trace.

    Runs the full 10,000-function population (≈30 s of compute for the
    default synthetic day; scales linearly with ``duration``).
    """
    from repro.experiments.fig9_at_scale import format_fig9_at_scale

    return format_fig9_at_scale(
        run_fig9_at_scale(duration_minutes=int(duration or 1440))
    )


def _render_fig10(duration: Optional[float]) -> str:
    """Figure 10 node-failure recovery comparison (fault injection).

    ``duration`` scales the whole timeline: the outage spans the middle
    third of the run, as in the default 120 s → 240 s window.
    """
    from repro.experiments.fig10_recovery import format_fig10

    total = duration or 360.0
    return format_fig10(run_fig10(fail_at=total / 3, recover_at=2 * total / 3,
                                  duration=total))


def _render_fig11(duration: Optional[float]) -> str:
    """Figure 11 policy-shootout table (control planes head-to-head).

    ``duration`` scales the whole timeline; the faulted arms lose node-0
    for the middle third of the run, like Figure 10.
    """
    from repro.experiments.fig11_policies import format_fig11

    return format_fig11(run_fig11(duration=duration or 360.0))


def _render_fig12(duration: Optional[float]) -> str:
    """Figure 12 federation-router table (site faults head-to-head).

    ``duration`` scales the whole timeline; the faulted arms lose (or
    are partitioned from) the origin site for the middle third.
    """
    from repro.experiments.fig12_federation import format_fig12

    return format_fig12(run_fig12(duration=duration or 240.0))


#: Text renderer per paper experiment, keyed by scenario-registry name.
RENDERERS: Dict[str, Callable[[Optional[float]], str]] = {
    "table1": _render_table1,
    "fig3": _render_fig3,
    "fig4": _render_fig4,
    "fig5": _render_fig5,
    "fig6": _render_fig6,
    "fig7": _render_fig7,
    "fig8": _render_fig8,
    "fig9": _render_fig9,
    "fig9-at-scale": _render_fig9_at_scale,
    "fig10": _render_fig10,
    "fig11": _render_fig11,
    "fig12": _render_fig12,
}


def render_experiment(name: str, duration: Optional[float] = None) -> str:
    """Run one paper experiment by registry name and return its text rendering.

    ``duration`` overrides the experiment's time knob where it has one
    (seconds per point/phase/step; minutes for ``fig9``).  Valid names
    are exactly :func:`repro.scenarios.registry.experiment_names` — a
    test enforces that this table and the registry never drift apart.
    """
    try:
        renderer = RENDERERS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {sorted(RENDERERS)}"
        ) from None
    return renderer(duration)


__all__ = [
    "RENDERERS",
    "render_experiment",
    "run_table1",
    "format_table1",
    "run_fig3",
    "Fig3Point",
    "run_fig4",
    "Fig4Point",
    "run_fig5",
    "Fig5Point",
    "run_fig6",
    "Fig6Result",
    "run_fig7",
    "Fig7Point",
    "run_fig8",
    "Fig8Result",
    "run_fig9",
    "Fig9Result",
    "run_fig9_at_scale",
    "Fig9AtScaleResult",
    "run_fig10",
    "Fig10Result",
    "run_fig11",
    "Fig11Result",
    "run_fig12",
    "Fig12Result",
]
