"""Experiment harnesses: one module per table/figure of the paper's evaluation.

Each module exposes a ``run_*`` function that regenerates the rows or
series of one table/figure and returns them as plain dataclasses /
dicts, plus a ``format_*`` helper that renders them as text.  The
benchmark suite under ``benchmarks/`` invokes these harnesses (usually
with shortened durations) and EXPERIMENTS.md records the full-length
results against the paper's numbers.

| Paper artefact | Harness |
|----------------|---------|
| Table 1        | :mod:`repro.experiments.table1_functions` |
| Figure 3       | :mod:`repro.experiments.fig3_homogeneous` |
| Figure 4       | :mod:`repro.experiments.fig4_heterogeneous` |
| Figure 5       | :mod:`repro.experiments.fig5_scalability` |
| Figure 6       | :mod:`repro.experiments.fig6_autoscaling` |
| Figure 7       | :mod:`repro.experiments.fig7_deflation` |
| Figure 8       | :mod:`repro.experiments.fig8_reclamation` |
| Figure 9       | :mod:`repro.experiments.fig9_azure` |
"""

from repro.experiments.table1_functions import run_table1, format_table1
from repro.experiments.fig3_homogeneous import run_fig3, Fig3Point
from repro.experiments.fig4_heterogeneous import run_fig4, Fig4Point
from repro.experiments.fig5_scalability import run_fig5, Fig5Point
from repro.experiments.fig6_autoscaling import run_fig6, Fig6Result
from repro.experiments.fig7_deflation import run_fig7, Fig7Point
from repro.experiments.fig8_reclamation import run_fig8, Fig8Result
from repro.experiments.fig9_azure import run_fig9, Fig9Result

__all__ = [
    "run_table1",
    "format_table1",
    "run_fig3",
    "Fig3Point",
    "run_fig4",
    "Fig4Point",
    "run_fig5",
    "Fig5Point",
    "run_fig6",
    "Fig6Result",
    "run_fig7",
    "Fig7Point",
    "run_fig8",
    "Fig8Result",
    "run_fig9",
    "Fig9Result",
]
