"""Figure 8: fair share and resource reclamation under overload (paper §6.6).

Two functions — BinaryAlert (malware detection) and MobileNet — share
the paper's 3-node edge cluster with equal weights.  The workload has
five phases:

1. only BinaryAlert receives requests (no overload);
2. MobileNet starts and needs more than its fair share;
3. BinaryAlert's load rises (still below its fair share) and the
   cluster becomes overloaded;
4. BinaryAlert's load rises further, so *both* functions want more than
   their fair share;
5. MobileNet's burst ends, freeing the cluster for BinaryAlert.

The experiment is run three times: with the termination reclamation
policy, with the deflation policy, and with the vanilla-OpenWhisk
baseline.  The paper's findings to reproduce:

* both LaSS policies keep every function at or above its guaranteed
  fair share during overload;
* deflation leaves less capacity unused than termination (78.2 % →
  83.2 % mean utilisation in the paper, a ~6 % improvement);
* under the deflation policy each function always holds at least as
  much CPU as under termination;
* vanilla OpenWhisk suffers a cascading invoker failure and cannot
  finish the experiment.

This module is a thin renderer over the registry sweep ``"fig8"``: the
five-phase workload and all three arms are declared in
:mod:`repro.scenarios.registry`, and this module turns the per-arm
scenario results into the policy-comparison statistics above.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.controller import ReclamationPolicy
from repro.scenarios import build, run_scenario
from repro.scenarios.runner import ScenarioOutcome
from repro.simulation import SimulationResult
from repro.workloads.generator import WorkloadBinding


@dataclass
class Fig8PolicyOutcome:
    """What one policy achieved over the staged-overload workload."""

    policy: str
    mean_utilization: float
    overload_utilization: float
    min_cpu_by_function: Dict[str, float]
    mean_cpu_by_function: Dict[str, float]
    guaranteed_cpu: Dict[str, float]
    fair_share_violations: Dict[str, float]
    completions: int
    drops: int
    container_operations: Dict[str, int]
    result: Optional[SimulationResult] = None


@dataclass
class Fig8BaselineOutcome:
    """What vanilla OpenWhisk did on the same workload."""

    failed_invokers: int
    all_invokers_failed: bool
    completions: int
    arrivals: int
    drops: int


@dataclass
class Fig8Result:
    """All three runs of the Figure 8 experiment."""

    phase_duration: float
    termination: Fig8PolicyOutcome
    deflation: Fig8PolicyOutcome
    openwhisk: Optional[Fig8BaselineOutcome]

    @property
    def utilization_improvement(self) -> float:
        """Deflation-minus-termination mean utilisation during overload (paper: ≈ +5..6 points)."""
        return self.deflation.overload_utilization - self.termination.overload_utilization


def build_workloads(phase_duration: float) -> Tuple[List[WorkloadBinding], float]:
    """The five-phase workload of §6.6, scaled to ``phase_duration`` seconds per phase.

    Rates are calibrated to the simulated functions so the phases land in
    the same qualitative regimes as the paper (12-vCPU cluster, 6-vCPU
    guaranteed share each):

    * phase 1 — BinaryAlert alone needs 4 standard containers (2 vCPU);
    * phase 2 — MobileNet needs 5 containers (10 vCPU, above its share),
      filling the cluster exactly: still no overload;
    * phase 3 — BinaryAlert needs one more container (2.5 vCPU, still
      below its share), so the cluster overloads and capacity must be
      reclaimed from MobileNet.  The termination policy must free a whole
      2-vCPU MobileNet container to hand over 0.5 vCPU (the fragmentation
      the paper highlights); the deflation policy shaves just enough off
      MobileNet's five containers;
    * phase 4 — BinaryAlert's demand exceeds its share too, so both
      functions are capped at 6 vCPU;
    * phase 5 — MobileNet's burst ends.

    (The canonical definition is the ``"fig8"`` registry entry; this
    helper materialises its workload bindings for callers that drive the
    simulator directly.)
    """
    base = build("fig8", phase_duration=phase_duration).base
    return [w.build() for w in base.workloads], base.duration


def _policy_outcome(outcome: ScenarioOutcome, phase_duration: float) -> Fig8PolicyOutcome:
    """Compute one arm's fair-share/utilisation statistics from its scenario run."""
    result = outcome.sim
    metrics = result.metrics
    guaranteed = result.controller.guaranteed_cpu_shares()
    policy = outcome.spec.controller.reclamation

    overload_start = 2 * phase_duration
    overload_end = 4 * phase_duration
    min_cpu: Dict[str, float] = {}
    mean_cpu: Dict[str, float] = {}
    violations: Dict[str, float] = {}
    for workload in outcome.spec.workloads:
        name = workload.function
        series = metrics.timeline.series(name)
        overload_points = [p for p in series if overload_start <= p.time <= overload_end]
        cpu_values = [p.cpu for p in overload_points]
        min_cpu[name] = min(cpu_values) if cpu_values else 0.0
        mean_cpu[name] = sum(cpu_values) / len(cpu_values) if cpu_values else 0.0
        # a "violation" epoch: the function wanted more than its guaranteed
        # share but held less than it
        standard_cpu = result.cluster.deployment(name).cpu
        violation_epochs = 0
        for point in overload_points:
            wanted = (point.desired_containers or 0) * standard_cpu
            if wanted > guaranteed[name] + 1e-9 and point.cpu < guaranteed[name] - standard_cpu:
                violation_epochs += 1
        violations[name] = violation_epochs / len(overload_points) if overload_points else 0.0

    return Fig8PolicyOutcome(
        policy=policy,
        mean_utilization=metrics.mean_utilization(),
        overload_utilization=metrics.utilization.mean_utilization(overload_start, overload_end),
        min_cpu_by_function=min_cpu,
        mean_cpu_by_function=mean_cpu,
        guaranteed_cpu=guaranteed,
        fair_share_violations=violations,
        completions=metrics.counters.get("completions", 0),
        drops=metrics.counters.get("drops", 0),
        container_operations={
            "creations": metrics.counters.get("creations", 0),
            "terminations": metrics.counters.get("terminations", 0),
            "deflations": metrics.counters.get("deflations", 0),
            "inflations": metrics.counters.get("inflations", 0),
        },
        result=result,
    )


def run_fig8(
    phase_duration: float = 180.0,
    seed: int = 8,
    include_openwhisk: bool = True,
) -> Fig8Result:
    """Regenerate Figure 8: the staged overload under all three controllers."""
    sweep = build("fig8", phase_duration=phase_duration, seed=seed,
                  include_openwhisk=include_openwhisk)
    termination = deflation = None
    openwhisk: Optional[Fig8BaselineOutcome] = None
    for spec in sweep.expand():
        outcome = run_scenario(spec)
        if spec.kind == "openwhisk":
            ow = outcome.data["openwhisk"]
            openwhisk = Fig8BaselineOutcome(
                failed_invokers=ow["failed_invokers"],
                all_invokers_failed=ow["all_invokers_failed"],
                completions=ow["completions"],
                arrivals=ow["arrivals"],
                drops=ow["drops"],
            )
        elif spec.controller.reclamation == ReclamationPolicy.TERMINATION.value:
            termination = _policy_outcome(outcome, phase_duration)
        else:
            deflation = _policy_outcome(outcome, phase_duration)
    assert termination is not None and deflation is not None
    return Fig8Result(
        phase_duration=phase_duration,
        termination=termination,
        deflation=deflation,
        openwhisk=openwhisk,
    )


def format_fig8(result: Fig8Result) -> str:
    """Render the Figure 8 outcome as text."""
    lines = []
    for outcome in (result.termination, result.deflation):
        lines.append(f"policy={outcome.policy}")
        lines.append(f"  mean utilisation          : {outcome.mean_utilization * 100:.1f}%")
        lines.append(f"  utilisation under overload: {outcome.overload_utilization * 100:.1f}%")
        for name, cpu in sorted(outcome.mean_cpu_by_function.items()):
            lines.append(
                f"  {name:<13} mean cpu {cpu:5.2f}  min cpu {outcome.min_cpu_by_function[name]:5.2f}"
                f"  guaranteed {outcome.guaranteed_cpu[name]:5.2f}"
            )
        lines.append(f"  container ops             : {outcome.container_operations}")
    lines.append(
        f"deflation - termination overload utilisation: "
        f"{result.utilization_improvement * 100:+.1f} points"
    )
    if result.openwhisk is not None:
        ow = result.openwhisk
        lines.append(
            f"vanilla OpenWhisk: {ow.failed_invokers} invokers failed "
            f"(all failed: {ow.all_invokers_failed}), "
            f"{ow.completions}/{ow.arrivals} requests completed"
        )
    return "\n".join(lines)


__all__ = [
    "Fig8Result",
    "Fig8PolicyOutcome",
    "Fig8BaselineOutcome",
    "run_fig8",
    "format_fig8",
    "build_workloads",
]
