"""Figure 12: the geo-distributed federation under every global router.

This experiment goes beyond the paper's figure set (like Figures 10 and
11): it runs the same two-function workload on a three-site federation
— two edge regions plus a cloud site — under each registered
:class:`~repro.federation.router.GlobalRouterPolicy`, three times each:
healthy, through a full blackout of the origin site (which rejoins with
fewer nodes), and through a WAN partition that cuts the router off from
the origin site while its local control loop keeps serving (edge
autonomy).  Every arm shares the base seed (``seed_mode="base"``) and,
within a failure mode, the identical fault schedule, so each row of the
rendered table isolates the router policy itself.  The columns:

* **SLO** — per-function attainment, the paper's headline metric, now
  aggregated across sites (WAN transit counts against the deadline);
* **placement** — where the requests actually ran, plus the failover
  mechanics (cross-site dispatches, redirects, bounces off sites whose
  health belief lagged reality, drops);
* **resilience** — federation-level capacity/request availability and
  the blacked-out site's recovery time (``never`` when the rejoined
  capacity cannot restore the clamped warm targets).

This module is a thin renderer over the registry sweep ``"fig12"``,
like every other experiment since the scenario subsystem landed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.scenarios import build, run_scenario


@dataclass
class Fig12Arm:
    """One (router, failure-mode) arm's headline numbers."""

    router: str
    mode: str  # "healthy" | "blackout" | "partition"
    arrivals: int
    completions: int
    slo_attainment: Dict[str, Optional[float]] = field(default_factory=dict)
    mean_utilization: float = 0.0
    dispatched: Dict[str, int] = field(default_factory=dict)
    local_autonomy: int = 0
    cross_site: int = 0
    redirects: int = 0
    bounces: int = 0
    drops: int = 0
    capacity_availability: Optional[float] = None
    request_availability: Optional[float] = None
    site_recovery_times: Dict[str, Optional[float]] = field(default_factory=dict)

    @property
    def served_fraction(self) -> float:
        """Completions over arrivals (0 when nothing arrived)."""
        return self.completions / self.arrivals if self.arrivals else 0.0


@dataclass
class Fig12Result:
    """All arms of the federation experiment, in sweep expansion order."""

    functions: Tuple[str, ...]
    sites: Tuple[str, ...]
    arms: List[Fig12Arm]

    def arm(self, router: str, mode: str) -> Optional[Fig12Arm]:
        """Look up one arm by router name and failure mode."""
        for arm in self.arms:
            if arm.router == router and arm.mode == mode:
                return arm
        return None


def _arm_mode(spec) -> str:
    """Which failure mode a shard spec runs (from its fault families)."""
    if spec.faults is None or spec.faults.is_empty():
        return "healthy"
    if spec.faults.site_blackouts:
        return "blackout"
    return "partition"


def _extract_arm(spec, data: Dict[str, Any],
                 functions: Tuple[str, ...]) -> Fig12Arm:
    """Map one shard's results envelope onto a :class:`Fig12Arm`."""
    metrics = data.get("metrics", {})
    counters = metrics.get("counters", {})
    function_metrics = metrics.get("functions", {})
    router_stats = data.get("federation", {}).get("router", {})
    faults = data.get("faults") or {}
    arm = Fig12Arm(
        router=spec.federation.router,
        mode=_arm_mode(spec),
        arrivals=counters.get("arrivals", 0),
        completions=counters.get("completions", 0),
        mean_utilization=metrics.get("cluster", {}).get("mean_utilization", 0.0),
        dispatched=dict(router_stats.get("dispatched", {})),
        local_autonomy=router_stats.get("local_autonomy", 0),
        cross_site=router_stats.get("cross_site", 0),
        redirects=router_stats.get("redirects", 0),
        bounces=router_stats.get("bounces", 0),
        drops=sum(router_stats.get("drops", {}).values()),
        capacity_availability=faults.get("capacity_availability"),
        request_availability=faults.get("request_availability"),
    )
    for name, site in (faults.get("sites") or {}).items():
        arm.site_recovery_times[name] = site.get("mean_recovery_time")
    for name in functions:
        slo = function_metrics.get(name, {}).get("slo") or {}
        arm.slo_attainment[name] = slo.get("attainment")
    return arm


def run_fig12(duration: float = 240.0, seed: int = 12) -> Fig12Result:
    """Regenerate Figure 12: the global-router federation comparison."""
    sweep = build("fig12", duration=duration, seed=seed)
    functions = tuple(w.function for w in sweep.base.workloads)
    sites = sweep.base.federation.site_names()
    arms: List[Fig12Arm] = []
    for spec in sweep.expand():
        outcome = run_scenario(spec)
        arms.append(_extract_arm(spec, outcome.data, functions))
    return Fig12Result(functions=functions, sites=sites, arms=arms)


def format_fig12(result: Fig12Result) -> str:
    """Render the Figure 12 federation comparison as an aligned text table."""
    functions = result.functions
    header = (
        f"{'router':<19} {'arm':<10} {'served':>7} "
        + " ".join(f"{'SLO(' + f + ')':>14}" for f in functions)
        + " " + " ".join(f"{s:>8}" for s in result.sites)
        + f" {'xsite':>6} {'bounce':>6} {'drops':>5} {'avail':>7} {'recovery':>9}"
    )
    lines = [header, "-" * len(header)]
    for arm in result.arms:
        slo = " ".join(
            (f"{arm.slo_attainment[f] * 100:>13.1f}%"
             if arm.slo_attainment[f] is not None else f"{'—':>14}")
            for f in functions
        )
        placed = " ".join(f"{arm.dispatched.get(s, 0):>8d}" for s in result.sites)
        avail = (f"{arm.capacity_availability * 100:>6.1f}%"
                 if arm.capacity_availability is not None else f"{'—':>7}")
        recoveries = [t for t in arm.site_recovery_times.values() if t is not None]
        if arm.mode != "blackout":
            recovery = f"{'—':>9}"
        elif recoveries:
            recovery = f"{max(recoveries):>7.1f} s"
        else:
            recovery = f"{'never':>9}"
        line = (
            f"{arm.router:<19} {arm.mode:<10} {arm.served_fraction * 100:>6.1f}% "
            f"{slo} {placed} {arm.cross_site:>6d} {arm.bounces:>6d} "
            f"{arm.drops:>5d} {avail} {recovery}"
        )
        if arm.local_autonomy:
            line += f"  [{arm.local_autonomy} served by edge autonomy]"
        lines.append(line)
    lines.append(
        "all arms share one seed; blackout arms lose the origin site for the "
        "middle third (rejoining with 2 of 3 nodes), partition arms only cut "
        "the WAN path — the site keeps serving its own arrivals throughout"
    )
    return "\n".join(lines)


__all__ = ["Fig12Arm", "Fig12Result", "run_fig12", "format_fig12"]
