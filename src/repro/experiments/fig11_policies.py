"""Figure 11: every control-plane policy head-to-head (the policy shootout).

This experiment goes beyond the paper's figure set (like Figure 10): it
runs the *same* two-function workload under every registered
control-plane policy — LaSS, the hybrid model-guided reactive scaler,
the Knative-style reactive baseline, static allocation, and vanilla
OpenWhisk — twice each: healthy, and through a mid-run node outage.
Every arm shares the base seed (``seed_mode="base"``) and the same
fault schedule, so each column of the rendered table isolates the
control plane itself.  (One caveat, noted in the rendered footer: the
openwhisk arm replays the shared seed with its historical interleaved
work draws — ``PolicyDescriptor.legacy_workload_rng`` — so its
per-request work sequence differs from the other arms'.)  The columns:

* **SLO** — P95 waiting time and attainment per function, the paper's
  headline metric;
* **efficiency** — mean cluster utilisation (static allocation buys its
  SLO with permanently provisioned capacity; the model-driven policies
  track the load);
* **resilience** — capacity/request availability and the control
  loop's recovery time after the outage (``never`` when a policy does
  not restore the pre-failure warm capacity).

The vanilla-OpenWhisk arm reports its §6.6 cascade state as well: under
load spikes or outages its memory-only packing can overcommit and lose
invokers entirely.

This module is a thin renderer over the registry sweep ``"fig11"``
(shared with the ``"policy-shootout"`` scenario entry), like every other
experiment since the scenario subsystem landed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.scenarios import build, run_scenario


@dataclass
class Fig11Arm:
    """One (policy, healthy/faulted) arm's headline numbers."""

    policy: str
    faulted: bool
    arrivals: int
    completions: int
    p95_wait: Dict[str, float] = field(default_factory=dict)
    slo_attainment: Dict[str, Optional[float]] = field(default_factory=dict)
    mean_utilization: float = 0.0
    capacity_availability: Optional[float] = None
    request_availability: Optional[float] = None
    mean_recovery_time: Optional[float] = None
    failed_invokers: int = 0

    @property
    def served_fraction(self) -> float:
        """Completions over arrivals (0 when nothing arrived)."""
        return self.completions / self.arrivals if self.arrivals else 0.0


@dataclass
class Fig11Result:
    """All arms of the policy shootout, in sweep expansion order."""

    functions: Tuple[str, ...]
    arms: List[Fig11Arm]

    def arm(self, policy: str, faulted: bool) -> Optional[Fig11Arm]:
        """Look up one arm by policy name and fault status."""
        for arm in self.arms:
            if arm.policy == policy and arm.faulted == faulted:
                return arm
        return None


def _extract_arm(spec, data: Dict[str, Any], functions: Tuple[str, ...]) -> Fig11Arm:
    """Map one shard's results envelope onto a :class:`Fig11Arm`."""
    metrics = data.get("metrics", {})
    counters = metrics.get("counters", {})
    function_metrics = metrics.get("functions", {})
    faults = data.get("faults") or {}
    openwhisk = data.get("openwhisk") or {}
    arm = Fig11Arm(
        policy=spec.controller.policy,
        faulted=spec.faults is not None,
        arrivals=counters.get("arrivals", 0),
        completions=counters.get("completions", 0),
        mean_utilization=metrics.get("cluster", {}).get("mean_utilization", 0.0),
        capacity_availability=faults.get("capacity_availability"),
        request_availability=faults.get("request_availability"),
        mean_recovery_time=faults.get("mean_recovery_time"),
        failed_invokers=openwhisk.get("failed_invokers", 0),
    )
    for name in functions:
        func = function_metrics.get(name, {})
        waiting = func.get("waiting") or {}
        slo = func.get("slo") or {}
        arm.p95_wait[name] = waiting.get("p95", float("nan"))
        arm.slo_attainment[name] = slo.get("attainment")
    return arm


def run_fig11(duration: float = 360.0, seed: int = 11) -> Fig11Result:
    """Regenerate Figure 11: the control-plane policy shootout."""
    sweep = build("fig11", duration=duration, seed=seed)
    functions = tuple(w.function for w in sweep.base.workloads)
    arms: List[Fig11Arm] = []
    for spec in sweep.expand():
        outcome = run_scenario(spec)
        arms.append(_extract_arm(spec, outcome.data, functions))
    return Fig11Result(functions=functions, arms=arms)


def format_fig11(result: Fig11Result) -> str:
    """Render the Figure 11 shootout as an aligned text table."""
    functions = result.functions
    header = (
        f"{'policy':<10} {'arm':<8} {'served':>7} "
        + " ".join(f"{'P95(' + f + ')':>16}" for f in functions)
        + " " + " ".join(f"{'SLO(' + f + ')':>14}" for f in functions)
        + f" {'util':>6} {'avail':>7} {'recovery':>9}"
    )
    lines = [header, "-" * len(header)]
    for arm in result.arms:
        p95 = " ".join(f"{arm.p95_wait[f] * 1000:>13.1f} ms" for f in functions)
        slo = " ".join(
            (f"{arm.slo_attainment[f] * 100:>13.1f}%" if arm.slo_attainment[f] is not None
             else f"{'—':>14}")
            for f in functions
        )
        avail = (f"{arm.capacity_availability * 100:>6.1f}%"
                 if arm.capacity_availability is not None else f"{'—':>7}")
        if not arm.faulted:
            recovery = f"{'—':>9}"
        elif arm.mean_recovery_time is None:
            recovery = f"{'never':>9}"
        else:
            recovery = f"{arm.mean_recovery_time:>7.1f} s"
        line = (
            f"{arm.policy:<10} {'faulted' if arm.faulted else 'healthy':<8} "
            f"{arm.served_fraction * 100:>6.1f}% {p95} {slo} "
            f"{arm.mean_utilization * 100:>5.1f}% {avail} {recovery}"
        )
        if arm.failed_invokers:
            line += f"  [{arm.failed_invokers} invoker(s) failed]"
        lines.append(line)
    lines.append(
        "all arms share one seed and (when faulted) the identical node-0 outage; "
        "the openwhisk arm replays that seed with its historical interleaved "
        "work draws (see PolicyDescriptor.legacy_workload_rng)"
    )
    return "\n".join(lines)


__all__ = ["Fig11Arm", "Fig11Result", "run_fig11", "format_fig11"]
