"""repro — a reproduction of LaSS (HPDC 2021) as a Python library.

LaSS (Latency-sensitive Serverless) is a control plane for running
latency-sensitive serverless functions on resource-constrained edge
clusters.  This package reimplements the full system described in the
paper — queueing-model container sizing, model-driven autoscaling,
weighted fair-share allocation under overload, and termination/deflation
resource reclamation — on top of a discrete-event simulation of an edge
cluster, together with the workloads, baselines, and experiment
harnesses needed to regenerate every table and figure of the paper's
evaluation.

Quickstart
----------
>>> from repro import SimulationRunner, ClusterConfig, ControllerConfig
>>> from repro.workloads import WorkloadBinding, StaticRate, get_function
>>> runner = SimulationRunner(
...     workloads=[WorkloadBinding(get_function("squeezenet"), StaticRate(20, duration=60))],
...     cluster_config=ClusterConfig(),
...     seed=7,
... )
>>> result = runner.run(duration=60)
>>> result.waiting_summary("squeezenet").count > 0
True
"""

from repro.cluster.cluster import ClusterConfig, EdgeCluster, FunctionDeployment
from repro.core.controller import ControllerConfig, LassController, ReclamationPolicy
from repro.core.policy import (
    ControlPolicy,
    PolicyContext,
    build_policy,
    policy_names,
    register_policy,
)
from repro.simulation import SimulationResult, SimulationRunner, run_fixed_allocation

__version__ = "1.1.0"

__all__ = [
    "ClusterConfig",
    "EdgeCluster",
    "FunctionDeployment",
    "ControllerConfig",
    "LassController",
    "ReclamationPolicy",
    "ControlPolicy",
    "PolicyContext",
    "build_policy",
    "policy_names",
    "register_policy",
    "SimulationRunner",
    "SimulationResult",
    "run_fixed_allocation",
    "__version__",
]
