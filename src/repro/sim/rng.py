"""Reproducible random-number streams for the simulator.

Every stochastic component of the simulation (arrival processes, service
times, placement tie-breaks, trace synthesis) draws from its own named
stream derived from a single master seed.  This keeps experiments
reproducible and lets individual components be re-seeded independently
(e.g. to run the same arrival sequence against a different service-time
realisation).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np


class RngStreams:
    """A registry of named, independently seeded ``numpy`` Generators.

    Parameters
    ----------
    master_seed:
        Seed for the whole registry.  Two registries with the same master
        seed produce identical streams for identical names.

    Examples
    --------
    >>> rng = RngStreams(42)
    >>> a = rng.stream("arrivals").exponential(1.0)
    >>> b = RngStreams(42).stream("arrivals").exponential(1.0)
    >>> a == b
    True
    """

    def __init__(self, master_seed: int = 0) -> None:
        """Create an empty registry for the given master seed."""
        if master_seed < 0:
            raise ValueError("master_seed must be non-negative")
        self._master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def master_seed(self) -> int:
        """The master seed this registry was created with."""
        return self._master_seed

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for ``name``."""
        if not name:
            raise ValueError("stream name must be non-empty")
        if name not in self._streams:
            seed_seq = np.random.SeedSequence(self._master_seed, spawn_key=(_stable_hash(name),))
            self._streams[name] = np.random.default_rng(seed_seq)
        return self._streams[name]

    def spawn(self, name: str) -> "RngStreams":
        """Create a child registry whose streams are independent of this one."""
        return RngStreams(_stable_hash(f"{self._master_seed}:{name}") % (2**31 - 1))

    def names(self) -> Iterable[str]:
        """Names of the streams created so far."""
        return tuple(self._streams)

    def reset(self, name: Optional[str] = None) -> None:
        """Re-seed one stream (or all streams) back to their initial state."""
        if name is None:
            self._streams.clear()
        else:
            self._streams.pop(name, None)


def _stable_hash(text: str) -> int:
    """A deterministic (run-to-run stable) string hash.

    Python's built-in ``hash`` is randomised per process; FNV-1a is not.
    """
    value = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value
