"""Core discrete-event simulation engine.

The engine maintains a priority queue of timestamped events.  Each event
carries a callback; running the simulation repeatedly pops the earliest
event and invokes its callback, which may schedule further events.

Hot-path design
---------------
The heap holds plain 5-tuples ``(time, priority, sequence, target,
args)`` rather than rich comparable objects: tuple comparison is native
code, and the monotonically increasing sequence number guarantees a
comparison never reaches the non-comparable ``target`` slot.  Entries
come in two shapes, distinguished by the ``args`` slot:

* **Bare events** — ``target`` is the callback itself and ``args`` is
  its (possibly empty) positional-argument tuple.  Created by
  :meth:`SimulationEngine.call_later`, :meth:`SimulationEngine.call_at`
  and :meth:`SimulationEngine.schedule_many`; no :class:`Event` record,
  no kwargs dict, no cancellation handle — one tuple per event, total.
* **Event records** — ``target`` is an :class:`Event` (``__slots__``)
  and ``args`` is ``None``.  Created by
  :meth:`SimulationEngine.schedule` / :meth:`SimulationEngine.schedule_at`
  for callers that need cancellation or keyword arguments.

Cancellation is lazy: :meth:`Event.cancel` flips a flag and the event is
discarded when it reaches the top of the heap, never by re-heapifying.
The engine counts those discards (:attr:`SimulationEngine.events_cancelled`)
so cancellation-heavy workloads can be diagnosed.

Determinism guarantees
----------------------
* Events with identical ``(time, priority)`` are executed in the order
  they were scheduled (the sequence number breaks ties), regardless of
  entry shape.
* All randomness must come from :class:`repro.sim.rng.RngStreams`, which
  is seeded explicitly, so a simulation run is a pure function of its
  configuration and seed.

Counting semantics
------------------
``events_processed`` counts every event whose callback was *invoked*,
including an event whose callback raised :class:`_StopSimulation` (via
:func:`stop_simulation`) — the callback did run, so it is counted, by
both :meth:`SimulationEngine.run` and :meth:`SimulationEngine.step`.
Cancelled events are never invoked and never counted.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Iterable, Optional, Tuple

_INF = math.inf


class SimulationError(RuntimeError):
    """Raised when the engine is used incorrectly (e.g. scheduling in the past)."""


class _StopSimulation(Exception):
    """Internal control-flow exception used to stop the event loop."""


def stop_simulation() -> None:
    """Immediately stop the currently running simulation.

    May only be called from inside an event callback.
    """
    raise _StopSimulation()


class Event:
    """A scheduled event: callback + arguments + a lazy-cancellation flag.

    Only :meth:`SimulationEngine.schedule` / :meth:`SimulationEngine.schedule_at`
    produce ``Event`` records; the fire-and-forget fast paths push bare
    heap entries instead (see the module docstring).  ``kwargs`` is
    ``None`` (not an empty dict) when the event was scheduled without
    keyword arguments, which selects the args-only invocation path.
    """

    __slots__ = ("time", "priority", "sequence", "callback", "args", "kwargs", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        sequence: int,
        callback: Callable[..., Any],
        args: tuple = (),
        kwargs: Optional[dict] = None,
    ) -> None:
        """Bind the callback and its arguments."""
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Debugging summary of the event's time and target."""
        flag = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time:.6f}, prio={self.priority}, seq={self.sequence}{flag})"


class SimulationEngine:
    """A minimal but complete discrete-event simulation engine.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock, in seconds.

    Examples
    --------
    >>> engine = SimulationEngine()
    >>> fired = []
    >>> _ = engine.schedule(1.5, lambda: fired.append(engine.now))
    >>> engine.run()
    >>> fired
    [1.5]
    """

    #: Default priority for data-path events.
    PRIORITY_DATA = 0
    #: Priority for fault-injection events (node failures/recoveries):
    #: after data events at the same instant — a request arriving at the
    #: failure time is dispatched before the node dies — but before the
    #: control plane, so an epoch tick at the same instant sees the
    #: post-failure cluster.
    PRIORITY_FAULT = 5
    #: Priority for control-plane events; runs after data events at the same time.
    PRIORITY_CONTROL = 10

    def __init__(self, start_time: float = 0.0) -> None:
        """Start the engine at time zero with an empty event heap."""
        self._now = float(start_time)
        # heap of (time, priority, sequence, Event_or_callback, None_or_args)
        self._queue: list = []
        self._sequence = 0
        self._events_processed = 0
        self._events_cancelled = 0
        self._running = False

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events whose callbacks have been invoked so far."""
        return self._events_processed

    @property
    def events_cancelled(self) -> int:
        """Cancelled events discarded (lazily) from the top of the heap so far."""
        return self._events_cancelled

    @property
    def pending_events(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_DATA,
        **kwargs: Any,
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which can be cancelled.  Use
        :meth:`call_later` for fire-and-forget events on hot paths.
        """
        if not 0.0 <= delay < _INF:  # rejects negatives, NaN and inf in one test
            raise SimulationError(f"invalid delay: {delay}")
        time = self._now + delay
        sequence = self._sequence
        self._sequence = sequence + 1
        event = Event(time, priority, sequence, callback, args, kwargs or None)
        heapq.heappush(self._queue, (time, priority, sequence, event, None))
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_DATA,
        **kwargs: Any,
    ) -> Event:
        """Schedule ``callback`` at an absolute simulation time."""
        time = float(time)
        if not self._now <= time < _INF:  # also rejects NaN
            raise SimulationError(f"cannot schedule at {time!r}; now={self._now:.6f}")
        sequence = self._sequence
        self._sequence = sequence + 1
        event = Event(time, priority, sequence, callback, args, kwargs or None)
        heapq.heappush(self._queue, (time, priority, sequence, event, None))
        return event

    def call_later(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_DATA,
    ) -> None:
        """Args-only fast path: schedule a fire-and-forget callback.

        Unlike :meth:`schedule` this allocates no :class:`Event` record
        and no kwargs dict — one heap tuple per event — but consequently
        returns no cancellation handle and accepts no keyword arguments.
        """
        if not 0.0 <= delay < _INF:
            raise SimulationError(f"invalid delay: {delay}")
        sequence = self._sequence
        self._sequence = sequence + 1
        heapq.heappush(self._queue, (self._now + delay, priority, sequence, callback, args))

    def call_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_DATA,
    ) -> None:
        """Absolute-time variant of :meth:`call_later`."""
        time = float(time)
        if not self._now <= time < _INF:
            raise SimulationError(f"cannot schedule at {time!r}; now={self._now:.6f}")
        sequence = self._sequence
        self._sequence = sequence + 1
        heapq.heappush(self._queue, (time, priority, sequence, callback, args))

    def schedule_many_events(
        self,
        entries: Iterable[Tuple[float, Callable[..., Any], tuple]],
        priority: int = PRIORITY_DATA,
    ) -> list:
        """Batch variant of :meth:`schedule_at` returning cancellable events.

        Like :meth:`schedule_many` this reads engine state once and keeps
        scheduling order as the tie-break at equal ``(time, priority)``,
        but each entry gets an :class:`Event` record so the caller can
        cancel it later — the shape the columnar data plane needs when it
        re-materializes in-flight service completions at a control-plane
        boundary.

        Returns the list of :class:`Event` handles, in entry order.
        """
        now = self._now
        queue = self._queue
        push = heapq.heappush
        sequence = self._sequence
        events = []
        try:
            for time, callback, args in entries:
                if not now <= time < _INF:
                    raise SimulationError(f"cannot schedule at {time!r}; now={now:.6f}")
                event = Event(time, priority, sequence, callback, args, None)
                push(queue, (time, priority, sequence, event, None))
                sequence += 1
                events.append(event)
        finally:
            self._sequence = sequence
        return events

    def schedule_many(
        self,
        entries: Iterable[Tuple[float, Callable[..., Any], tuple]],
        priority: int = PRIORITY_DATA,
    ) -> int:
        """Schedule a batch of ``(absolute_time, callback, args)`` entries.

        The batch API exists for producers that pre-compute many future
        timestamps at once (the vectorized arrival generator): it skips
        the per-call argument packing of :meth:`call_at` and reads
        engine state once.  Entries keep scheduling order as the
        tie-break order at equal ``(time, priority)``.  Like
        :meth:`call_later` the events are fire-and-forget.

        Returns the number of events scheduled.
        """
        now = self._now
        queue = self._queue
        push = heapq.heappush
        sequence = self._sequence
        count = 0
        try:
            for time, callback, args in entries:
                if not now <= time < _INF:
                    raise SimulationError(f"cannot schedule at {time!r}; now={now:.6f}")
                push(queue, (time, priority, sequence, callback, args))
                sequence += 1
                count += 1
        finally:
            self._sequence = sequence
        return count

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the clock would advance strictly past this time.
            Events scheduled exactly at ``until`` are executed.
        max_events:
            Safety valve; stop after this many events.

        Returns
        -------
        float
            The simulation time when the loop stopped.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run() call)")
        self._running = True
        horizon = _INF if until is None else until
        budget = _INF if max_events is None else max_events
        queue = self._queue
        pop = heapq.heappop
        push = heapq.heappush
        executed = 0
        cancelled = 0
        try:
            while queue:
                entry = pop(queue)
                time = entry[0]
                if time > horizon:
                    push(queue, entry)  # the popped entry was the heap minimum
                    self._now = horizon
                    break
                target = entry[3]
                args = entry[4]
                try:
                    if args is not None:  # bare fast-path event
                        self._now = time
                        target(*args)
                    else:  # Event record: cancellable, may carry kwargs
                        if target.cancelled:
                            cancelled += 1
                            continue
                        self._now = time
                        kwargs = target.kwargs
                        if kwargs is None:
                            target.callback(*target.args)
                        else:
                            target.callback(*target.args, **kwargs)
                except _StopSimulation:
                    executed += 1
                    break
                executed += 1
                if executed >= budget:
                    break
            else:
                # queue drained; if an 'until' horizon was given, advance to it
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._events_processed += executed
            self._events_cancelled += cancelled
            self._running = False
        return self._now

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` if the queue is empty.

        Cancelled :class:`Event` records sitting at the top of the heap
        are discarded (and counted) exactly as :meth:`run` would discard
        them, so the returned time is the time :meth:`step` would execute
        at.  The clock is not advanced and no callback runs.
        """
        queue = self._queue
        while queue:
            entry = queue[0]
            target = entry[3]
            if entry[4] is None and target.cancelled:
                heapq.heappop(queue)
                self._events_cancelled += 1
                continue
            return entry[0]
        return None

    def step(self) -> bool:
        """Execute a single event.  Returns ``False`` if the queue is empty.

        An event that stops the simulation (see :func:`stop_simulation`)
        is still counted in :attr:`events_processed` — its callback ran —
        but ``step`` returns ``False``, mirroring :meth:`run`.
        """
        queue = self._queue
        while queue:
            entry = heapq.heappop(queue)
            target = entry[3]
            args = entry[4]
            try:
                if args is not None:
                    self._now = entry[0]
                    target(*args)
                else:
                    if target.cancelled:
                        self._events_cancelled += 1
                        continue
                    self._now = entry[0]
                    kwargs = target.kwargs
                    if kwargs is None:
                        target.callback(*target.args)
                    else:
                        target.callback(*target.args, **kwargs)
            except _StopSimulation:
                self._events_processed += 1
                return False
            self._events_processed += 1
            return True
        return False

    def reset(self, start_time: float = 0.0) -> None:
        """Drop all pending events and rewind the clock."""
        if self._running:
            raise SimulationError("cannot reset a running engine")
        self._queue.clear()
        self._now = float(start_time)
        self._sequence = 0
        self._events_processed = 0
        self._events_cancelled = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Debugging summary of the clock and event counters."""
        return (
            f"SimulationEngine(now={self._now:.3f}, pending={len(self._queue)}, "
            f"processed={self._events_processed})"
        )
