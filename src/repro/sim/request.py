"""Request (function invocation) objects that flow through the simulated cluster.

A :class:`Request` records every timestamp relevant to the paper's
metrics: arrival at the dispatcher, the moment a container begins
executing it (end of queueing), completion, and whether it was dropped or
violated its SLO deadline.  The paper's headline metric — the 95th/99th
percentile of *waiting* time — is ``start_time - arrival_time``.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

_request_counter = itertools.count()


class RequestStatus(enum.Enum):
    """Lifecycle states of an invocation request."""

    PENDING = "pending"          #: created, not yet dispatched
    QUEUED = "queued"            #: waiting for a container to become free
    RUNNING = "running"          #: executing inside a container
    COMPLETED = "completed"      #: finished successfully
    DROPPED = "dropped"          #: rejected (queue overflow / node failure)
    TIMED_OUT = "timed_out"      #: exceeded the platform's hard execution limit


@dataclass(slots=True)
class Request:
    """A single invocation of a serverless function.

    ``slots=True`` matters here: requests are the simulator's highest-
    volume objects, and the per-instance ``__dict__`` a plain dataclass
    carries roughly doubled allocation cost on the record path (the
    ``bench_record_path`` micro-benchmark guards this).

    Attributes
    ----------
    function_name:
        The function this request invokes.
    arrival_time:
        Simulation time at which the request reached the dispatcher.
    deadline:
        Absolute SLO deadline (arrival time + relative deadline), or
        ``None`` if the function has no SLO.
    work:
        Amount of work in "standard-container seconds".  A container with
        relative speed ``s`` executes the request in ``work / s`` seconds.
    """

    function_name: str
    arrival_time: float
    deadline: Optional[float] = None
    work: float = 0.0
    request_id: int = field(default_factory=lambda: next(_request_counter))

    status: RequestStatus = RequestStatus.PENDING
    start_time: Optional[float] = None
    completion_time: Optional[float] = None
    container_id: Optional[str] = None
    node_name: Optional[str] = None
    cold_start: bool = False

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def waiting_time(self) -> Optional[float]:
        """Time spent queued before a container started executing the request."""
        if self.start_time is None:
            return None
        return self.start_time - self.arrival_time

    @property
    def service_time(self) -> Optional[float]:
        """Time spent executing inside the container."""
        if self.start_time is None or self.completion_time is None:
            return None
        return self.completion_time - self.start_time

    @property
    def response_time(self) -> Optional[float]:
        """End-to-end latency (waiting + service)."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.arrival_time

    @property
    def met_deadline(self) -> Optional[bool]:
        """Whether the request finished by its SLO deadline.

        Returns ``None`` when the request has no deadline or has not
        completed.
        """
        if self.deadline is None or self.completion_time is None:
            return None
        return self.completion_time <= self.deadline

    @property
    def waiting_met_deadline(self) -> Optional[bool]:
        """Whether the request *started* by its SLO deadline.

        The paper's default SLO ("95% of requests should start being
        processed within 100 ms") is about waiting time, not response
        time; this property implements that interpretation.
        """
        if self.deadline is None or self.start_time is None:
            return None
        return self.start_time <= self.deadline

    # ------------------------------------------------------------------
    # Lifecycle transitions
    # ------------------------------------------------------------------
    def mark_queued(self) -> None:
        """Transition PENDING → QUEUED."""
        self._require_status(RequestStatus.PENDING)
        self.status = RequestStatus.QUEUED

    def mark_running(self, time: float, container_id: str, node_name: str, cold_start: bool = False) -> None:
        """Transition QUEUED/PENDING → RUNNING and record the start timestamp."""
        if self.status not in (RequestStatus.PENDING, RequestStatus.QUEUED):
            raise ValueError(f"cannot start request in state {self.status}")
        self.status = RequestStatus.RUNNING
        self.start_time = time
        self.container_id = container_id
        self.node_name = node_name
        self.cold_start = cold_start

    def mark_completed(self, time: float) -> None:
        """Transition RUNNING → COMPLETED."""
        self._require_status(RequestStatus.RUNNING)
        self.status = RequestStatus.COMPLETED
        self.completion_time = time

    def mark_dropped(self, time: float) -> None:
        """Mark the request as dropped (e.g. its container was terminated)."""
        if self.status in (RequestStatus.COMPLETED, RequestStatus.TIMED_OUT):
            raise ValueError(f"cannot drop request in state {self.status}")
        self.status = RequestStatus.DROPPED
        self.completion_time = time

    def mark_timed_out(self, time: float) -> None:
        """Mark the request as having exceeded the hard execution limit."""
        self.status = RequestStatus.TIMED_OUT
        self.completion_time = time

    def _require_status(self, expected: RequestStatus) -> None:
        """Raise unless the request is in the expected status."""
        if self.status is not expected:
            raise ValueError(
                f"request {self.request_id} is {self.status.value}, expected {expected.value}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Debugging summary of id, function, status, and arrival time."""
        return (
            f"Request(id={self.request_id}, fn={self.function_name!r}, "
            f"status={self.status.value}, t_arr={self.arrival_time:.3f})"
        )
