"""Discrete-event simulation substrate.

The paper evaluates LaSS on a physical 3-node OpenWhisk cluster.  This
package provides the equivalent substrate in simulation: a deterministic
event-driven engine (:class:`~repro.sim.engine.SimulationEngine`), a
simulation clock, reproducible random-number streams, and the request
objects that flow through the simulated cluster.

The engine is intentionally minimal — a binary-heap event queue with
stable tie-breaking — because everything interesting in LaSS happens in
the control plane (:mod:`repro.core`) and the cluster model
(:mod:`repro.cluster`).
"""

from repro.sim.engine import SimulationEngine, Event, stop_simulation
from repro.sim.request import Request, RequestStatus
from repro.sim.rng import RngStreams

__all__ = [
    "SimulationEngine",
    "Event",
    "stop_simulation",
    "Request",
    "RequestStatus",
    "RngStreams",
]
