"""Columnar data plane: a vectorized request-lifecycle kernel.

The event-level path simulates every request as a handful of engine
events and callback hops (arrival → dispatch → completion), each
touching a live :class:`~repro.sim.request.Request` object.  That is
the oracle — and, since PR 1/PR 3 made the control plane fast, the
dominant cost of every simulated second.

This module executes the same lifecycle *columnar*: all arrival times
and per-request work are materialized up front (batch-size-invariant
RNG consumption, see
:meth:`~repro.workloads.generator.ArrivalGenerator.materialize_arrivals`),
request state lives in parallel per-function columns
(arrival/start/finish/status/container), and the kernel advances a
merged arrival pointer against a completion heap instead of pumping
per-request engine events.  Metrics are folded into the existing
:class:`~repro.metrics.collector.MetricsCollector` at *epoch
granularity* (right before every engine event boundary), and the full
per-request record list is reconstructed lazily on first access.

Oracle contract
---------------
The kernel is an exact replica of the event-level path, not an
approximation: per-request lifecycle records (ids, arrival/start/
finish times, container placement, statuses), WRR balancer state,
estimator contents, counters, and therefore whole results envelopes
are byte-identical to the event-level plane (the differential suite in
``tests/test_columnar_differential.py`` enforces this across every
registered scenario, fault arm, and policy).  The one tolerated
divergence class is measure-zero exact-time ties between continuously
distributed timestamps (e.g. an arrival landing on the exact float of
an epoch boundary), which cannot occur for continuous workloads.

Control plane at boundaries
---------------------------
Everything that is *not* the per-request hot path still runs the real
code: controller epoch/rate ticks, container warm-ups, node
failures/recoveries, and draining-container completions are ordinary
engine events.  Before each such boundary the kernel *flushes* folded
metrics and *materializes* its columns back into real objects
(queued ``Request`` deques, busy containers with scheduled completion
events, the dispatcher's idle index), lets the engine execute every
event at that timestamp, then *absorbs* the resulting object state
back into columns and continues.  Container crash-on-dispatch faults
are handled the same way at request granularity: the kernel draws from
the injector's own RNG at every dispatch and hands confirmed crashes
to the injector's real crash path.

Fallback conditions
-------------------
:func:`build_kernel` returns ``None`` — and the runner silently falls
back to the event-level plane — when the policy does not publish a
:class:`ColumnarPlan` (e.g. the OpenWhisk compatibility policy), when
the dispatcher is not attached to the cluster, or when an unknown
dispatch interceptor is installed (only the fault injector's
crash-on-dispatch hook is understood).
"""

from __future__ import annotations

import itertools
from bisect import insort
from collections import deque
from dataclasses import dataclass
from heapq import heapify, heappop, heappush
from math import inf
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.container import ContainerState
from repro.sim import request as request_module
from repro.sim.request import Request, RequestStatus

#: Idle-candidate count at which the WRR pick switches to the
#: vectorized scoring path; below it, list/array setup costs more than
#: the scalar scan saves.
_VECTOR_PICK_MIN = 8

#: Column status codes (kept tiny so the column is a ``bytearray``).
_UNSEEN = 0     #: arrival not yet processed
_QUEUED = 1     #: waiting in the function's shared queue
_RUNNING = 2    #: executing on a container
_COMPLETED = 3  #: finished successfully
_DROPPED = 4    #: dropped or timed out (faults)


@dataclass
class ColumnarPlan:
    """What a control-plane policy exposes so the kernel can stand in for it.

    A policy that returns a plan from
    :meth:`~repro.core.policy.ControlPolicy.columnar_plan` asserts that
    its per-request ``dispatch``/completion work is exactly: fold the
    arrival into ``fold_arrivals`` state, count it in the collector,
    submit through the shared-queue dispatcher, create one container
    when the function has none (``create_on_empty``), and observe
    completions via ``fold_completions`` — which is precisely what the
    kernel replays columnar.  Policies with richer per-request hooks
    must return ``None`` and keep the event-level path.
    """

    #: The policy's live :class:`~repro.core.dispatch.SharedQueueDispatcher`.
    dispatcher: Any
    #: The run's :class:`~repro.metrics.collector.MetricsCollector`.
    collector: Any
    #: Fold a batch of arrival times (non-decreasing) for one function
    #: into the policy's estimator state; ``None`` when the policy keeps
    #: no per-arrival state (static/noop/reactive).
    fold_arrivals: Optional[Callable[[str, Sequence[float]], None]] = None
    #: Replica of the policy's "queued a request but the function has no
    #: containers" reaction; ``None`` when the policy never reacts.
    create_on_empty: Optional[Callable[[str], None]] = None
    #: Batched completion observations for one function:
    #: ``(function, cpu_fractions, service_times)`` in completion order;
    #: ``None`` when the policy does not learn online.
    fold_completions: Optional[Callable[[str, Sequence[float], Sequence[float]], None]] = None


class _Slot:
    """The kernel's per-container mirror: hot fields of one warm container.

    Rebuilt from the live :class:`~repro.cluster.container.Container`
    objects at every absorb, so sizes/speeds picked up here are always
    current (deflation only happens at engine boundaries).
    """

    __slots__ = (
        "container", "cid", "node_name", "speed", "weight", "key",
        "cpu_fraction", "busy_fs", "busy_row", "busy_since",
        "completed", "busy_time",
    )

    def __init__(self, container: Any) -> None:
        """Snapshot the container's dispatch-relevant fields."""
        self.container = container
        self.cid = container.container_id
        self.node_name = container.node_name
        self.speed = container.speed
        self.weight = max(1e-9, container.current_cpu)
        self.key = (container.current_cpu, container.container_id)
        self.cpu_fraction = container.cpu_fraction
        self.busy_fs: Optional["_FnState"] = None
        self.busy_row = -1
        self.busy_since = 0.0
        self.completed = container.completed_requests
        self.busy_time = container.busy_time

    def __lt__(self, other: "_Slot") -> bool:
        """Order slots the way the dispatcher sorts idle candidates."""
        return self.key < other.key


class _FnState:
    """Per-function columns plus queue/idle bookkeeping."""

    __slots__ = (
        "name", "slo", "times", "works", "rid", "status", "start",
        "finish", "cold", "ccid", "cnode", "obj", "pos", "flush_pos",
        "queue", "idle", "idle_ids", "scores", "prune_pending",
        "has_containers", "done_rows", "done_fracs",
    )

    def __init__(self, name: str, slo_deadline: Optional[float]) -> None:
        """Create empty columns for one function."""
        self.name = name
        self.slo = slo_deadline
        self.times: List[float] = []
        self.works: List[float] = []
        self.rid: List[int] = []
        self.status = bytearray()
        self.start: List[float] = []
        self.finish: List[float] = []
        self.cold = bytearray()
        self.ccid: List[Optional[str]] = []
        self.cnode: List[Optional[str]] = []
        self.obj: List[Optional[Request]] = []
        self.pos = 0          # arrivals processed (== rows consumed)
        self.flush_pos = 0    # arrivals already folded into metrics
        self.queue: deque = deque()           # queued row indices
        self.idle: List[_Slot] = []           # sorted by _Slot.key
        self.idle_ids: set = set()
        self.scores: Dict[str, float] = {}
        # score keys that may have gone stale (their container left the
        # idle set) since the last pick pruned; the event-level balancer
        # scans the whole dict at every pick, the kernel only these
        self.prune_pending: set = set()
        self.has_containers = False
        self.done_rows: List[int] = []     # completions since last flush
        self.done_fracs: List[float] = []  # their containers' CPU fractions

    def _allocate(self) -> None:
        """Size the per-row state columns once all arrivals are known."""
        n = len(self.times)
        self.status = bytearray(n)
        self.start = [0.0] * n
        self.finish = [0.0] * n
        self.cold = bytearray(n)
        self.ccid = [None] * n
        self.cnode = [None] * n
        self.obj = [None] * n


def build_kernel(engine: Any, cluster: Any, policy: Any,
                 generators: Sequence[Any]) -> Optional["ColumnarKernel"]:
    """Build a :class:`ColumnarKernel` for a run, or ``None`` to fall back.

    Fallback (returning ``None``) leaves every generator unstarted and
    consumes no RNG, so the caller can run the event-level path
    untouched.  See the module docstring for the fallback conditions.
    """
    plan_method = getattr(policy, "columnar_plan", None)
    if plan_method is None:
        return None
    plan = plan_method()
    if plan is None:
        return None
    dispatcher = plan.dispatcher
    if dispatcher is None or not getattr(dispatcher, "_attached", False):
        return None
    injector = None
    interceptor = dispatcher.interceptor
    if interceptor is not None:
        owner = getattr(interceptor, "__self__", None)
        if (
            owner is None
            or not hasattr(owner, "crash_decision")
            or not hasattr(owner, "apply_crash")
            or getattr(owner, "_intercept_dispatch", None) != interceptor
        ):
            return None  # unknown interceptor: only the fault injector is understood
        injector = owner
    return ColumnarKernel(engine, cluster, plan, injector, generators)


class ColumnarKernel:
    """Drives one simulation run through the columnar data plane.

    Constructing the kernel materializes every generator's arrivals
    (the RNG point of no return); :meth:`run` then replaces the
    runner's ``generator.start()`` + ``engine.run()`` pair.
    """

    def __init__(self, engine: Any, cluster: Any, plan: ColumnarPlan,
                 injector: Optional[Any], generators: Sequence[Any]) -> None:
        """Materialize arrivals into merged columns and take over container state."""
        self.engine = engine
        self.cluster = cluster
        self.plan = plan
        self.dispatcher = plan.dispatcher
        self.collector = plan.collector
        self.injector = injector

        fn_list: List[_FnState] = []
        per_times: List[List[float]] = []
        per_works: List[List[float]] = []
        for generator in generators:
            times, works = generator.materialize_arrivals()
            fn_list.append(_FnState(generator.profile.name, generator.slo_deadline))
            per_times.append(times)
            per_works.append(works)
        counts = [len(times) for times in per_times]
        total = sum(counts)

        # Reserve the exact request-id block the event-level plane would
        # hand out: _emit draws ids in global arrival-execution order,
        # which is the merged time order built here.
        rid0 = next(request_module._request_counter)
        request_module._request_counter = itertools.count(rid0 + total)

        if total:
            cat = np.concatenate(
                [np.asarray(times, dtype=np.float64) for times in per_times]
            )
            gen_of = np.repeat(np.arange(len(fn_list)), counts)
            # stable sort by (time, generator); within both, original order
            # — i.e. the per-generator local index, which is already time-
            # sorted.  Exactly the (t, gen, local) merge the event plane's
            # engine ordering produces.
            order = np.lexsort((gen_of, cat))
            offsets = np.zeros(len(fn_list), dtype=np.int64)
            np.cumsum(counts[:-1], out=offsets[1:])
            sorted_gen = gen_of[order]
            merged_pos = np.empty(total, dtype=np.int64)
            merged_pos[order] = np.arange(total)
            g_times = cat[order].tolist()
            g_fs = [fn_list[g] for g in sorted_gen.tolist()]
            g_row = (order - offsets[sorted_gen]).tolist()
            for gi, fs in enumerate(fn_list):
                lo, hi = int(offsets[gi]), int(offsets[gi]) + counts[gi]
                fs.times = per_times[gi]
                fs.works = per_works[gi]
                fs.rid = (rid0 + merged_pos[lo:hi]).tolist()
                fs._allocate()
        else:
            g_times, g_fs, g_row = [], [], []
            for fs in fn_list:
                fs._allocate()

        self._fn_list = fn_list
        self._g_times = g_times
        self._g_fs = g_fs
        self._g_row = g_row
        self._gpos = 0
        self._comp: List[Tuple[float, int, _Slot]] = []
        self._seq = 0
        self._slots: List[_Slot] = []
        # streaming percentiles need completions in cross-function order,
        # which only the global buffer preserves; otherwise completions
        # accumulate in the cheaper per-function buffers
        self._streaming = bool(plan.collector.streaming_percentiles)
        self._comp_buffer: List[Tuple[_FnState, int, float]] = []
        self._attached_live: List[Tuple[_FnState, int]] = []
        self._row_by_rid: Dict[int, Tuple[_FnState, int]] = {}
        self._absorb()

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, until: float) -> None:
        """Advance the run to ``until`` (workload horizon plus drain).

        Alternates columnar draining with real engine boundaries: every
        pending engine event (control tick, warm-up, fault, draining
        completion) executes against fully materialized object state,
        exactly as on the event-level plane.
        """
        engine = self.engine
        while True:
            boundary = engine.peek_time()
            if boundary is None or boundary > until:
                if self._drain(until, inclusive=True):
                    continue  # a sync scheduled new engine events; re-peek
                break
            if self._drain(boundary, inclusive=False):
                continue
            self._flush()
            self._materialize()
            while engine.peek_time() == boundary:
                engine.step()
            self._absorb()
        self._flush()
        self._materialize()
        if self.collector.store_requests:
            self.collector.defer_requests(self._fill)
        # settle the clock (and any past-horizon events) like the event plane
        engine.run(until=until)

    # ------------------------------------------------------------------
    # Columnar draining
    # ------------------------------------------------------------------
    def _drain(self, limit: float, inclusive: bool) -> bool:
        """Process arrivals/completions up to ``limit``.

        ``inclusive`` selects whether events exactly at ``limit`` are
        processed (final horizon) or left for the engine boundary
        (strict ``<`` — the boundary event itself runs first at ties,
        a measure-zero case for continuous workloads).  Returns ``True``
        when a synchronization (container creation or crash) changed
        engine/object state and the caller must re-examine the engine
        queue; ``False`` once drained to ``limit``.
        """
        g_times = self._g_times
        g_fs = self._g_fs
        g_row = self._g_row
        n_total = len(g_times)
        comp = self._comp
        pos = self._gpos
        injector = self.injector
        crash_decision = injector.crash_decision if injector is not None else None
        create = self.plan.create_on_empty
        streaming = self._streaming
        buffer_append = self._comp_buffer.append
        pick = self._pick
        seq = self._seq
        running = RequestStatus.RUNNING
        completed_status = RequestStatus.COMPLETED
        # rows only carry live Request objects after a boundary
        # materialized them; in the steady state between boundaries the
        # object-sync branches are dead and skipped wholesale
        has_live = bool(self._attached_live)
        try:
            at = g_times[pos] if pos < n_total else inf
            ct = comp[0][0] if comp else inf
            while True:
                if at <= ct:
                    if (at > limit) if inclusive else (at >= limit):
                        return False
                    # ---- arrival ----
                    fs = g_fs[pos]
                    i = g_row[pos]
                    pos += 1
                    fs.pos = i + 1
                    idle = fs.idle
                    if idle:
                        if len(idle) == 1:
                            # inlined single-candidate pick (the hot case
                            # near saturation); mirrors _pick's fast path
                            slot = idle[0]
                            cid = slot.cid
                            scores = fs.scores
                            if scores and (len(scores) > 1 or cid not in scores):
                                kept = scores.get(cid)
                                scores.clear()
                                if kept is not None:
                                    scores[cid] = kept
                            del idle[0]
                            fs.idle_ids.discard(cid)
                            pending = fs.prune_pending
                            pending.clear()
                            pending.add(cid)
                        else:
                            slot = pick(fs)
                        if crash_decision is not None and crash_decision(fs.name):
                            self._crash_sync(fs, i, slot, at, queued=False)
                            return True
                        # dispatch (cold starts only happen at warm
                        # boundaries, which the engine handles)
                        fs.status[i] = _RUNNING
                        fs.start[i] = at
                        fs.ccid[i] = slot.cid
                        fs.cnode[i] = slot.node_name
                        duration = fs.works[i] / slot.speed
                        if duration < 1e-9:
                            duration = 1e-9
                        heappush(comp, (at + duration, seq, slot))
                        seq += 1
                        ct = comp[0][0]
                        slot.busy_fs = fs
                        slot.busy_row = i
                        slot.busy_since = at
                        if has_live:
                            obj = fs.obj[i]
                            if obj is not None:
                                obj.status = running
                                obj.start_time = at
                                obj.container_id = slot.cid
                                obj.node_name = slot.node_name
                                obj.cold_start = False
                    else:
                        fs.status[i] = _QUEUED
                        fs.queue.append(i)
                        if not fs.has_containers and create is not None:
                            self.engine._now = at
                            create(fs.name)
                            fs.has_containers = self.cluster.has_containers(fs.name)
                            return True
                    at = g_times[pos] if pos < n_total else inf
                else:
                    if (ct > limit) if inclusive else (ct >= limit):
                        return False
                    # ---- completion ----
                    t, _, slot = heappop(comp)
                    fs = slot.busy_fs
                    i = slot.busy_row
                    fs.finish[i] = t
                    fs.status[i] = _COMPLETED
                    slot.busy_time += t - slot.busy_since
                    slot.completed += 1
                    slot.busy_fs = None
                    if has_live:
                        obj = fs.obj[i]
                        if obj is not None:
                            obj.status = completed_status
                            obj.completion_time = t
                    if streaming:
                        buffer_append((fs, i, slot.cpu_fraction))
                    else:
                        fs.done_rows.append(i)
                        fs.done_fracs.append(slot.cpu_fraction)
                    # pull the next queued request onto the freed container
                    queue = fs.queue
                    dispatched = False
                    while queue:
                        j = queue.popleft()
                        if fs.status[j] != _QUEUED:
                            continue
                        if crash_decision is not None and crash_decision(fs.name):
                            self._crash_sync(fs, j, slot, t, queued=True)
                            return True
                        fs.status[j] = _RUNNING
                        fs.start[j] = t
                        fs.ccid[j] = slot.cid
                        fs.cnode[j] = slot.node_name
                        duration = fs.works[j] / slot.speed
                        if duration < 1e-9:
                            duration = 1e-9
                        heappush(comp, (t + duration, seq, slot))
                        seq += 1
                        slot.busy_fs = fs
                        slot.busy_row = j
                        slot.busy_since = t
                        if has_live:
                            nxt = fs.obj[j]
                            if nxt is not None:
                                nxt.status = running
                                nxt.start_time = t
                                nxt.container_id = slot.cid
                                nxt.node_name = slot.node_name
                                nxt.cold_start = False
                        dispatched = True
                        break
                    if not dispatched:
                        insort(fs.idle, slot)
                        fs.idle_ids.add(slot.cid)
                    ct = comp[0][0] if comp else inf
        finally:
            self._gpos = pos
            self._seq = seq

    def _pick(self, fs: _FnState) -> _Slot:
        """Smooth-WRR pick over the function's idle slots (exact replica).

        Mutates the *real* balancer score dict in place, including the
        single-candidate fast path's stale-state cleanup, so balancer
        state stays byte-identical to the event-level plane.  The chosen
        slot is removed from the idle set.
        """
        idle = fs.idle
        scores = fs.scores
        pending = fs.prune_pending
        if len(idle) == 1:
            slot = idle[0]
            cid = slot.cid
            if scores and (len(scores) > 1 or cid not in scores):
                kept = scores.get(cid)
                scores.clear()
                if kept is not None:
                    scores[cid] = kept
            del idle[0]
            fs.idle_ids.discard(cid)
            pending.clear()
            pending.add(cid)
            return slot
        idle_ids = fs.idle_ids
        if pending:
            # deferred replica of the balancer's per-pick stale prune:
            # only keys that left the idle set since the last prune can
            # be stale, and those are exactly the pending ones
            for cid in pending:
                if cid not in idle_ids and cid in scores:
                    del scores[cid]
            pending.clear()
        get_score = scores.get
        n = len(idle)
        if n >= _VECTOR_PICK_MIN:
            # vectorized replica of the scalar scan below: the
            # element-wise float64 add is bit-identical to the per-slot
            # ``old + weight``, and ``total_weight`` keeps the scalar
            # path's left-to-right accumulation order (never np.sum,
            # whose pairwise reduction rounds differently)
            weights = [slot.weight for slot in idle]
            total_weight = sum(weights)
            old = np.fromiter((get_score(slot.cid, 0.0) for slot in idle),
                              dtype=np.float64, count=n)
            new = old + np.asarray(weights, dtype=np.float64)
            new_list = new.tolist()
            for slot, score in zip(idle, new_list):
                scores[slot.cid] = score
            top = new.max()
            if int((new >= top - 1e-15).sum()) == 1:
                best_index = int(new.argmax())
            else:
                # scores within the epsilon of the max: replay the
                # scalar first-wins-beyond-epsilon scan exactly
                best_index = 0
                best_score = -inf
                for index, score in enumerate(new_list):
                    if score > best_score + 1e-15:
                        best_score = score
                        best_index = index
            best = idle[best_index]
            scores[best.cid] = new_list[best_index] - total_weight
        else:
            total_weight = 0.0
            best = None
            best_index = -1
            best_score = -inf
            for index, slot in enumerate(idle):
                weight = slot.weight
                total_weight += weight
                score = get_score(slot.cid, 0.0) + weight
                scores[slot.cid] = score
                if score > best_score + 1e-15:
                    best_score = score
                    best = slot
                    best_index = index
            scores[best.cid] -= total_weight
        del idle[best_index]
        idle_ids.discard(best.cid)
        pending.add(best.cid)
        return best

    # ------------------------------------------------------------------
    # Metric folds
    # ------------------------------------------------------------------
    def _flush(self) -> None:
        """Fold pending arrivals and completions into policy/collector state.

        Runs before every engine boundary, so everything the control
        plane can observe (rate estimators, epoch arrival counts,
        counters, streaming summaries) is exactly as the event-level
        plane would have left it at that timestamp.
        """
        plan = self.plan
        collector = self.collector
        fold_arrivals = plan.fold_arrivals
        for fs in self._fn_list:
            pos = fs.pos
            start = fs.flush_pos
            if pos > start:
                if fold_arrivals is not None:
                    fold_arrivals(fs.name, fs.times[start:pos])
                collector.fold_arrivals(pos - start)
                fs.flush_pos = pos
        fold_completions = plan.fold_completions
        buffer = self._comp_buffer
        if buffer:
            # streaming summaries must see waits in cross-function
            # completion order (the global reservoir's RNG consumption
            # depends on it), so streaming mode folds per item
            fold_completion = collector.fold_completion
            for fs, i, _ in buffer:
                fold_completion(fs.name, fs.start[i] - fs.times[i], fs.cold[i])
            if fold_completions is not None:
                # per-function estimators are independent, so grouping by
                # function (preserving per-function completion order) is
                # exact — and lets the policy observe a whole batch at once
                groups: Dict[_FnState, Tuple[List[float], List[float]]] = {}
                for fs, i, cpu_fraction in buffer:
                    group = groups.get(fs)
                    if group is None:
                        group = groups[fs] = ([], [])
                    group[0].append(cpu_fraction)
                    group[1].append(fs.finish[i] - fs.start[i])
                for fs, (fractions, stimes) in groups.items():
                    fold_completions(fs.name, fractions, stimes)
            buffer.clear()
        if not self._streaming:
            count = 0
            cold = 0
            for fs in self._fn_list:
                rows = fs.done_rows
                if not rows:
                    continue
                count += len(rows)
                cold += sum(map(fs.cold.__getitem__, rows))
                if fold_completions is not None:
                    start = fs.start
                    finish = fs.finish
                    fold_completions(
                        fs.name, fs.done_fracs,
                        [finish[i] - start[i] for i in rows],
                    )
                fs.done_rows = []
                fs.done_fracs = []
            if count:
                collector.fold_completions_bulk(count, cold)

    # ------------------------------------------------------------------
    # Object-state synchronization
    # ------------------------------------------------------------------
    def _request_for(self, fs: _FnState, i: int) -> Request:
        """Materialize (or fetch) the live ``Request`` object for one row."""
        obj = fs.obj[i]
        if obj is None:
            times = fs.times
            obj = Request(
                function_name=fs.name,
                arrival_time=times[i],
                deadline=None if fs.slo is None else times[i] + fs.slo,
                work=fs.works[i],
                request_id=fs.rid[i],
            )
            if fs.status[i] == _QUEUED:
                obj.status = RequestStatus.QUEUED
            fs.obj[i] = obj
            self._row_by_rid[obj.request_id] = (fs, i)
            self._attached_live.append((fs, i))
        return obj

    def _materialize(self) -> None:
        """Write columnar state back into the real objects.

        After this, the dispatcher's queues and idle index, every
        container's in-flight request + scheduled completion event, and
        the per-container counters look exactly as if the event-level
        plane had run — so any engine event may execute real code.
        """
        dispatcher = self.dispatcher
        engine = self.engine
        queues = dispatcher._queues
        idle_index = dispatcher._idle
        for fs in self._fn_list:
            if fs.queue:
                dq = queues.get(fs.name)
                if dq is None:
                    dq = queues[fs.name] = deque()
                else:
                    dq.clear()
                for j in fs.queue:
                    dq.append(self._request_for(fs, j))
            else:
                dq = queues.get(fs.name)
                if dq:
                    dq.clear()
            idle_index[fs.name] = {slot.cid: slot.container for slot in fs.idle}
        busy = sorted(self._comp)
        if busy:
            entries = []
            completion_hook = dispatcher._completion_hook
            for finish, _, slot in busy:
                fs = slot.busy_fs
                i = slot.busy_row
                obj = self._request_for(fs, i)
                obj.status = RequestStatus.RUNNING
                obj.start_time = fs.start[i]
                obj.container_id = slot.cid
                obj.node_name = slot.node_name
                obj.cold_start = bool(fs.cold[i])
                container = slot.container
                container._current = obj
                container._busy_since = slot.busy_since
                entries.append(
                    (finish, container._finish_current, (engine, completion_hook))
                )
            events = engine.schedule_many_events(entries)
            for (_, _, slot), event in zip(busy, events):
                slot.container._completion_event = event
        for slot in self._slots:
            container = slot.container
            container.completed_requests = slot.completed
            container.busy_time = slot.busy_time

    def _absorb(self) -> None:
        """Re-adopt object state into columns after an engine boundary.

        Syncs every previously materialized request's status back into
        the columns, takes over each warm container (cancelling its
        pending completion event in favour of the kernel's heap), and
        rebuilds queues and idle sets from the live dispatcher state.
        Containers in STARTING or DRAINING states stay object-side —
        their transitions are real engine events and therefore future
        boundaries.
        """
        completed = RequestStatus.COMPLETED
        running = RequestStatus.RUNNING
        queued = RequestStatus.QUEUED
        still_live: List[Tuple[_FnState, int]] = []
        for fs, i in self._attached_live:
            obj = fs.obj[i]
            status = obj.status
            if status is completed:
                fs.status[i] = _COMPLETED
                fs.start[i] = obj.start_time
                fs.finish[i] = obj.completion_time
                fs.ccid[i] = obj.container_id
                fs.cnode[i] = obj.node_name
                fs.cold[i] = 1 if obj.cold_start else 0
            elif status is running:
                fs.status[i] = _RUNNING
                fs.start[i] = obj.start_time
                fs.ccid[i] = obj.container_id
                fs.cnode[i] = obj.node_name
                fs.cold[i] = 1 if obj.cold_start else 0
                still_live.append((fs, i))
            elif status is queued:
                fs.status[i] = _QUEUED
                still_live.append((fs, i))
            elif status is RequestStatus.PENDING:
                still_live.append((fs, i))
            else:  # dropped / timed out
                fs.status[i] = _DROPPED
        self._attached_live = still_live

        row_by_rid = self._row_by_rid
        queues = self.dispatcher._queues
        scores = self.dispatcher.balancer._scores
        cluster = self.cluster
        comp: List[Tuple[float, int, _Slot]] = []
        slots: List[_Slot] = []
        seq = 0
        warm = ContainerState.WARM
        for fs in self._fn_list:
            idle: List[_Slot] = []
            for container in cluster.containers_of(fs.name):
                if container.state is not warm:
                    continue
                if container._current is not None:
                    event = container._completion_event
                    finish = event.time
                    event.cancel()
                    container._completion_event = None
                    request = container._current
                    container._current = None
                    busy_since = container._busy_since
                    container._busy_since = None
                    slot = _Slot(container)
                    busy_fs, busy_row = row_by_rid[request.request_id]
                    slot.busy_fs = busy_fs
                    slot.busy_row = busy_row
                    slot.busy_since = busy_since
                    comp.append((finish, seq, slot))
                    seq += 1
                    slots.append(slot)
                elif container.is_dispatchable:
                    slot = _Slot(container)
                    idle.append(slot)
                    slots.append(slot)
            idle.sort()
            fs.idle = idle
            fs.idle_ids = {slot.cid for slot in idle}
            fs.queue = deque()
            dq = queues.get(fs.name)
            if dq:
                for obj in dq:
                    fs.queue.append(row_by_rid[obj.request_id][1])
            fs.has_containers = cluster.has_containers(fs.name)
            fs.scores = scores.setdefault(fs.name, {})
            # boundary code may have touched balancer state arbitrarily:
            # every key is suspect until the next pick prunes
            fs.prune_pending = set(fs.scores)
        heapify(comp)
        self._comp = comp
        self._slots = slots
        self._seq = seq

    def _crash_sync(self, fs: _FnState, i: int, slot: _Slot, time: float,
                    queued: bool) -> None:
        """Hand a confirmed crash-on-dispatch to the injector's real path.

        ``queued`` distinguishes the two event-level crash sites: a
        fresh submit (the request is still PENDING and the policy may
        create a replacement container afterwards) versus a
        completion-driven queue pull (the request was QUEUED; the
        event-level pull loop simply stops because the container
        terminated).  The full flush + materialize beforehand matters:
        crash hooks like the hybrid policy's re-evaluate-and-drain read
        estimators, queues, and container state.
        """
        self.engine._now = time
        self._flush()
        self._materialize()
        obj = self._request_for(fs, i)
        self.injector.apply_crash(obj, slot.container)
        if not queued:
            create = self.plan.create_on_empty
            if create is not None and not self.cluster.has_containers(fs.name):
                create(fs.name)
        self._absorb()

    # ------------------------------------------------------------------
    # Deferred per-request records
    # ------------------------------------------------------------------
    def _fill(self) -> List[Request]:
        """Reconstruct the collector's per-request list in arrival order.

        Registered via ``MetricsCollector.defer_requests`` and invoked
        lazily on first access to ``collector.requests`` — i.e. after
        the timed portion of the run.  Rows that were materialized
        return their live object; the rest (requests that lived and
        died entirely inside the kernel) are rebuilt from columns.
        """
        out: List[Request] = []
        append = out.append
        completed = RequestStatus.COMPLETED
        queued = RequestStatus.QUEUED
        g_fs = self._g_fs
        g_row = self._g_row
        for pos in range(len(self._g_times)):
            fs = g_fs[pos]
            i = g_row[pos]
            obj = fs.obj[i]
            if obj is None:
                times = fs.times
                obj = Request(
                    function_name=fs.name,
                    arrival_time=times[i],
                    deadline=None if fs.slo is None else times[i] + fs.slo,
                    work=fs.works[i],
                    request_id=fs.rid[i],
                )
                status = fs.status[i]
                if status == _COMPLETED:
                    obj.status = completed
                    obj.start_time = fs.start[i]
                    obj.completion_time = fs.finish[i]
                    obj.container_id = fs.ccid[i]
                    obj.node_name = fs.cnode[i]
                    obj.cold_start = bool(fs.cold[i])
                elif status == _QUEUED:  # pragma: no cover - queued rows are materialized
                    obj.status = queued
                fs.obj[i] = obj
            append(obj)
        return out


__all__ = ["ColumnarPlan", "ColumnarKernel", "build_kernel"]
