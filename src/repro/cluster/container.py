"""Container model: lifecycle, FCFS execution, and in-place CPU deflation.

A container hosts exactly one serverless function.  Requests dispatched
to it by the load balancer are served in FCFS order, one at a time (the
standard OpenWhisk model of one activation per container at a time).

Deflation (paper §4.2) reduces the container's CPU allocation in place.
The effect on performance is captured by a *speed factor*: a container
running at ``current_cpu`` executes work at
``speed = deflation_response(current_cpu / standard_cpu)`` relative to a
standard-sized container.  The response curve comes from the function
profile (:mod:`repro.workloads.functions`) and reproduces Figure 7 of
the paper: small deflations are nearly free, large deflations slow the
function roughly linearly.
"""

from __future__ import annotations

import enum
import itertools
from collections import deque
from typing import Callable, Deque, List, Optional, Tuple, TYPE_CHECKING

from repro.sim.request import Request, RequestStatus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.engine import SimulationEngine

_container_counter = itertools.count()


class ContainerState(enum.Enum):
    """Lifecycle states of a container."""

    STARTING = "starting"      #: created; paying the cold-start latency
    WARM = "warm"              #: ready to execute requests
    DRAINING = "draining"      #: marked for lazy termination; finishes queued work
    TERMINATED = "terminated"  #: gone; resources released


class ContainerError(RuntimeError):
    """Raised on invalid container operations (e.g. running work on a terminated container)."""


class Container:
    """A single function container.

    Parameters
    ----------
    function_name:
        Name of the hosted function.
    node_name:
        The worker node this container lives on.
    standard_cpu:
        The CPU allocation (in vCPUs) of a *standard-sized* container of
        this function (Table 1 of the paper).
    memory_mb:
        Memory allocation in MB.  Memory is never deflated (§5: only CPU
        deflation is implemented because shrinking memory can kill the
        container).
    speed_of_cpu:
        Callable mapping a CPU *fraction* of the standard size (e.g. 0.7
        after 30 % deflation) to a relative execution speed in (0, 1].
        Defaults to proportional scaling.
    created_at:
        Simulation time of creation.
    """

    def __init__(
        self,
        function_name: str,
        node_name: str,
        standard_cpu: float,
        memory_mb: float,
        speed_of_cpu: Optional[Callable[[float], float]] = None,
        created_at: float = 0.0,
        container_id: Optional[str] = None,
    ) -> None:
        """Create a container in the STARTING state at its standard size."""
        if standard_cpu <= 0:
            raise ValueError("standard_cpu must be positive")
        if memory_mb <= 0:
            raise ValueError("memory_mb must be positive")
        self.container_id = container_id or f"c{next(_container_counter)}"
        self.function_name = function_name
        self.node_name = node_name
        self.standard_cpu = float(standard_cpu)
        self.current_cpu = float(standard_cpu)
        self.memory_mb = float(memory_mb)
        self.created_at = created_at
        self.warm_since: Optional[float] = None
        self.state = ContainerState.STARTING
        self._speed_of_cpu = speed_of_cpu or (lambda fraction: fraction)
        #: cached speed; the response curve is a pure function of the CPU
        #: fraction, so it only needs re-evaluating after a resize
        self._speed: Optional[float] = None
        #: invoked with the container after every lifecycle transition;
        #: the owning cluster uses it to keep derived indexes (e.g. the
        #: dispatcher's idle sets) in sync without scanning.
        self.state_observer: Optional[Callable[["Container"], None]] = None

        self._queue: Deque[Request] = deque()
        self._current: Optional[Request] = None
        self._completion_event = None
        self.completed_requests = 0
        self.busy_time = 0.0
        self._busy_since: Optional[float] = None

    # ------------------------------------------------------------------
    # Capacity / speed
    # ------------------------------------------------------------------
    @property
    def cpu_fraction(self) -> float:
        """Current CPU allocation as a fraction of the standard size."""
        return self.current_cpu / self.standard_cpu

    @property
    def deflation_ratio(self) -> float:
        """Fraction of the standard CPU allocation that has been reclaimed."""
        return 1.0 - self.cpu_fraction

    @property
    def speed(self) -> float:
        """Relative execution speed (1.0 = standard container)."""
        speed = self._speed
        if speed is None:
            speed = self._speed = max(1e-9, float(self._speed_of_cpu(self.cpu_fraction)))
        return speed

    @property
    def effective_service_rate_scale(self) -> float:
        """Multiplier to apply to the function's standard service rate μ."""
        return self.speed

    @property
    def is_available(self) -> bool:
        """Whether the load balancer may dispatch new requests to this container."""
        return self.state == ContainerState.WARM

    @property
    def is_idle(self) -> bool:
        """Warm and with no running or queued request."""
        return self.state == ContainerState.WARM and self._current is None and not self._queue

    @property
    def is_dispatchable(self) -> bool:
        """``is_available and is_idle`` in one attribute walk (hot path)."""
        return self.state is ContainerState.WARM and self._current is None and not self._queue

    @property
    def queue_length(self) -> int:
        """Number of requests queued (not counting the one running)."""
        return len(self._queue)

    @property
    def in_flight(self) -> int:
        """Requests running plus queued at this container."""
        return len(self._queue) + (1 if self._current is not None else 0)

    @property
    def current_request(self) -> Optional[Request]:
        """The request currently executing, if any."""
        return self._current

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _notify_state(self) -> None:
        """Invoke the state observer, if one is attached."""
        observer = self.state_observer
        if observer is not None:
            observer(self)

    def mark_warm(self, time: float) -> None:
        """Finish the cold start; the container can now execute requests."""
        if self.state != ContainerState.STARTING:
            raise ContainerError(f"container {self.container_id} is {self.state.value}, cannot warm")
        self.state = ContainerState.WARM
        self.warm_since = time
        self._notify_state()

    def mark_draining(self) -> None:
        """Lazily mark for termination; existing work drains, no new work accepted."""
        if self.state == ContainerState.TERMINATED:
            raise ContainerError("container already terminated")
        self.state = ContainerState.DRAINING
        self._notify_state()

    def unmark_draining(self) -> None:
        """Rescue a draining container (load rose again before it was reclaimed)."""
        if self.state != ContainerState.DRAINING:
            raise ContainerError("container is not draining")
        self.state = ContainerState.WARM
        self._notify_state()

    def _teardown(self, time: float, drop_queued: bool) -> Tuple[List[Request], List[Request]]:
        """Shared terminate/evict teardown: stop work, release state, notify.

        Cancels the in-flight completion event, drops the running
        request, closes the busy-time accounting, transitions to
        ``TERMINATED`` and notifies the state observer.  ``drop_queued``
        selects what happens to the FCFS queue: mark everything dropped
        (orderly termination) or hand the requests back untouched, still
        ``QUEUED`` (failure eviction).  Returns ``(dropped, salvaged)``.
        """
        if self.state == ContainerState.TERMINATED:
            return [], []
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        dropped: List[Request] = []
        if self._current is not None:
            self._current.mark_dropped(time)
            dropped.append(self._current)
            self._current = None
        salvaged = list(self._queue)
        self._queue.clear()
        if drop_queued:
            for request in salvaged:
                request.mark_dropped(time)
            dropped.extend(salvaged)
            salvaged = []
        if self._busy_since is not None:
            self.busy_time += time - self._busy_since
            self._busy_since = None
        self.state = ContainerState.TERMINATED
        self._notify_state()
        return dropped, salvaged

    def terminate(self, time: float) -> List[Request]:
        """Terminate immediately.  Returns the requests that were dropped."""
        dropped, _ = self._teardown(time, drop_queued=True)
        return dropped

    def evict(self, time: float) -> Tuple[List[Request], List[Request]]:
        """Crash-terminate the container, salvaging its queued requests.

        Failure semantics (the fault-injection contract, distinct from
        :meth:`terminate`): the request *running* at eviction time is
        lost — it was executing on the dead node/process — and is marked
        dropped; requests still *waiting* in the FCFS queue never
        started, so they are returned **untouched** (still ``QUEUED``)
        for the dispatcher to requeue onto surviving containers.

        Returns ``(interrupted, salvaged)``: the dropped in-flight
        request (0 or 1 element) and the still-queued survivors in FCFS
        order.
        """
        return self._teardown(time, drop_queued=False)

    # ------------------------------------------------------------------
    # Deflation
    # ------------------------------------------------------------------
    def deflate_to(self, cpu: float) -> float:
        """Set the CPU allocation to ``cpu`` vCPUs (clamped to (0, standard]).

        Returns the amount of CPU released (negative if inflating).
        """
        if self.state == ContainerState.TERMINATED:
            raise ContainerError("cannot resize a terminated container")
        new_cpu = min(self.standard_cpu, max(1e-6, float(cpu)))
        released = self.current_cpu - new_cpu
        self.current_cpu = new_cpu
        self._speed = None
        return released

    def deflate_by(self, ratio: float) -> float:
        """Deflate by ``ratio`` of the *standard* size (e.g. 0.3 removes 30 %)."""
        if not 0.0 <= ratio < 1.0:
            raise ValueError("deflation ratio must be in [0, 1)")
        return self.deflate_to(self.standard_cpu * (1.0 - ratio))

    def inflate(self) -> float:
        """Restore the standard CPU allocation.  Returns the extra CPU consumed."""
        return -self.deflate_to(self.standard_cpu)

    # ------------------------------------------------------------------
    # Execution (FCFS, one request at a time)
    # ------------------------------------------------------------------
    def submit(
        self,
        request: Request,
        engine: "SimulationEngine",
        on_complete: Optional[Callable[[Request, "Container"], None]] = None,
    ) -> None:
        """Accept a request for execution.

        The request starts immediately if the container is idle, otherwise
        it joins the FCFS queue.  Requests may arrive either fresh
        (``PENDING``) or having already waited in a controller-level shared
        queue (``QUEUED``).
        """
        if self.state not in (ContainerState.WARM, ContainerState.STARTING, ContainerState.DRAINING):
            raise ContainerError(
                f"cannot submit to container {self.container_id} in state {self.state.value}"
            )
        if request.status is RequestStatus.PENDING:
            request.mark_queued()
        elif request.status is not RequestStatus.QUEUED:
            raise ContainerError(
                f"cannot submit request in state {request.status.value} to {self.container_id}"
            )
        self._queue.append(request)
        if self.state == ContainerState.WARM:
            self._try_start_next(engine, on_complete)

    def on_warm_start(
        self,
        engine: "SimulationEngine",
        on_complete: Optional[Callable[[Request, "Container"], None]] = None,
    ) -> None:
        """Kick the execution loop once the cold start finishes."""
        self._try_start_next(engine, on_complete)

    def _try_start_next(
        self,
        engine: "SimulationEngine",
        on_complete: Optional[Callable[[Request, "Container"], None]],
    ) -> None:
        """Start the next queued request if the container has capacity for it."""
        if self._current is not None or not self._queue:
            return
        request = self._queue.popleft()
        self._current = request
        cold = self.warm_since is not None and self.completed_requests == 0 and engine.now == self.warm_since
        request.mark_running(engine.now, self.container_id, self.node_name, cold_start=cold)
        duration = max(1e-9, request.work / self.speed)
        self._busy_since = engine.now
        self._completion_event = engine.schedule(
            duration, self._finish_current, engine, on_complete
        )

    def _finish_current(
        self,
        engine: "SimulationEngine",
        on_complete: Optional[Callable[[Request, "Container"], None]],
    ) -> None:
        """Complete the in-flight request and pull the next queued one."""
        request = self._current
        if request is None:  # pragma: no cover - defensive
            return
        request.mark_completed(engine.now)
        self.completed_requests += 1
        if self._busy_since is not None:
            self.busy_time += engine.now - self._busy_since
            self._busy_since = None
        self._current = None
        self._completion_event = None
        if on_complete is not None:
            on_complete(request, self)
        if self.state in (ContainerState.WARM, ContainerState.DRAINING):
            self._try_start_next(engine, on_complete)

    def utilization(self, now: float) -> float:
        """Fraction of this container's lifetime spent executing requests."""
        lifetime = max(1e-12, now - self.created_at)
        busy = self.busy_time
        if self._busy_since is not None:
            busy += now - self._busy_since
        return min(1.0, busy / lifetime)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Debugging summary of id, function, node, CPU, and state."""
        return (
            f"Container({self.container_id}, fn={self.function_name!r}, node={self.node_name!r}, "
            f"cpu={self.current_cpu:.2f}/{self.standard_cpu:.2f}, state={self.state.value})"
        )
