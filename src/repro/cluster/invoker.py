"""Simplified invoker: the per-node agent that executes controller commands.

In the LaSS prototype (§5, Figure 2b) the invoker "no longer makes any
decisions on scheduling or container operation, it only executes
commands from the controller".  This module models exactly that: a thin
command executor with a small actuation latency, plus a command log so
experiments can count container create/terminate/resize operations
(Figure 9's discussion of operation churn under the two reclamation
policies).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.cluster import EdgeCluster
from repro.cluster.container import Container
from repro.sim.engine import SimulationEngine


class InvokerCommand(enum.Enum):
    """Commands the controller can send to an invoker."""

    CREATE = "create"
    TERMINATE = "terminate"
    RESIZE = "resize"


@dataclass
class CommandRecord:
    """One executed command, for churn accounting."""

    time: float
    node: str
    command: InvokerCommand
    function_name: str
    container_id: Optional[str] = None
    cpu: Optional[float] = None


@dataclass
class Invoker:
    """Command executor bound to one node of the cluster.

    Parameters
    ----------
    node_name:
        The node this invoker manages.
    cluster:
        The shared cluster state (the invoker acts through it so that the
        accounting stays in one place).
    actuation_latency:
        Extra latency added to every command, modelling the control-plane
        round trip between the controller and the invoker.
    """

    node_name: str
    cluster: EdgeCluster
    actuation_latency: float = 0.0
    log: List[CommandRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Command execution
    # ------------------------------------------------------------------
    def create_container(self, function_name: str, cpu: Optional[float] = None) -> Container:
        """Create a container of ``function_name`` on this invoker's node."""
        node = self.cluster.node(self.node_name)
        if node is None:
            raise KeyError(f"unknown node {self.node_name!r}")
        container = self.cluster.create_container(function_name, node=node, cpu=cpu)
        self.log.append(
            CommandRecord(
                time=self.cluster.engine.now,
                node=self.node_name,
                command=InvokerCommand.CREATE,
                function_name=function_name,
                container_id=container.container_id,
                cpu=container.current_cpu,
            )
        )
        return container

    def terminate_container(self, container_id: str) -> List:
        """Terminate a container on this invoker's node.

        Returns the requests that were dropped (queued or running on the
        container at the moment of termination).
        """
        container = self.cluster.get_container(container_id)
        function_name = container.function_name if container else "<unknown>"
        dropped = self.cluster.terminate_container(container_id)
        self.log.append(
            CommandRecord(
                time=self.cluster.engine.now,
                node=self.node_name,
                command=InvokerCommand.TERMINATE,
                function_name=function_name,
                container_id=container_id,
            )
        )
        return dropped

    def resize_container(self, container_id: str, cpu: float) -> float:
        """Resize (deflate or inflate) a container in place."""
        released = self.cluster.deflate_container(container_id, cpu)
        container = self.cluster.get_container(container_id)
        self.log.append(
            CommandRecord(
                time=self.cluster.engine.now,
                node=self.node_name,
                command=InvokerCommand.RESIZE,
                function_name=container.function_name if container else "<unknown>",
                container_id=container_id,
                cpu=cpu,
            )
        )
        return released

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def command_counts(self) -> Dict[InvokerCommand, int]:
        """Number of executed commands per type."""
        counts: Dict[InvokerCommand, int] = {cmd: 0 for cmd in InvokerCommand}
        for record in self.log:
            counts[record.command] += 1
        return counts


class InvokerPool:
    """One invoker per node, addressed by node name.

    The controller uses the pool to route actuation to the right node and
    to aggregate churn statistics across the cluster.
    """

    def __init__(self, cluster: EdgeCluster, actuation_latency: float = 0.0) -> None:
        """Create one invoker per cluster node."""
        self.cluster = cluster
        self.invokers: Dict[str, Invoker] = {
            node.name: Invoker(node.name, cluster, actuation_latency) for node in cluster.nodes
        }

    def __getitem__(self, node_name: str) -> Invoker:
        """The invoker responsible for a node, by node name."""
        return self.invokers[node_name]

    def invoker_for_container(self, container_id: str) -> Optional[Invoker]:
        """Find the invoker managing the node a container lives on."""
        container = self.cluster.get_container(container_id)
        if container is None:
            return None
        return self.invokers.get(container.node_name)

    def total_command_counts(self) -> Dict[InvokerCommand, int]:
        """Cluster-wide command counts (create / terminate / resize)."""
        totals: Dict[InvokerCommand, int] = {cmd: 0 for cmd in InvokerCommand}
        for invoker in self.invokers.values():
            for command, count in invoker.command_counts().items():
                totals[command] += count
        return totals


__all__ = ["Invoker", "InvokerPool", "InvokerCommand", "CommandRecord"]
