"""Edge-cluster substrate.

This package models the execution environment of the paper's prototype:
worker nodes with fixed CPU/memory capacity, OS containers that host
serverless functions and can be created, terminated, and *deflated*
in place, a simplified per-node invoker that executes controller
commands, and the weighted-round-robin load balancer that LaSS uses on
its data path.

Everything is simulated (see DESIGN.md §4 for the substitution from the
paper's OpenWhisk/Docker testbed), but the accounting is real: a node
never hosts more CPU or memory than it has, deflation changes a
container's service rate, and container creation pays a cold-start
latency.
"""

from repro.cluster.container import Container, ContainerState
from repro.cluster.node import Node, InsufficientCapacityError
from repro.cluster.cluster import EdgeCluster, ClusterConfig
from repro.cluster.loadbalancer import WeightedRoundRobinBalancer
from repro.cluster.invoker import Invoker, InvokerCommand

__all__ = [
    "Container",
    "ContainerState",
    "Node",
    "InsufficientCapacityError",
    "EdgeCluster",
    "ClusterConfig",
    "WeightedRoundRobinBalancer",
    "Invoker",
    "InvokerCommand",
]
