"""Worker node model: CPU / memory accounting for hosted containers.

The paper's testbed is three nodes with 4 cores and 16 GB each.  A
:class:`Node` enforces that the sum of its containers' *current* CPU
allocations and memory allocations never exceeds its capacity, and
exposes the utilisation numbers reported in the evaluation (allocated
vs. total capacity).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.cluster.container import Container, ContainerState


class InsufficientCapacityError(RuntimeError):
    """Raised when a node cannot host a requested container allocation."""


class Node:
    """A single edge worker node.

    Parameters
    ----------
    name:
        Unique node identifier.
    cpu_capacity:
        Total vCPUs available for function containers.
    memory_capacity_mb:
        Total memory in MB available for function containers.
    """

    def __init__(self, name: str, cpu_capacity: float, memory_capacity_mb: float) -> None:
        """Create a node with the given (positive) CPU and memory capacities."""
        if cpu_capacity <= 0 or memory_capacity_mb <= 0:
            raise ValueError("node capacities must be positive")
        self.name = name
        self.cpu_capacity = float(cpu_capacity)
        self.memory_capacity_mb = float(memory_capacity_mb)
        self._containers: Dict[str, Container] = {}
        #: Set true by the vanilla-OpenWhisk baseline when the node is
        #: overcommitted on CPU and stops responding (cascading failure, §6.6).
        self.unresponsive = False
        #: Set true by the fault injector while the node is down.  Unlike
        #: ``unresponsive`` (a baseline-behaviour flag that leaves capacity
        #: accounting untouched), a failed node also drops out of the
        #: cluster's capacity totals — the controller must plan around it.
        self.failed = False

    @property
    def available(self) -> bool:
        """Whether the node can host new containers (not failed, not unresponsive)."""
        return not (self.failed or self.unresponsive)

    # ------------------------------------------------------------------
    # Capacity accounting
    # ------------------------------------------------------------------
    @property
    def containers(self) -> List[Container]:
        """Live (non-terminated) containers hosted on this node."""
        return [c for c in self._containers.values() if c.state != ContainerState.TERMINATED]

    @property
    def cpu_allocated(self) -> float:
        """Sum of the *current* (possibly deflated) CPU allocations."""
        return sum(c.current_cpu for c in self.containers)

    @property
    def memory_allocated_mb(self) -> float:
        """Sum of memory allocations of live containers."""
        return sum(c.memory_mb for c in self.containers)

    @property
    def cpu_free(self) -> float:
        """Unallocated CPU."""
        return self.cpu_capacity - self.cpu_allocated

    @property
    def memory_free_mb(self) -> float:
        """Unallocated memory."""
        return self.memory_capacity_mb - self.memory_allocated_mb

    @property
    def cpu_utilization(self) -> float:
        """Fraction of node CPU currently allocated to containers."""
        return self.cpu_allocated / self.cpu_capacity

    @property
    def cpu_overcommitted(self) -> bool:
        """Whether allocated CPU exceeds capacity (only possible for baselines
        that ignore CPU when packing, such as vanilla OpenWhisk)."""
        return self.cpu_allocated > self.cpu_capacity + 1e-9

    def can_fit(self, cpu: float, memory_mb: float) -> bool:
        """Whether a container of the given size fits in the free capacity."""
        return cpu <= self.cpu_free + 1e-9 and memory_mb <= self.memory_free_mb + 1e-9

    # ------------------------------------------------------------------
    # Container management
    # ------------------------------------------------------------------
    def add_container(self, container: Container, enforce_cpu: bool = True) -> None:
        """Host ``container`` on this node.

        Parameters
        ----------
        enforce_cpu:
            If true (LaSS behaviour), reject the container when its CPU does
            not fit.  The vanilla-OpenWhisk baseline packs on memory only and
            passes ``False``, which is exactly the behaviour that leads to
            the cascading failures reported in §6.6.
        """
        if container.container_id in self._containers:
            raise ValueError(f"container {container.container_id} already on node {self.name}")
        if container.memory_mb > self.memory_free_mb + 1e-9:
            raise InsufficientCapacityError(
                f"node {self.name}: not enough memory for {container.container_id} "
                f"(need {container.memory_mb} MB, free {self.memory_free_mb:.1f} MB)"
            )
        if enforce_cpu and container.current_cpu > self.cpu_free + 1e-9:
            raise InsufficientCapacityError(
                f"node {self.name}: not enough CPU for {container.container_id} "
                f"(need {container.current_cpu}, free {self.cpu_free:.2f})"
            )
        container.node_name = self.name
        self._containers[container.container_id] = container

    def remove_container(self, container_id: str) -> Optional[Container]:
        """Forget a container (after termination); returns it if present."""
        return self._containers.pop(container_id, None)

    def get_container(self, container_id: str) -> Optional[Container]:
        """Look up a hosted container by id."""
        return self._containers.get(container_id)

    def containers_of(self, function_name: str) -> List[Container]:
        """Live containers of a given function on this node."""
        return [c for c in self.containers if c.function_name == function_name]

    def room_for(self, cpu: float, memory_mb: float) -> int:
        """How many containers of the given size still fit on this node."""
        if cpu <= 0 and memory_mb <= 0:
            return 0
        by_cpu = int(self.cpu_free / cpu + 1e-9) if cpu > 0 else 10**9
        by_mem = int(self.memory_free_mb / memory_mb + 1e-9) if memory_mb > 0 else 10**9
        return max(0, min(by_cpu, by_mem))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Debugging summary of allocated vs. total capacity."""
        return (
            f"Node({self.name!r}, cpu={self.cpu_allocated:.2f}/{self.cpu_capacity:.2f}, "
            f"mem={self.memory_allocated_mb:.0f}/{self.memory_capacity_mb:.0f} MB, "
            f"containers={len(self.containers)})"
        )


def total_capacity(nodes: Iterable[Node]) -> Dict[str, float]:
    """Aggregate CPU/memory capacity over a set of nodes."""
    nodes = list(nodes)
    return {
        "cpu": sum(n.cpu_capacity for n in nodes),
        "memory_mb": sum(n.memory_capacity_mb for n in nodes),
    }
