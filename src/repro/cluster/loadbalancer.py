"""Weighted round robin (WRR) load balancing over a function's containers.

LaSS separates the control path from the data path (§5, Figure 2b): the
controller tells the load balancer which containers exist and how big
each one currently is, and the load balancer dispatches every incoming
invocation directly to a container using *weighted* round robin, where a
container's weight is its current CPU allocation.  A container deflated
to 50 % therefore receives half as many requests as a standard one,
which is what keeps waiting times bounded when container sizes are
heterogeneous.

The implementation uses the "smooth weighted round robin" algorithm
(the one nginx uses): at each pick, every candidate's running score is
increased by its weight and the highest-scoring candidate is chosen and
penalised by the total weight.  This produces an evenly interleaved
sequence rather than bursts to the heaviest container.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cluster.container import Container


class WeightedRoundRobinBalancer:
    """Per-function smooth weighted round robin dispatcher.

    The balancer is stateless with respect to containers: the candidate
    set is passed on every call (it changes whenever the controller
    creates, terminates, or resizes containers), while the smoothing
    state is keyed by container id and pruned automatically.
    """

    def __init__(self) -> None:
        # function name -> container id -> current smoothing score
        """Start with empty per-function smoothing scores."""
        self._scores: Dict[str, Dict[str, float]] = {}

    def pick(self, function_name: str, containers: Sequence[Container]) -> Optional[Container]:
        """Choose the next container for an invocation of ``function_name``.

        Only warm containers are eligible.  Returns ``None`` when no
        container can take the request (the caller then queues or drops).
        """
        eligible = [c for c in containers if c.is_available]
        if not eligible:
            return None
        if len(eligible) == 1:
            # forced pick: smooth WRR would add the weight and immediately
            # subtract the (equal) total, so the scores are unchanged —
            # skipping the bookkeeping is behaviour-identical and removes
            # the dominant cost on the single-idle-container fast path
            only = eligible[0]
            scores = self._scores.get(function_name)
            if scores and (len(scores) > 1 or only.container_id not in scores):
                kept = scores.get(only.container_id)
                scores.clear()
                if kept is not None:
                    scores[only.container_id] = kept
            return only
        scores = self._scores.setdefault(function_name, {})
        # prune state for containers that no longer exist
        live_ids = {c.container_id for c in eligible}
        for stale in [cid for cid in scores if cid not in live_ids]:
            del scores[stale]

        total_weight = 0.0
        best: Optional[Container] = None
        best_score = float("-inf")
        for container in eligible:
            weight = self._weight(container)
            total_weight += weight
            score = scores.get(container.container_id, 0.0) + weight
            scores[container.container_id] = score
            if score > best_score + 1e-15:
                best_score = score
                best = container
        assert best is not None
        scores[best.container_id] -= total_weight
        return best

    def pick_least_loaded(
        self, function_name: str, containers: Sequence[Container]
    ) -> Optional[Container]:
        """Alternative policy: the eligible container with the fewest in-flight requests.

        Used by some baselines and useful for ablations; ties are broken by
        the WRR order.
        """
        eligible = [c for c in containers if c.is_available]
        if not eligible:
            return None
        min_inflight = min(c.in_flight for c in eligible)
        least = [c for c in eligible if c.in_flight == min_inflight]
        if len(least) == 1:
            return least[0]
        return self.pick(function_name, least)

    def reset(self, function_name: Optional[str] = None) -> None:
        """Clear smoothing state for one function or for all of them."""
        if function_name is None:
            self._scores.clear()
        else:
            self._scores.pop(function_name, None)

    def dispatch_counts(
        self, function_name: str, containers: Sequence[Container], n: int
    ) -> Dict[str, int]:
        """Simulate ``n`` consecutive picks and count picks per container.

        A pure helper used by tests and by the model-validation experiments
        to check that dispatch proportions converge to CPU proportions.
        """
        counts: Dict[str, int] = {c.container_id: 0 for c in containers}
        for _ in range(n):
            chosen = self.pick(function_name, containers)
            if chosen is None:
                break
            counts[chosen.container_id] += 1
        return counts

    @staticmethod
    def _weight(container: Container) -> float:
        """A container's dispatch weight: its current (possibly deflated) CPU."""
        return max(1e-9, container.current_cpu)


def proportional_split(weights: Sequence[float], total: int) -> List[int]:
    """Split ``total`` discrete items across ``weights`` proportionally.

    Largest-remainder method; the result always sums to ``total``.  Used
    by the fair-share allocator when converting fractional CPU shares to
    whole containers.
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    if not weights:
        return []
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    weight_sum = sum(weights)
    if weight_sum <= 0:
        base = [total // len(weights)] * len(weights)
        for i in range(total - sum(base)):
            base[i] += 1
        return base
    raw = [w / weight_sum * total for w in weights]
    floors = [int(x) for x in raw]
    remainder = total - sum(floors)
    order = sorted(range(len(weights)), key=lambda i: raw[i] - floors[i], reverse=True)
    for i in order[:remainder]:
        floors[i] += 1
    return floors
