"""The edge cluster: nodes + containers + the control operations LaSS needs.

:class:`EdgeCluster` is the resource substrate that the LaSS controller
(:mod:`repro.core.controller`) manipulates.  It exposes exactly the
operations the paper's modified OpenWhisk controller has (Figure 2b):
create, delete, and resize (deflate) containers on specific nodes, and
enumerate the containers of each function together with their sizes.

Container creation pays a configurable cold-start latency; termination
is immediate.  All timing flows through the shared
:class:`~repro.sim.engine.SimulationEngine`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.cluster.container import Container, ContainerState
from repro.cluster.node import InsufficientCapacityError, Node
from repro.sim.engine import SimulationEngine


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of an edge cluster.

    The defaults reproduce the paper's testbed: 3 nodes, 4 cores and
    16 GB each (§6.1), with sub-second container provisioning
    ("reprovision container capacity within hundreds of milliseconds").
    """

    node_count: int = 3
    cpu_per_node: float = 4.0
    memory_per_node_mb: float = 16 * 1024.0
    cold_start_latency: float = 0.5
    #: Latency of an in-place resize (Docker ``update``); effectively immediate.
    resize_latency: float = 0.0

    def total_cpu(self) -> float:
        """Aggregate CPU capacity of the cluster in vCPUs."""
        return self.node_count * self.cpu_per_node

    def total_memory_mb(self) -> float:
        """Aggregate memory capacity of the cluster in MB."""
        return self.node_count * self.memory_per_node_mb

    def build_nodes(self) -> List[Node]:
        """Instantiate the node objects described by this config."""
        return [
            Node(f"node-{i}", self.cpu_per_node, self.memory_per_node_mb)
            for i in range(self.node_count)
        ]


@dataclass
class FunctionDeployment:
    """Everything the cluster needs to know to host containers of a function.

    Parameters mirror the paper: a standard container size (Table 1), a
    weight for fair-share allocation (§4.1), an SLO deadline (§2.3), and
    a deflation response curve used to derive the speed of a deflated
    container (Figure 7).
    """

    name: str
    cpu: float
    memory_mb: float
    weight: float = 1.0
    user: str = "default"
    slo_deadline: Optional[float] = 0.1
    slo_percentile: float = 0.95
    #: maps cpu fraction of the standard size -> relative speed
    speed_of_cpu: Callable[[float], float] = field(default=lambda fraction: fraction)
    #: minimum number of containers to keep warm even at zero load
    min_containers: int = 0

    def __post_init__(self) -> None:
        """Validate the deployment's container size and SLO parameters."""
        if self.cpu <= 0:
            raise ValueError(f"function {self.name}: cpu must be positive")
        if self.memory_mb <= 0:
            raise ValueError(f"function {self.name}: memory_mb must be positive")
        if self.weight <= 0:
            raise ValueError(f"function {self.name}: weight must be positive")
        if not 0 < self.slo_percentile < 1:
            raise ValueError(f"function {self.name}: slo_percentile must be in (0, 1)")


class EdgeCluster:
    """Mutable cluster state plus the container control operations.

    Parameters
    ----------
    engine:
        Shared simulation engine (clock + event queue).
    config:
        Cluster sizing and latency parameters.
    nodes:
        Optional pre-built nodes (overrides ``config.build_nodes()``).
    """

    def __init__(
        self,
        engine: SimulationEngine,
        config: Optional[ClusterConfig] = None,
        nodes: Optional[Iterable[Node]] = None,
    ) -> None:
        """Build the nodes and empty container indexes for the configured cluster."""
        self.engine = engine
        self.config = config or ClusterConfig()
        self.nodes: List[Node] = list(nodes) if nodes is not None else self.config.build_nodes()
        if not self.nodes:
            raise ValueError("cluster must have at least one node")
        self._deployments: Dict[str, FunctionDeployment] = {}
        self._containers: Dict[str, Container] = {}
        #: per-cluster container id sequence.  Ids must NOT come from the
        #: process-global counter: container-id strings are dispatch/victim
        #: sort tie-breaks, so ids that depended on how many containers
        #: *earlier runs in the same process* created would make sweep
        #: shard results depend on worker placement (breaking the
        #: workers=1 ≡ workers=N byte-identity guarantee).  Every cluster
        #: numbering from c0 makes a run a pure function of its spec.
        self._container_seq = itertools.count()
        #: per-function index of live containers so hot paths never scan
        #: the whole cluster (terminated containers are removed eagerly)
        self._by_function: Dict[str, Dict[str, Container]] = {}
        self._on_container_warm: List[Callable[[Container], None]] = []
        self._on_container_state: List[Callable[[Container], None]] = []
        #: Optional override for the constant cold-start latency: a
        #: zero-argument callable returning the latency of the *next*
        #: container creation.  Installed by the fault injector to model
        #: cold-start latency distributions; ``None`` keeps the
        #: configured constant (and the healthy event stream byte-exact).
        self.cold_start_sampler: Optional[Callable[[], float]] = None

    # ------------------------------------------------------------------
    # Deployments
    # ------------------------------------------------------------------
    def deploy(self, deployment: FunctionDeployment) -> None:
        """Register a function with the cluster (no containers are created yet)."""
        if deployment.name in self._deployments:
            raise ValueError(f"function {deployment.name!r} already deployed")
        self._deployments[deployment.name] = deployment

    def undeploy(self, function_name: str) -> None:
        """Remove a function and terminate all its containers."""
        self._deployments.pop(function_name, None)
        for container in list(self.containers_of(function_name)):
            self.terminate_container(container.container_id)

    def deployment(self, function_name: str) -> FunctionDeployment:
        """Look up the deployment record of a function."""
        try:
            return self._deployments[function_name]
        except KeyError:
            raise KeyError(f"function {function_name!r} is not deployed") from None

    @property
    def deployments(self) -> List[FunctionDeployment]:
        """All registered function deployments."""
        return list(self._deployments.values())

    @property
    def function_names(self) -> List[str]:
        """Names of all deployed functions."""
        return list(self._deployments)

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    @property
    def total_cpu(self) -> float:
        """Aggregate CPU capacity in vCPUs, excluding failed nodes.

        Failed nodes hold no containers and accept no placements, so
        counting their capacity would make the controller plan against
        hardware that does not exist: overload detection, fair-share
        targets and ``capacity_in_containers`` all shrink with the
        fleet.  (Baseline-``unresponsive`` nodes still count — that flag
        models a node that is *overcommitted*, not absent.)
        """
        return sum(n.cpu_capacity for n in self.nodes if not n.failed)

    @property
    def configured_cpu(self) -> float:
        """Aggregate CPU capacity as configured, including failed nodes.

        The denominator of the availability metric: what the cluster
        *should* have.
        """
        return sum(n.cpu_capacity for n in self.nodes)

    @property
    def total_memory_mb(self) -> float:
        """Aggregate memory capacity in MB, excluding failed nodes."""
        return sum(n.memory_capacity_mb for n in self.nodes if not n.failed)

    @property
    def cpu_allocated(self) -> float:
        """CPU currently allocated to live containers across all nodes."""
        return sum(n.cpu_allocated for n in self.nodes)

    @property
    def cpu_free(self) -> float:
        """Unallocated CPU across all nodes."""
        return self.total_cpu - self.cpu_allocated

    @property
    def cpu_utilization(self) -> float:
        """Fraction of cluster CPU allocated to containers."""
        return self.cpu_allocated / self.total_cpu if self.total_cpu else 0.0

    def cpu_allocated_to(self, function_name: str) -> float:
        """CPU currently allocated to a particular function."""
        return sum(c.current_cpu for c in self.containers_of(function_name))

    def capacity_in_containers(self, function_name: str) -> int:
        """Cluster capacity expressed in standard containers of ``function_name``.

        This is the quantity ``C`` in the paper's fair-share equations when
        all functions share the same container size; for mixed sizes the
        controller works in CPU units instead.
        """
        dep = self.deployment(function_name)
        return int(self.total_cpu / dep.cpu + 1e-9)

    # ------------------------------------------------------------------
    # Containers
    # ------------------------------------------------------------------
    def containers_of(self, function_name: str, include_draining: bool = True) -> List[Container]:
        """Live containers of a function, sorted by current CPU (smallest first)."""
        index = self._by_function.get(function_name)
        if not index:
            return []
        if include_draining:
            result = list(index.values())
        else:
            result = [c for c in index.values() if c.state != ContainerState.DRAINING]
        return sorted(result, key=lambda c: (c.current_cpu, c.container_id))

    def has_containers(self, function_name: str) -> bool:
        """O(1): whether the function has any live container (incl. draining)."""
        return bool(self._by_function.get(function_name))

    def warm_containers_of(self, function_name: str) -> List[Container]:
        """Containers of a function that are warm (dispatchable)."""
        return [c for c in self.containers_of(function_name) if c.state == ContainerState.WARM]

    def all_containers(self) -> List[Container]:
        """All live containers in the cluster."""
        return list(self._containers.values())

    def get_container(self, container_id: str) -> Optional[Container]:
        """Look up a container by id (returns ``None`` for unknown or terminated)."""
        container = self._containers.get(container_id)
        if container is None or container.state == ContainerState.TERMINATED:
            return None
        return container

    def container_count(self, function_name: str, include_draining: bool = False) -> int:
        """Number of live containers of a function."""
        return len(self.containers_of(function_name, include_draining=include_draining))

    def on_container_warm(self, callback: Callable[[Container], None]) -> None:
        """Register a hook invoked whenever a container finishes its cold start."""
        self._on_container_warm.append(callback)

    def on_container_state(self, callback: Callable[[Container], None]) -> None:
        """Register a hook invoked after *every* container lifecycle transition.

        This is how derived indexes (the dispatcher's per-function idle
        sets) stay in sync incrementally instead of rescanning the
        cluster on each dispatch.
        """
        self._on_container_state.append(callback)

    def _container_state_changed(self, container: Container) -> None:
        """Observer hook: keep the per-function container index in sync."""
        if container.state == ContainerState.TERMINATED:
            self._containers.pop(container.container_id, None)
            index = self._by_function.get(container.function_name)
            if index is not None:
                index.pop(container.container_id, None)
        for callback in self._on_container_state:
            callback(container)

    # ------------------------------------------------------------------
    # Control operations (what the LaSS controller invokes)
    # ------------------------------------------------------------------
    def create_container(
        self,
        function_name: str,
        node: Optional[Node] = None,
        cpu: Optional[float] = None,
        enforce_cpu: bool = True,
    ) -> Container:
        """Create a container for ``function_name``.

        If ``node`` is not given, the container is placed on the feasible
        node with the *least* free CPU (best-fit packing, which keeps whole
        nodes free for the larger DNN containers and minimises
        fragmentation).  Raises :class:`InsufficientCapacityError` if no
        node can host it.
        """
        dep = self.deployment(function_name)
        cpu = dep.cpu if cpu is None else float(cpu)
        if node is None:
            node = self.find_node_for(cpu, dep.memory_mb)
            if node is None:
                raise InsufficientCapacityError(
                    f"no node can host a container of {function_name!r} "
                    f"({cpu} vCPU, {dep.memory_mb} MB)"
                )
        elif node.failed:
            raise InsufficientCapacityError(
                f"node {node.name} is failed; cannot host a container of {function_name!r}"
            )
        container = Container(
            function_name=function_name,
            node_name=node.name,
            standard_cpu=dep.cpu,
            memory_mb=dep.memory_mb,
            speed_of_cpu=dep.speed_of_cpu,
            created_at=self.engine.now,
            container_id=f"c{next(self._container_seq)}",
        )
        if cpu < dep.cpu:
            container.deflate_to(cpu)
        node.add_container(container, enforce_cpu=enforce_cpu)
        self._containers[container.container_id] = container
        self._by_function.setdefault(function_name, {})[container.container_id] = container
        container.state_observer = self._container_state_changed
        sampler = self.cold_start_sampler
        latency = self.config.cold_start_latency if sampler is None else max(0.0, sampler())
        self.engine.call_later(latency, self._finish_cold_start, container)
        return container

    def _finish_cold_start(self, container: Container) -> None:
        """Engine callback: mark a STARTING container warm and notify observers."""
        if container.state != ContainerState.STARTING:
            return  # terminated while starting
        container.mark_warm(self.engine.now)
        for callback in self._on_container_warm:
            callback(container)

    def terminate_container(self, container_id: str) -> List:
        """Terminate a container immediately; returns the dropped requests."""
        container = self._containers.get(container_id)
        if container is None or container.state == ContainerState.TERMINATED:
            return []
        dropped = container.terminate(self.engine.now)
        node = self.node(container.node_name)
        if node is not None:
            node.remove_container(container_id)
        return dropped

    def evict_container(self, container_id: str) -> Tuple[List, List]:
        """Crash-terminate a container, salvaging its queued requests.

        Unlike :meth:`terminate_container` (an orderly controller action
        that drops everything), eviction models a *failure*: the running
        request is lost, but queued requests are returned still
        ``QUEUED`` so the caller can requeue them onto surviving
        containers (see :meth:`repro.cluster.container.Container.evict`).

        Returns ``(interrupted, salvaged)``.
        """
        container = self._containers.get(container_id)
        if container is None or container.state == ContainerState.TERMINATED:
            return [], []
        interrupted, salvaged = container.evict(self.engine.now)
        node = self.node(container.node_name)
        if node is not None:
            node.remove_container(container_id)
        return interrupted, salvaged

    # ------------------------------------------------------------------
    # Node failure / recovery (driven by the fault injector)
    # ------------------------------------------------------------------
    def fail_node(self, node_name: str) -> Tuple[List, List]:
        """Take a node down, evicting every container it hosts.

        Failure semantics: each hosted container is evicted — its
        running request fails, its queued requests survive (still
        ``QUEUED``) for the caller to requeue.  The node stops counting
        towards :attr:`total_cpu` and accepts no placements until
        :meth:`recover_node`.

        Returns the aggregated ``(interrupted, salvaged)`` request lists
        across all evicted containers, in container order.  Idempotent:
        failing an already-failed node returns empty lists.
        """
        node = self.node(node_name)
        if node is None:
            raise KeyError(f"unknown node {node_name!r}")
        if node.failed:
            return [], []
        node.failed = True
        interrupted: List = []
        salvaged: List = []
        for container in list(node.containers):
            dropped, queued = self.evict_container(container.container_id)
            interrupted.extend(dropped)
            salvaged.extend(queued)
        return interrupted, salvaged

    def recover_node(self, node_name: str) -> None:
        """Bring a failed node back (empty, at full capacity)."""
        node = self.node(node_name)
        if node is None:
            raise KeyError(f"unknown node {node_name!r}")
        node.failed = False

    def deflate_container(self, container_id: str, cpu: float) -> float:
        """Resize a container in place to ``cpu`` vCPUs; returns CPU released."""
        container = self.get_container(container_id)
        if container is None:
            raise KeyError(f"unknown container {container_id!r}")
        return container.deflate_to(cpu)

    def inflate_container(self, container_id: str) -> float:
        """Restore a container to its standard size if the node has room.

        Returns the CPU consumed (0 if there was no headroom).
        """
        container = self.get_container(container_id)
        if container is None:
            raise KeyError(f"unknown container {container_id!r}")
        node = self.node(container.node_name)
        if node is None:
            return 0.0
        headroom = node.cpu_free
        target = min(container.standard_cpu, container.current_cpu + headroom)
        if target <= container.current_cpu:
            return 0.0
        return -container.deflate_to(target)

    # ------------------------------------------------------------------
    # Placement helpers
    # ------------------------------------------------------------------
    def node(self, name: str) -> Optional[Node]:
        """Look up a node by name."""
        for node in self.nodes:
            if node.name == name:
                return node
        return None

    def find_node_for(self, cpu: float, memory_mb: float) -> Optional[Node]:
        """Best-fit placement: the feasible node with the least free CPU."""
        candidates = [n for n in self.nodes if n.can_fit(cpu, memory_mb) and n.available]
        if not candidates:
            return None
        return min(candidates, key=lambda n: (n.cpu_free, n.memory_free_mb, n.name))

    def room_for(self, function_name: str) -> int:
        """How many additional standard containers of a function fit right now."""
        dep = self.deployment(function_name)
        return sum(n.room_for(dep.cpu, dep.memory_mb) for n in self.nodes if n.available)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Debugging summary of nodes, functions, and containers."""
        return (
            f"EdgeCluster(nodes={len(self.nodes)}, functions={len(self._deployments)}, "
            f"containers={len(self.all_containers())}, "
            f"cpu={self.cpu_allocated:.1f}/{self.total_cpu:.1f})"
        )
