"""Runs one federated simulation: N sites, one engine, one global router.

The federated analogue of :class:`~repro.simulation.SimulationRunner`.
One :class:`~repro.sim.engine.SimulationEngine` drives every site, so
cross-site causality (WAN transit, bounced deliveries, probe timing)
is totally ordered and the whole run stays a pure function of
``(scenario, seed)``.

Request flow
------------
Every arrival enters at its function's **origin site** and takes one of
three paths:

1. **Edge autonomy** — the origin is alive but WAN-partitioned: the
   request is dispatched directly by the origin's own control policy,
   bypassing the global router entirely (the router cannot see the
   site, but the site can see its own traffic — the KubeEdge model).
2. **Routing** — the router picks among believed-healthy sites
   (:class:`~repro.federation.health.SiteHealthMonitor` beliefs, which
   lag reality by up to one probe interval).  Same-site choices
   dispatch synchronously; cross-site choices pay the one-way WAN
   latency before delivery.
3. **Bounce / redirect** — a delivery that lands on a site that is
   actually dead or partitioned *bounces*: the monitor is told
   immediately, and after the return WAN trip the request re-routes
   with the bounced site excluded, up to ``max_redirects`` hops, after
   which it is dropped (``redirect_exhausted``).  A request with no
   healthy candidate at all is dropped at the origin
   (``no_healthy_site``).

Dropped requests are recorded against their *origin* site's metrics so
federation-wide request availability accounts for them.

Metrics are kept **per site** and merged only at result time, in site
order — which is what lets a WAN-partitioned site's envelope "merge
back" byte-deterministically after a heal: its collector never stopped
recording.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.controller import ControllerConfig
from repro.core.estimation.service_time import ServiceTimeProfile
from repro.core.policy import PolicyContext, get_policy
from repro.faults.spec import FaultSpec
from repro.federation.cluster import FederatedCluster, FederatedSite
from repro.federation.health import SiteHealthMonitor
from repro.federation.injector import FederationFaultInjector
from repro.federation.router import RouterContext, build_router
from repro.federation.spec import FederationSpec
from repro.metrics.collector import MetricsCollector
from repro.metrics.percentiles import WaitingTimeSummary
from repro.metrics.slo import SloReport
from repro.sim.engine import SimulationEngine
from repro.sim.request import Request
from repro.sim.rng import RngStreams
from repro.workloads.generator import ArrivalGenerator, WorkloadBinding


class RouterStats:
    """Counters describing what the global router did during one run."""

    def __init__(self, site_names: Sequence[str]) -> None:
        """Zero every counter for the given sites."""
        self.dispatched: Dict[str, int] = {name: 0 for name in site_names}
        self.local_autonomy = 0
        self.cross_site = 0
        self.redirects = 0
        self.bounces = 0
        self.max_redirect_hops = 0
        self.drops: Counter = Counter()

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready view for the results envelope."""
        return {
            "dispatched": dict(self.dispatched),
            "local_autonomy": self.local_autonomy,
            "cross_site": self.cross_site,
            "redirects": self.redirects,
            "bounces": self.bounces,
            "max_redirect_hops": self.max_redirect_hops,
            "drops": {reason: self.drops[reason] for reason in sorted(self.drops)},
        }


class FederatedSimulationResult:
    """Everything a finished federated run exposes for analysis.

    Interface-compatible with :class:`~repro.simulation.SimulationResult`
    for the metric-collection paths the scenario layer uses
    (``waiting_summary`` / ``slo`` / ``mean_utilization`` /
    ``generated_requests`` / ``.metrics``): the per-site request lists
    are merged in site order into one collector, and utilisation is the
    configured-CPU-weighted mean over sites.
    """

    def __init__(self, federation: FederatedCluster, duration: float,
                 generated_requests: Dict[str, int]) -> None:
        """Merge per-site metrics into one federation-wide collector."""
        self.federation = federation
        self.duration = duration
        self.generated_requests = dict(generated_requests)
        merged = MetricsCollector()
        requests: List[Request] = []
        for site in federation.sites:
            requests.extend(site.metrics.requests)
            merged.counters.update(site.metrics.counters)
        merged.requests = requests
        self.metrics = merged

    def waiting_summary(self, function_name: Optional[str] = None,
                        warmup: float = 0.0) -> WaitingTimeSummary:
        """Federation-wide waiting-time percentiles for one function (or all)."""
        return self.metrics.waiting_summary(function_name, warmup)

    def slo(self, deadlines: Mapping[str, float], percentile: float = 0.95,
            warmup: float = 0.0) -> Dict[str, SloReport]:
        """Federation-wide SLO attainment per function."""
        return self.metrics.slo(deadlines, percentile, warmup)

    def mean_utilization(self, start: float = 0.0,
                         end: Optional[float] = None) -> float:
        """Configured-CPU-weighted mean utilisation across all sites."""
        total = 0.0
        weight = 0.0
        for site in self.federation.sites:
            w = site.cluster.configured_cpu
            total += w * site.metrics.mean_utilization(start, end)
            weight += w
        return total / weight if weight else 0.0


class FederatedSimulationRunner:
    """Builds and runs one complete federated simulation.

    Parameters
    ----------
    workloads:
        One :class:`~repro.workloads.generator.WorkloadBinding` per
        function; every function is deployed on every site (traffic may
        be routed anywhere), and originates at
        ``federation.origin_of(name)``.
    federation:
        The :class:`~repro.federation.spec.FederationSpec` topology.
    controller_config:
        Shared per-site controller parameters (epoch length, ...).
    seed:
        Master seed; arrival/work streams are per function, exactly as
        in the single-cluster runner.
    warm_start_containers:
        Per-function warm containers, created at the function's origin
        site before the workload starts.
    fault_spec:
        Optional :class:`~repro.faults.spec.FaultSpec` whose
        *site-level* faults (blackouts, partitions) are armed via
        :class:`~repro.federation.injector.FederationFaultInjector`.
    """

    def __init__(
        self,
        workloads: Sequence[WorkloadBinding],
        federation: FederationSpec,
        controller_config: Optional[ControllerConfig] = None,
        seed: int = 1,
        use_offline_profiles: bool = True,
        warm_start_containers: Optional[Mapping[str, int]] = None,
        arrival_batch_size: int = 256,
        fault_spec: Optional[FaultSpec] = None,
    ) -> None:
        """Build the engine, sites, per-site policies, router, and generators."""
        if not workloads:
            raise ValueError("at least one workload binding is required")
        names = [w.profile.name for w in workloads]
        if len(set(names)) != len(names):
            raise ValueError("duplicate function names in workload bindings")
        self.spec = federation
        self.bindings = list(workloads)
        self.engine = SimulationEngine()
        self.rng = RngStreams(seed)
        self.federation = FederatedCluster(self.engine, federation)

        profiles: Dict[str, ServiceTimeProfile] = {}
        default_rates: Dict[str, float] = {}
        for binding in self.bindings:
            default_rates[binding.profile.name] = binding.profile.service_rate
            if use_offline_profiles:
                profiles[binding.profile.name] = binding.profile.to_service_profile()

        config = controller_config or ControllerConfig()
        for site in self.federation.sites:
            for binding in self.bindings:
                site.cluster.deploy(binding.profile.to_deployment(
                    weight=binding.weight,
                    user=binding.user,
                    slo_deadline=binding.slo_deadline,
                ))
            descriptor = get_policy(site.spec.policy)
            if descriptor.legacy_workload_rng:
                raise ValueError(
                    f"site {site.name!r}: policy {site.spec.policy!r} uses the "
                    f"legacy interleaved workload RNG and cannot run federated"
                )
            context = PolicyContext(
                engine=self.engine,
                cluster=site.cluster,
                metrics=site.metrics,
                config=config,
                service_profiles=profiles,
                default_service_rates=default_rates,
            )
            site.attach_policy(
                descriptor.factory(context, dict(site.spec.policy_params)),
                default_rates,
            )

        self.monitor = SiteHealthMonitor(
            self.engine, self.federation,
            probe_interval=federation.probe_interval,
            backoff_base=federation.probe_backoff_base,
            backoff_cap=federation.probe_backoff_cap,
        )
        self.router = build_router(
            federation.router,
            RouterContext(engine=self.engine, federation=self.federation,
                          spec=federation),
            federation.router_params,
        )
        self.stats = RouterStats(self.federation.site_names())
        self._origins: Dict[str, str] = {
            binding.profile.name: federation.origin_of(binding.profile.name)
            for binding in self.bindings
        }

        self.generators: List[ArrivalGenerator] = []
        for binding in self.bindings:
            self.generators.append(ArrivalGenerator(
                engine=self.engine,
                profile=binding.profile,
                schedule=binding.schedule,
                dispatch=self._ingress,
                rng=self.rng.stream(f"arrivals:{binding.profile.name}"),
                slo_deadline=binding.slo_deadline,
                batch_size=arrival_batch_size,
                work_rng=self.rng.stream(f"work:{binding.profile.name}"),
            ))

        self._warm_start = dict(warm_start_containers or {})
        self.fault_injector: Optional[FederationFaultInjector] = None
        if fault_spec is not None and not fault_spec.is_empty():
            if fault_spec.has_node_faults():
                raise ValueError(
                    "federated runs take site-level faults only "
                    "(site_blackouts / wan_partitions)"
                )
            self.fault_injector = FederationFaultInjector(
                self.engine, self.federation, fault_spec)

    # ------------------------------------------------------------------
    # Ingress / routing / delivery
    # ------------------------------------------------------------------
    def _ingress(self, request: Request) -> None:
        """Entry point for every arrival: autonomy check, then routing."""
        origin_name = self._origins[request.function_name]
        origin = self.federation.site(origin_name)
        if origin.alive and not origin.reachable:
            # Edge autonomy: the partitioned site cannot be seen by the
            # router, but its local control loop keeps serving its own
            # arrivals.
            self.stats.local_autonomy += 1
            self.stats.dispatched[origin_name] += 1
            origin.policy.dispatch(request)
            return
        self._route(request, origin_name, hops=0, excluded=())

    def _route(self, request: Request, origin_name: str, hops: int,
               excluded: Tuple[str, ...]) -> None:
        """Score candidates and deliver (or drop) one request."""
        candidates = [name for name in self.monitor.healthy_sites()
                      if name not in excluded]
        if not candidates:
            self._drop(request, origin_name, "no_healthy_site")
            return
        target = self.router.choose_site(request, origin_name, candidates)
        if target is None:
            self._drop(request, origin_name, "router_refused")
            return
        if target not in candidates:
            raise RuntimeError(
                f"router {self.spec.router!r} chose {target!r} "
                f"outside its candidate set {candidates}"
            )
        if target == origin_name:
            self._deliver(request, origin_name, target, hops, excluded)
            return
        self.stats.cross_site += 1
        self.engine.call_later(
            self.federation.latency(origin_name, target),
            self._deliver, request, origin_name, target, hops, excluded)

    def _deliver(self, request: Request, origin_name: str, target_name: str,
                 hops: int, excluded: Tuple[str, ...]) -> None:
        """Hand the request to the target site — or bounce off a dead one."""
        site = self.federation.site(target_name)
        if site.deliverable:
            self.stats.dispatched[target_name] += 1
            site.policy.dispatch(request)
            return
        self.stats.bounces += 1
        self.monitor.mark_unreachable(target_name)
        if hops >= self.spec.max_redirects:
            self._drop(request, origin_name, "redirect_exhausted")
            return
        self.engine.call_later(
            self.federation.latency(target_name, origin_name),
            self._redirect, request, origin_name, hops + 1,
            excluded + (target_name,))

    def _redirect(self, request: Request, origin_name: str, hops: int,
                  excluded: Tuple[str, ...]) -> None:
        """Re-route a bounced request with the dead site excluded."""
        self.stats.redirects += 1
        self.stats.max_redirect_hops = max(self.stats.max_redirect_hops, hops)
        self._route(request, origin_name, hops, excluded)

    def _drop(self, request: Request, origin_name: str, reason: str) -> None:
        """Drop an unroutable request, accounted at its origin site."""
        site = self.federation.site(origin_name)
        site.metrics.record_request(request)
        request.mark_dropped(self.engine.now)
        site.metrics.record_drop()
        self.stats.drops[reason] += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def prewarm(self) -> None:
        """Create warm-start containers at each function's origin site."""
        max_latency = 0.0
        created = 0
        for name, count in self._warm_start.items():
            site = self.federation.site(self._origins.get(
                name, self.spec.sites[0].name))
            for _ in range(count):
                site.cluster.create_container(name)
                created += 1
            max_latency = max(max_latency, site.spec.cold_start_latency)
        if created:
            self.engine.run(until=self.engine.now + max_latency + 1e-6)

    def run(self, duration: float,
            extra_drain: float = 5.0) -> FederatedSimulationResult:
        """Run the federated simulation for ``duration`` seconds of workload."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.prewarm()
        for site in self.federation.sites:
            site.policy.start()
        self.monitor.start()
        self.router.start()
        for generator in self.generators:
            if generator.horizon is None or generator.horizon > duration:
                generator.horizon = duration
        for generator in self.generators:
            generator.start()
        self.engine.run(until=duration + extra_drain)
        generated = {g.profile.name: g.generated for g in self.generators}
        return FederatedSimulationResult(
            federation=self.federation,
            duration=duration,
            generated_requests=generated,
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def federation_report(self) -> Dict[str, Any]:
        """The ``federation`` group of the results envelope."""
        sites: Dict[str, Any] = {}
        for site in self.federation.sites:
            dispatcher = getattr(site.policy, "dispatcher", None)
            sites[site.name] = {
                "counters": {key: site.metrics.counters[key]
                             for key in sorted(site.metrics.counters)},
                "mean_utilization": site.metrics.mean_utilization(),
                "queued_at_end": (dispatcher.total_queued()
                                  if dispatcher is not None else 0),
            }
        return {
            "router": {"policy": self.spec.router, **self.stats.as_dict()},
            "health": {
                "probes_sent": self.monitor.probes_sent,
                "transitions": [[time, name, up]
                                for time, name, up in self.monitor.transitions],
            },
            "sites": sites,
        }


__all__ = [
    "FederatedSimulationRunner",
    "FederatedSimulationResult",
    "RouterStats",
]
