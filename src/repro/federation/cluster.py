"""The live federation: N edge sites under one simulation engine.

:class:`FederatedSite` wraps one :class:`~repro.cluster.cluster.EdgeCluster`
with the federation-level runtime state the router and fault layers act
on — the site's own metrics collector and control policy, plus two
independent liveness flags:

* ``alive`` — the site's hardware is up.  A blackout clears it: every
  node fails, nothing executes.
* ``reachable`` — the WAN path between the global router and the site
  is up.  A partition clears *only* this flag: the site's local control
  loop keeps running and locally-originating traffic is still served
  (edge autonomy, the KubeEdge model), but the router cannot see it.

Node names are prefixed with the site name (``"edge-a/node-0"``), so a
completed request's ``node_name`` unambiguously attributes execution to
a site — which is exactly what the federation property tests assert
("no request ever executed on a blacked-out site").

:class:`FederatedCluster` is the ordered collection of sites plus the
WAN latency view; ordering follows the spec everywhere so that every
iteration over sites is deterministic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.cluster.cluster import ClusterConfig, EdgeCluster
from repro.cluster.node import Node
from repro.federation.spec import FederationSpec, SiteSpec
from repro.metrics.collector import MetricsCollector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.policy import ControlPolicy
    from repro.sim.engine import SimulationEngine


class FederatedSite:
    """One edge site: its cluster, metrics, policy, and liveness flags."""

    def __init__(self, engine: "SimulationEngine", spec: SiteSpec, index: int) -> None:
        """Build the site's cluster with site-prefixed node names."""
        self.spec = spec
        self.name = spec.name
        self.index = index
        config = ClusterConfig(
            node_count=spec.node_count,
            cpu_per_node=spec.cpu_per_node,
            memory_per_node_mb=spec.memory_per_node_mb,
            cold_start_latency=spec.cold_start_latency,
        )
        nodes = [
            Node(f"{spec.name}/node-{i}", spec.cpu_per_node, spec.memory_per_node_mb)
            for i in range(spec.node_count)
        ]
        self.cluster = EdgeCluster(engine, config, nodes=nodes)
        self.metrics = MetricsCollector()
        #: Attached by the runner once the policy registry has built it.
        self.policy: Optional["ControlPolicy"] = None
        self.default_service_rates: Dict[str, float] = {}
        #: Hardware liveness — cleared by a site blackout.
        self.alive = True
        #: WAN liveness — cleared by a partition; the site keeps running.
        self.reachable = True

    def attach_policy(self, policy: "ControlPolicy",
                      default_service_rates: Dict[str, float]) -> None:
        """Bind the site's control policy and its service-rate table."""
        self.policy = policy
        self.default_service_rates = dict(default_service_rates)

    # ------------------------------------------------------------------
    # State the routers score on
    # ------------------------------------------------------------------
    @property
    def deliverable(self) -> bool:
        """Whether a dispatched request can actually land here right now."""
        return self.alive and self.reachable

    def queue_depth(self, function_name: str) -> int:
        """Requests queued for ``function_name`` at this site's dispatcher."""
        dispatcher = getattr(self.policy, "dispatcher", None)
        if dispatcher is None:
            return 0
        return dispatcher.queue_length(function_name)

    def warm_count(self, function_name: str) -> int:
        """Warm containers currently serving ``function_name`` here."""
        return len(self.cluster.warm_containers_of(function_name))

    def expected_wait(self, function_name: str) -> float:
        """Deterministic expected-wait estimate for one more request.

        With warm capacity: queue depth plus this request, drained at
        ``warm * service_rate``.  Without: a cold start plus a
        single-container drain — the pessimistic-but-fair score that
        makes the latency-aware router prefer warm remote sites over
        cold local ones once the WAN gap is smaller than a cold start.
        """
        rate = self.default_service_rates.get(function_name, 1.0)
        pending = self.queue_depth(function_name) + 1
        warm = self.warm_count(function_name)
        if warm > 0:
            return pending / (warm * rate)
        return self.spec.cold_start_latency + pending / rate


class FederatedCluster:
    """Ordered sites plus the WAN latency view, under one engine."""

    def __init__(self, engine: "SimulationEngine", spec: FederationSpec) -> None:
        """Instantiate every site in spec order."""
        self.engine = engine
        self.spec = spec
        self.sites: List[FederatedSite] = [
            FederatedSite(engine, site_spec, index)
            for index, site_spec in enumerate(spec.sites)
        ]
        self._by_name: Dict[str, FederatedSite] = {s.name: s for s in self.sites}

    def site(self, name: str) -> FederatedSite:
        """Look up one live site by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"unknown site {name!r}; available: {[s.name for s in self.sites]}"
            ) from None

    def site_names(self) -> List[str]:
        """Site names in federation (spec) order."""
        return [site.name for site in self.sites]

    def latency(self, a: str, b: str) -> float:
        """One-way WAN latency between two sites (0 within a site)."""
        return self.spec.latency(a, b)

    @property
    def configured_cpu(self) -> float:
        """Total CPU the federation is specced with, across all sites."""
        return sum(site.cluster.configured_cpu for site in self.sites)

    @property
    def available_cpu(self) -> float:
        """Total CPU on non-failed nodes across all sites."""
        return sum(site.cluster.total_cpu for site in self.sites)

    def __repr__(self) -> str:
        """Debugging summary of the federation topology."""
        return (f"FederatedCluster(sites={self.site_names()}, "
                f"router={self.spec.router!r})")


__all__ = ["FederatedCluster", "FederatedSite"]
