"""Turns site-level fault specs into engine events: blackouts, partitions.

The federation analogue of :class:`~repro.faults.injector.FaultInjector`,
with site-granular semantics:

* **Blackout** (:class:`~repro.faults.spec.SiteBlackoutSpec`) — every
  node of the site fails at once.  Running requests are failed; queued
  requests are salvaged and **parked at the federation level** (a dead
  site cannot hold a queue).  On rejoin — possibly with *fewer nodes*
  (``rejoin_nodes``) — the parked work is requeued **at the head** of
  the site's shared per-function queues, the site-scoped availability
  record gets its warm targets clamped to the rejoined capacity
  (:meth:`~repro.metrics.availability.AvailabilityTracker.site_rejoined`),
  and the site's control policy is notified per recovered node.
* **Partition** (:class:`~repro.faults.spec.WanPartitionSpec`) — flips
  only the site's ``reachable`` flag.  No capacity is lost, nothing is
  parked: the site's local control loop keeps serving its own arrivals
  (edge autonomy) while the router redirects global traffic around it.
  On heal the flag flips back and the site's metrics — which kept
  accumulating throughout — merge into the federation envelope as if
  nothing happened, byte-deterministically.

Availability accounting is two-level: one
:class:`~repro.metrics.availability.AvailabilityTracker` per site plus
a federation-level tracker integrating
``available_cpu / configured_cpu`` across all sites, both reported in
the results envelope's ``faults`` group.

All events fire at
:data:`~repro.sim.engine.SimulationEngine.PRIORITY_FAULT` from explicit
spec times; nothing here consumes randomness, so fault schedules keep
runs pure functions of ``(scenario, seed)``.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, TYPE_CHECKING

from repro.faults.spec import FaultSpec, SiteBlackoutSpec, WanPartitionSpec
from repro.metrics.availability import AvailabilityTracker
from repro.sim.engine import SimulationEngine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federation.cluster import FederatedCluster, FederatedSite
    from repro.sim.request import Request


class FederationFaultInjector:
    """Arms a :class:`~repro.faults.spec.FaultSpec`'s site-level faults."""

    def __init__(self, engine: SimulationEngine, federation: "FederatedCluster",
                 spec: FaultSpec) -> None:
        """Validate site names and schedule every blackout/partition event."""
        self.engine = engine
        self.federation = federation
        self.spec = spec
        known = set(federation.site_names())
        for fault in (*spec.site_blackouts, *spec.wan_partitions):
            if fault.site not in known:
                raise ValueError(
                    f"fault references unknown site {fault.site!r}; "
                    f"federated sites: {sorted(known)}"
                )
        for blackout in spec.site_blackouts:
            site_spec = federation.site(blackout.site).spec
            if (blackout.rejoin_nodes is not None
                    and blackout.rejoin_nodes > site_spec.node_count):
                raise ValueError(
                    f"site {blackout.site!r}: rejoin_nodes={blackout.rejoin_nodes} "
                    f"exceeds node_count={site_spec.node_count}"
                )
        self.counters: Counter = Counter()
        self.site_availability: Dict[str, AvailabilityTracker] = {
            name: AvailabilityTracker() for name in federation.site_names()
        }
        self.federation_availability = AvailabilityTracker()
        #: Salvaged-but-unserved work of each dark site, in salvage order.
        self._parked: Dict[str, List["Request"]] = {}
        for blackout in spec.site_blackouts:
            engine.call_at(blackout.fail_at, self._blackout, blackout,
                           priority=SimulationEngine.PRIORITY_FAULT)
            if blackout.recover_at is not None:
                engine.call_at(blackout.recover_at, self._rejoin, blackout,
                               priority=SimulationEngine.PRIORITY_FAULT)
        for partition in spec.wan_partitions:
            engine.call_at(partition.start_at, self._partition, partition,
                           priority=SimulationEngine.PRIORITY_FAULT)
            if partition.heal_at is not None:
                engine.call_at(partition.heal_at, self._heal, partition,
                               priority=SimulationEngine.PRIORITY_FAULT)
        for site in federation.sites:
            site.cluster.on_container_warm(
                lambda container, name=site.name: self._on_warm(name))

    # ------------------------------------------------------------------
    # Blackouts
    # ------------------------------------------------------------------
    def _blackout(self, blackout: SiteBlackoutSpec) -> None:
        """Take every node of the site down; park salvaged queued work."""
        site = self.federation.site(blackout.site)
        if not site.alive:
            return
        now = self.engine.now
        warm_targets = {
            name: site.warm_count(name)
            for name in sorted(site.cluster.function_names)
            if site.warm_count(name) > 0
        }
        containers_lost = sum(len(node.containers) for node in site.cluster.nodes)
        site.alive = False
        interrupted: List["Request"] = []
        salvaged: List["Request"] = []
        for node in site.cluster.nodes:
            failed, queued = site.cluster.fail_node(node.name)
            interrupted.extend(failed)
            salvaged.extend(queued)
        self.counters["site_blackouts"] += 1
        self.counters["failed_requests"] += len(interrupted)
        self.counters["parked_requests"] += len(salvaged)
        site.metrics.increment("site_blackouts")
        if interrupted:
            site.metrics.increment("failed_requests", len(interrupted))
        if salvaged:
            site.metrics.increment("parked_requests", len(salvaged))
            self._parked.setdefault(blackout.site, []).extend(salvaged)
        tracker = self.site_availability[blackout.site]
        tracker.record_capacity(now, site.cluster.total_cpu,
                                site.cluster.configured_cpu)
        tracker.open_site_record(blackout.site, now, containers_lost, warm_targets)
        self.federation_availability.record_capacity(
            now, self.federation.available_cpu, self.federation.configured_cpu)

    def _rejoin(self, blackout: SiteBlackoutSpec) -> None:
        """Bring the site back (possibly smaller) and requeue parked work."""
        site = self.federation.site(blackout.site)
        if site.alive:
            return
        now = self.engine.now
        rejoin_count = (blackout.rejoin_nodes if blackout.rejoin_nodes is not None
                        else len(site.cluster.nodes))
        recovered_nodes = site.cluster.nodes[:rejoin_count]
        for node in recovered_nodes:
            site.cluster.recover_node(node.name)
        site.alive = True
        self.counters["site_recoveries"] += 1
        site.metrics.increment("site_recoveries")
        tracker = self.site_availability[blackout.site]
        tracker.record_capacity(now, site.cluster.total_cpu,
                                site.cluster.configured_cpu)
        ratio = (site.cluster.total_cpu / site.cluster.configured_cpu
                 if site.cluster.configured_cpu > 0 else 0.0)
        tracker.site_rejoined(blackout.site, now, ratio)
        self.federation_availability.record_capacity(
            now, self.federation.available_cpu, self.federation.configured_cpu)
        parked = self._parked.pop(blackout.site, [])
        if parked and site.policy is not None:
            self.counters["requeued_requests"] += len(parked)
            site.metrics.increment("requeued_requests", len(parked))
            site.policy._requeue_salvaged(parked)
        for node in recovered_nodes:
            if site.policy is not None:
                site.policy.on_node_recovered(node.name)

    def _on_warm(self, site_name: str) -> None:
        """Close the site's open recovery records once warm targets are met."""
        site = self.federation.site(site_name)
        self.site_availability[site_name].check_site_recovery(
            site_name, self.engine.now, site.warm_count)

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def _partition(self, partition: WanPartitionSpec) -> None:
        """Cut the WAN path to the site; local control keeps running."""
        site = self.federation.site(partition.site)
        if not site.reachable:
            return
        site.reachable = False
        self.counters["wan_partitions"] += 1
        site.metrics.increment("wan_partitions")

    def _heal(self, partition: WanPartitionSpec) -> None:
        """Restore the WAN path; the next probe folds the site back in."""
        site = self.federation.site(partition.site)
        if site.reachable:
            return
        site.reachable = True
        self.counters["wan_heals"] += 1
        site.metrics.increment("wan_heals")

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def parked_count(self) -> int:
        """Requests currently parked for dark sites."""
        return sum(len(requests) for requests in self._parked.values())

    def report(self, duration: float,
               merged_counters: Counter) -> Dict[str, Any]:
        """The ``faults`` group of a federated results envelope.

        ``merged_counters`` is the federation-wide merged metrics
        counter set (completions/failures/drops across every site) from
        which request availability is computed; per-site recovery time
        — the acceptance-criterion number — comes from each site's own
        tracker.
        """
        completions = merged_counters.get("completions", 0)
        failed = merged_counters.get("failed_requests", 0)
        dropped = merged_counters.get("drops", 0)
        attempted = completions + failed + dropped
        sites: Dict[str, Any] = {}
        for name in self.federation.site_names():
            tracker = self.site_availability[name]
            sites[name] = {
                "capacity_availability": tracker.mean_availability(duration),
                **tracker.as_dict(),
            }
        return {
            "capacity_availability":
                self.federation_availability.mean_availability(duration),
            "request_availability":
                completions / attempted if attempted else 1.0,
            "site_blackouts": self.counters.get("site_blackouts", 0),
            "site_recoveries": self.counters.get("site_recoveries", 0),
            "wan_partitions": self.counters.get("wan_partitions", 0),
            "wan_heals": self.counters.get("wan_heals", 0),
            "failed_requests": self.counters.get("failed_requests", 0),
            "parked_requests": self.counters.get("parked_requests", 0),
            "requeued_requests": self.counters.get("requeued_requests", 0),
            "unrecovered_parked": self.parked_count(),
            "sites": sites,
        }


__all__ = ["FederationFaultInjector"]
