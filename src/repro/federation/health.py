"""Deterministic site health checking with exponential probe backoff.

The global router never inspects site liveness directly — it routes on
the :class:`SiteHealthMonitor`'s *belief*, which is updated only by
periodic probes.  That gap is deliberate and load-bearing:

* between a blackout and the next probe, the router still believes the
  site healthy, so dispatches land on a dead site and **bounce** — the
  redirect/hop-bound machinery gets real work;
* while a dead site is down, probes retry with deterministic
  exponential backoff (``base * 2^k``, capped), the "deterministic
  retry/backoff on a dead site" half of the failover contract;
* on recovery, the next scheduled probe flips the belief back and
  traffic returns — no instantaneous global knowledge anywhere.

Everything is scheduled at
:data:`~repro.sim.engine.SimulationEngine.PRIORITY_CONTROL` from fixed
spec knobs, so the probe timeline — and with it every routing decision
— is a pure function of ``(scenario, seed)``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, TYPE_CHECKING

from repro.sim.engine import SimulationEngine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federation.cluster import FederatedCluster


class SiteHealthMonitor:
    """Probe-driven health beliefs for every federated site."""

    def __init__(self, engine: SimulationEngine, federation: "FederatedCluster",
                 probe_interval: float, backoff_base: float,
                 backoff_cap: float) -> None:
        """Start believing every site healthy (probes begin at ``start()``)."""
        self.engine = engine
        self.federation = federation
        self.probe_interval = float(probe_interval)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self._healthy: Dict[str, bool] = {
            site.name: True for site in federation.sites
        }
        self._consecutive_failures: Dict[str, int] = {
            site.name: 0 for site in federation.sites
        }
        #: ``(time, site, healthy)`` belief transitions, in probe order.
        self.transitions: List[Tuple[float, str, bool]] = []
        #: Total probes sent (healthy + failed), for the stats envelope.
        self.probes_sent = 0

    def start(self) -> None:
        """Schedule the first probe of every site, in federation order."""
        for site in self.federation.sites:
            self.engine.call_later(self.probe_interval, self._probe, site.name,
                                   priority=SimulationEngine.PRIORITY_CONTROL)

    def healthy(self, site_name: str) -> bool:
        """The monitor's current *belief* about one site."""
        return self._healthy[site_name]

    def healthy_sites(self) -> List[str]:
        """Believed-healthy site names, in federation order."""
        return [site.name for site in self.federation.sites
                if self._healthy[site.name]]

    def mark_unreachable(self, site_name: str) -> None:
        """Fast-path belief update from a bounced delivery.

        A dispatch that bounces off a dead or partitioned site is as
        good as a failed probe: the runtime reports it here so the
        router stops scoring the site immediately instead of waiting
        for the next scheduled probe.  The probe loop keeps running and
        still owns recovery detection (with backoff).
        """
        if self._healthy[site_name]:
            self._healthy[site_name] = False
            self._consecutive_failures[site_name] = max(
                1, self._consecutive_failures[site_name])
            self.transitions.append((self.engine.now, site_name, False))

    def _probe(self, site_name: str) -> None:
        """Probe one site and reschedule per the healthy/backoff policy."""
        site = self.federation.site(site_name)
        self.probes_sent += 1
        up = site.alive and site.reachable
        if up != self._healthy[site_name]:
            self._healthy[site_name] = up
            self.transitions.append((self.engine.now, site_name, up))
        if up:
            self._consecutive_failures[site_name] = 0
            delay = self.probe_interval
        else:
            failures = self._consecutive_failures[site_name]
            delay = min(self.backoff_cap, self.backoff_base * (2.0 ** failures))
            self._consecutive_failures[site_name] = failures + 1
        self.engine.call_later(delay, self._probe, site_name,
                               priority=SimulationEngine.PRIORITY_CONTROL)


__all__ = ["SiteHealthMonitor"]
