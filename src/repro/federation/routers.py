"""Built-in global-router policies: nearest-site, latency-aware, spillover.

Each router is a pure scoring function over the believed-healthy
candidate set (see :mod:`repro.federation.router` for the contract).
All three are fully deterministic: scores depend only on simulation
state, and ties break toward federation spec order (the order of the
``candidates`` sequence), so runs remain pure functions of
``(scenario, seed)``.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence

from repro.federation.router import GlobalRouterPolicy, register_router


def _reject_unknown_params(allowed: Sequence[str], params: Mapping[str, Any]) -> None:
    """Fail loudly on unrecognised router parameters."""
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        raise ValueError(
            f"unknown router params {unknown}; allowed: {sorted(allowed)}"
        )


def _validate_no_params(params: Mapping[str, Any]) -> None:
    """Validator for routers that take no parameters."""
    _reject_unknown_params((), params)


@register_router(
    "nearest-site",
    "serve at the origin site; on failure, the lowest-WAN-latency healthy site",
    validate_params=_validate_no_params,
)
class NearestSiteRouter(GlobalRouterPolicy):
    """Geographic affinity: minimise WAN transit, ignore load.

    The origin always wins while healthy (its latency to itself is 0);
    when it is down, traffic moves to the closest healthy site.  This
    is the baseline that shows why load-blind failover hurts: the whole
    origin load lands on one neighbour.
    """

    def choose_site(self, request, origin: str,
                    candidates: Sequence[str]) -> Optional[str]:
        """Pick the candidate with the lowest WAN latency from the origin."""
        federation = self.context.federation
        return min(candidates, key=lambda name: federation.latency(origin, name))


@register_router(
    "latency-aware",
    "minimise WAN latency + expected queueing wait (least expected response start)",
    validate_params=_validate_no_params,
)
class LatencyAwareRouter(GlobalRouterPolicy):
    """Least-expected-wait routing: WAN transit plus queueing estimate.

    Scores every healthy site by ``latency(origin, site) +
    expected_wait(site, function)`` where the expected wait accounts
    for queue depth, warm capacity, and cold starts
    (:meth:`~repro.federation.cluster.FederatedSite.expected_wait`).
    Under a blackout this spreads the displaced load across surviving
    sites in proportion to their actual headroom — the graceful
    degradation the fig12 experiment measures.
    """

    def choose_site(self, request, origin: str,
                    candidates: Sequence[str]) -> Optional[str]:
        """Pick the candidate minimising transit + expected queueing wait."""
        federation = self.context.federation
        def score(name: str) -> float:
            site = federation.site(name)
            return (federation.latency(origin, name)
                    + site.expected_wait(request.function_name))
        return min(candidates, key=score)


def _validate_spillover_params(params: Mapping[str, Any]) -> None:
    """Validate the spillover router's parameters eagerly."""
    _reject_unknown_params(("cloud_site", "spill_threshold"), params)
    cloud = params.get("cloud_site")
    if cloud is not None and (not isinstance(cloud, str) or not cloud):
        raise ValueError("router_params['cloud_site'] must be a non-empty site name")
    threshold = params.get("spill_threshold")
    if threshold is not None:
        threshold = float(threshold)
        if threshold <= 0:
            raise ValueError("router_params['spill_threshold'] must be positive")


@register_router(
    "spillover-to-cloud",
    "serve at the origin edge until its expected wait exceeds a threshold, then spill to the cloud site",
    validate_params=_validate_spillover_params,
)
class SpilloverToCloudRouter(GlobalRouterPolicy):
    """Edge-first with cloud overflow (the KubeEdge cloud-core shape).

    Keeps traffic at the origin edge while its expected wait stays
    under ``spill_threshold`` (default 0.5 s); beyond that — or when
    the origin is down — requests spill to the designated cloud site.
    If the cloud itself is unreachable, falls back to the lowest-WAN-
    latency healthy site, so a cloud outage degrades to nearest-site
    behaviour instead of dropping traffic.
    """

    #: Default expected-wait threshold (seconds) before spilling.
    DEFAULT_SPILL_THRESHOLD = 0.5

    def choose_site(self, request, origin: str,
                    candidates: Sequence[str]) -> Optional[str]:
        """Origin while under threshold, else cloud, else nearest healthy."""
        federation = self.context.federation
        threshold = float(self.params.get("spill_threshold",
                                          self.DEFAULT_SPILL_THRESHOLD))
        if origin in candidates:
            site = federation.site(origin)
            if site.expected_wait(request.function_name) <= threshold:
                return origin
        cloud = self.context.spec.cloud_site()
        if cloud is not None and cloud in candidates and cloud != origin:
            return cloud
        remaining = [name for name in candidates if name != cloud] or list(candidates)
        return min(remaining, key=lambda name: federation.latency(origin, name))


__all__ = ["NearestSiteRouter", "LatencyAwareRouter", "SpilloverToCloudRouter"]
