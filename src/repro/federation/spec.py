"""Declarative federation topology: sites, WAN latencies, router choice.

A :class:`FederationSpec` is carried on
:class:`~repro.scenarios.spec.ScenarioSpec` (the ``federation`` field)
and follows the same rules as every other spec layer: frozen
dataclasses, exhaustive validation on construction, and an exact
``from_dict(spec.to_dict())`` JSON round-trip with canonical bytes.

The model
---------
* **Sites** (:class:`SiteSpec`) are heterogeneous edge clusters: each
  carries its own node count/capacity, cold-start latency, and a
  per-site :class:`~repro.core.policy.ControlPolicy` from the policy
  registry.  A site flagged ``cloud=True`` is the designated overflow
  target of the ``spillover-to-cloud`` router.
* **WAN latency** is a symmetric matrix: ``wan_latency`` is the default
  one-way transit time between any two distinct sites, with per-pair
  ``"a->b"`` overrides (looked up symmetrically; intra-site latency is
  zero).
* **Origins** map each function to the site its traffic arrives at
  geographically.  Unmapped functions default to the first site, so a
  flash crowd landing on one region is just an origins map pointing
  every function at that region.
* **Router** names a registered :class:`GlobalRouterPolicy`; its
  parameters are validated eagerly here, exactly like
  ``ControllerSpec.policy``.
* **Probe/backoff knobs** configure the deterministic health monitor:
  sites are probed every ``probe_interval`` seconds while healthy, and
  with exponential backoff (``probe_backoff_base * 2^k`` capped at
  ``probe_backoff_cap``) while down — the "deterministic retry/backoff
  on a dead site" half of the failover contract.  ``max_redirects``
  bounds the redirect chain of any single request.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.core.policy import validate_policy
from repro.federation.router import validate_router


@dataclass(frozen=True)
class SiteSpec:
    """One federated edge (or cloud) site.

    Cluster-shape fields mirror
    :class:`~repro.cluster.cluster.ClusterConfig` inline so the
    federation layer stays independent of the scenario layer.
    """

    name: str
    node_count: int = 3
    cpu_per_node: float = 4.0
    memory_per_node_mb: float = 16 * 1024.0
    cold_start_latency: float = 0.5
    policy: str = "lass"
    policy_params: Mapping[str, Any] = field(default_factory=dict)
    cloud: bool = False

    def __post_init__(self) -> None:
        """Validate the site shape and its control-policy choice."""
        if not self.name:
            raise ValueError("site name must be non-empty")
        if "->" in self.name:
            raise ValueError(f"site name {self.name!r} may not contain '->'")
        if self.node_count < 1:
            raise ValueError(f"site {self.name!r}: node_count must be >= 1")
        if not 0 < self.cpu_per_node < math.inf:
            raise ValueError(f"site {self.name!r}: cpu_per_node must be positive")
        if not 0 < self.memory_per_node_mb < math.inf:
            raise ValueError(f"site {self.name!r}: memory_per_node_mb must be positive")
        if not 0 <= self.cold_start_latency < math.inf:
            raise ValueError(f"site {self.name!r}: cold_start_latency must be >= 0")
        validate_policy(self.policy, self.policy_params)
        object.__setattr__(self, "policy_params", dict(self.policy_params))

    @property
    def configured_cpu(self) -> float:
        """Total CPU the site is specced with."""
        return self.node_count * self.cpu_per_node

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict (JSON-ready) view.

        ``policy_params`` and ``cloud`` are emitted only when
        non-default, matching the controller-spec idiom.
        """
        data: Dict[str, Any] = {
            "name": self.name,
            "node_count": self.node_count,
            "cpu_per_node": self.cpu_per_node,
            "memory_per_node_mb": self.memory_per_node_mb,
            "cold_start_latency": self.cold_start_latency,
            "policy": self.policy,
        }
        if self.policy_params:
            data["policy_params"] = dict(self.policy_params)
        if self.cloud:
            data["cloud"] = True
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SiteSpec":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            name=data["name"],
            node_count=int(data.get("node_count", 3)),
            cpu_per_node=float(data.get("cpu_per_node", 4.0)),
            memory_per_node_mb=float(data.get("memory_per_node_mb", 16 * 1024.0)),
            cold_start_latency=float(data.get("cold_start_latency", 0.5)),
            policy=data.get("policy", "lass"),
            policy_params=dict(data.get("policy_params", {})),
            cloud=bool(data.get("cloud", False)),
        )


@dataclass(frozen=True)
class FederationSpec:
    """The complete federation topology of one scenario.

    Attributes
    ----------
    sites:
        The federated sites, in a fixed order that every deterministic
        iteration (routing tie-breaks, metric merges) follows.
    router:
        Registered :class:`~repro.federation.router.GlobalRouterPolicy`
        name.
    router_params:
        Parameters for the router policy, validated eagerly.
    wan_latency:
        Default one-way WAN transit latency (seconds) between any two
        distinct sites.
    wan_overrides:
        Per-pair latency overrides keyed ``"a->b"``; looked up
        symmetrically (``"b->a"`` falls back to ``"a->b"``).
    origins:
        ``{function_name: site_name}`` — where each function's traffic
        arrives.  Unmapped functions originate at the first site.
    probe_interval:
        Health-probe period for healthy sites (seconds).
    probe_backoff_base:
        First retry delay after a probe finds a site down.
    probe_backoff_cap:
        Upper bound on the exponential probe backoff.
    max_redirects:
        Maximum redirect hops per request before it is dropped.
    """

    sites: Tuple[SiteSpec, ...]
    router: str = "nearest-site"
    router_params: Mapping[str, Any] = field(default_factory=dict)
    wan_latency: float = 0.05
    wan_overrides: Mapping[str, float] = field(default_factory=dict)
    origins: Mapping[str, str] = field(default_factory=dict)
    probe_interval: float = 5.0
    probe_backoff_base: float = 1.0
    probe_backoff_cap: float = 8.0
    max_redirects: int = 3

    def __post_init__(self) -> None:
        """Validate topology, WAN matrix, origins, knobs, and the router."""
        sites = tuple(
            s if isinstance(s, SiteSpec) else SiteSpec.from_dict(s)
            for s in self.sites
        )
        if not sites:
            raise ValueError("a federation needs at least one site")
        names = [site.name for site in sites]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate site names: {names}")
        object.__setattr__(self, "sites", sites)
        known = set(names)
        if not 0.0 <= self.wan_latency < math.inf:
            raise ValueError(f"wan_latency must be finite and >= 0, got {self.wan_latency}")
        overrides: Dict[str, float] = {}
        for key, value in dict(self.wan_overrides).items():
            parts = key.split("->")
            if len(parts) != 2 or not all(parts):
                raise ValueError(f"wan_overrides key {key!r} must look like 'a->b'")
            a, b = parts
            if a not in known or b not in known:
                raise ValueError(f"wan_overrides key {key!r} names an unknown site")
            if a == b:
                raise ValueError(f"wan_overrides key {key!r}: intra-site latency is fixed at 0")
            value = float(value)
            if not 0.0 <= value < math.inf:
                raise ValueError(f"wan_overrides[{key!r}] must be finite and >= 0")
            overrides[key] = value
        object.__setattr__(self, "wan_overrides", overrides)
        origins = dict(self.origins)
        for function, site in origins.items():
            if site not in known:
                raise ValueError(
                    f"origins[{function!r}] = {site!r} is not a federated site"
                )
        object.__setattr__(self, "origins", origins)
        if not 0.0 < self.probe_interval < math.inf:
            raise ValueError("probe_interval must be positive")
        if not 0.0 < self.probe_backoff_base < math.inf:
            raise ValueError("probe_backoff_base must be positive")
        if not self.probe_backoff_base <= self.probe_backoff_cap < math.inf:
            raise ValueError("probe_backoff_cap must be >= probe_backoff_base")
        if not isinstance(self.max_redirects, int) or self.max_redirects < 0:
            raise ValueError(f"max_redirects must be a non-negative int, got {self.max_redirects}")
        router_params = dict(self.router_params)
        object.__setattr__(self, "router_params", router_params)
        validate_router(self.router, router_params)
        if self.router == "spillover-to-cloud":
            cloud = router_params.get("cloud_site")
            if cloud is not None:
                if cloud not in known:
                    raise ValueError(
                        f"router_params['cloud_site'] = {cloud!r} is not a federated site"
                    )
            elif not any(site.cloud for site in sites):
                raise ValueError(
                    "spillover-to-cloud needs a site with cloud=True "
                    "(or router_params['cloud_site'])"
                )

    # ------------------------------------------------------------------
    # Topology queries
    # ------------------------------------------------------------------
    def site_names(self) -> Tuple[str, ...]:
        """Site names in federation order."""
        return tuple(site.name for site in self.sites)

    def site(self, name: str) -> SiteSpec:
        """Look up one site spec by name."""
        for site in self.sites:
            if site.name == name:
                return site
        raise KeyError(f"unknown site {name!r}; available: {list(self.site_names())}")

    def latency(self, a: str, b: str) -> float:
        """One-way WAN latency between sites ``a`` and ``b`` (0 if same)."""
        if a == b:
            return 0.0
        override = self.wan_overrides.get(f"{a}->{b}")
        if override is None:
            override = self.wan_overrides.get(f"{b}->{a}")
        return self.wan_latency if override is None else override

    def origin_of(self, function_name: str) -> str:
        """The site a function's traffic arrives at (first site by default)."""
        return self.origins.get(function_name, self.sites[0].name)

    def cloud_site(self) -> Optional[str]:
        """The designated cloud site, if any (router param wins over flag)."""
        named = self.router_params.get("cloud_site")
        if named is not None:
            return named
        for site in self.sites:
            if site.cloud:
                return site.name
        return None

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict (JSON-ready) view.

        Optional mappings are emitted only when non-empty, keeping the
        canonical bytes of minimal federations minimal.
        """
        data: Dict[str, Any] = {
            "sites": [site.to_dict() for site in self.sites],
            "router": self.router,
            "wan_latency": self.wan_latency,
            "probe_interval": self.probe_interval,
            "probe_backoff_base": self.probe_backoff_base,
            "probe_backoff_cap": self.probe_backoff_cap,
            "max_redirects": self.max_redirects,
        }
        if self.router_params:
            data["router_params"] = dict(self.router_params)
        if self.wan_overrides:
            data["wan_overrides"] = dict(self.wan_overrides)
        if self.origins:
            data["origins"] = dict(self.origins)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FederationSpec":
        """Rebuild (and re-validate) a federation from :meth:`to_dict` output."""
        return cls(
            sites=tuple(SiteSpec.from_dict(s) for s in data["sites"]),
            router=data.get("router", "nearest-site"),
            router_params=dict(data.get("router_params", {})),
            wan_latency=float(data.get("wan_latency", 0.05)),
            wan_overrides=dict(data.get("wan_overrides", {})),
            origins=dict(data.get("origins", {})),
            probe_interval=float(data.get("probe_interval", 5.0)),
            probe_backoff_base=float(data.get("probe_backoff_base", 1.0)),
            probe_backoff_cap=float(data.get("probe_backoff_cap", 8.0)),
            max_redirects=int(data.get("max_redirects", 3)),
        )


__all__ = ["SiteSpec", "FederationSpec"]
