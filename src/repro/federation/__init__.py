"""Geo-distributed federation: N edge sites under one global router.

This package layers a federation on top of the single-cluster
simulation stack:

* :mod:`repro.federation.spec` — declarative topology
  (:class:`SiteSpec`, :class:`FederationSpec`), carried as
  ``ScenarioSpec.federation``;
* :mod:`repro.federation.router` — the :class:`GlobalRouterPolicy`
  contract and registry;
* :mod:`repro.federation.routers` — the built-ins (``nearest-site``,
  ``latency-aware``, ``spillover-to-cloud``);
* :mod:`repro.federation.cluster` — the live
  :class:`FederatedCluster` / :class:`FederatedSite` runtime;
* :mod:`repro.federation.health` — deterministic probe-based health
  beliefs with exponential retry backoff;
* :mod:`repro.federation.injector` — site blackouts and WAN partitions;
* :mod:`repro.federation.runner` — the
  :class:`FederatedSimulationRunner` gluing it all together.

Everything follows the repo's determinism contract: no new RNG streams,
spec-order iteration everywhere, runs are pure functions of
``(scenario, seed)`` and sweeps are byte-identical across worker counts.
"""

from repro.federation.cluster import FederatedCluster, FederatedSite
from repro.federation.health import SiteHealthMonitor
from repro.federation.injector import FederationFaultInjector
from repro.federation.router import (
    GlobalRouterPolicy,
    RouterContext,
    RouterDescriptor,
    build_router,
    describe_routers,
    get_router,
    register_router,
    router_names,
    validate_router,
)
from repro.federation.runner import (
    FederatedSimulationResult,
    FederatedSimulationRunner,
    RouterStats,
)
from repro.federation.spec import FederationSpec, SiteSpec

__all__ = [
    "FederatedCluster",
    "FederatedSite",
    "FederatedSimulationResult",
    "FederatedSimulationRunner",
    "FederationFaultInjector",
    "FederationSpec",
    "GlobalRouterPolicy",
    "RouterContext",
    "RouterDescriptor",
    "RouterStats",
    "SiteHealthMonitor",
    "SiteSpec",
    "build_router",
    "describe_routers",
    "get_router",
    "register_router",
    "router_names",
    "validate_router",
]
