"""The global-router contract and its policy registry.

A :class:`GlobalRouterPolicy` is the federation-level analogue of the
per-site :class:`~repro.core.policy.ControlPolicy`: a pluggable,
registered strategy that decides *which site* serves each request,
while the site's own control policy decides *which container* runs it.

The division of labour with the runtime
(:class:`~repro.federation.runner.FederatedSimulationRunner`) is strict:

* the **runtime** owns failover mechanics — health filtering (a router
  never sees a site the health monitor believes is down), WAN transit
  delays, bounced deliveries, the redirect hop bound, and drop
  accounting;
* the **router** owns only the *scoring decision*: given an origin and
  the currently-believed-healthy candidate sites, pick one (or ``None``
  to drop).

That split keeps every router pure and deterministic — no engine
access, no RNG, no retry bookkeeping — so adding a new router is a
single ``choose_site`` method plus a :func:`register_router` line.

Registry semantics are identical to the control-policy registry
(:mod:`repro.core.policy`): registration by decorator, lazy built-in
loading, eager parameter validation at spec-construction time.
"""

from __future__ import annotations

import abc
import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.federation.cluster import FederatedCluster
    from repro.federation.spec import FederationSpec
    from repro.sim.engine import SimulationEngine
    from repro.sim.request import Request


@dataclass
class RouterContext:
    """Everything a router factory may capture when building a policy.

    Attributes
    ----------
    engine:
        The simulation engine (for reading the clock; routers must not
        schedule events).
    federation:
        The live :class:`~repro.federation.cluster.FederatedCluster` —
        site runtime state, WAN latencies, capacity aggregates.
    spec:
        The immutable :class:`~repro.federation.spec.FederationSpec`
        the federation was built from.
    """

    engine: "SimulationEngine"
    federation: "FederatedCluster"
    spec: "FederationSpec"


class GlobalRouterPolicy(abc.ABC):
    """One global routing strategy over a federation of edge sites.

    Subclasses implement :meth:`choose_site`.  The runtime guarantees
    ``candidates`` is non-empty, ordered as in the federation spec, and
    contains only sites the health monitor currently believes healthy;
    sites already bounced on this request's redirect chain are excluded.
    """

    #: Registered name (set by :func:`register_router` for built-ins).
    name: str = ""

    def __init__(self, context: RouterContext,
                 params: Optional[Mapping[str, Any]] = None) -> None:
        """Capture the shared routing context and the policy parameters."""
        self.context = context
        self.params: Dict[str, Any] = dict(params or {})

    def start(self) -> None:
        """Hook called once before the simulation starts (default no-op)."""

    @abc.abstractmethod
    def choose_site(self, request: "Request", origin: str,
                    candidates: Sequence[str]) -> Optional[str]:
        """Pick the site that should serve ``request``.

        Parameters
        ----------
        request:
            The arriving (or redirected) request.
        origin:
            Name of the site the request's function is homed at — the
            site the request "arrives" at geographically, regardless of
            that site's health.
        candidates:
            Believed-healthy sites, in federation spec order, minus any
            the request already bounced off.  Never empty.

        Returns the chosen site name, or ``None`` to drop the request
        (no acceptable site).
        """


@dataclass(frozen=True)
class RouterDescriptor:
    """Registry entry for one global-router policy.

    Attributes
    ----------
    name:
        Registry key, as referenced by ``FederationSpec.router``.
    summary:
        One-line human description (CLI ``routers`` verb, docs).
    factory:
        Callable ``(context, params) -> GlobalRouterPolicy``.
    validate_params:
        Optional eager validator for ``router_params``; raises
        ``ValueError`` on bad parameters at spec-construction time.
    """

    name: str
    summary: str
    factory: Callable[[RouterContext, Dict[str, Any]], GlobalRouterPolicy]
    validate_params: Optional[Callable[[Mapping[str, Any]], None]] = None


_REGISTRY: Dict[str, RouterDescriptor] = {}
_BUILTIN_MODULES = ("repro.federation.routers",)
_builtins_loaded = False


def _ensure_builtins() -> None:
    """Import the built-in router modules exactly once (lazily)."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)
    _builtins_loaded = True


def register_router(name: str, summary: str,
                    validate_params: Optional[Callable[[Mapping[str, Any]], None]] = None):
    """Class decorator registering a :class:`GlobalRouterPolicy`.

    Usage::

        @register_router("nearest-site", "lowest WAN latency from origin")
        class NearestSiteRouter(GlobalRouterPolicy):
            ...

    Re-registering a name is an error unless it is the exact same class
    (idempotent under re-import).
    """
    def decorator(cls):
        existing = _REGISTRY.get(name)
        if existing is not None and existing.factory is not cls:
            raise ValueError(f"router {name!r} is already registered")
        cls.name = name
        _REGISTRY[name] = RouterDescriptor(
            name=name, summary=summary, factory=cls,
            validate_params=validate_params,
        )
        return cls
    return decorator


def get_router(name: str) -> RouterDescriptor:
    """Look up a router descriptor by registry name."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown router policy {name!r}; available: {router_names()}"
        ) from None


def router_names() -> List[str]:
    """Sorted names of every registered router policy."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def describe_routers() -> Dict[str, str]:
    """``{name: summary}`` for every registered router policy."""
    _ensure_builtins()
    return {name: _REGISTRY[name].summary for name in sorted(_REGISTRY)}


def validate_router(name: str, params: Mapping[str, Any]) -> None:
    """Eagerly validate a router name and its parameters.

    Called from ``FederationSpec.__post_init__`` so a bad router
    configuration fails at spec-construction time, not mid-sweep.
    """
    try:
        descriptor = get_router(name)
    except KeyError as exc:
        raise ValueError(str(exc)) from None
    if descriptor.validate_params is not None:
        descriptor.validate_params(params)


def build_router(name: str, context: RouterContext,
                 params: Optional[Mapping[str, Any]] = None) -> GlobalRouterPolicy:
    """Instantiate the named router policy against a live federation."""
    descriptor = get_router(name)
    return descriptor.factory(context, dict(params or {}))


__all__ = [
    "GlobalRouterPolicy",
    "RouterContext",
    "RouterDescriptor",
    "register_router",
    "get_router",
    "router_names",
    "describe_routers",
    "validate_router",
    "build_router",
]
