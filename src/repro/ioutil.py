"""Crash-safe filesystem helpers shared by every artifact writer.

Two durability primitives back the execution layer's robustness story:

:func:`atomic_write_text`
    Whole-file replacement via write-temp-then-``os.replace``.  Readers
    either see the previous complete file or the new complete file —
    never a truncated hybrid — because ``os.replace`` is atomic on POSIX
    (and on Windows for same-volume renames).  The temp file is fsync'd
    before the rename so a crash immediately after the replace cannot
    surface a zero-length file.  Every results-envelope and BENCH JSON
    write in the repository goes through this helper.

:func:`fsync_append_line`
    Durable line-append for journals: write one ``\\n``-terminated line,
    flush, ``os.fsync``.  A crash mid-write can tear at most the final
    line, which journal readers tolerate (see
    :mod:`repro.scenarios.journal`).
"""

from __future__ import annotations

import os
import tempfile
from typing import IO


def atomic_write_text(path: str, text: str, encoding: str = "utf-8") -> None:
    """Atomically write ``text`` to ``path`` (write temp + fsync + replace).

    The temporary file is created in ``path``'s directory so the final
    ``os.replace`` never crosses a filesystem boundary.  On any failure
    the temp file is removed and the original ``path`` (if it existed)
    is left untouched.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise


def fsync_append_line(handle: IO[str], line: str) -> None:
    """Append one line to an open text handle durably (write, flush, fsync).

    ``line`` must not contain embedded newlines; the terminating ``\\n``
    is added here so callers cannot forget it.
    """
    if "\n" in line:
        raise ValueError("journal lines must not contain embedded newlines")
    handle.write(line + "\n")
    handle.flush()
    os.fsync(handle.fileno())


__all__ = ["atomic_write_text", "fsync_append_line"]
