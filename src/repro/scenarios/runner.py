"""Scenario execution: turn a :class:`ScenarioSpec` into unified results.

:func:`run_scenario` is the single entry point every scenario kind goes
through — the experiment renderers, the ``python -m repro scenario`` CLI
verb, and the parallel :class:`~repro.scenarios.sweep.SweepRunner` all
call it.  It returns a :class:`ScenarioOutcome` holding both the
JSON-safe results dict (``data``, the unified results schema) and, for
in-process simulation runs, the rich :class:`~repro.simulation.SimulationResult`
(``sim``) for analyses that want the live objects.

Results schema (``repro/scenario-result@1``)
--------------------------------------------
::

    {
      "schema": "repro/scenario-result@1",
      "scenario": { ...the spec echo (ScenarioSpec.to_dict())... },
      "metrics": {
        "functions": {name: {"waiting": {...}, "slo": {...},
                             "generated": int}},
        "cluster": {"mean_utilization": float},
        "counters": {...},
        "timeline": {name: [[t, containers, cpu, desired, rate], ...]},
        "guaranteed_cpu": {name: vcpus}
      },
      "allocation": {...}      # kind="fixed" only: resolved container plan
      "rows": [...]            # table-like kinds (sizing/deflation/catalogue)
      "openwhisk": {...}       # openwhisk policy (or the kind alias) only:
                               # invoker failures (ControlPolicy.results_extra)
      "faults": {...}          # only when the spec carries a FaultSpec:
                               # availability, failed/requeued requests,
                               # per-failure recovery times
      "federation": {...}      # federated scenarios only: router stats,
                               # health-belief transitions, per-site
                               # summaries (see repro.federation.runner)
      "replay": {...}          # kind="trace_replay" only: one shard's
                               # integer counters + reservoir sketch
                               # (see repro.scenarios.trace_shard)
    }

Only the metric groups named in ``spec.metrics`` are populated.  The
dict contains no wall-clock timestamps or host information, so a given
spec produces byte-identical ``canonical_json`` output on every run —
the property the sweep determinism guarantee builds on.  (The one
exception is ``kind="sizing_benchmark"``, whose *point* is wall-clock
timing; its ``compute_seconds`` values vary between runs.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.scenarios.spec import ScenarioSpec

#: Schema identifier embedded in every results envelope.
RESULT_SCHEMA = "repro/scenario-result@1"


@dataclass
class ScenarioOutcome:
    """What :func:`run_scenario` returns.

    ``data`` is the JSON-safe unified results dict; ``sim`` is the live
    :class:`~repro.simulation.SimulationResult` when the scenario ran a
    simulation in this process (``None`` for analytic kinds and for
    results shipped across a worker-pool boundary).
    """

    spec: ScenarioSpec
    data: Dict[str, Any]
    sim: Optional[Any] = None


def run_scenario(spec: ScenarioSpec) -> ScenarioOutcome:
    """Execute one scenario and return its outcome.

    Dispatches on ``spec.kind``; see the module docstring for the shape
    of the returned ``data``.
    """
    executor = _EXECUTORS.get(spec.kind)
    if executor is None:
        raise ValueError(f"no executor for scenario kind {spec.kind!r}")
    return executor(spec)


# ----------------------------------------------------------------------
# Metric collection shared by the simulation kinds
# ----------------------------------------------------------------------
def _collect_metrics(spec: ScenarioSpec, result, controller=None) -> Dict[str, Any]:
    """Build the ``metrics`` group of the results envelope from a finished run."""
    metrics: Dict[str, Any] = {}
    names = [w.function for w in spec.workloads]
    wanted = set(spec.metrics)

    functions: Dict[str, Dict[str, Any]] = {name: {} for name in names}
    if "waiting" in wanted:
        for name in names:
            functions[name]["waiting"] = result.waiting_summary(name, warmup=spec.warmup).as_dict()
    if "slo" in wanted:
        deadlines = {w.function: w.slo_deadline for w in spec.workloads
                     if w.slo_deadline is not None}
        if deadlines:
            reports = result.slo(deadlines, warmup=spec.warmup)
            for name, report in reports.items():
                functions[name]["slo"] = report.as_dict()
    if "generated" in wanted:
        for name in names:
            functions[name]["generated"] = result.generated_requests.get(name, 0)
    if any(functions.values()):
        metrics["functions"] = functions

    if "utilization" in wanted:
        metrics["cluster"] = {"mean_utilization": result.mean_utilization()}
    if "counters" in wanted:
        metrics["counters"] = dict(result.metrics.counters)
    if "timeline" in wanted:
        timeline: Dict[str, List[List[Any]]] = {}
        for name in names:
            series = result.metrics.timeline.series(name)
            timeline[name] = [
                [p.time, p.containers, p.cpu, p.desired_containers, p.arrival_rate]
                for p in series
            ]
        metrics["timeline"] = timeline
    if ("guaranteed_cpu" in wanted and controller is not None
            and hasattr(controller, "guaranteed_cpu_shares")):
        # only fair-share policies (LaSS) expose guaranteed shares
        metrics["guaranteed_cpu"] = dict(controller.guaranteed_cpu_shares())
    return metrics


def _envelope(spec: ScenarioSpec, **extra: Any) -> Dict[str, Any]:
    """The common results wrapper: schema tag plus the spec echo."""
    data: Dict[str, Any] = {"schema": RESULT_SCHEMA, "scenario": spec.to_dict()}
    data.update(extra)
    return data


# ----------------------------------------------------------------------
# kind = "simulate"
# ----------------------------------------------------------------------
def _run_simulate(spec: ScenarioSpec) -> ScenarioOutcome:
    """Full controller-driven run through :class:`SimulationRunner`.

    The control plane is whatever registered policy the spec names
    (``spec.controller.policy``, default LaSS); every policy sees the
    same workloads, cluster, seed, and fault schedule.  Policies may
    contribute an extra results group (``ControlPolicy.results_extra``)
    — the OpenWhisk policy's invoker-failure report arrives this way.
    """
    from repro.core.allocation.hierarchy import SchedulingTree
    from repro.simulation import SimulationRunner

    if spec.federation is not None:
        return _run_federated(spec)
    bindings = [w.build() for w in spec.workloads]
    tree = None
    if spec.user_weights is not None:
        assignment = {w.function: w.user for w in spec.workloads}
        tree = SchedulingTree.two_level(dict(spec.user_weights), assignment)
    runner = SimulationRunner(
        workloads=bindings,
        cluster_config=spec.cluster.build() if spec.cluster is not None else None,
        controller_config=spec.controller.build(),
        scheduling_tree=tree,
        seed=spec.seed,
        warm_start_containers=dict(spec.warm_start) or None,
        fault_spec=spec.faults,
        policy=spec.controller.policy,
        policy_params=dict(spec.controller.policy_params),
        data_plane=spec.data_plane,
    )
    if "guaranteed_cpu" in spec.metrics and not hasattr(runner.policy, "guaranteed_cpu_shares"):
        # fail fast instead of silently omitting the requested group
        raise ValueError(
            f"metric 'guaranteed_cpu' requires a fair-share policy; "
            f"policy {spec.controller.policy!r} does not expose guaranteed CPU shares"
        )
    result = runner.run(duration=spec.duration, extra_drain=spec.extra_drain)
    data = _envelope(spec, metrics=_collect_metrics(spec, result, runner.policy))
    extra = runner.policy.results_extra()
    if extra is not None:
        group, payload = extra
        data[group] = payload
    if runner.fault_injector is not None:
        # present exactly when the (normalised) spec carries faults, so a
        # faults-disabled run stays byte-identical to the healthy scenario
        data["faults"] = runner.fault_injector.report(spec.duration)
    return ScenarioOutcome(spec=spec, data=data, sim=result)


# ----------------------------------------------------------------------
# kind = "simulate" with a federation spec
# ----------------------------------------------------------------------
def _run_federated(spec: ScenarioSpec) -> ScenarioOutcome:
    """Federated run: N sites under a global router.

    Rides the same envelope machinery as the single-cluster executor —
    ``metrics`` comes from the merged per-site collectors — plus a
    ``federation`` group (router stats, health-belief transitions,
    per-site summaries) and, when site faults are armed, a ``faults``
    group with per-site + federation-level availability and recovery
    times.
    """
    from repro.federation.runner import FederatedSimulationRunner

    bindings = [w.build() for w in spec.workloads]
    runner = FederatedSimulationRunner(
        workloads=bindings,
        federation=spec.federation,
        controller_config=spec.controller.build(),
        seed=spec.seed,
        warm_start_containers=dict(spec.warm_start) or None,
        fault_spec=spec.faults,
    )
    result = runner.run(duration=spec.duration, extra_drain=spec.extra_drain)
    data = _envelope(
        spec,
        metrics=_collect_metrics(spec, result),
        federation=runner.federation_report(),
    )
    if runner.fault_injector is not None:
        data["faults"] = runner.fault_injector.report(
            spec.duration, result.metrics.counters)
    return ScenarioOutcome(spec=spec, data=data, sim=result)


# ----------------------------------------------------------------------
# kind = "fixed"
# ----------------------------------------------------------------------
def _resolve_allocation(spec: ScenarioSpec) -> Dict[str, Any]:
    """Resolve the container count and deflation plan for a fixed scenario.

    Explicit counts pass through; model-based sizing replicates the
    Figure 3 (M/M/c) and Figure 4 (heterogeneous, Alves et al.) atoms.
    """
    workload = spec.workloads[0]
    allocation = spec.allocation
    assert allocation is not None  # enforced by ScenarioSpec validation
    if allocation.containers is not None:
        return {
            "containers": allocation.containers,
            "deflation_plan": list(allocation.deflation_plan or ()) or None,
        }

    from repro.core.queueing.sizing import (
        required_containers,
        required_containers_heterogeneous,
    )

    sizing = dict(allocation.sizing or {})
    schedule = workload.schedule
    if schedule.kind != "static":
        raise ValueError("model-based sizing requires a static-rate schedule")
    lam = float(schedule.params["rate"])
    profile = workload.build_profile()
    mu = profile.service_rate
    if workload.slo_deadline is None:
        raise ValueError("model-based sizing requires an SLO deadline")
    percentile = float(sizing.get("percentile", 0.95))
    base = required_containers(lam=lam, mu=mu, wait_budget=workload.slo_deadline,
                               percentile=percentile)
    if sizing["model"] == "mmc":
        return {
            "containers": base.containers,
            "deflation_plan": list(allocation.deflation_plan or ()) or None,
            "achieved_probability": base.achieved_probability,
        }
    # heterogeneous: deflate a proportion of the base allocation, then add
    # standard containers until the mixed-speed model meets the SLO again
    proportion = float(sizing["deflated_proportion"])
    fraction = float(sizing["deflation_fraction"])
    deflated_speed = profile.speed_curve()(1.0 - fraction)
    n_deflated = min(int(round(proportion * base.containers)), base.containers)
    existing_mus = [mu * deflated_speed] * n_deflated + [mu] * (base.containers - n_deflated)
    total = required_containers_heterogeneous(
        lam=lam,
        existing_mus=existing_mus,
        standard_mu=mu,
        wait_budget=workload.slo_deadline,
        percentile=percentile,
    )
    plan = [1.0 - fraction] * n_deflated + [1.0] * (total.containers - n_deflated)
    return {
        "containers": total.containers,
        "deflation_plan": plan,
        "homogeneous_containers": base.containers,
        "deflated_containers": n_deflated,
    }


def _run_fixed(spec: ScenarioSpec) -> ScenarioOutcome:
    """Single function against a fixed allocation (Figures 3/4 atom)."""
    from repro.simulation import run_fixed_allocation

    workload = spec.workloads[0]
    resolved = _resolve_allocation(spec)
    result = run_fixed_allocation(
        binding=workload.build(),
        containers=resolved["containers"],
        duration=spec.duration,
        cluster_config=spec.cluster.build() if spec.cluster is not None else None,
        seed=spec.seed,
        deflation_plan=resolved.get("deflation_plan"),
        extra_drain=spec.extra_drain,
        data_plane=spec.data_plane,
    )
    data = _envelope(
        spec,
        metrics=_collect_metrics(spec, result),
        allocation=resolved,
    )
    return ScenarioOutcome(spec=spec, data=data, sim=result)


# ----------------------------------------------------------------------
# kind = "openwhisk"
# ----------------------------------------------------------------------
def _run_openwhisk(spec: ScenarioSpec) -> ScenarioOutcome:
    """Alias executor: fold ``kind="openwhisk"`` into simulate + policy.

    The alias is kept for backwards compatibility; it rewrites the spec
    to ``kind="simulate"`` with ``controller.policy="openwhisk"`` and
    runs the unified executor.  Two normalisations keep the output
    byte-identical to the historical bespoke harness: metrics are
    reduced to the counters group (all the old harness ever reported)
    and ``warm_start`` is cleared (the old harness ignored it).  The
    results envelope echoes the *original* alias spec.
    """
    import dataclasses

    folded = dataclasses.replace(
        spec,
        kind="simulate",
        controller=dataclasses.replace(spec.controller, policy="openwhisk"),
        metrics=("counters",),
        warm_start={},
    )
    outcome = _run_simulate(folded)
    data = dict(outcome.data)
    data["scenario"] = spec.to_dict()
    return ScenarioOutcome(spec=spec, data=data, sim=outcome.sim)


# ----------------------------------------------------------------------
# kind = "sizing_benchmark"
# ----------------------------------------------------------------------
def _workload_for_containers(containers: int, mu: float, wait_budget: float,
                             percentile: float) -> float:
    """Find an arrival rate for which the model picks ≈ ``containers`` containers.

    Coarse inversion of the sizing function: start from λ ≈ 0.9·c·μ and
    apply a few multiplicative correction steps.
    """
    from repro.core.queueing.sizing import required_containers_fast

    lam = 0.9 * containers * mu
    for _ in range(8):
        got = required_containers_fast(lam, mu, wait_budget, percentile).containers
        if got == containers:
            return lam
        lam *= containers / max(1, got)
    return lam


def _run_sizing_benchmark(spec: ScenarioSpec) -> ScenarioOutcome:
    """Time the sizing implementations against each other (Figure 5).

    ``spec.params`` carries the grid: ``container_counts``, ``mu``,
    ``slo_deadline``, ``percentile``, ``spikes``, ``implementations``,
    and ``repeats``.  The reported ``compute_seconds`` are wall-clock
    and therefore *not* deterministic — this is the one scenario kind
    whose results are inherently host-dependent.
    """
    from repro.core.queueing.sizing import (
        required_containers,
        required_containers_fast,
        required_containers_naive,
    )

    p = dict(spec.params)
    impl_map: Dict[str, Callable] = {
        "naive": required_containers_naive,
        "reference": required_containers,
        "fast": required_containers_fast,
    }
    spike_map = {"10%": 1.1, "2x": 2.0}
    mu = float(p.get("mu", 10.0))
    wait_budget = float(p.get("slo_deadline", 0.1))
    percentile = float(p.get("percentile", 0.99))
    repeats = int(p.get("repeats", 3))
    if repeats < 1:
        raise ValueError("sizing_benchmark params.repeats must be >= 1")
    rows: List[Dict[str, Any]] = []
    for count in p.get("container_counts", (10, 50, 100, 250, 500, 750, 1000)):
        count = int(count)
        base_lam = _workload_for_containers(count, mu, wait_budget, percentile)
        for spike in p.get("spikes", ("10%", "2x")):
            spiked_lam = base_lam * spike_map[spike]
            for name in p.get("implementations", ("naive", "fast")):
                func = impl_map[name]
                best = float("inf")
                result = None
                for _ in range(repeats):
                    start = time.perf_counter()
                    result = func(
                        lam=spiked_lam,
                        mu=mu,
                        wait_budget=wait_budget,
                        percentile=percentile,
                        current_containers=count,
                    )
                    best = min(best, time.perf_counter() - start)
                rows.append({
                    "implementation": name,
                    "spike": spike,
                    "current_containers": count,
                    "new_containers": result.containers,
                    "compute_seconds": best,
                })
    return ScenarioOutcome(spec=spec, data=_envelope(spec, rows=rows), sim=None)


# ----------------------------------------------------------------------
# kind = "deflation_curve"
# ----------------------------------------------------------------------
def _measured_service_time(profile, ratio: float, duration: float, seed: int,
                           extra_drain: float = 5.0) -> float:
    """Empirical mean service time at one deflation level (one container, light load)."""
    from repro.simulation import run_fixed_allocation
    from repro.workloads.generator import WorkloadBinding
    from repro.workloads.schedules import StaticRate

    # light load: well below one container's capacity so queueing never interferes
    lam = 0.3 * profile.service_rate
    binding = WorkloadBinding(
        profile=profile, schedule=StaticRate(lam, duration=duration), slo_deadline=None
    )
    result = run_fixed_allocation(
        binding=binding,
        containers=1,
        duration=duration,
        seed=seed,
        deflation_plan=[1.0 - ratio],
        extra_drain=extra_drain,
    )
    completed = result.metrics.completed_requests(profile.name)
    times = [r.service_time for r in completed if r.service_time is not None]
    if not times:
        return float("nan")
    return sum(times) / len(times)


def _run_deflation_curve(spec: ScenarioSpec) -> ScenarioOutcome:
    """Service time vs. CPU deflation for a set of functions (Figure 7).

    ``spec.params``: ``functions`` (names), ``deflation_ratios``, and
    ``measured`` — when true each (function, ratio) pair is actually run
    through the simulator instead of evaluating the profile curve.
    """
    from repro.workloads.functions import get_function

    p = dict(spec.params)
    measured = bool(p.get("measured", False))
    rows: List[Dict[str, Any]] = []
    for name in p.get("functions", ()):
        profile = get_function(name)
        baseline = profile.mean_service_time
        for ratio in p.get("deflation_ratios", (0.0,)):
            ratio = float(ratio)
            if measured:
                service_time = _measured_service_time(profile, ratio, spec.duration,
                                                      spec.seed, spec.extra_drain)
            else:
                service_time = profile.service_time_at(1.0 - ratio)
            rows.append({
                "function": name,
                "is_dnn": profile.is_dnn,
                "deflation_ratio": ratio,
                "service_time": service_time,
                "relative_slowdown": service_time / baseline,
            })
    return ScenarioOutcome(spec=spec, data=_envelope(spec, rows=rows), sim=None)


# ----------------------------------------------------------------------
# kind = "trace_replay"
# ----------------------------------------------------------------------
def _run_trace_replay(spec: ScenarioSpec) -> ScenarioOutcome:
    """One shard of the streaming trace replay (lazy import of the kernel)."""
    from repro.scenarios.trace_shard import run_trace_replay

    return run_trace_replay(spec)


# ----------------------------------------------------------------------
# kind = "catalogue"
# ----------------------------------------------------------------------
def _run_catalogue(spec: ScenarioSpec) -> ScenarioOutcome:
    """Dump the Table 1 function catalogue as rows."""
    from repro.workloads.functions import table1_rows

    rows = [
        {"function": name, "language": language, "standard_size": size}
        for name, language, size in table1_rows()
    ]
    return ScenarioOutcome(spec=spec, data=_envelope(spec, rows=rows), sim=None)


_EXECUTORS: Dict[str, Callable[[ScenarioSpec], ScenarioOutcome]] = {
    "simulate": _run_simulate,
    "fixed": _run_fixed,
    "openwhisk": _run_openwhisk,
    "sizing_benchmark": _run_sizing_benchmark,
    "deflation_curve": _run_deflation_curve,
    "catalogue": _run_catalogue,
    "trace_replay": _run_trace_replay,
}


__all__ = ["RESULT_SCHEMA", "ScenarioOutcome", "run_scenario"]
