"""Self-chaos: an env-gated fault hook inside the sweep worker entry point.

PR 4 gave the *simulated* cluster a fault injector; this module aims the
same idea at the harness itself.  When the ``REPRO_CHAOS`` environment
variable holds a JSON :class:`ChaosConfig`, every shard attempt first
passes through :func:`maybe_inject`, which can

* **kill** the worker process with ``SIGKILL`` (exercising the
  executor's dead-worker detection and respawn),
* **poison** the attempt with a deterministic exception (exercising
  retry, backoff, and graceful degradation), or
* **delay** the attempt by a fixed wall-clock sleep (exercising
  per-shard timeouts and mid-sweep interruption windows).

Determinism
-----------
Chaos draws come from SHA-256 of ``(seed, fault kind, spec hash,
attempt)`` — no global RNG state, no wall clock — so a chaos run is
exactly reproducible: the same config faults the same shards on the
same attempts regardless of worker count or scheduling.  By default
faults only fire on attempts ``<= max_attempt`` (1), so a retried shard
is guaranteed to recover; raise ``max_attempt`` to model permanently
broken shards and exercise the degradation path instead.

The hook is inert (a dict lookup miss) unless ``REPRO_CHAOS`` is set,
so production sweeps pay nothing for it.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from dataclasses import dataclass
from typing import Any, Mapping, Optional

#: Environment variable carrying the JSON chaos configuration.
CHAOS_ENV = "REPRO_CHAOS"


class ChaosPoison(RuntimeError):
    """The deterministic exception an injected "poison" fault raises."""


@dataclass(frozen=True)
class ChaosConfig:
    """Parsed chaos configuration (all probabilities in ``[0, 1]``)."""

    kill_probability: float = 0.0
    poison_probability: float = 0.0
    delay_probability: float = 0.0
    delay_seconds: float = 0.0
    max_attempt: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        """Validate probability ranges and the attempt gate."""
        for name in ("kill_probability", "poison_probability", "delay_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"chaos {name} must be in [0, 1], got {value!r}")
        if self.delay_seconds < 0:
            raise ValueError("chaos delay_seconds must be >= 0")
        if self.max_attempt < 0:
            raise ValueError("chaos max_attempt must be >= 0")

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "ChaosConfig":
        """Build a config from a plain dict (unknown keys rejected)."""
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416 - set of names
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown chaos config keys: {sorted(unknown)}")
        return cls(**{k: data[k] for k in data})

    @classmethod
    def from_env(cls) -> Optional["ChaosConfig"]:
        """The active config from ``REPRO_CHAOS``, or None when unset/empty."""
        raw = os.environ.get(CHAOS_ENV, "").strip()
        if not raw:
            return None
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ValueError(f"{CHAOS_ENV} is not valid JSON: {error}") from None
        if not isinstance(data, dict):
            raise ValueError(f"{CHAOS_ENV} must hold a JSON object")
        return cls.from_mapping(data)

    def to_json(self) -> str:
        """JSON text suitable for the ``REPRO_CHAOS`` environment variable."""
        return json.dumps({
            "kill_probability": self.kill_probability,
            "poison_probability": self.poison_probability,
            "delay_probability": self.delay_probability,
            "delay_seconds": self.delay_seconds,
            "max_attempt": self.max_attempt,
            "seed": self.seed,
        })


def chaos_draw(seed: int, kind: str, spec_hash: str, attempt: int) -> float:
    """Deterministic uniform draw in ``[0, 1)`` for one (fault, shard, attempt).

    Keyed on the chaos seed, the fault kind, the shard's spec hash, and
    the attempt number — so each fault type draws independently, and
    retries re-draw (letting probabilistic faults clear on retry even
    when ``max_attempt`` allows them).
    """
    digest = hashlib.sha256(
        f"{seed}:{kind}:{spec_hash}:{attempt}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def maybe_inject(spec_hash: str, attempt: int, allow_kill: bool = True,
                 config: Optional[ChaosConfig] = None) -> None:
    """Apply the active chaos config (if any) to one shard attempt.

    Called at the top of every shard attempt.  ``allow_kill`` is False
    on the in-process (``workers=1``) path, where a SIGKILL would take
    down the coordinator rather than a worker; kill faults are simply
    skipped there (poison and delay still apply).
    """
    cfg = config if config is not None else ChaosConfig.from_env()
    if cfg is None or attempt > cfg.max_attempt:
        return
    if allow_kill and chaos_draw(cfg.seed, "kill", spec_hash, attempt) < cfg.kill_probability:
        os.kill(os.getpid(), signal.SIGKILL)
    if chaos_draw(cfg.seed, "poison", spec_hash, attempt) < cfg.poison_probability:
        raise ChaosPoison(
            f"chaos: poisoned attempt {attempt} of shard {spec_hash[:12]}"
        )
    if chaos_draw(cfg.seed, "delay", spec_hash, attempt) < cfg.delay_probability:
        time.sleep(cfg.delay_seconds)


__all__ = ["CHAOS_ENV", "ChaosConfig", "ChaosPoison", "chaos_draw", "maybe_inject"]
