"""Sharded, constant-memory replay of an Azure-scale trace population.

This is the execution layer of the ``fig9-at-scale`` experiment: tens of
thousands of synthetic functions (heavy-tailed rates, sporadic/steady
mix — :mod:`repro.workloads.stream`) replayed against the paper's M/M/c
capacity model, sharded over the resilient sweep runner and merged into
one federated-style envelope.

Memory model
------------
One shard holds, at any instant: one function's rate series
(``duration_minutes`` floats), one chunk of counts (``chunk_minutes``
ints), the running integer counters, and one bounded reservoir sketch
(``sketch_size`` floats).  Nothing scales with the number of functions
or invocations — a shard of 10 functions and a shard of 10,000 have the
same resident footprint, which is what makes a week-long replay
journal-resumable without spilling.

Determinism contract
--------------------
* Every per-function quantity is a pure function of ``(population seed,
  trace seed, global index)`` — shard boundaries cannot perturb a
  function (seeding via ``SeedSequence(seed, spawn_key=(index,))``).
* Within a shard, functions are replayed in ascending global index and
  every per-minute count is fed to the shard sketch in that order, so a
  shard's result is a pure function of its ``function_range``.
* Across shards, :func:`merge_trace_shards` sorts shard results by
  ``function_range`` and merges reservoir sketches with the
  order-insensitive weighted quantile of
  :func:`repro.metrics.streaming.merge_reservoir_states` — the merged
  envelope is a pure function of the *set* of shard results, pinned by
  permutation tests in ``tests/test_trace_replay.py``.

Together with the resilient runner's workers=1 ≡ N guarantee, this
makes the merged envelope byte-identical across worker counts and
across interrupt+resume.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.metrics.streaming import ReservoirQuantiles, merge_reservoir_states
from repro.scenarios.runner import ScenarioOutcome, _envelope
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.sweep import SWEEP_RESULT_SCHEMA
from repro.workloads.stream import (
    iter_azure_trace_chunks,
    population_function,
    trace_rng,
)

#: Schema identifier of the merged (federated-style) replay envelope.
TRACE_MERGE_SCHEMA = "repro/trace-replay@1"

#: Percentile of the per-function sizing model (the paper's default).
SIZING_PERCENTILE = 0.95


def shard_ranges(functions: int, shards: int) -> List[Tuple[int, int]]:
    """Split ``[0, functions)`` into ``shards`` contiguous ``[lo, hi)`` ranges.

    The canonical decomposition used by the ``fig9-at-scale`` sweep:
    range ``i`` is ``[i*functions//shards, (i+1)*functions//shards)``,
    so the ranges tile the population exactly and differ in size by at
    most one.
    """
    if functions < 1:
        raise ValueError("functions must be >= 1")
    if not 1 <= shards <= functions:
        raise ValueError("shards must be in [1, functions]")
    return [
        (i * functions // shards, (i + 1) * functions // shards)
        for i in range(shards)
    ]


def run_trace_replay(spec: ScenarioSpec) -> ScenarioOutcome:
    """Replay one shard (``params.function_range``) of the population.

    Streams each function's trace chunk-by-chunk through the integer
    counters and the shard's reservoir sketch (see the module docstring
    for the memory and determinism contracts).  Every counter in the
    ``replay`` group is an integer — exactness is what lets
    :func:`merge_trace_shards` produce identical totals for *any* shard
    decomposition of the same population.
    """
    from repro.core.queueing.sizing import required_containers_fast

    params = dict(spec.params)
    population = dict(params["population"])
    duration_minutes = int(params["duration_minutes"])
    chunk_minutes = int(params["chunk_minutes"])
    sketch_size = int(params["sketch_size"])
    lo, hi = (int(v) for v in params["function_range"])

    sketch = ReservoirQuantiles(max_samples=sketch_size)
    invocations = 0
    zero_minutes = 0
    overload_minutes = 0
    peak_per_minute = 0
    containers = 0
    sporadic_functions = 0

    for index in range(lo, hi):
        fn = population_function(index, population)
        sporadic_functions += int(fn.config.sporadic)
        sizing = required_containers_fast(
            lam=fn.config.mean_rate,
            mu=1.0 / fn.service_time,
            wait_budget=fn.slo_deadline,
            percentile=SIZING_PERCENTILE,
        )
        containers += sizing.containers
        # what the sized allocation can serve in one minute
        capacity_per_minute = sizing.containers * 60.0 / fn.service_time
        rng = trace_rng(int(params["trace_seed"]), index)
        for chunk in iter_azure_trace_chunks(fn.config, duration_minutes,
                                             rng, chunk_minutes):
            invocations += int(chunk.sum())
            zero_minutes += int((chunk == 0).sum())
            overload_minutes += int((chunk > capacity_per_minute).sum())
            peak_per_minute = max(peak_per_minute, int(chunk.max()))
            for count in chunk.tolist():
                sketch.add(float(count))

    replay = {
        "function_range": [lo, hi],
        "functions": hi - lo,
        "sporadic_functions": sporadic_functions,
        "minutes": duration_minutes,
        "chunk_minutes": chunk_minutes,
        "invocations": invocations,
        "zero_minutes": zero_minutes,
        "overload_minutes": overload_minutes,
        "peak_per_minute": peak_per_minute,
        "containers": containers,
        "sketch": sketch.state(),
    }
    return ScenarioOutcome(spec=spec, data=_envelope(spec, replay=replay), sim=None)


def _shard_key(result: Mapping[str, Any]) -> Tuple[int, int]:
    """Canonical ordering key of one shard result (its function range)."""
    lo, hi = result["replay"]["function_range"]
    return (int(lo), int(hi))


def merge_trace_shards(envelope: Mapping[str, Any]) -> Dict[str, Any]:
    """Merge a sweep envelope of shard results into one replay envelope.

    Shards are re-sorted into canonical ``function_range`` order, their
    ranges checked to tile the population exactly (no gaps, no
    overlaps), integer counters summed (peak taken as max), and the
    reservoir sketches merged with the order-insensitive weighted
    quantile — so the output is a pure function of the set of shard
    results, regardless of sweep expansion or completion order.  Float
    aggregates (``rates``) are derived once, here, from the integer
    totals.  Raises :class:`ValueError` on a degraded (``incomplete``)
    sweep envelope — merging a partial replay would silently understate
    every total.
    """
    if envelope.get("schema") != SWEEP_RESULT_SCHEMA:
        raise ValueError(f"expected a {SWEEP_RESULT_SCHEMA} envelope")
    if envelope.get("incomplete"):
        raise ValueError("cannot merge an incomplete sweep envelope; "
                         "re-run with --resume until it completes")
    results: Sequence[Mapping[str, Any]] = envelope["results"]
    if not results:
        raise ValueError("sweep envelope has no shard results")
    for result in results:
        if "replay" not in result:
            name = result.get("scenario", {}).get("name", "?")
            raise ValueError(f"shard {name!r} is not a trace_replay result")
    ordered = sorted(results, key=_shard_key)

    base_params = dict(ordered[0]["scenario"]["params"])
    functions_total = int(base_params["population"]["functions"])
    expected_lo = 0
    for result in ordered:
        lo, hi = _shard_key(result)
        if lo != expected_lo:
            raise ValueError(
                f"shard ranges do not tile the population: expected a shard "
                f"starting at {expected_lo}, got [{lo}, {hi})"
            )
        expected_lo = hi
        shard_params = dict(result["scenario"]["params"])
        for key, value in base_params.items():
            if key != "function_range" and shard_params.get(key) != value:
                raise ValueError(
                    f"shard [{lo}, {hi}) disagrees on param {key!r}; "
                    "all shards must replay the same population"
                )
    if expected_lo != functions_total:
        raise ValueError(
            f"shard ranges cover [0, {expected_lo}) but the population has "
            f"{functions_total} functions"
        )

    totals = {
        "functions": functions_total,
        "sporadic_functions": 0,
        "invocations": 0,
        "zero_minutes": 0,
        "overload_minutes": 0,
        "peak_per_minute": 0,
        "containers": 0,
    }
    shards_out: List[Dict[str, Any]] = []
    for result in ordered:
        replay = result["replay"]
        totals["sporadic_functions"] += int(replay["sporadic_functions"])
        totals["invocations"] += int(replay["invocations"])
        totals["zero_minutes"] += int(replay["zero_minutes"])
        totals["overload_minutes"] += int(replay["overload_minutes"])
        totals["peak_per_minute"] = max(totals["peak_per_minute"],
                                        int(replay["peak_per_minute"]))
        totals["containers"] += int(replay["containers"])
        shards_out.append({
            "name": result["scenario"]["name"],
            "function_range": list(replay["function_range"]),
            "functions": int(replay["functions"]),
            "invocations": int(replay["invocations"]),
        })

    minutes = int(base_params["duration_minutes"])
    function_minutes = functions_total * minutes
    merged_sketch = merge_reservoir_states(
        r["replay"]["sketch"] for r in ordered
    )
    return {
        "schema": TRACE_MERGE_SCHEMA,
        "sweep": dict(envelope["sweep"]),
        "shard_count": len(ordered),
        "shards": shards_out,
        "minutes": minutes,
        "totals": totals,
        "rates": {
            "invocations_per_function_minute":
                totals["invocations"] / function_minutes,
            "overload_fraction":
                totals["overload_minutes"] / function_minutes,
            "zero_fraction": totals["zero_minutes"] / function_minutes,
            "containers_per_function": totals["containers"] / functions_total,
        },
        "percentiles": {"per_minute_invocations": merged_sketch},
    }


__all__ = [
    "SIZING_PERCENTILE",
    "TRACE_MERGE_SCHEMA",
    "merge_trace_shards",
    "run_trace_replay",
    "shard_ranges",
]
