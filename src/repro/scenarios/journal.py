"""Run journal: an append-only crash log of shard lifecycle events.

A :class:`RunJournal` records what a sweep execution *did* — one JSONL
record per shard lifecycle transition — durably enough that the journal
survives any interruption (Ctrl-C, SIGKILL, OOM, power loss) with at
most a torn final line, which readers tolerate.  The journal is both a
debugging artifact (what failed, when, after how many attempts) and the
substrate for **resume**: ``ok`` records carry the shard's canonical
result payload keyed by its spec hash, so a re-run can skip every shard
whose bytes are already known.

Record format (``repro/sweep-journal@1``)
-----------------------------------------
Every line is one canonical-JSON object with an ``event`` field:

``sweep``
    Header written once per execution: sweep name, shard count, and the
    journal schema version.
``scheduled``
    A shard entered the run queue (also written when a retry is queued,
    with the ``attempt`` it will become).
``started``
    An attempt began executing (``attempt`` is 1-based).
``ok``
    The shard finished; ``result`` holds the full scenario-result dict
    (the canonical result bytes, modulo JSON re-serialisation — which
    round-trips exactly because ``canonical_json`` is deterministic and
    Python floats survive ``dumps``/``loads`` unchanged).
``failed``
    An attempt raised or its worker died; ``error`` holds the wrapped
    failure (type, message, reason) — never a bare traceback without
    shard identity.
``timeout``
    An attempt exceeded the per-shard wall-clock budget and its worker
    was killed.

All shard records carry ``shard`` (expansion index), ``scenario`` (the
shard's name), ``spec_hash`` (SHA-256 of the shard spec's canonical
JSON), and ``attempt``.  The spec hash — not the index — is the resume
key, so editing a sweep invalidates exactly the shards whose specs
changed.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Iterator, List, Mapping, Optional

from repro.ioutil import fsync_append_line
from repro.scenarios.spec import canonical_json

#: Schema identifier written in the journal header record.
JOURNAL_SCHEMA = "repro/sweep-journal@1"

#: The journal's shard lifecycle event vocabulary (plus the ``sweep`` header).
JOURNAL_EVENTS = ("sweep", "scheduled", "started", "ok", "failed", "timeout")


def shard_spec_hash(spec_dict: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of a shard spec's canonical JSON.

    This is the identity used for resume matching: two shards are "the
    same work" exactly when their fully-expanded specs serialise to the
    same canonical bytes (name, seed, overrides, and all).
    """
    return hashlib.sha256(canonical_json(dict(spec_dict)).encode("utf-8")).hexdigest()


class RunJournal:
    """Append-only JSONL journal with fsync'd line appends.

    Opened lazily on first append so constructing a journal never
    touches the filesystem; safe to use as a context manager.  Appends
    go through :func:`repro.ioutil.fsync_append_line`, so every record
    is durable before the caller proceeds — an interrupted sweep can
    lose in-flight shard *work* but never an already-journaled result.
    """

    def __init__(self, path: str) -> None:
        """Bind the journal to ``path`` (created on first append)."""
        self.path = path
        self._handle = None

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, record: Mapping[str, Any]) -> None:
        """Durably append one record (must carry a known ``event`` field)."""
        event = record.get("event")
        if event not in JOURNAL_EVENTS:
            raise ValueError(f"unknown journal event {event!r}")
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        fsync_append_line(self._handle, canonical_json(dict(record)))

    def close(self) -> None:
        """Close the underlying file handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":
        """Context-manager entry: return self."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: close the handle."""
        self.close()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @staticmethod
    def iter_records(path: str) -> Iterator[Dict[str, Any]]:
        """Yield parseable records from ``path``, tolerating a torn tail.

        The journal is append-only, so the only line that can be
        malformed after a crash is the last one; parsing stops at the
        first undecodable line rather than raising.  A missing file
        yields nothing.
        """
        if not os.path.exists(path):
            return
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    return  # torn final line from an interrupted append
                if isinstance(record, dict):
                    yield record

    @classmethod
    def read_records(cls, path: str) -> List[Dict[str, Any]]:
        """All parseable records in ``path`` (see :meth:`iter_records`)."""
        return list(cls.iter_records(path))

    @classmethod
    def completed_results(cls, path: str) -> Dict[str, Dict[str, Any]]:
        """Map ``spec_hash`` → result payload for every ``ok`` record.

        The latest ``ok`` per hash wins (a shard journaled twice — e.g.
        across an interrupted run and its resume — is simply the same
        bytes twice).  This is the resume lookup table.
        """
        completed: Dict[str, Dict[str, Any]] = {}
        for record in cls.iter_records(path):
            if record.get("event") == "ok" and "spec_hash" in record:
                completed[record["spec_hash"]] = record.get("result", {})
        return completed


__all__ = ["JOURNAL_EVENTS", "JOURNAL_SCHEMA", "RunJournal", "shard_spec_hash"]
