"""The scenario registry: every paper experiment and example as data.

Each entry is a builder that returns a fully-validated
:class:`~repro.scenarios.spec.ScenarioSpec` or
:class:`~repro.scenarios.sweep.SweepSpec`.  The nine paper experiments
(``table1``, ``fig3`` … ``fig9``) are registered here — the modules
under :mod:`repro.experiments` are thin renderers over these specs —
alongside this reproduction's own extensions (``fig10``, the
fault-injection recovery experiment, and ``fig11``/``policy-shootout``,
the control-plane policy comparison), the fault/recovery scenarios, and
the ``examples/`` workloads, so ``python -m repro scenario fig3`` and a
user-supplied ``spec.json`` go through exactly the same machinery.

Builders accept keyword overrides for their experiment's traditional
knobs (durations, seeds, grids), defaulting to the paper configuration.
The CLI's ``experiment`` verb enumerates its valid names from
:func:`experiment_names`, so the list can never drift from what is
actually registered.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.faults.spec import (
    ColdStartSpec,
    FaultSpec,
    NodeFailureSpec,
    SiteBlackoutSpec,
    WanPartitionSpec,
)
from repro.federation.spec import FederationSpec, SiteSpec
from repro.scenarios.spec import (
    AllocationSpec,
    ClusterSpec,
    ControllerSpec,
    ScenarioSpec,
    ScheduleSpec,
    WorkloadSpec,
)
from repro.scenarios.sweep import SweepSpec

#: What a registry builder returns.
SpecOrSweep = Union[ScenarioSpec, SweepSpec]

#: user → functions split used in the Figure 9 experiment (user-2 has 2× weight).
FIG9_USER_ASSIGNMENT: Dict[str, str] = {
    "shufflenet": "user-1",
    "geofence": "user-1",
    "image-resizer": "user-1",
    "mobilenet": "user-2",
    "squeezenet": "user-2",
    "binaryalert": "user-2",
}

#: Figure 9 user weights (under contention: user-1 ≈ 1/3, user-2 ≈ 2/3).
FIG9_USER_WEIGHTS: Dict[str, float] = {"user-1": 1.0, "user-2": 2.0}

#: Figure 9 per-function SLO deadlines (seconds); DNNs get looser deadlines.
FIG9_SLO_DEADLINES: Dict[str, float] = {
    "mobilenet": 0.5,
    "shufflenet": 0.3,
    "squeezenet": 0.2,
    "binaryalert": 0.1,
    "geofence": 0.1,
    "image-resizer": 0.15,
}


@dataclass(frozen=True)
class ScenarioEntry:
    """One registry entry: a named, tagged scenario/sweep builder."""

    name: str
    summary: str
    build: Callable[..., SpecOrSweep]
    tags: Tuple[str, ...] = ()


_REGISTRY: Dict[str, ScenarioEntry] = {}


def register(name: str, summary: str, tags: Sequence[str] = ()) -> Callable:
    """Decorator: register a builder function under ``name``."""

    def wrap(builder: Callable[..., SpecOrSweep]) -> Callable[..., SpecOrSweep]:
        """Store the builder in the registry and return it unchanged."""
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} registered twice")
        _REGISTRY[name] = ScenarioEntry(name=name, summary=summary,
                                        build=builder, tags=tuple(tags))
        return builder

    return wrap


def get_entry(name: str) -> ScenarioEntry:
    """Look up a registry entry by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def build(name: str, **params: Any) -> SpecOrSweep:
    """Build the named scenario/sweep, passing ``params`` to its builder."""
    return get_entry(name).build(**params)


def names(tag: Optional[str] = None) -> List[str]:
    """Registered names, optionally filtered by tag, in sorted order."""
    if tag is None:
        return sorted(_REGISTRY)
    return sorted(e.name for e in _REGISTRY.values() if tag in e.tags)


def experiment_names() -> List[str]:
    """The experiments (``table1``, ``fig3`` … ``fig11``), sorted."""
    return names(tag="paper")


def example_names() -> List[str]:
    """The registered example workloads, sorted."""
    return names(tag="example")


def describe() -> List[Tuple[str, str, str]]:
    """``(name, tags, summary)`` rows for every entry, sorted by name."""
    return [
        (e.name, ",".join(e.tags), e.summary)
        for e in sorted(_REGISTRY.values(), key=lambda e: e.name)
    ]


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------
@register("table1", "Table 1: the function catalogue used in the evaluation",
          tags=("paper",))
def _table1() -> ScenarioSpec:
    """The catalogue dump (no simulation)."""
    return ScenarioSpec(
        name="table1",
        kind="catalogue",
        description="Table 1 function catalogue",
        metrics=(),
    )


# ----------------------------------------------------------------------
# Figure 3: model validation, homogeneous containers
# ----------------------------------------------------------------------
@register("fig3", "Figure 3: M/M/c model validation with homogeneous containers",
          tags=("paper",))
def _fig3(
    mus: Sequence[float] = (5.0, 10.0),
    slo_deadlines: Sequence[float] = (0.1, 0.2),
    arrival_rates: Sequence[float] = (10.0, 20.0, 30.0, 40.0, 50.0),
    duration: float = 300.0,
    percentile: float = 0.95,
    warmup: float = 20.0,
    seed: int = 3,
) -> SweepSpec:
    """The (μ, SLO, λ) grid of Figure 3 as a sweep of fixed-allocation runs.

    Shard seeds reproduce the historical harness exactly
    (``seed + λ + 7μ + 1000·SLO``), so the sweep's measurements are
    byte-identical to the pre-scenario experiment code.
    """
    base = ScenarioSpec(
        name="fig3",
        kind="fixed",
        description="M/M/c sizing validated against measured P95 waiting time",
        workloads=(
            WorkloadSpec(
                function="microbenchmark",
                schedule=ScheduleSpec.static(rate=10.0, duration=duration),
                slo_deadline=0.1,
                service_time=0.1,
            ),
        ),
        allocation=AllocationSpec(sizing={"model": "mmc", "percentile": percentile}),
        duration=duration,
        warmup=warmup,
        seed=seed,
        metrics=("waiting",),
    )
    points = []
    for mu in mus:
        for slo in slo_deadlines:
            for lam in arrival_rates:
                points.append({
                    "workloads.0.service_time": 1.0 / mu,
                    "workloads.0.slo_deadline": slo,
                    "workloads.0.schedule.params.rate": lam,
                    "seed": seed + int(lam) + int(mu * 7) + int(slo * 1000),
                })
    return SweepSpec(name="fig3", base=base, points=tuple(points),
                     description="Figure 3 (μ × SLO × λ) model-validation grid")


# ----------------------------------------------------------------------
# Figure 4: model validation, heterogeneous (deflated) containers
# ----------------------------------------------------------------------
@register("fig4", "Figure 4: heterogeneous-container model validation under deflation",
          tags=("paper",))
def _fig4(
    proportions: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    arrival_rates: Sequence[float] = (10.0, 20.0, 30.0, 40.0, 50.0,
                                      60.0, 70.0, 80.0, 90.0, 100.0),
    slo_deadline: float = 0.1,
    deflation_fraction: float = 0.3,
    duration: float = 240.0,
    percentile: float = 0.95,
    warmup: float = 20.0,
    seed: int = 4,
) -> SweepSpec:
    """The (deflated proportion, λ) grid of Figure 4 with legacy shard seeds."""
    base = ScenarioSpec(
        name="fig4",
        kind="fixed",
        description="Heterogeneous sizing (Alves et al.) after deflating a proportion "
                    "of SqueezeNet's containers",
        workloads=(
            WorkloadSpec(
                function="squeezenet",
                schedule=ScheduleSpec.static(rate=10.0, duration=duration),
                slo_deadline=slo_deadline,
            ),
        ),
        allocation=AllocationSpec(sizing={
            "model": "heterogeneous",
            "percentile": percentile,
            "deflated_proportion": 0.25,
            "deflation_fraction": deflation_fraction,
        }),
        duration=duration,
        warmup=warmup,
        seed=seed,
        metrics=("waiting",),
    )
    points = []
    for proportion in proportions:
        for lam in arrival_rates:
            points.append({
                "allocation.sizing.deflated_proportion": proportion,
                "workloads.0.schedule.params.rate": lam,
                "seed": seed + int(lam) + int(proportion * 100),
            })
    return SweepSpec(name="fig4", base=base, points=tuple(points),
                     description="Figure 4 (deflated proportion × λ) grid")


# ----------------------------------------------------------------------
# Figure 5: allocation-algorithm scalability
# ----------------------------------------------------------------------
@register("fig5", "Figure 5: allocation-algorithm compute time vs. container count",
          tags=("paper",))
def _fig5(
    container_counts: Sequence[int] = (10, 50, 100, 250, 500, 750, 1000),
    mu: float = 10.0,
    slo_deadline: float = 0.1,
    percentile: float = 0.99,
    spikes: Sequence[str] = ("10%", "2x"),
    implementations: Sequence[str] = ("naive", "fast"),
    repeats: int = 3,
) -> ScenarioSpec:
    """The sizing-implementation timing benchmark (wall-clock; host-dependent)."""
    return ScenarioSpec(
        name="fig5",
        kind="sizing_benchmark",
        description="Reaction-time scaling of the naive vs. vectorised sizing paths",
        params={
            "container_counts": tuple(int(c) for c in container_counts),
            "mu": mu,
            "slo_deadline": slo_deadline,
            "percentile": percentile,
            "spikes": tuple(spikes),
            "implementations": tuple(implementations),
            "repeats": repeats,
        },
        metrics=(),
    )


# ----------------------------------------------------------------------
# Figure 6: model-driven autoscaling under time-varying workloads
# ----------------------------------------------------------------------
def fig6_rate_profiles() -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
    """The paper's rate staircases for the two Figure 6 functions.

    First half: micro-benchmark 5→30→5 in steps of 5, MobileNet constant 3.
    Second half: micro-benchmark constant 5, MobileNet 3→8→3 in steps of 1.
    """
    micro_up = (5.0, 10.0, 15.0, 20.0, 25.0, 30.0)
    micro_down = (25.0, 20.0, 15.0, 10.0, 5.0)
    mobile_up = (3.0, 4.0, 5.0, 6.0, 7.0, 8.0)
    mobile_down = (7.0, 6.0, 5.0, 4.0, 3.0)
    first_half_len = len(micro_up) + len(micro_down)
    second_half_len = len(mobile_up) + len(mobile_down)
    micro = micro_up + micro_down + (5.0,) * second_half_len
    mobile = (3.0,) * first_half_len + mobile_up + mobile_down
    return micro, mobile


@register("fig6", "Figure 6: model-driven autoscaling tracks two time-varying workloads",
          tags=("paper",))
def _fig6(step_duration: float = 60.0, seed: int = 6) -> ScenarioSpec:
    """The two-function staircase scenario on a roomy (pressure-free) cluster."""
    micro_rates, mobile_rates = fig6_rate_profiles()
    return ScenarioSpec(
        name="fig6",
        kind="simulate",
        description="Micro-benchmark and MobileNet staircases with no resource pressure",
        workloads=(
            WorkloadSpec(
                function="microbenchmark",
                schedule=ScheduleSpec.staircase(micro_rates, step_duration),
                slo_deadline=0.1,
                service_time=0.1,
            ),
            WorkloadSpec(
                function="mobilenet",
                schedule=ScheduleSpec.staircase(mobile_rates, step_duration),
                slo_deadline=0.5,
            ),
        ),
        cluster=ClusterSpec(node_count=6, cpu_per_node=8.0,
                            memory_per_node_mb=32 * 1024.0),
        controller=ControllerSpec(epoch_length=10.0),
        duration=step_duration * len(micro_rates),
        seed=seed,
        warm_start={"microbenchmark": 1, "mobilenet": 1},
        metrics=("waiting", "slo", "utilization", "counters", "timeline", "generated"),
    )


# ----------------------------------------------------------------------
# Figure 7: deflation response curves
# ----------------------------------------------------------------------
#: The six realistic functions shown in Figure 7 (micro-benchmark excluded).
FIG7_FUNCTIONS: Tuple[str, ...] = (
    "geofence",
    "binaryalert",
    "image-resizer",
    "squeezenet",
    "shufflenet",
    "mobilenet",
)


@register("fig7", "Figure 7: service time vs. CPU deflation for the six functions",
          tags=("paper",))
def _fig7(
    functions: Sequence[str] = FIG7_FUNCTIONS,
    deflation_ratios: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7),
    measured: bool = False,
    duration: float = 60.0,
    seed: int = 7,
) -> ScenarioSpec:
    """The deflation-response scenario (analytic by default, measured on request)."""
    return ScenarioSpec(
        name="fig7",
        kind="deflation_curve",
        description="Deflation slack: ≤30% deflation costs little except for MobileNet",
        params={
            "functions": tuple(functions),
            "deflation_ratios": tuple(float(r) for r in deflation_ratios),
            "measured": measured,
        },
        duration=duration,
        seed=seed,
        metrics=(),
    )


# ----------------------------------------------------------------------
# Figure 8: fair share and reclamation under staged overload
# ----------------------------------------------------------------------
def _fig8_base(phase_duration: float, seed: int,
               reclamation: str = "termination") -> ScenarioSpec:
    """The five-phase BinaryAlert + MobileNet overload scenario of §6.6."""
    duration = 5 * phase_duration
    return ScenarioSpec(
        name="fig8",
        kind="simulate",
        description="Staged overload: BinaryAlert ramps while MobileNet bursts past "
                    "its fair share",
        workloads=(
            WorkloadSpec(
                function="binaryalert",
                schedule=ScheduleSpec.steps(
                    [
                        (0.0, 50.0),
                        (2 * phase_duration, 70.0),
                        (3 * phase_duration, 240.0),
                        (4 * phase_duration, 240.0),
                    ],
                    duration=duration,
                ),
                slo_deadline=0.1,
                weight=1.0,
                user="user-1",
            ),
            WorkloadSpec(
                function="mobilenet",
                schedule=ScheduleSpec.steps(
                    [
                        (0.0, 0.0),
                        (phase_duration, 11.0),
                        (4 * phase_duration, 0.0),
                    ],
                    duration=duration,
                ),
                slo_deadline=0.5,
                weight=1.0,
                user="user-2",
            ),
        ),
        controller=ControllerSpec(epoch_length=10.0, reclamation=reclamation),
        duration=duration,
        seed=seed,
        warm_start={"binaryalert": 1},
        params={"phase_duration": phase_duration},
        metrics=("waiting", "slo", "utilization", "counters", "timeline",
                 "guaranteed_cpu", "generated"),
    )


@register("fig8", "Figure 8: fair share + reclamation under overload "
                  "(termination vs. deflation vs. OpenWhisk)",
          tags=("paper",))
def _fig8(phase_duration: float = 180.0, seed: int = 8,
          include_openwhisk: bool = True) -> SweepSpec:
    """Three arms over the same workload: both LaSS policies plus the baseline."""
    points: List[Dict[str, Any]] = [
        {"controller.reclamation": "termination", "name": "fig8-termination"},
        {"controller.reclamation": "deflation", "name": "fig8-deflation"},
    ]
    if include_openwhisk:
        points.append({"kind": "openwhisk", "name": "fig8-openwhisk",
                       "warm_start": {}, "metrics": ["counters"]})
    return SweepSpec(
        name="fig8",
        base=_fig8_base(phase_duration, seed),
        points=tuple(points),
        seed_mode="base",  # arms must replay identical workload randomness
        description="Figure 8 policy comparison on the staged-overload workload",
    )


# ----------------------------------------------------------------------
# Figure 9: Azure-trace replay
# ----------------------------------------------------------------------
def _fig9_workloads(duration_minutes: int, trace_seed: int) -> Tuple[WorkloadSpec, ...]:
    """One Azure-trace workload spec per catalogue function, in sorted order.

    The per-function ``index`` into the trace RNG matches
    :func:`~repro.workloads.azure.synthesize_azure_traces`, which seeds
    functions by their sorted position — so these specs replay the very
    same synthetic traces.
    """
    from repro.workloads.azure import DEFAULT_AZURE_CONFIGS

    workloads = []
    for index, (name, config) in enumerate(sorted(DEFAULT_AZURE_CONFIGS.items())):
        workloads.append(
            WorkloadSpec(
                function=name,
                schedule=ScheduleSpec.azure(
                    config=dataclasses.asdict(config),
                    duration_minutes=duration_minutes,
                    seed=trace_seed,
                    index=index,
                ),
                slo_deadline=FIG9_SLO_DEADLINES.get(name, 0.2),
                user=FIG9_USER_ASSIGNMENT.get(name, "user-1"),
            )
        )
    return tuple(workloads)


@register("fig9", "Figure 9: Azure-like trace replay with six functions and "
                  "two weighted users",
          tags=("paper",))
def _fig9(duration_minutes: int = 60, seed: int = 9,
          trace_seed: int = 2019) -> SweepSpec:
    """Both reclamation policies over the same synthetic Azure traces."""
    workloads = _fig9_workloads(duration_minutes, trace_seed)
    base = ScenarioSpec(
        name="fig9",
        kind="simulate",
        description="Two-user Azure replay comparing termination vs. deflation",
        workloads=workloads,
        controller=ControllerSpec(epoch_length=10.0, reclamation="termination"),
        duration=duration_minutes * 60.0,
        seed=seed,
        user_weights=FIG9_USER_WEIGHTS,
        warm_start={w.function: 1 for w in workloads},
        params={"duration_minutes": duration_minutes, "trace_seed": trace_seed},
        metrics=("waiting", "slo", "utilization", "counters", "timeline",
                 "guaranteed_cpu", "generated"),
    )
    return SweepSpec(
        name="fig9",
        base=base,
        points=(
            {"controller.reclamation": "termination", "name": "fig9-termination"},
            {"controller.reclamation": "deflation", "name": "fig9-deflation"},
        ),
        seed_mode="base",  # both policies replay identical traces and arrivals
        description="Figure 9 reclamation-policy comparison on Azure-like traces",
    )


# ----------------------------------------------------------------------
# Figure 9 at scale: streaming replay of an Azure-scale population
# ----------------------------------------------------------------------
@register("fig9-at-scale",
          "Figure 9 at scale: streaming replay of an Azure-scale synthetic "
          "population, sharded over the resilient sweep runner",
          tags=("paper",))
def _fig9_at_scale(functions: int = 10_000, duration_minutes: int = 1440,
                   shards: int = 32, chunk_minutes: int = 360,
                   sketch_size: int = 4096, seed: int = 9,
                   trace_seed: int = 2019,
                   population_seed: int = 2021) -> SweepSpec:
    """The planet-scale replay: one ``trace_replay`` shard per sweep point.

    Defaults replay a full synthetic day of 10,000 functions (≈5×10^7
    invocations) in 32 shards; every knob scales down for smoke tests.
    ``seed_mode="base"`` keeps one master seed — per-function randomness
    comes from ``(population_seed, trace_seed, global index)`` only, so
    the shard decomposition never perturbs a function's trace.
    """
    from repro.scenarios.trace_shard import shard_ranges
    from repro.workloads.stream import DEFAULT_POPULATION

    base = ScenarioSpec(
        name="fig9-at-scale",
        kind="trace_replay",
        description="Azure-scale streaming trace replay against the paper's "
                    "M/M/c capacity model",
        duration=duration_minutes * 60.0,
        seed=seed,
        metrics=("counters",),
        params={
            "population": dict(DEFAULT_POPULATION,
                               functions=functions, seed=population_seed),
            "trace_seed": trace_seed,
            "duration_minutes": duration_minutes,
            "chunk_minutes": chunk_minutes,
            "sketch_size": sketch_size,
            "function_range": [0, functions],
        },
    )
    points = tuple({"params.function_range": [lo, hi]}
                   for lo, hi in shard_ranges(functions, shards))
    return SweepSpec(
        name="fig9-at-scale",
        base=base,
        points=points,
        seed_mode="base",  # sharding must never perturb per-function RNG
        description="Sharded constant-memory replay of the synthetic "
                    "Azure-scale population",
    )


# ----------------------------------------------------------------------
# Figure 10: fault injection — recovery from node failures and churn
# ----------------------------------------------------------------------
def _recovery_base(rate: float, fail_at: float, recover_at: Optional[float],
                   duration: float, seed: int, faulted: bool = True) -> ScenarioSpec:
    """One SqueezeNet workload on the 3-node testbed losing (and regaining) a node.

    The canonical recovery atom: steady load sized to need most of the
    cluster, one node failing mid-run.  With ``faulted=False`` the
    ``FaultSpec`` is empty and the spec normalises to the byte-identical
    healthy scenario — the property the metamorphic tests pin.
    """
    faults = None
    if faulted:
        # node-0 is where best-fit packing concentrates the containers, so
        # the outage actually takes out serving capacity
        faults = FaultSpec(node_failures=(
            NodeFailureSpec("node-0", fail_at, recover_at),
        ))
    return ScenarioSpec(
        name="node-failure-recovery",
        kind="simulate",
        description="SqueezeNet at steady load; node-0 fails mid-run and "
                    "recovers later — measures availability and the "
                    "controller's re-provisioning time",
        workloads=(
            WorkloadSpec(
                function="squeezenet",
                schedule=ScheduleSpec.static(rate=rate, duration=duration),
                slo_deadline=0.1,
            ),
        ),
        duration=duration,
        warmup=30.0,
        seed=seed,
        warm_start={"squeezenet": 2},
        metrics=("waiting", "slo", "utilization", "counters", "timeline", "generated"),
        faults=faults,
    )


@register("node-failure-recovery",
          "One node fails mid-run and recovers: availability + recovery time",
          tags=("faults", "example"))
def _node_failure_recovery(rate: float = 20.0, fail_at: float = 120.0,
                           recover_at: Optional[float] = 240.0,
                           duration: float = 360.0, seed: int = 21,
                           faulted: bool = True) -> ScenarioSpec:
    """The canonical single-outage recovery scenario."""
    return _recovery_base(rate, fail_at, recover_at, duration, seed, faulted)


@register("rolling-node-churn",
          "Staggered node outages (rolling restart) under two workloads",
          tags=("faults", "example"))
def _rolling_node_churn(phase: float = 90.0, seed: int = 22,
                        duration: Optional[float] = None) -> ScenarioSpec:
    """Each node goes down for one phase, one after another (rolling restart).

    Two functions with different container sizes keep the packing
    non-trivial while the fleet shrinks and regrows.
    """
    duration = duration if duration is not None else 5 * phase
    failures = tuple(
        NodeFailureSpec(f"node-{i}", fail_at=(i + 1) * phase,
                        recover_at=(i + 2) * phase)
        for i in range(3)
    )
    return ScenarioSpec(
        name="rolling-node-churn",
        kind="simulate",
        description="Rolling outage across all three nodes: the controller must "
                    "keep both functions served while a third of the fleet is "
                    "always missing",
        workloads=(
            WorkloadSpec(
                function="geofence",
                schedule=ScheduleSpec.static(rate=30.0, duration=duration),
                slo_deadline=0.1,
            ),
            WorkloadSpec(
                function="squeezenet",
                schedule=ScheduleSpec.static(rate=10.0, duration=duration),
                slo_deadline=0.2,
            ),
        ),
        duration=duration,
        warmup=30.0,
        seed=seed,
        warm_start={"geofence": 1, "squeezenet": 1},
        metrics=("waiting", "slo", "utilization", "counters", "timeline", "generated"),
        faults=FaultSpec(node_failures=failures),
    )


@register("flaky-containers",
          "Containers crash on dispatch and cold starts are heavy-tailed",
          tags=("faults", "example"))
def _flaky_containers(crash_probability: float = 0.02, rate: float = 20.0,
                      duration: float = 300.0, seed: int = 23) -> ScenarioSpec:
    """Container-level churn: crash-on-dispatch plus lognormal cold starts.

    No node ever fails here; the stress is the steady trickle of dying
    containers and the provisioning jitter of their replacements.
    """
    return ScenarioSpec(
        name="flaky-containers",
        kind="simulate",
        description="SqueezeNet under per-dispatch container crashes and "
                    "lognormal cold-start latency",
        workloads=(
            WorkloadSpec(
                function="squeezenet",
                schedule=ScheduleSpec.static(rate=rate, duration=duration),
                slo_deadline=0.1,
            ),
        ),
        duration=duration,
        warmup=30.0,
        seed=seed,
        warm_start={"squeezenet": 2},
        metrics=("waiting", "slo", "utilization", "counters", "timeline", "generated"),
        faults=FaultSpec(
            crash_probability=crash_probability,
            # median 0.5 s (the configured constant), sigma 0.5: P95 ≈ 1.1 s
            cold_start=ColdStartSpec("lognormal", {"mu": math.log(0.5), "sigma": 0.5}),
        ),
    )


@register("fig10", "Figure 10: recovery from a mid-run node failure "
                   "(faulted vs. healthy arms on identical randomness)",
          tags=("paper",))
def _fig10(rate: float = 20.0, fail_at: float = 120.0,
           recover_at: float = 240.0, duration: float = 360.0,
           seed: int = 21) -> SweepSpec:
    """The recovery experiment: one workload, with and without the outage.

    ``seed_mode="base"`` makes both arms replay identical arrival and
    service randomness, so every difference in the results is caused by
    the fault schedule alone — the same same-randomness design as the
    Figure 8/9 policy comparisons.
    """
    base = _recovery_base(rate, fail_at, recover_at, duration, seed, faulted=True)
    return SweepSpec(
        name="fig10",
        base=base,
        points=(
            {"name": "fig10-faulted"},
            {"name": "fig10-healthy", "faults": None},
        ),
        seed_mode="base",
        description="Node-failure recovery: faulted vs. healthy arm",
    )


# ----------------------------------------------------------------------
# Policy shootout / Figure 11: every control plane on the same workload
# ----------------------------------------------------------------------
#: The policies compared head-to-head (every registered control plane
#: that can serve an open workload; ``noop`` is excluded — with nothing
#: provisioning containers it measures the queue, not a control plane).
SHOOTOUT_POLICIES: Tuple[str, ...] = ("lass", "hybrid", "reactive", "static", "openwhisk")


def _shootout_sweep(name: str, duration: float, seed: int,
                    policies: Tuple[str, ...], include_faulted: bool,
                    fail_at: Optional[float] = None,
                    recover_at: Optional[float] = None) -> SweepSpec:
    """The policy head-to-head: one workload, one arm per (policy, fault) pair.

    Two functions with different sizes keep packing and fair share
    non-trivial (geofence is small and fast, SqueezeNet big and slow).
    Every arm shares the base seed (``seed_mode="base"``), so all
    policies face identical arrival randomness and — in the faulted
    arms — the identical node-outage schedule; the ``static`` arm's
    allocation is solved from the same M/M/c model LaSS uses, making it
    the "provision once for this exact load" operator.  (The openwhisk
    arm replays the arrival stream with its historical interleaved work
    draws — see ``PolicyDescriptor.legacy_workload_rng``.)
    """
    from repro.core.queueing.sizing import required_containers
    from repro.workloads.functions import get_function

    workloads = (
        WorkloadSpec(
            function="geofence",
            schedule=ScheduleSpec.static(rate=30.0, duration=duration),
            slo_deadline=0.1,
        ),
        WorkloadSpec(
            function="squeezenet",
            schedule=ScheduleSpec.static(rate=10.0, duration=duration),
            slo_deadline=0.2,
        ),
    )
    base = ScenarioSpec(
        name=name,
        kind="simulate",
        description="Two functions at steady load; every control-plane policy "
                    "serves the identical workload, healthy and through a "
                    "mid-run node outage",
        workloads=workloads,
        duration=duration,
        warmup=30.0,
        seed=seed,
        metrics=("waiting", "slo", "utilization", "counters", "timeline", "generated"),
    )
    # the static arm provisions what the model says this exact load needs
    allocations: Dict[str, int] = {}
    for workload in workloads:
        profile = get_function(workload.function)
        allocations[workload.function] = required_containers(
            lam=float(workload.schedule.params["rate"]),
            mu=profile.service_rate,
            wait_budget=workload.slo_deadline,
            percentile=0.95,
        ).containers
    fail_at = fail_at if fail_at is not None else duration / 3
    recover_at = recover_at if recover_at is not None else 2 * duration / 3
    faults = FaultSpec(
        node_failures=(NodeFailureSpec("node-0", fail_at, recover_at),)
    ).to_dict()
    points: List[Dict[str, Any]] = []
    for policy in policies:
        point: Dict[str, Any] = {"name": f"{name}-{policy}",
                                 "controller.policy": policy}
        if policy == "static":
            point["controller.policy_params"] = {"allocations": allocations}
        points.append(point)
        if include_faulted:
            faulted = dict(point, name=f"{name}-{policy}-faulted")
            faulted["faults"] = faults
            points.append(faulted)
    return SweepSpec(
        name=name,
        base=base,
        points=tuple(points),
        seed_mode="base",  # every policy faces identical workload randomness
        description="Control-plane policy comparison on identical seeds "
                    "and fault schedules",
    )


@register("policy-shootout",
          "Every control-plane policy head-to-head on one workload "
          "(healthy + node-outage arms)",
          tags=("example", "policies"))
def _policy_shootout(duration: float = 300.0, seed: int = 42,
                     policies: Sequence[str] = SHOOTOUT_POLICIES,
                     include_faulted: bool = True) -> SweepSpec:
    """The registered policy-shootout sweep (see :func:`_shootout_sweep`)."""
    return _shootout_sweep("policy-shootout", duration, seed,
                           tuple(policies), include_faulted)


@register("fig11", "Figure 11: LaSS vs the baseline policies, healthy and "
                   "under a node outage (identical seeds)",
          tags=("paper",))
def _fig11(duration: float = 360.0, seed: int = 11,
           policies: Sequence[str] = SHOOTOUT_POLICIES) -> SweepSpec:
    """The policy-comparison experiment (this reproduction's own extension).

    Same design as the Figure 8/9/10 comparisons: ``seed_mode="base"``
    replays identical randomness in every arm, so differences between
    policies (and between each policy's healthy and faulted arm) are
    caused by the control plane and the outage alone.
    """
    return _shootout_sweep("fig11", duration, seed, tuple(policies),
                           include_faulted=True)


# ----------------------------------------------------------------------
# Federation / Figure 12: geo-distributed sites under a global router
# ----------------------------------------------------------------------
#: The global routers compared head-to-head in the Figure 12 experiment.
FIG12_ROUTERS: Tuple[str, ...] = ("nearest-site", "latency-aware", "spillover-to-cloud")


def _fig12_federation(router: str = "latency-aware") -> FederationSpec:
    """The canonical three-site topology every federated scenario shares.

    Two small edge sites plus one large cloud site, with a WAN matrix
    where the edge pair is close (20 ms) and the cloud is far (80 ms
    from the origin region).  All traffic originates at ``edge-a``, so
    a fault there forces the router to earn its keep.
    """
    return FederationSpec(
        sites=(
            SiteSpec(name="edge-a", node_count=3, cpu_per_node=4.0),
            SiteSpec(name="edge-b", node_count=2, cpu_per_node=4.0),
            SiteSpec(name="cloud", node_count=6, cpu_per_node=8.0,
                     memory_per_node_mb=32 * 1024.0, cold_start_latency=1.5,
                     cloud=True),
        ),
        router=router,
        wan_latency=0.05,
        wan_overrides={"edge-a->edge-b": 0.02, "edge-a->cloud": 0.08},
        origins={"geofence": "edge-a", "squeezenet": "edge-a"},
        probe_interval=5.0,
        max_redirects=3,
    )


def _federated_base(name: str, duration: float, seed: int, router: str,
                    description: str,
                    faults: Optional[FaultSpec] = None) -> ScenarioSpec:
    """One federated scenario on the shared three-site topology."""
    return ScenarioSpec(
        name=name,
        kind="simulate",
        description=description,
        workloads=(
            WorkloadSpec(
                function="geofence",
                schedule=ScheduleSpec.static(rate=30.0, duration=duration),
                slo_deadline=0.1,
            ),
            WorkloadSpec(
                function="squeezenet",
                schedule=ScheduleSpec.static(rate=10.0, duration=duration),
                slo_deadline=0.2,
            ),
        ),
        duration=duration,
        warmup=20.0,
        seed=seed,
        warm_start={"geofence": 1, "squeezenet": 1},
        metrics=("waiting", "slo", "utilization", "counters", "generated"),
        federation=_fig12_federation(router),
        faults=faults if faults is not None else FaultSpec(),
    )


def _fig12_blackout(duration: float) -> FaultSpec:
    """The Figure 12 outage: edge-a dark for the middle third, rejoins smaller.

    Fault times sit *off* the 5 s probe grid so the router's belief lags
    reality — the detection window is what exercises bounce/redirect.
    """
    return FaultSpec(site_blackouts=(
        SiteBlackoutSpec("edge-a", fail_at=duration / 3 + 2.0,
                         recover_at=2 * duration / 3 + 2.0, rejoin_nodes=2),
    ))


def _fig12_partition(duration: float) -> FaultSpec:
    """The Figure 12 WAN partition: same window as the blackout, no capacity loss."""
    return FaultSpec(wan_partitions=(
        WanPartitionSpec("edge-a", start_at=duration / 3 + 2.0,
                         heal_at=2 * duration / 3 + 2.0),
    ))


@register("site-outage-failover",
          "A full site blackout mid-run: the global router fails traffic over "
          "and the site rejoins with fewer nodes",
          tags=("faults", "federation", "example"))
def _site_outage_failover(duration: float = 300.0, seed: int = 12,
                          router: str = "latency-aware") -> ScenarioSpec:
    """Edge-a goes dark for the middle third and rejoins with 2 of 3 nodes."""
    return _federated_base(
        "site-outage-failover", duration, seed, router,
        description="All traffic lands on edge-a, which blacks out mid-run; "
                    "the router redirects to edge-b/cloud and the site "
                    "rejoins at two-thirds capacity",
        faults=_fig12_blackout(duration),
    )


@register("partitioned-control-plane",
          "A WAN partition isolates a site from the router while its local "
          "control loop keeps serving (edge autonomy)",
          tags=("faults", "federation", "example"))
def _partitioned_control_plane(duration: float = 300.0, seed: int = 12,
                               router: str = "nearest-site") -> ScenarioSpec:
    """Edge-a is unreachable (not dead) for the middle third of the run."""
    return _federated_base(
        "partitioned-control-plane", duration, seed, router,
        description="The WAN path to edge-a is cut: global traffic routes "
                    "around it while its own arrivals keep being served "
                    "locally, and its metrics merge back on heal",
        faults=_fig12_partition(duration),
    )


@register("flash-crowd-one-region",
          "A flash crowd lands on one region and must spill to the cloud",
          tags=("federation", "example"))
def _flash_crowd_one_region(duration: float = 300.0, seed: int = 12,
                            surge_rate: float = 120.0,
                            router: str = "spillover-to-cloud") -> ScenarioSpec:
    """Geofence traffic at edge-a surges far past the region's capacity."""
    third = duration / 3
    spec = _federated_base(
        "flash-crowd-one-region", duration, seed, router,
        description="Geofence arrivals at edge-a quadruple for the middle "
                    "third of the run; the spillover router sheds the "
                    "overflow to the cloud site",
    )
    surge = WorkloadSpec(
        function="geofence",
        schedule=ScheduleSpec.steps(
            ((0.0, 30.0), (third, surge_rate), (2 * third, 30.0)),
            duration=duration),
        slo_deadline=0.1,
    )
    return dataclasses.replace(spec, workloads=(surge,) + spec.workloads[1:])


@register("fig12", "Figure 12: global-router comparison across healthy, "
                   "site-blackout, and WAN-partition arms (identical seeds)",
          tags=("paper",))
def _fig12(duration: float = 240.0, seed: int = 12,
           routers: Sequence[str] = FIG12_ROUTERS) -> SweepSpec:
    """The federation experiment: every router through every failure mode.

    Nine arms — three routers × {healthy, blackout, partition} — all on
    ``seed_mode="base"`` so every arm replays identical arrival and
    service randomness; differences are caused by the router policy and
    the fault schedule alone, the same same-randomness design as the
    Figure 10/11 comparisons.
    """
    base = _federated_base(
        "fig12", duration, seed, "latency-aware",
        description="Three-site federation (two edge regions + cloud) under "
                    "each global router, healthy and through site-level faults",
        faults=_fig12_blackout(duration),
    )
    blackout = _fig12_blackout(duration).to_dict()
    partition = _fig12_partition(duration).to_dict()
    points: List[Dict[str, Any]] = []
    for router in routers:
        points.append({"name": f"fig12-{router}-healthy",
                       "federation.router": router, "faults": None})
        points.append({"name": f"fig12-{router}-blackout",
                       "federation.router": router, "faults": blackout})
        points.append({"name": f"fig12-{router}-partition",
                       "federation.router": router, "faults": partition})
    return SweepSpec(
        name="fig12",
        base=base,
        points=tuple(points),
        seed_mode="base",  # every arm faces identical workload randomness
        description="Global-router comparison on identical seeds and "
                    "site-fault schedules",
    )


# ----------------------------------------------------------------------
# Example workloads (examples/*.py expressed as scenarios)
# ----------------------------------------------------------------------
@register("quickstart", "One SqueezeNet function under LaSS at a constant 20 req/s",
          tags=("example",))
def _quickstart(rate: float = 20.0, duration: float = 300.0,
                seed: int = 7) -> ScenarioSpec:
    """The examples/quickstart.py scenario."""
    return ScenarioSpec(
        name="quickstart",
        kind="simulate",
        description="SqueezeNet on the paper's 3-node cluster, model-driven scaling",
        workloads=(
            WorkloadSpec(
                function="squeezenet",
                schedule=ScheduleSpec.static(rate=rate, duration=duration),
                slo_deadline=0.1,
            ),
        ),
        duration=duration,
        warmup=30.0,
        seed=seed,
        metrics=("waiting", "slo", "utilization", "counters", "timeline", "generated"),
    )


@register("video-analytics-burst",
          "Motion-activated camera: bursty MobileNet inference (paper Example 1)",
          tags=("example",))
def _video_analytics(burst_rate: float = 10.0, idle_rate: float = 2.0,
                     burst_length: float = 60.0, idle_length: float = 120.0,
                     bursts: int = 3, seed: int = 11) -> ScenarioSpec:
    """The examples/video_analytics_burst.py on/off scenario."""
    steps = []
    t = 0.0
    for _ in range(bursts):
        steps.append((t, idle_rate))
        t += idle_length
        steps.append((t, burst_rate))
        t += burst_length
    steps.append((t, idle_rate))
    duration = t + idle_length
    return ScenarioSpec(
        name="video-analytics-burst",
        kind="simulate",
        description="On/off motion bursts against MobileNet with fast rate sampling",
        workloads=(
            WorkloadSpec(
                function="mobilenet",
                schedule=ScheduleSpec.steps(steps, duration=duration),
                slo_deadline=0.5,
            ),
        ),
        cluster=ClusterSpec(node_count=4, cpu_per_node=8.0),
        controller=ControllerSpec(epoch_length=10.0, rate_sample_interval=2.0),
        duration=duration,
        warmup=30.0,
        seed=seed,
        warm_start={"mobilenet": 2},
        metrics=("waiting", "slo", "utilization", "counters", "timeline", "generated"),
    )


@register("overload-fair-share",
          "The Figure 8 staged overload under the deflation policy",
          tags=("example",))
def _overload_fair_share(phase_duration: float = 180.0, seed: int = 8) -> ScenarioSpec:
    """The examples/overload_fair_share.py scenario (deflation arm)."""
    spec = _fig8_base(phase_duration, seed, reclamation="deflation")
    return dataclasses.replace(spec, name="overload-fair-share")


@register("azure-replay",
          "The Figure 9 Azure-like replay under the deflation policy",
          tags=("example",))
def _azure_replay(duration_minutes: int = 15, seed: int = 9,
                  trace_seed: int = 2019) -> ScenarioSpec:
    """The examples/azure_trace_replay.py scenario (deflation arm)."""
    sweep = _fig9(duration_minutes=duration_minutes, seed=seed, trace_seed=trace_seed)
    spec = dataclasses.replace(
        sweep.base, controller=dataclasses.replace(sweep.base.controller,
                                                   reclamation="deflation"))
    return dataclasses.replace(spec, name="azure-replay")


__all__ = [
    "FIG7_FUNCTIONS",
    "FIG12_ROUTERS",
    "SHOOTOUT_POLICIES",
    "FIG9_SLO_DEADLINES",
    "FIG9_USER_ASSIGNMENT",
    "FIG9_USER_WEIGHTS",
    "ScenarioEntry",
    "SpecOrSweep",
    "build",
    "describe",
    "example_names",
    "experiment_names",
    "fig6_rate_profiles",
    "get_entry",
    "names",
    "register",
]
