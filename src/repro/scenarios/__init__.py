"""Declarative scenarios: specs, a registry, an executor, and a sweep runner.

This package turns experiment scripts into data.  A
:class:`~repro.scenarios.spec.ScenarioSpec` describes one run (workloads,
cluster, controller, metrics, seed) and round-trips through JSON; the
:mod:`~repro.scenarios.registry` re-expresses every paper experiment and
example workload as such specs; :func:`~repro.scenarios.runner.run_scenario`
executes any spec into a unified results schema; and
:class:`~repro.scenarios.sweep.SweepRunner` expands parameter grids and
runs the shards across worker processes with results byte-identical to
a serial run.  The crash-safe execution layer underneath —
:class:`~repro.scenarios.executor.ResilientSweepRunner` plus
:class:`~repro.scenarios.journal.RunJournal` — adds per-shard retries,
timeouts, dead-worker respawn, fsync'd lifecycle journaling, and
resume-from-journal with the same byte-identity guarantee.

Typical use::

    from repro.scenarios import build, run_scenario, SweepRunner, SweepSpec

    outcome = run_scenario(build("quickstart"))     # a registered scenario
    print(outcome.data["metrics"]["functions"]["squeezenet"]["waiting"]["p95"])

    results = SweepRunner(build("fig3"), workers=4).run()   # a registered sweep
"""

from repro.scenarios.executor import (
    ResilientSweepRunner,
    RetryPolicy,
    ShardError,
    backoff_delay,
)
from repro.scenarios.journal import JOURNAL_SCHEMA, RunJournal, shard_spec_hash
from repro.scenarios.registry import (
    build,
    describe,
    example_names,
    experiment_names,
    get_entry,
    names,
    register,
)
from repro.scenarios.runner import RESULT_SCHEMA, ScenarioOutcome, run_scenario
from repro.scenarios.spec import (
    SCENARIO_SCHEMA,
    AllocationSpec,
    ClusterSpec,
    ControllerSpec,
    ScenarioSpec,
    ScheduleSpec,
    WorkloadSpec,
    canonical_json,
)
from repro.scenarios.trace_shard import (
    TRACE_MERGE_SCHEMA,
    merge_trace_shards,
    shard_ranges,
)
from repro.scenarios.sweep import (
    SWEEP_RESULT_SCHEMA,
    SWEEP_SCHEMA,
    SweepAxis,
    SweepRunner,
    SweepSpec,
    apply_overrides,
    derive_shard_seed,
    run_sweep,
)

__all__ = [
    "JOURNAL_SCHEMA",
    "SCENARIO_SCHEMA",
    "SWEEP_RESULT_SCHEMA",
    "SWEEP_SCHEMA",
    "RESULT_SCHEMA",
    "TRACE_MERGE_SCHEMA",
    "AllocationSpec",
    "ResilientSweepRunner",
    "RetryPolicy",
    "RunJournal",
    "ShardError",
    "backoff_delay",
    "shard_spec_hash",
    "ClusterSpec",
    "ControllerSpec",
    "ScenarioOutcome",
    "ScenarioSpec",
    "ScheduleSpec",
    "SweepAxis",
    "SweepRunner",
    "SweepSpec",
    "WorkloadSpec",
    "apply_overrides",
    "build",
    "canonical_json",
    "derive_shard_seed",
    "describe",
    "example_names",
    "experiment_names",
    "get_entry",
    "merge_trace_shards",
    "names",
    "register",
    "run_scenario",
    "run_sweep",
    "shard_ranges",
]
