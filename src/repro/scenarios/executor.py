"""Fault-tolerant sweep execution: retries, timeouts, journaling, resume.

:class:`ResilientSweepRunner` is the crash-safe replacement for the old
``Pool.map`` execution path.  Each shard is submitted to its own worker
process (fork where available, spawn otherwise) and supervised
individually:

* **timeouts** — a per-shard wall-clock budget; an overrunning worker is
  SIGKILLed and the attempt recorded as ``timeout``;
* **retries with deterministic backoff** — failed/timed-out/dead shards
  are re-queued up to ``retries`` extra attempts, with capped
  exponential backoff whose jitter derives from the shard *seed*
  (:func:`backoff_delay`), never from wall clock or worker identity;
* **dead-worker detection** — a worker that dies without reporting (OOM
  kill, SIGKILL, interpreter abort) is noticed via its process sentinel,
  counted as a failed attempt, and its shard re-run in a fresh process:
  a killed child can neither hang nor sink the sweep;
* **graceful degradation** — with ``on_failure="continue"``, exhausted
  shards yield a placeholder entry with a ``status`` field and the
  envelope gains an ``incomplete`` marker instead of raising; with
  ``on_failure="raise"``, the first exhausted shard raises a
  :class:`ShardError` naming the shard index, scenario, and overrides;
* **journaling and resume** — every lifecycle transition is durably
  appended to a :class:`~repro.scenarios.journal.RunJournal`; with
  ``resume=True`` shards whose ``ok`` record matches the current spec
  hash are reused byte-for-byte instead of recomputed.

Why retry/resume are safe
-------------------------
PR 5 made every shard a pure function of its spec: the seed is fixed
before execution and results contain nothing host- or time-dependent.
Re-running a shard therefore produces byte-identical canonical JSON —
so a retry after a crash, a resume after an interrupt, and an
uninterrupted ``workers=1`` run are all the *same bytes*, which the
chaos harness (``tools/chaos_sweep.py``) asserts continuously.

The all-healthy envelope is byte-identical to the historical
``repro/sweep-result@1`` output: ``status`` fields and the
``incomplete`` marker appear only when at least one shard exhausted its
attempts.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait
from typing import Any, Dict, List, Mapping, Optional

from repro.scenarios.chaos import maybe_inject
from repro.scenarios.journal import RunJournal, shard_spec_hash
from repro.scenarios.spec import ScenarioSpec, canonical_json
from repro.sim.rng import _stable_hash


class ShardError(RuntimeError):
    """A sweep shard failed permanently; carries full shard identity.

    Replaces the old behaviour of surfacing a raw multiprocessing
    traceback with no indication of *which* shard died: the message
    names the shard index, scenario name, and the overrides that
    produced it, and the structured fields are available as attributes
    for programmatic handling.
    """

    def __init__(self, index: int, scenario: str, overrides: Mapping[str, Any],
                 attempts: int, status: str, error: Mapping[str, Any]) -> None:
        """Build the error from the shard's final state."""
        self.index = index
        self.scenario = scenario
        self.overrides = dict(overrides)
        self.attempts = attempts
        self.status = status
        self.error = dict(error)
        detail = error.get("message") or error.get("reason") or status
        super().__init__(
            f"shard {index} ({scenario!r}) {status} after {attempts} "
            f"attempt{'s' if attempts != 1 else ''}: "
            f"{error.get('type', 'error')}: {detail} "
            f"(overrides: {canonical_json(self.overrides)})"
        )


def backoff_delay(seed: int, attempt: int, base: float, cap: float) -> float:
    """Deterministic capped-exponential backoff for one retry.

    The magnitude doubles per attempt up to ``cap``; the jitter factor
    (in ``[0.5, 1.0)``) comes from the run-to-run-stable FNV-1a hash of
    the shard seed and attempt number — so the delay schedule is a pure
    function of *what* is retried, never of wall clock or scheduling,
    keeping chaos runs reproducible.
    """
    if attempt < 1:
        raise ValueError("attempt numbers are 1-based")
    magnitude = min(cap, base * (2.0 ** (attempt - 1)))
    jitter = 0.5 + (_stable_hash(f"backoff:{seed}:{attempt}") % 1000) / 2000.0
    return magnitude * jitter


@dataclass(frozen=True)
class RetryPolicy:
    """How shard attempts are retried and bounded.

    ``retries`` is the number of *extra* attempts after the first (0 =
    fail fast).  ``timeout`` is the per-attempt wall-clock budget in
    seconds (None = unbounded).  Backoff between attempts is capped
    exponential with deterministic jitter (:func:`backoff_delay`).
    """

    retries: int = 0
    timeout: Optional[float] = None
    backoff_base: float = 0.5
    backoff_cap: float = 30.0

    def __post_init__(self) -> None:
        """Validate the numeric ranges."""
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if self.backoff_base < 0 or self.backoff_cap < self.backoff_base:
            raise ValueError("need 0 <= backoff_base <= backoff_cap")

    def delay(self, seed: int, attempt: int) -> float:
        """The deterministic pause before re-running ``attempt``'s retry."""
        return backoff_delay(seed, attempt, self.backoff_base, self.backoff_cap)


@dataclass
class _ShardState:
    """Supervisor-side bookkeeping for one shard across its attempts."""

    index: int
    spec: ScenarioSpec
    spec_dict: Dict[str, Any]
    spec_hash: str
    overrides: Dict[str, Any]
    attempts: int = 0
    status: str = "pending"  # pending | ok | failed | timeout
    result: Optional[Dict[str, Any]] = None
    error: Optional[Dict[str, Any]] = None
    reused: bool = False
    process: Any = None
    conn: Any = None
    deadline: Optional[float] = None
    resume_at: float = 0.0

    def identity(self) -> Dict[str, Any]:
        """The journal-record identity fields shared by every event."""
        return {
            "shard": self.index,
            "scenario": self.spec.name,
            "spec_hash": self.spec_hash,
        }


def _attempt_shard(conn: Any, spec_dict: Dict[str, Any], attempt: int) -> None:
    """Worker-process entry point: run one shard attempt, report via pipe.

    Sends ``("ok", result_dict)`` or ``("error", info_dict)`` through
    ``conn`` and exits.  The env-gated chaos hook runs first, so an
    injected SIGKILL takes the worker down *before* any report — which
    is exactly the silence the supervisor's dead-worker detection must
    handle.  Catching ``BaseException`` is deliberate: any escape short
    of a kill signal should still produce a structured report.
    """
    try:
        maybe_inject(shard_spec_hash(spec_dict), attempt)
        from repro.scenarios.sweep import _run_shard

        conn.send(("ok", _run_shard(spec_dict)))
    except BaseException as error:  # noqa: BLE001 - structured worker report
        import traceback

        conn.send(("error", {
            "type": type(error).__name__,
            "message": str(error),
            "traceback": traceback.format_exc(),
        }))
    finally:
        conn.close()


class ResilientSweepRunner:
    """Supervise a sweep's shards with retries, timeouts, and a journal.

    Parameters
    ----------
    sweep:
        The :class:`~repro.scenarios.sweep.SweepSpec` to execute.
    workers:
        Maximum concurrently-live worker processes.  ``workers=1`` with
        no timeout runs shards in-process (no subprocess overhead) —
        both modes produce byte-identical envelopes.
    retry / retries / timeout / backoff_base / backoff_cap:
        Either pass a ready :class:`RetryPolicy` as ``retry`` or the
        individual knobs.
    journal:
        Path (or :class:`RunJournal`) for the lifecycle journal; None
        disables journaling.
    resume:
        Reuse ``ok`` journal records whose spec hash matches the current
        expansion instead of recomputing those shards.
    on_failure:
        ``"continue"`` (default) degrades gracefully — exhausted shards
        become placeholder entries and the envelope gains ``incomplete``;
        ``"raise"`` raises :class:`ShardError` at the first exhausted
        shard (the legacy contract, now with shard identity attached).
    """

    def __init__(self, sweep: Any, workers: int = 1,
                 retry: Optional[RetryPolicy] = None, *,
                 retries: int = 0, timeout: Optional[float] = None,
                 backoff_base: float = 0.5, backoff_cap: float = 30.0,
                 journal: Optional[Any] = None, resume: bool = False,
                 on_failure: str = "continue") -> None:
        """Bind the sweep and supervision knobs (validating them eagerly)."""
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if on_failure not in ("continue", "raise"):
            raise ValueError("on_failure must be 'continue' or 'raise'")
        if resume and journal is None:
            raise ValueError("resume=True requires a journal")
        self.sweep = sweep
        self.workers = workers
        self.retry = retry if retry is not None else RetryPolicy(
            retries=retries, timeout=timeout,
            backoff_base=backoff_base, backoff_cap=backoff_cap,
        )
        if isinstance(journal, (str, bytes)):
            journal = RunJournal(str(journal))
        self.journal: Optional[RunJournal] = journal
        self.resume = resume
        self.on_failure = on_failure

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self) -> Dict[str, Any]:
        """Execute the sweep and return its results envelope.

        All-healthy envelopes are byte-identical to the historical
        ``repro/sweep-result@1`` output; degraded envelopes add per-shard
        ``status`` fields and a top-level ``incomplete: true`` marker.
        """
        states = self._prepare_states()
        to_run = [s for s in states if s.status == "pending"]
        try:
            if self.journal is not None:
                self.journal.append({
                    "event": "sweep", "schema": "repro/sweep-journal@1",
                    "sweep": self.sweep.name, "shard_count": len(states),
                    "resumed": sum(1 for s in states if s.reused),
                })
                for state in to_run:
                    self.journal.append(dict(state.identity(),
                                             event="scheduled", attempt=1))
            if to_run:
                if self.workers == 1 and self.retry.timeout is None:
                    self._run_in_process(to_run)
                else:
                    self._run_subprocess(to_run)
        finally:
            if self.journal is not None:
                self.journal.close()
        return self._assemble(states)

    def run_json(self) -> str:
        """Run the sweep and return the canonical JSON bytes (as text)."""
        return canonical_json(self.run())

    # ------------------------------------------------------------------
    # Preparation / resume
    # ------------------------------------------------------------------
    def _prepare_states(self) -> List[_ShardState]:
        """Expand the sweep into shard states, applying resume reuse."""
        shards = self.sweep.expand()
        points = self.sweep.override_points()
        completed: Dict[str, Dict[str, Any]] = {}
        if self.resume and self.journal is not None:
            completed = RunJournal.completed_results(self.journal.path)
        states: List[_ShardState] = []
        for index, spec in enumerate(shards):
            spec_dict = spec.to_dict()
            digest = shard_spec_hash(spec_dict)
            state = _ShardState(
                index=index, spec=spec, spec_dict=spec_dict, spec_hash=digest,
                overrides=json_safe(points[index]) if index < len(points) else {},
            )
            if digest in completed:
                state.status = "ok"
                state.result = completed[digest]
                state.reused = True
            states.append(state)
        return states

    # ------------------------------------------------------------------
    # In-process execution (workers=1, no timeout)
    # ------------------------------------------------------------------
    def _run_in_process(self, to_run: List[_ShardState]) -> None:
        """Run shards serially in this process, with the same retry loop.

        The chaos hook applies here too (kills excepted — a SIGKILL
        would take down the coordinator, so only worker processes honour
        kill faults).
        """
        from repro.scenarios.sweep import _run_shard

        for state in to_run:
            while state.status == "pending":
                state.attempts += 1
                self._journal_event(state, "started")
                try:
                    maybe_inject(state.spec_hash, state.attempts, allow_kill=False)
                    state.result = _run_shard(state.spec_dict)
                except KeyboardInterrupt:
                    raise
                except Exception as error:  # noqa: BLE001 - per-shard isolation
                    import traceback

                    self._attempt_failed(state, "failed", {
                        "type": type(error).__name__,
                        "message": str(error),
                        "traceback": traceback.format_exc(),
                        "reason": "exception",
                    })
                    if state.status == "pending" and state.resume_at > 0:
                        delay = state.resume_at - time.monotonic()
                        if delay > 0:
                            time.sleep(delay)
                else:
                    state.status = "ok"
                    self._journal_event(state, "ok", result=state.result)

    # ------------------------------------------------------------------
    # Subprocess execution (supervised workers)
    # ------------------------------------------------------------------
    def _context(self):
        """The multiprocessing context: fork when available, else spawn."""
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context("fork" if "fork" in methods else "spawn")

    def _run_subprocess(self, to_run: List[_ShardState]) -> None:
        """The supervision loop: launch, wait, classify, retry.

        Watches each live worker's report pipe *and* process sentinel,
        so results, crashes, silent deaths, and deadline overruns are
        all observed promptly; cleanup in ``finally`` guarantees no
        worker outlives an interrupted sweep.
        """
        ctx = self._context()
        pending = deque(to_run)
        waiting: List[_ShardState] = []
        live: List[_ShardState] = []
        try:
            while pending or waiting or live:
                now = time.monotonic()
                for state in [s for s in waiting if s.resume_at <= now]:
                    waiting.remove(state)
                    pending.append(state)
                while pending and len(live) < self.workers:
                    state = pending.popleft()
                    self._launch(ctx, state)
                    live.append(state)
                if not live:
                    # everything is backing off; sleep until the earliest retry
                    next_at = min(s.resume_at for s in waiting)
                    time.sleep(max(0.0, next_at - time.monotonic()) + 0.001)
                    continue
                self._wait_and_classify(live, waiting)
        finally:
            for state in live:
                self._kill_worker(state)

    def _launch(self, ctx: Any, state: _ShardState) -> None:
        """Start one worker process for the shard's next attempt."""
        state.attempts += 1
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_attempt_shard,
            args=(child_conn, state.spec_dict, state.attempts),
            daemon=True,
        )
        process.start()
        child_conn.close()
        state.process, state.conn = process, parent_conn
        state.deadline = (time.monotonic() + self.retry.timeout
                          if self.retry.timeout is not None else None)
        self._journal_event(state, "started")

    def _wait_and_classify(self, live: List[_ShardState],
                           waiting: List[_ShardState]) -> None:
        """Block until a worker reports, dies, or a deadline expires."""
        now = time.monotonic()
        timeout: Optional[float] = None
        horizons = [s.deadline for s in live if s.deadline is not None]
        horizons += [s.resume_at for s in waiting]
        if horizons:
            timeout = max(0.0, min(horizons) - now)
        watch: Dict[Any, _ShardState] = {}
        for state in live:
            watch[state.conn] = state
            watch[state.process.sentinel] = state
        ready = _connection_wait(list(watch), timeout=timeout)
        seen: List[_ShardState] = []
        for handle in ready:
            state = watch[handle]
            if state in seen or state not in live:
                continue
            seen.append(state)
            self._collect(state, live, waiting)
        now = time.monotonic()
        for state in list(live):
            if state.deadline is not None and now >= state.deadline:
                self._kill_worker(state)
                live.remove(state)
                self._attempt_failed(state, "timeout", {
                    "type": "ShardTimeout",
                    "message": f"attempt exceeded {self.retry.timeout}s wall-clock budget",
                    "reason": "timeout",
                })
                if state.status == "pending":
                    waiting.append(state)

    def _collect(self, state: _ShardState, live: List[_ShardState],
                 waiting: List[_ShardState]) -> None:
        """Read one worker's outcome (report, crash report, or silent death)."""
        payload = None
        if state.conn.poll():
            try:
                payload = state.conn.recv()
            except (EOFError, OSError):
                payload = None
        if payload is not None:
            kind, body = payload
            self._reap_worker(state)
            live.remove(state)
            if kind == "ok":
                state.status = "ok"
                state.result = body
                self._journal_event(state, "ok", result=state.result)
                return
            body = dict(body, reason="exception")
            self._attempt_failed(state, "failed", body)
        else:
            # sentinel fired with no report: the worker died silently
            if state.process.is_alive():
                return  # spurious wake-up; the deadline check still applies
            exitcode = state.process.exitcode
            self._reap_worker(state)
            live.remove(state)
            self._attempt_failed(state, "failed", {
                "type": "WorkerDied",
                "message": f"worker exited without reporting (exitcode {exitcode})",
                "reason": "worker-died",
                "exitcode": exitcode,
            })
        if state.status == "pending":
            waiting.append(state)

    def _reap_worker(self, state: _ShardState) -> None:
        """Join a finished worker and release its pipe."""
        try:
            state.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        state.process.join(timeout=5.0)
        state.process, state.conn, state.deadline = None, None, None

    def _kill_worker(self, state: _ShardState) -> None:
        """Forcibly terminate a live worker (timeout or sweep teardown)."""
        if state.process is None:
            return
        try:
            if state.process.is_alive():
                state.process.kill()  # SIGKILL: must not linger on timeout
        except (OSError, ValueError):  # pragma: no cover - racing exit
            pass
        self._reap_worker(state)

    # ------------------------------------------------------------------
    # Attempt accounting shared by both execution modes
    # ------------------------------------------------------------------
    def _attempt_failed(self, state: _ShardState, status: str,
                        error: Dict[str, Any]) -> None:
        """Journal a failed/timed-out attempt; schedule a retry or finalise."""
        journal_error = {k: v for k, v in error.items() if k != "traceback"}
        self._journal_event(state, status, error=journal_error)
        if state.attempts <= self.retry.retries:
            delay = self.retry.delay(state.spec.seed, state.attempts)
            state.resume_at = time.monotonic() + delay
            self._journal_event(state, "scheduled",
                                attempt=state.attempts + 1, backoff=delay)
            return
        state.status = status
        state.error = error
        if self.on_failure == "raise":
            raise ShardError(state.index, state.spec.name, state.overrides,
                             state.attempts, status, error)

    def _journal_event(self, state: _ShardState, event: str, **extra: Any) -> None:
        """Append one lifecycle record for ``state`` (no-op without a journal)."""
        if self.journal is None:
            return
        record = dict(state.identity(), event=event, attempt=state.attempts)
        record.update(extra)
        self.journal.append(record)

    # ------------------------------------------------------------------
    # Envelope assembly
    # ------------------------------------------------------------------
    def _assemble(self, states: List[_ShardState]) -> Dict[str, Any]:
        """Build the results envelope in expansion order.

        Healthy sweeps reproduce the historical envelope byte-for-byte;
        degraded sweeps add ``status`` to every entry (placeholder
        entries for exhausted shards) plus top-level ``incomplete``.
        """
        incomplete = any(s.status != "ok" for s in states)
        results: List[Dict[str, Any]] = []
        for state in states:
            if state.status == "ok":
                entry = state.result if not incomplete else dict(
                    state.result, status="ok")
                results.append(entry)
            else:
                error = {k: v for k, v in (state.error or {}).items()
                         if k != "traceback"}
                results.append({
                    "scenario": state.spec_dict,
                    "status": state.status,
                    "error": dict(error, shard=state.index,
                                  attempts=state.attempts,
                                  overrides=state.overrides),
                })
        envelope: Dict[str, Any] = {
            "schema": "repro/sweep-result@1",
            "sweep": {
                "name": self.sweep.name,
                "description": self.sweep.description,
                "seed_mode": self.sweep.seed_mode,
                "shard_count": len(states),
            },
            "results": results,
        }
        if incomplete:
            envelope["incomplete"] = True
        return envelope


def json_safe(value: Any) -> Dict[str, Any]:
    """Normalise an overrides mapping to pure-JSON types (tuples → lists)."""
    import json as _json

    return _json.loads(canonical_json(dict(value)))


__all__ = [
    "RetryPolicy",
    "ResilientSweepRunner",
    "ShardError",
    "backoff_delay",
]
