"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a complete, JSON-serialisable description of
one run of the reproduction: which functions receive traffic, how their
arrival rates evolve, how the cluster and controller are configured,
which metrics to collect, and the master seed.  Specs are plain frozen
dataclasses — building one performs full validation, and
``from_dict(spec.to_dict())`` round-trips exactly — so scenarios can be
stored as data (in the registry, in ``.json`` files, in sweep grids)
instead of as bespoke experiment scripts.

Scenario kinds
--------------
``simulate``
    A full controller-driven run (:class:`~repro.simulation.SimulationRunner`):
    workloads → dispatch → containers under the scenario's control-plane
    policy (``controller.policy``, default the LaSS epoch loop; any
    registered policy — ``openwhisk``, ``reactive``, ``static``,
    ``hybrid``, ``noop``, or a third-party registration — drops in).
    This is the kind user-defined scenarios normally use.
``fixed``
    A single function against a *fixed* container allocation
    (:func:`~repro.simulation.run_fixed_allocation`), with the container
    count either given explicitly or derived from a queueing model at
    run time.  The model-validation experiments (Figures 3 and 4) are
    sweeps of this kind.
``openwhisk``
    Backwards-compatible alias for ``simulate`` with
    ``controller.policy="openwhisk"`` (the third arm of Figure 8).  The
    runner folds it into the simulate executor; its results envelope —
    counters plus the ``openwhisk`` invoker-failure group — is
    byte-identical to the historical bespoke harness.
``sizing_benchmark``
    No simulation: time the container-sizing implementations against
    each other (Figure 5).
``deflation_curve``
    Evaluate (or measure) the service-time-vs-deflation response of a
    set of functions (Figure 7).
``catalogue``
    No simulation: dump the Table 1 function catalogue.
``trace_replay``
    No discrete-event simulation: stream one shard of an Azure-scale
    synthetic trace population through the constant-memory replay
    kernel (:mod:`repro.scenarios.trace_shard`).  ``params`` carries
    the population/replay knobs — validated eagerly here so a bad
    replay spec fails before any shard runs.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.cluster.cluster import ClusterConfig
from repro.core.controller import ControllerConfig, ReclamationPolicy
from repro.faults.spec import FaultSpec
from repro.federation.spec import FederationSpec
from repro.workloads.functions import FunctionProfile, get_function, microbenchmark
from repro.workloads.generator import WorkloadBinding
from repro.workloads.schedules import (
    RampSchedule,
    RateSchedule,
    StaticRate,
    StepSchedule,
    TraceSchedule,
)

#: Schema identifier embedded in serialised specs (bump on breaking change).
SCENARIO_SCHEMA = "repro/scenario@1"

#: The scenario kinds the runner knows how to execute.
SCENARIO_KINDS = (
    "simulate",
    "fixed",
    "openwhisk",
    "sizing_benchmark",
    "deflation_curve",
    "catalogue",
    "trace_replay",
)

#: Kinds that drive the discrete-event simulator (and therefore need workloads).
SIMULATION_KINDS = ("simulate", "fixed", "openwhisk")

#: Metric groups a scenario may request in its results.
KNOWN_METRICS = (
    "waiting",
    "slo",
    "utilization",
    "counters",
    "timeline",
    "guaranteed_cpu",
    "generated",
)

#: Valid ``kind`` values for :class:`ScheduleSpec` and their required params.
_SCHEDULE_KINDS: Dict[str, Tuple[str, ...]] = {
    "static": ("rate",),
    "steps": ("steps",),
    "staircase": ("rates", "step_duration"),
    "ramp": ("points",),
    "trace": ("counts",),
    "azure": ("config", "duration_minutes", "seed", "index"),
}


def canonical_json(obj: Any) -> str:
    """Serialise ``obj`` to the canonical JSON used for byte-comparisons.

    Keys are sorted and separators fixed, so two runs that produce equal
    data structures produce equal bytes — this is the representation the
    parallel-equals-serial sweep guarantee is stated over.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _validate_trace_replay_params(params: Mapping[str, Any]) -> None:
    """Eagerly validate the ``params`` of a ``trace_replay`` scenario.

    A replay spec fans out to many shards under the resilient runner, so
    every numeric knob is checked at construction — a typo'd population
    or an inverted ``function_range`` must fail *before* any shard runs,
    not minutes into a sharded sweep.
    """
    required = ("population", "trace_seed", "duration_minutes",
                "chunk_minutes", "sketch_size", "function_range")
    missing = [key for key in required if key not in params]
    if missing:
        raise ValueError(f"trace_replay params missing keys: {missing}")
    population = params["population"]
    if not isinstance(population, Mapping):
        raise ValueError("trace_replay params.population must be a mapping")
    for key in ("functions", "seed", "sporadic_fraction",
                "rate_log10_mean", "rate_log10_sigma"):
        if key not in population:
            raise ValueError(f"trace_replay population missing key {key!r}")
    functions = int(population["functions"])
    if functions < 1:
        raise ValueError("trace_replay population.functions must be >= 1")
    if not 0.0 <= float(population["sporadic_fraction"]) <= 1.0:
        raise ValueError("trace_replay population.sporadic_fraction must be in [0, 1]")
    if float(population["rate_log10_sigma"]) < 0:
        raise ValueError("trace_replay population.rate_log10_sigma must be non-negative")
    if int(params["duration_minutes"]) < 1:
        raise ValueError("trace_replay duration_minutes must be >= 1")
    if int(params["chunk_minutes"]) < 1:
        raise ValueError("trace_replay chunk_minutes must be >= 1")
    if int(params["sketch_size"]) < 10:
        raise ValueError("trace_replay sketch_size must be >= 10")
    function_range = params["function_range"]
    if len(tuple(function_range)) != 2:
        raise ValueError("trace_replay function_range must be a [lo, hi) pair")
    lo, hi = (int(v) for v in function_range)
    if not 0 <= lo < hi <= functions:
        raise ValueError(
            f"trace_replay function_range [{lo}, {hi}) must satisfy "
            f"0 <= lo < hi <= population.functions ({functions})"
        )


def _freeze(value: Any) -> Any:
    """Recursively convert lists to tuples so frozen specs hash/compare stably."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return {k: _freeze(v) for k, v in value.items()}
    return value


def _thaw(value: Any) -> Any:
    """Recursively convert tuples back to lists for JSON serialisation."""
    if isinstance(value, tuple):
        return [_thaw(v) for v in value]
    if isinstance(value, dict):
        return {k: _thaw(v) for k, v in value.items()}
    return value


@dataclass(frozen=True)
class ScheduleSpec:
    """Serializable description of a :class:`~repro.workloads.schedules.RateSchedule`.

    ``kind`` selects the schedule family; ``params`` carries its
    arguments (see ``_SCHEDULE_KINDS`` for the required keys per kind).
    The ``azure`` kind synthesises a per-minute trace at build time with
    the same deterministic seeding as
    :func:`repro.workloads.azure.synthesize_azure_traces`.
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        """Validate the kind and its required params; freeze the params mapping."""
        if self.kind not in _SCHEDULE_KINDS:
            raise ValueError(
                f"unknown schedule kind {self.kind!r}; valid: {sorted(_SCHEDULE_KINDS)}"
            )
        missing = [key for key in _SCHEDULE_KINDS[self.kind] if key not in self.params]
        if missing:
            raise ValueError(f"schedule kind {self.kind!r} missing params: {missing}")
        object.__setattr__(self, "params", _freeze(dict(self.params)))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def static(cls, rate: float, duration: Optional[float] = None) -> "ScheduleSpec":
        """A constant-rate schedule."""
        return cls("static", {"rate": rate, "duration": duration})

    @classmethod
    def staircase(cls, rates: Sequence[float], step_duration: float,
                  start: float = 0.0) -> "ScheduleSpec":
        """Equal-duration steps through ``rates`` (Figure 6 style)."""
        return cls("staircase", {"rates": tuple(rates), "step_duration": step_duration,
                                 "start": start})

    @classmethod
    def steps(cls, steps: Sequence[Tuple[float, float]],
              duration: Optional[float] = None) -> "ScheduleSpec":
        """Piecewise-constant ``(time, rate)`` steps (Figure 8 style)."""
        return cls("steps", {"steps": tuple(tuple(s) for s in steps), "duration": duration})

    @classmethod
    def azure(cls, config: Mapping[str, Any], duration_minutes: int, seed: int,
              index: int) -> "ScheduleSpec":
        """A synthetic Azure-like per-minute trace (Figure 9 style).

        ``index`` is the function's position in the sorted trace set; it
        selects the spawn key of the trace RNG so a set of specs
        reproduces :func:`~repro.workloads.azure.synthesize_azure_traces`
        exactly.
        """
        return cls("azure", {"config": dict(config), "duration_minutes": duration_minutes,
                             "seed": seed, "index": index})

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict (JSON-ready) view of this schedule spec."""
        return {"kind": self.kind, "params": _thaw(dict(self.params))}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScheduleSpec":
        """Rebuild a schedule spec from :meth:`to_dict` output."""
        return cls(kind=data["kind"], params=dict(data.get("params", {})))

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build(self) -> RateSchedule:
        """Instantiate the live :class:`RateSchedule` this spec describes."""
        p = dict(self.params)
        if self.kind == "static":
            return StaticRate(float(p["rate"]), duration=p.get("duration"))
        if self.kind == "steps":
            return StepSchedule([tuple(s) for s in p["steps"]], duration=p.get("duration"))
        if self.kind == "staircase":
            return StepSchedule.staircase(list(p["rates"]), float(p["step_duration"]),
                                          start=float(p.get("start", 0.0)))
        if self.kind == "ramp":
            return RampSchedule([tuple(pt) for pt in p["points"]], duration=p.get("duration"))
        if self.kind == "trace":
            return TraceSchedule(list(p["counts"]), interval=float(p.get("interval", 60.0)),
                                 start=float(p.get("start", 0.0)))
        if self.kind == "azure":
            import numpy as np

            from repro.workloads.azure import AzureTraceConfig, synthesize_azure_trace

            config = AzureTraceConfig(**dict(p["config"]))
            rng = np.random.default_rng(
                np.random.SeedSequence(int(p["seed"]), spawn_key=(int(p["index"]),))
            )
            counts = synthesize_azure_trace(config, int(p["duration_minutes"]), rng)
            return TraceSchedule(counts, interval=60.0)
        raise AssertionError(f"unreachable schedule kind {self.kind!r}")


@dataclass(frozen=True)
class WorkloadSpec:
    """One function's workload: a catalogue function plus an arrival schedule.

    ``service_time`` optionally overrides the catalogue's mean service
    time (the micro-benchmark is configured this way per experiment).
    """

    function: str
    schedule: ScheduleSpec
    slo_deadline: Optional[float] = 0.1
    weight: float = 1.0
    user: str = "default"
    service_time: Optional[float] = None

    def __post_init__(self) -> None:
        """Validate the workload's numeric fields."""
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if self.slo_deadline is not None and self.slo_deadline <= 0:
            raise ValueError("slo_deadline must be positive (or None)")
        if self.service_time is not None and self.service_time <= 0:
            raise ValueError("service_time must be positive (or None)")

    def build_profile(self) -> FunctionProfile:
        """Resolve the catalogue profile, applying the service-time override."""
        if self.service_time is None:
            return get_function(self.function)
        if self.function == "microbenchmark":
            return microbenchmark(self.service_time)
        return get_function(self.function).with_service_time(self.service_time)

    def build(self) -> WorkloadBinding:
        """Instantiate the live :class:`WorkloadBinding` this spec describes."""
        return WorkloadBinding(
            profile=self.build_profile(),
            schedule=self.schedule.build(),
            slo_deadline=self.slo_deadline,
            weight=self.weight,
            user=self.user,
        )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict (JSON-ready) view of this workload spec."""
        return {
            "function": self.function,
            "schedule": self.schedule.to_dict(),
            "slo_deadline": self.slo_deadline,
            "weight": self.weight,
            "user": self.user,
            "service_time": self.service_time,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        """Rebuild a workload spec from :meth:`to_dict` output."""
        return cls(
            function=data["function"],
            schedule=ScheduleSpec.from_dict(data["schedule"]),
            slo_deadline=data.get("slo_deadline"),
            weight=float(data.get("weight", 1.0)),
            user=data.get("user", "default"),
            service_time=data.get("service_time"),
        )


@dataclass(frozen=True)
class ClusterSpec:
    """Serializable view of :class:`~repro.cluster.cluster.ClusterConfig`.

    Defaults reproduce the paper's 3-node × (4 vCPU, 16 GB) testbed.
    """

    node_count: int = 3
    cpu_per_node: float = 4.0
    memory_per_node_mb: float = 16 * 1024.0
    cold_start_latency: float = 0.5
    resize_latency: float = 0.0

    def build(self) -> ClusterConfig:
        """Instantiate the live :class:`ClusterConfig`."""
        return ClusterConfig(**dataclasses.asdict(self))

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict (JSON-ready) view."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ClusterSpec":
        """Rebuild from :meth:`to_dict` output (missing keys take defaults)."""
        return cls(**{f.name: data[f.name] for f in dataclasses.fields(cls) if f.name in data})


@dataclass(frozen=True)
class ControllerSpec:
    """Serializable view of the scenario's control plane.

    ``policy`` names the registered control-plane policy to run
    (see :mod:`repro.core.policy`; default ``"lass"``) and
    ``policy_params`` carries its policy-specific configuration —
    both validated eagerly at spec construction, so a typo'd policy
    or parameter set fails before any shard runs.  The remaining
    fields mirror :class:`~repro.core.controller.ControllerConfig`
    (consumed by the LaSS policy; other policies read only the shared
    knobs they care about and take the rest from ``policy_params``).
    ``reclamation`` is stored as the reclamation policy's string value
    (``"termination"`` / ``"deflation"``) so specs stay plain JSON.
    """

    policy: str = "lass"
    policy_params: Mapping[str, Any] = field(default_factory=dict)
    epoch_length: float = 10.0
    rate_sample_interval: float = 5.0
    long_window: float = 120.0
    short_window: float = 10.0
    burst_factor: float = 2.0
    ewma_alpha: float = 0.7
    percentile: float = 0.95
    reclamation: str = "deflation"
    deflation_threshold: float = 0.3
    deflation_increment: float = 0.05
    lazy_termination: bool = True
    placement_strategy: str = "best_fit"
    use_fast_sizing: bool = True
    subtract_service_percentile: bool = False
    online_learning: bool = True
    sizing_cache: bool = True
    sizing_warm_start: bool = True

    def __post_init__(self) -> None:
        """Validate the reclamation + control-plane policy names and params."""
        from repro.core.policy import validate_policy

        ReclamationPolicy(self.reclamation)  # validates the policy name
        object.__setattr__(self, "policy_params", _freeze(dict(self.policy_params)))
        validate_policy(self.policy, self.policy_params)

    def build(self) -> ControllerConfig:
        """Instantiate the live :class:`ControllerConfig` (LaSS's knobs)."""
        kwargs = dataclasses.asdict(self)
        kwargs.pop("policy")
        kwargs.pop("policy_params")
        kwargs["reclamation"] = ReclamationPolicy(kwargs["reclamation"])
        return ControllerConfig(**kwargs)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict (JSON-ready) view.

        The ``policy`` / ``policy_params`` fields are serialised only
        when non-default, so every pre-policy spec — and therefore every
        results envelope that echoes one — keeps its exact historical
        bytes.  ``from_dict`` fills the defaults back in, and sweep
        overrides may still create the two paths explicitly (they are
        whitelisted in :func:`repro.scenarios.sweep.apply_overrides`).
        """
        data = dataclasses.asdict(self)
        params = _thaw(dict(self.policy_params))
        if self.policy == "lass":
            data.pop("policy")
        if params:
            data["policy_params"] = params
        else:
            data.pop("policy_params")
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ControllerSpec":
        """Rebuild from :meth:`to_dict` output (missing keys take defaults)."""
        return cls(**{f.name: data[f.name] for f in dataclasses.fields(cls) if f.name in data})


@dataclass(frozen=True)
class AllocationSpec:
    """Fixed-allocation policy for ``kind="fixed"`` scenarios.

    Exactly one of ``containers`` (explicit count) or ``sizing``
    (model-derived count) must be given.  ``sizing`` maps are either::

        {"model": "mmc", "percentile": 0.95}

    — size with the M/M/c model from the workload's static rate, service
    rate, and SLO deadline (the Figure 3 atom) — or::

        {"model": "heterogeneous", "percentile": 0.95,
         "deflated_proportion": 0.5, "deflation_fraction": 0.3}

    — first size homogeneously, deflate that proportion of the
    containers by ``deflation_fraction``, then add standard containers
    per the heterogeneous model (the Figure 4 atom).

    ``deflation_plan`` optionally gives explicit per-container CPU
    fractions applied after warm-up (mutually exclusive with the
    ``heterogeneous`` model, which derives its own plan).
    """

    containers: Optional[int] = None
    sizing: Optional[Mapping[str, Any]] = None
    deflation_plan: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        """Validate the containers/sizing choice and freeze the plan."""
        if (self.containers is None) == (self.sizing is None):
            raise ValueError("exactly one of containers / sizing must be set")
        if self.containers is not None and self.containers < 1:
            raise ValueError("containers must be >= 1")
        if self.sizing is not None:
            sizing = dict(self.sizing)
            model = sizing.get("model")
            if model not in ("mmc", "heterogeneous"):
                raise ValueError(f"unknown sizing model {model!r}")
            if model == "heterogeneous" and self.deflation_plan is not None:
                raise ValueError("heterogeneous sizing derives its own deflation plan")
            object.__setattr__(self, "sizing", _freeze(sizing))
        if self.deflation_plan is not None:
            object.__setattr__(self, "deflation_plan",
                               tuple(float(f) for f in self.deflation_plan))

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict (JSON-ready) view."""
        return {
            "containers": self.containers,
            "sizing": _thaw(dict(self.sizing)) if self.sizing is not None else None,
            "deflation_plan": list(self.deflation_plan) if self.deflation_plan else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AllocationSpec":
        """Rebuild from :meth:`to_dict` output."""
        plan = data.get("deflation_plan")
        return cls(
            containers=data.get("containers"),
            sizing=data.get("sizing"),
            deflation_plan=tuple(plan) if plan else None,
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, serialisable description of one scenario run.

    Attributes
    ----------
    name:
        Identifier echoed into the results envelope.
    kind:
        Execution mode; one of :data:`SCENARIO_KINDS`.
    workloads:
        The functions and schedules driving the run (simulation kinds).
    cluster / controller:
        Cluster sizing and controller parameters.  ``cluster=None`` means
        the kind's default: the paper's 3-node testbed for
        ``simulate``/``openwhisk``, and an auto-sized isolation cluster
        (big enough that placement never constrains the queueing
        behaviour) for ``fixed``.
    allocation:
        Fixed-allocation policy (``kind="fixed"`` only).
    duration:
        Simulated seconds of workload.
    warmup:
        Seconds excluded from waiting-time/SLO accounting (start-up
        transient).
    seed:
        Master seed for every RNG stream of the run.
    user_weights:
        Optional explicit user weights; builds the two-level fair-share
        tree from the workloads' ``user`` fields (Figure 9 style).
    warm_start:
        Containers created (and warmed) per function before t=0.
    metrics:
        Which metric groups to include in the results (see
        :data:`KNOWN_METRICS`).
    params:
        Kind-specific extras (e.g. the sizing-benchmark grid).
    extra_drain:
        Seconds the event loop runs past the horizon so in-flight
        requests complete.
    faults:
        Optional :class:`~repro.faults.spec.FaultSpec` (``simulate``
        kind only): node failures/recoveries, container
        crash-on-dispatch, cold-start latency distributions.  An
        *empty* fault spec is normalised to ``None`` at construction,
        so a faults-disabled scenario serialises — and therefore runs
        and reports — byte-identically to the healthy scenario.
    federation:
        Optional :class:`~repro.federation.spec.FederationSpec`
        (``simulate`` kind, event data plane only): run the workloads
        across N federated edge sites under a global router instead of
        one cluster.  Federated scenarios size their clusters per site
        (``cluster`` must stay ``None``), take only *site-level* faults
        (``site_blackouts`` / ``wan_partitions``), and do not support
        the ``timeline`` / ``guaranteed_cpu`` metric groups or
        ``user_weights``.
    """

    name: str
    kind: str = "simulate"
    description: str = ""
    workloads: Tuple[WorkloadSpec, ...] = ()
    cluster: Optional[ClusterSpec] = None
    controller: ControllerSpec = field(default_factory=ControllerSpec)
    allocation: Optional[AllocationSpec] = None
    duration: float = 300.0
    warmup: float = 0.0
    seed: int = 1
    user_weights: Optional[Mapping[str, float]] = None
    warm_start: Mapping[str, int] = field(default_factory=dict)
    metrics: Tuple[str, ...] = ("waiting", "slo", "utilization", "counters")
    params: Mapping[str, Any] = field(default_factory=dict)
    extra_drain: float = 5.0
    faults: Optional[FaultSpec] = None
    federation: Optional[FederationSpec] = None
    #: which data plane executes the request lifecycle: ``"event"`` (the
    #: default and oracle) or ``"columnar"`` (the vectorized kernel; falls
    #: back to the event plane for policies without a columnar plan).
    #: Both produce byte-identical results envelopes.
    data_plane: str = "event"

    def __post_init__(self) -> None:
        """Validate the scenario and freeze its collections."""
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if self.kind not in SCENARIO_KINDS:
            raise ValueError(f"unknown scenario kind {self.kind!r}; valid: {SCENARIO_KINDS}")
        if self.data_plane not in ("event", "columnar"):
            raise ValueError(
                f"unknown data_plane {self.data_plane!r}; valid: 'event', 'columnar'"
            )
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.warmup < 0:
            raise ValueError("warmup must be non-negative")
        if self.kind in SIMULATION_KINDS and not self.workloads:
            raise ValueError(f"kind {self.kind!r} requires at least one workload")
        if self.kind == "fixed":
            if len(self.workloads) != 1:
                raise ValueError("kind 'fixed' takes exactly one workload")
            if self.allocation is None:
                raise ValueError("kind 'fixed' requires an allocation spec")
        elif self.allocation is not None:
            raise ValueError("allocation is only valid for kind 'fixed'")
        names = [w.function for w in self.workloads]
        if len(set(names)) != len(names):
            raise ValueError("duplicate function names in workloads")
        unknown = [m for m in self.metrics if m not in KNOWN_METRICS]
        if unknown:
            raise ValueError(f"unknown metrics {unknown}; valid: {KNOWN_METRICS}")
        if self.kind == "trace_replay":
            if self.workloads:
                raise ValueError("kind 'trace_replay' synthesises its own workloads")
            _validate_trace_replay_params(self.params)
        if self.kind == "openwhisk" and self.controller.policy not in ("lass", "openwhisk"):
            # the alias always runs the openwhisk policy; naming another
            # one is a contradiction ("lass" — the default — means unset)
            raise ValueError(
                f"kind 'openwhisk' cannot run policy {self.controller.policy!r}; "
                "use kind 'simulate' with controller.policy instead"
            )
        if self.faults is not None:
            if self.faults.is_empty():
                # normalise: an empty schedule IS the healthy scenario, and
                # must serialise (and hash) identically to faults=None
                object.__setattr__(self, "faults", None)
            elif self.kind != "simulate":
                raise ValueError("faults are only supported for kind 'simulate'")
        if self.federation is not None and not isinstance(self.federation, FederationSpec):
            object.__setattr__(self, "federation",
                               FederationSpec.from_dict(self.federation))
        if self.federation is not None:
            if self.kind != "simulate":
                raise ValueError("federation is only supported for kind 'simulate'")
            if self.data_plane != "event":
                raise ValueError("federated scenarios require data_plane='event'")
            if self.cluster is not None:
                raise ValueError(
                    "federated scenarios size their clusters per site; cluster must be None"
                )
            if self.user_weights is not None:
                raise ValueError("federated scenarios do not support user_weights")
            unsupported = [m for m in self.metrics
                           if m in ("timeline", "guaranteed_cpu")]
            if unsupported:
                raise ValueError(
                    f"federated scenarios do not support metrics {unsupported}"
                )
            site_names = set(self.federation.site_names())
            for function, site in self.federation.origins.items():
                if function not in names:
                    raise ValueError(
                        f"federation.origins names unknown function {function!r}"
                    )
            if self.faults is not None:
                if self.faults.has_node_faults():
                    raise ValueError(
                        "federated scenarios take site-level faults only "
                        "(site_blackouts / wan_partitions)"
                    )
                for blackout in self.faults.site_blackouts:
                    if blackout.site not in site_names:
                        raise ValueError(
                            f"site_blackouts references unknown site {blackout.site!r}"
                        )
                    if (blackout.rejoin_nodes is not None
                            and blackout.rejoin_nodes
                            > self.federation.site(blackout.site).node_count):
                        raise ValueError(
                            f"site {blackout.site!r}: rejoin_nodes="
                            f"{blackout.rejoin_nodes} exceeds node_count"
                        )
                for partition in self.faults.wan_partitions:
                    if partition.site not in site_names:
                        raise ValueError(
                            f"wan_partitions references unknown site {partition.site!r}"
                        )
        elif self.faults is not None and self.faults.has_site_faults():
            raise ValueError(
                "site-level faults (site_blackouts / wan_partitions) require "
                "a federation spec"
            )
        object.__setattr__(self, "workloads", tuple(self.workloads))
        object.__setattr__(self, "metrics", tuple(self.metrics))
        object.__setattr__(self, "warm_start", _freeze(dict(self.warm_start)))
        object.__setattr__(self, "params", _freeze(dict(self.params)))
        if self.user_weights is not None:
            object.__setattr__(self, "user_weights", _freeze(dict(self.user_weights)))

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict (JSON-ready) view of the whole scenario.

        ``data_plane`` is serialised only when non-default, so every
        pre-columnar spec — and every results envelope echoing one —
        keeps its exact historical bytes.
        """
        data = {
            "schema": SCENARIO_SCHEMA,
            "name": self.name,
            "kind": self.kind,
            "description": self.description,
            "workloads": [w.to_dict() for w in self.workloads],
            "cluster": self.cluster.to_dict() if self.cluster is not None else None,
            "controller": self.controller.to_dict(),
            "allocation": self.allocation.to_dict() if self.allocation else None,
            "duration": self.duration,
            "warmup": self.warmup,
            "seed": self.seed,
            "user_weights": _thaw(dict(self.user_weights)) if self.user_weights else None,
            "warm_start": _thaw(dict(self.warm_start)),
            "metrics": list(self.metrics),
            "params": _thaw(dict(self.params)),
            "extra_drain": self.extra_drain,
            "faults": self.faults.to_dict() if self.faults is not None else None,
        }
        if self.data_plane != "event":
            data["data_plane"] = self.data_plane
        if self.federation is not None:
            data["federation"] = self.federation.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild (and re-validate) a scenario from :meth:`to_dict` output."""
        schema = data.get("schema", SCENARIO_SCHEMA)
        if schema != SCENARIO_SCHEMA:
            raise ValueError(f"unsupported scenario schema {schema!r}")
        allocation = data.get("allocation")
        return cls(
            name=data["name"],
            kind=data.get("kind", "simulate"),
            description=data.get("description", ""),
            workloads=tuple(WorkloadSpec.from_dict(w) for w in data.get("workloads", ())),
            cluster=(ClusterSpec.from_dict(data["cluster"])
                     if data.get("cluster") is not None else None),
            controller=ControllerSpec.from_dict(data.get("controller", {})),
            allocation=AllocationSpec.from_dict(allocation) if allocation else None,
            duration=float(data.get("duration", 300.0)),
            warmup=float(data.get("warmup", 0.0)),
            seed=int(data.get("seed", 1)),
            user_weights=data.get("user_weights"),
            warm_start=data.get("warm_start", {}),
            metrics=tuple(data.get("metrics", ("waiting", "slo", "utilization", "counters"))),
            params=data.get("params", {}),
            extra_drain=float(data.get("extra_drain", 5.0)),
            faults=(FaultSpec.from_dict(data["faults"])
                    if data.get("faults") is not None else None),
            federation=(FederationSpec.from_dict(data["federation"])
                        if data.get("federation") is not None else None),
            data_plane=data.get("data_plane", "event"),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        """JSON text of :meth:`to_dict` (canonical when ``indent`` is None)."""
        if indent is None:
            return canonical_json(self.to_dict())
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Parse a spec from JSON text (inverse of :meth:`to_json`)."""
        return cls.from_dict(json.loads(text))


__all__ = [
    "SCENARIO_SCHEMA",
    "SCENARIO_KINDS",
    "SIMULATION_KINDS",
    "KNOWN_METRICS",
    "canonical_json",
    "ScheduleSpec",
    "WorkloadSpec",
    "ClusterSpec",
    "ControllerSpec",
    "AllocationSpec",
    "ScenarioSpec",
]
