"""Parameter sweeps: expand a grid over a base scenario and run the shards.

A :class:`SweepSpec` is a base :class:`~repro.scenarios.spec.ScenarioSpec`
plus either a declarative grid (``axes``, expanded as a cartesian
product) or an explicit list of override ``points``.  Each override is a
mapping from a dotted path into the spec's dict form (e.g.
``"workloads.0.schedule.params.rate"`` or ``"controller.reclamation"``)
to the value that shard should use — so a sweep is itself plain data
and round-trips through JSON like a scenario does.

:class:`SweepRunner` executes the expanded shards either serially or
across supervised worker processes (it fronts the fault-tolerant
:class:`~repro.scenarios.executor.ResilientSweepRunner`, which adds
per-shard retries, timeouts, journaling, and resume for callers that
want them).  Three properties make all execution modes byte-identical
(``workers=1`` ≡ ``workers=N`` ≡ interrupted-then-resumed):

1. expansion order is deterministic (axes in declaration order, points
   in list order) and the executor assembles results in expansion order
   no matter which worker finishes (or retries) first;
2. every shard's seed is fixed *before* execution — either explicitly
   in its overrides or derived from the base seed and the override
   mapping by a stable FNV-1a hash (:func:`derive_shard_seed`), never
   from worker identity or scheduling;
3. shard results (see :mod:`repro.scenarios.runner`) contain no
   wall-clock or host-dependent values, so equal computations serialise
   to equal ``canonical_json`` bytes.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from itertools import product
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.scenarios.spec import ScenarioSpec, canonical_json
from repro.sim.rng import _stable_hash

#: Schema identifier for serialised sweeps.
SWEEP_SCHEMA = "repro/sweep@1"

#: Schema identifier for sweep results envelopes.
SWEEP_RESULT_SCHEMA = "repro/sweep-result@1"

#: Default ceiling on how many shards one sweep may expand to.
DEFAULT_MAX_SHARDS = 100_000

#: Environment variable overriding :data:`DEFAULT_MAX_SHARDS`.
MAX_SHARDS_ENV = "REPRO_SWEEP_MAX_SHARDS"


def shard_cap() -> int:
    """The active shard-count ceiling (env override or the default)."""
    raw = os.environ.get(MAX_SHARDS_ENV, "").strip()
    if not raw:
        return DEFAULT_MAX_SHARDS
    try:
        cap = int(raw)
    except ValueError:
        raise ValueError(f"{MAX_SHARDS_ENV} must be an integer, got {raw!r}") from None
    if cap < 1:
        raise ValueError(f"{MAX_SHARDS_ENV} must be >= 1, got {cap}")
    return cap


def derive_shard_seed(base_seed: int, overrides: Mapping[str, Any]) -> int:
    """Deterministic per-shard seed from the base seed and the shard's overrides.

    Uses the same run-to-run-stable FNV-1a hash as the simulator's RNG
    registry, applied to the canonical JSON of ``(base_seed, overrides)``
    — so the seed depends only on *what* the shard computes, never on
    worker identity, execution order, or process boundaries.
    """
    text = canonical_json({"base_seed": base_seed, "overrides": dict(overrides)})
    return _stable_hash(text) % (2**31 - 1)


#: Paths ``apply_overrides`` may *create*: these fields are omitted from
#: the serialised spec when they hold their defaults (to keep pre-policy
#: envelopes byte-identical), yet sweeps must be able to set them.
_CREATABLE_OVERRIDE_PATHS = frozenset({
    "controller.policy",
    "controller.policy_params",
    "data_plane",
    "federation.router",
    "federation.router_params",
})


def apply_overrides(spec: ScenarioSpec, overrides: Mapping[str, Any]) -> ScenarioSpec:
    """Apply dotted-path overrides to a spec, returning a re-validated copy.

    Integer path segments index into lists (``"workloads.0.slo_deadline"``);
    other segments are dict keys.  The override is applied to the spec's
    ``to_dict()`` form and the result re-parsed, so every shard spec is
    fully validated before it runs.  Every segment — including the last —
    must already exist in the spec's dict form: the serialised spec
    always carries its full key set, so a missing key is a typo'd path,
    and silently inserting it would make the override a no-op
    (``from_dict`` ignores unknown keys).  The only exceptions are the
    :data:`_CREATABLE_OVERRIDE_PATHS` — fields deliberately omitted from
    the dict form at their defaults, which ``from_dict`` understands.
    """
    data = spec.to_dict()
    for path, value in overrides.items():
        segments = path.split(".")
        node: Any = data
        try:
            for segment in segments[:-1]:
                node = node[int(segment)] if segment.lstrip("-").isdigit() else node[segment]
            last = segments[-1]
            if last.lstrip("-").isdigit():
                node[int(last)]  # noqa: B018 - existence check before assignment
                node[int(last)] = value
            else:
                if not isinstance(node, dict) or (
                    last not in node and path not in _CREATABLE_OVERRIDE_PATHS
                ):
                    raise KeyError(last)
                node[last] = value
        except (KeyError, IndexError, TypeError) as error:
            raise KeyError(
                f"override path {path!r} does not resolve in scenario "
                f"{spec.name!r} (failed at {error!r})"
            ) from None
    return ScenarioSpec.from_dict(data)


@dataclass(frozen=True)
class SweepAxis:
    """One grid dimension: a dotted path and the values it sweeps over."""

    path: str
    values: Tuple[Any, ...]

    def __post_init__(self) -> None:
        """Validate the axis and freeze its values."""
        if not self.path:
            raise ValueError("axis path must be non-empty")
        if not self.values:
            raise ValueError(f"axis {self.path!r} has no values")
        object.__setattr__(self, "values", tuple(self.values))

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict (JSON-ready) view."""
        return {"path": self.path, "values": list(self.values)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepAxis":
        """Rebuild from :meth:`to_dict` output."""
        return cls(path=data["path"], values=tuple(data["values"]))


@dataclass(frozen=True)
class SweepSpec:
    """A base scenario plus the parameter grid to expand it over.

    Exactly one of ``axes`` (cartesian product, in declaration order) or
    ``points`` (explicit override mappings, in list order) describes the
    shards.  ``seed_mode`` controls shard seeding when a point does not
    override ``"seed"`` itself:

    * ``"derive"`` — :func:`derive_shard_seed` of the base seed and the
      shard's overrides (the default; gives every shard an independent
      but reproducible stream);
    * ``"base"`` — every shard keeps the base scenario's seed (used when
      arms must share identical randomness, e.g. policy comparisons).
    """

    name: str
    base: ScenarioSpec
    axes: Tuple[SweepAxis, ...] = ()
    points: Tuple[Mapping[str, Any], ...] = ()
    seed_mode: str = "derive"
    description: str = ""

    def __post_init__(self) -> None:
        """Validate the axes/points choice and freeze the override points."""
        if not self.name:
            raise ValueError("sweep name must be non-empty")
        if bool(self.axes) == bool(self.points):
            raise ValueError("exactly one of axes / points must be given")
        if self.seed_mode not in ("derive", "base"):
            raise ValueError("seed_mode must be 'derive' or 'base'")
        object.__setattr__(self, "axes", tuple(self.axes))
        object.__setattr__(self, "points",
                           tuple(dict(point) for point in self.points))
        # guard absurd grids *before* anything can materialise them: the
        # planned count is a product of axis lengths, so checking it is
        # O(axes) even when the expansion would be millions of specs
        planned = self.shard_count()
        cap = shard_cap()
        if planned > cap:
            raise ValueError(
                f"sweep {self.name!r} would expand to {planned:,} shards, "
                f"exceeding the cap of {cap:,}; narrow the axes/points or "
                f"raise the {MAX_SHARDS_ENV} environment variable"
            )

    def shard_count(self) -> int:
        """How many shards this sweep expands to (without materialising them)."""
        if self.points:
            return len(self.points)
        return math.prod(len(axis.values) for axis in self.axes)

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    def override_points(self) -> List[Dict[str, Any]]:
        """The shard override mappings, in deterministic expansion order."""
        if self.points:
            return [dict(point) for point in self.points]
        paths = [axis.path for axis in self.axes]
        return [
            dict(zip(paths, combo))
            for combo in product(*(axis.values for axis in self.axes))
        ]

    def expand(self) -> List[ScenarioSpec]:
        """Materialise one fully-validated :class:`ScenarioSpec` per shard."""
        shards: List[ScenarioSpec] = []
        for index, overrides in enumerate(self.override_points()):
            overrides = dict(overrides)
            if "name" not in overrides:
                overrides["name"] = f"{self.base.name}#{index:04d}"
            if "seed" not in overrides and self.seed_mode == "derive":
                named = {k: v for k, v in overrides.items() if k != "name"}
                overrides["seed"] = derive_shard_seed(self.base.seed, named)
            shards.append(apply_overrides(self.base, overrides))
        return shards

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict (JSON-ready) view of the whole sweep."""
        return {
            "schema": SWEEP_SCHEMA,
            "name": self.name,
            "description": self.description,
            "base": self.base.to_dict(),
            "axes": [axis.to_dict() for axis in self.axes],
            "points": [dict(point) for point in self.points],
            "seed_mode": self.seed_mode,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        """Rebuild (and re-validate) a sweep from :meth:`to_dict` output."""
        schema = data.get("schema", SWEEP_SCHEMA)
        if schema != SWEEP_SCHEMA:
            raise ValueError(f"unsupported sweep schema {schema!r}")
        return cls(
            name=data["name"],
            base=ScenarioSpec.from_dict(data["base"]),
            axes=tuple(SweepAxis.from_dict(a) for a in data.get("axes", ())),
            points=tuple(data.get("points", ())),
            seed_mode=data.get("seed_mode", "derive"),
            description=data.get("description", ""),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        """JSON text of :meth:`to_dict` (canonical when ``indent`` is None)."""
        if indent is None:
            return canonical_json(self.to_dict())
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        """Parse a sweep from JSON text (inverse of :meth:`to_json`)."""
        return cls.from_dict(json.loads(text))


def _run_shard(spec_dict: Mapping[str, Any]) -> Dict[str, Any]:
    """Worker entry point: run one shard from its serialised spec.

    Takes and returns plain dicts so the multiprocessing pool only ever
    pickles JSON-safe data, never live simulator objects.
    """
    from repro.scenarios.runner import run_scenario

    spec = ScenarioSpec.from_dict(spec_dict)
    return run_scenario(spec).data


class SweepRunner:
    """Execute every shard of a sweep, serially or across worker processes.

    This is the simple front door: it delegates to
    :class:`~repro.scenarios.executor.ResilientSweepRunner` with the
    legacy contract (no retries, no timeout, raise on the first shard
    failure — now as a :class:`~repro.scenarios.executor.ShardError`
    naming the shard instead of a bare worker traceback).  Callers who
    want retries, timeouts, journaling, or resume use the resilient
    runner directly.

    Parameters
    ----------
    sweep:
        The sweep to run.
    workers:
        Maximum concurrent worker processes; ``1`` (the default) runs
        in-process.  Both modes produce byte-identical results JSON
        (see the module docstring for why).
    """

    def __init__(self, sweep: SweepSpec, workers: int = 1) -> None:
        """Bind the sweep and worker count."""
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.sweep = sweep
        self.workers = workers

    def run(self) -> Dict[str, Any]:
        """Run all shards and return the sweep results envelope."""
        from repro.scenarios.executor import ResilientSweepRunner

        return ResilientSweepRunner(
            self.sweep, workers=self.workers, on_failure="raise"
        ).run()

    def run_json(self) -> str:
        """Run the sweep and return the canonical JSON bytes (as text)."""
        return canonical_json(self.run())


def run_sweep(sweep: SweepSpec, workers: int = 1) -> Dict[str, Any]:
    """Convenience wrapper: ``SweepRunner(sweep, workers).run()``."""
    return SweepRunner(sweep, workers=workers).run()


__all__ = [
    "DEFAULT_MAX_SHARDS",
    "MAX_SHARDS_ENV",
    "SWEEP_SCHEMA",
    "SWEEP_RESULT_SCHEMA",
    "SweepAxis",
    "SweepSpec",
    "SweepRunner",
    "apply_overrides",
    "derive_shard_seed",
    "run_sweep",
    "shard_cap",
]
