"""LaSS core: the paper's primary contribution.

Sub-packages
------------
``queueing``
    M/M/c steady-state analysis, waiting-time percentile bounds, the
    heterogeneous-container upper bounds of Alves et al., and the
    iterative container-sizing procedure (Algorithm 1).
``estimation``
    Arrival-rate estimation (EWMA + dual sliding windows with burst
    detection) and service-time knowledge (offline profiles and online
    learning).
``allocation``
    The container allocation algorithm (§3.3), weighted fair-share
    allocation under overload (§4.1), the termination and deflation
    reclamation policies (§4.2), container placement, and the two-level
    user → function scheduling hierarchy.
``controller``
    The epoch loop tying everything together, equivalent to the LaSS
    module added to the OpenWhisk controller in the prototype (§5).
``policy``
    The :class:`ControlPolicy` contract + registry that make every
    controller — LaSS and the baselines under :mod:`repro.policies` —
    a pluggable control plane.
"""

from repro.core.controller import LassController, ControllerConfig, ReclamationPolicy
from repro.core.policy import (
    ControlPolicy,
    PolicyContext,
    build_policy,
    policy_names,
    register_policy,
)

__all__ = [
    "LassController",
    "ControllerConfig",
    "ReclamationPolicy",
    "ControlPolicy",
    "PolicyContext",
    "build_policy",
    "policy_names",
    "register_policy",
]
