"""Service-time distributions for the simulator and estimators.

The paper assumes exponential service times for the queueing analysis
(§3.1) and notes generalising to other distributions as future work.
The simulator supports several distributions so that experiments can
check robustness of the model when the exponential assumption is
violated (an ablation in ``benchmarks/``), but the exponential one is
the default everywhere.

All distributions are parameterised by their *mean* so that swapping
one for another keeps the offered load identical.
"""

from __future__ import annotations

import abc
import math
from typing import Optional

import numpy as np


class ServiceTimeDistribution(abc.ABC):
    """Abstract base: a positive random variable with a known mean."""

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Mean service time in seconds."""

    @property
    def rate(self) -> float:
        """Service rate ``μ = 1/mean``."""
        return 1.0 / self.mean

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        """Draw one sample (or ``size`` samples) of the service time."""

    @abc.abstractmethod
    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (``p`` in (0, 1)) of the distribution."""

    def scaled(self, factor: float) -> "ServiceTimeDistribution":
        """Return a copy whose mean is multiplied by ``factor``.

        Used to derive the service-time distribution of a *deflated*
        container from the standard one: a container running at speed
        ``s`` has service times ``factor = 1/s`` times longer.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Debugging summary with the distribution's mean."""
        return f"{type(self).__name__}(mean={self.mean:.4f})"


class Exponential(ServiceTimeDistribution):
    """Exponential service times (the paper's modelling assumption)."""

    def __init__(self, mean: float) -> None:
        """Exponential distribution with the given mean."""
        if mean <= 0:
            raise ValueError("mean must be positive")
        self._mean = float(mean)

    @property
    def mean(self) -> float:
        """Mean service time."""
        return self._mean

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        """Draw one value (or ``size`` values) from the distribution."""
        return rng.exponential(self._mean, size=size)

    def percentile(self, p: float) -> float:
        """The ``p``-th quantile."""
        _check_percentile(p)
        return -self._mean * math.log(1.0 - p)

    def scaled(self, factor: float) -> "Exponential":
        """A copy with the mean scaled by ``factor``."""
        return Exponential(self._mean * factor)


class Deterministic(ServiceTimeDistribution):
    """Constant service times (e.g. the configurable micro-benchmark)."""

    def __init__(self, mean: float) -> None:
        """Point mass at ``mean``."""
        if mean <= 0:
            raise ValueError("mean must be positive")
        self._mean = float(mean)

    @property
    def mean(self) -> float:
        """Mean service time."""
        return self._mean

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        """Return the constant (or an array of it); consumes no randomness."""
        if size is None:
            return self._mean
        return np.full(size, self._mean)

    def percentile(self, p: float) -> float:
        """The ``p``-th quantile (the constant itself)."""
        _check_percentile(p)
        return self._mean

    def scaled(self, factor: float) -> "Deterministic":
        """A copy with the mean scaled by ``factor``."""
        return Deterministic(self._mean * factor)


class LogNormal(ServiceTimeDistribution):
    """Log-normal service times, matching observed DNN-inference variability.

    Parameterised by the mean and the coefficient of variation (std/mean).
    """

    def __init__(self, mean: float, cv: float = 0.25) -> None:
        """Log-normal with the given mean and coefficient of variation."""
        if mean <= 0:
            raise ValueError("mean must be positive")
        if cv <= 0:
            raise ValueError("coefficient of variation must be positive")
        self._mean = float(mean)
        self._cv = float(cv)
        self._sigma2 = math.log(1.0 + cv * cv)
        self._mu = math.log(mean) - 0.5 * self._sigma2

    @property
    def mean(self) -> float:
        """Mean service time."""
        return self._mean

    @property
    def cv(self) -> float:
        """Coefficient of variation."""
        return self._cv

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        """Draw one value (or ``size`` values) from the distribution."""
        return rng.lognormal(self._mu, math.sqrt(self._sigma2), size=size)

    def percentile(self, p: float) -> float:
        """The ``p``-th quantile."""
        _check_percentile(p)
        from scipy.stats import norm

        return math.exp(self._mu + math.sqrt(self._sigma2) * norm.ppf(p))

    def scaled(self, factor: float) -> "LogNormal":
        """A copy with the mean scaled by ``factor`` (same CV)."""
        return LogNormal(self._mean * factor, self._cv)


class ShiftedExponential(ServiceTimeDistribution):
    """A constant base cost plus an exponential tail.

    Models functions with a fixed setup component (model loading, image
    decode) followed by variable compute.  ``mean = shift + tail_mean``.
    """

    def __init__(self, shift: float, tail_mean: float) -> None:
        """Constant ``shift`` plus an exponential tail with mean ``tail_mean``."""
        if shift < 0:
            raise ValueError("shift must be non-negative")
        if tail_mean <= 0:
            raise ValueError("tail_mean must be positive")
        self._shift = float(shift)
        self._tail_mean = float(tail_mean)

    @property
    def mean(self) -> float:
        """Mean service time (shift plus tail mean)."""
        return self._shift + self._tail_mean

    @property
    def shift(self) -> float:
        """The deterministic component of the service time."""
        return self._shift

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        """Draw one value (or ``size`` values) from the distribution."""
        return self._shift + rng.exponential(self._tail_mean, size=size)

    def percentile(self, p: float) -> float:
        """The ``p``-th quantile."""
        _check_percentile(p)
        return self._shift - self._tail_mean * math.log(1.0 - p)

    def scaled(self, factor: float) -> "ShiftedExponential":
        """A copy with both shift and tail mean scaled by ``factor``."""
        return ShiftedExponential(self._shift * factor, self._tail_mean * factor)


def _check_percentile(p: float) -> None:
    """Validate that ``p`` lies strictly inside (0, 1)."""
    if not 0 < p < 1:
        raise ValueError("percentile must be in (0, 1)")


__all__ = [
    "ServiceTimeDistribution",
    "Exponential",
    "Deterministic",
    "LogNormal",
    "ShiftedExponential",
]
