"""Memoized, batched M/M/c model solver — the control-plane fast path.

PR 1 made the simulation *data* plane fast; this module does the same
for the *control* plane.  Every epoch the controller re-derives an
Algorithm 1 sizing decision per function, and in sweeps the same
``(λ, μ, c, t)`` solves repeat thousands of times across epochs,
functions and shards.  The paper itself treats solver speed as
first-class (the Julia-vs-Scala comparison of Algorithm 1, Figure 5),
so this subsystem owns all wait-probability and sizing computations:

1. a process-wide, grow-only log-factorial table
   (:func:`log_factorials`), so probes stop recomputing ``gammaln``
   over ``np.arange(c)`` from scratch;
2. a genuinely candidate-vectorised :func:`wait_probabilities` that
   evaluates the paper's bound for *all* candidate ``c`` values in one
   numpy pass over a shared triangular term matrix (no Python loop per
   candidate);
3. an exact-key LRU memo over ``(λ, μ, t, percentile)`` solves and
   ``(λ, μ, c, t)`` probability evaluations — safe because both are
   pure functions of their arguments, and exact float keys mean a hit
   can never change a result;
4. per-key (per-function) warm starts: control loops drift slowly, so
   the solver first checks ``{c*−1, c*, c*+1}`` from the previous
   epoch before falling back to a full search;
5. an epoch-batched entry point (:meth:`SizingSolver.solve_batch`)
   that sizes every registered function in one call, folding all
   warm-start probes into a single kernel invocation.

Exactness
---------
All shortcuts are provably exact given one structural fact the rest of
the codebase already relies on (the binary search in the PR-0 fast
path assumed it, and ``tests/test_queueing_mmc.py`` checks it): the
paper's bound ``P(Q ≤ t) = Σ_{n≤L(c)} P_n(c)`` is non-decreasing in
``c`` — more containers both shift the queue-length distribution
toward emptier states and raise the cutoff ``L(c) = ⌊t·c·μ + c − 1⌋``.
Algorithm 1 returns the *smallest* ``c`` above a lower bound with
``P(Q ≤ t) ≥ percentile``; monotonicity makes that a threshold search,
so:

* warm start — if ``P(c_prev) ≥ p`` and ``P(c_prev − 1) < p`` then
  ``c_prev`` *is* the smallest satisfying count, no search needed;
  every other probe outcome narrows to an exact bracket;
* memoization — results are pure functions of the exact key, so a
  cache hit returns bit-identical output to a cold solve;
* the constrained answer for a lower bound ``b`` is
  ``max(b, c*)`` where ``c*`` is the unconstrained minimum, which is
  what lets one memo entry serve every ``current_containers`` value.

Determinism is therefore unaffected: with caches on or off, warm or
cold, the solver returns the same containers as the reference
:func:`repro.core.queueing.sizing.required_containers` and the naive
:func:`repro.core.queueing.sizing.required_containers_naive` oracles
(``tests/test_solver.py`` sweeps the equivalence grid).
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

import numpy as np
from scipy import special

from repro.core.queueing.heterogeneous import HeterogeneousMMcQueue


# ----------------------------------------------------------------------
# Process-wide grow-only log-factorial table
# ----------------------------------------------------------------------
_TABLE_LOCK = threading.Lock()
_LOG_FACTORIALS = np.zeros(1)  # log(0!) = 0


def log_factorials(n: int) -> np.ndarray:
    """Table of ``log(k!)`` for ``k = 0 .. ≥ n``, grown once and shared.

    The returned array has length at least ``n + 1`` and is shared
    process-wide; callers index it, they must not write to it.  Growth
    doubles to the next power of two and recomputes via ``gammaln``
    (deterministic per value, so growth never changes existing entries).
    """
    global _LOG_FACTORIALS
    table = _LOG_FACTORIALS
    if n + 1 > table.shape[0]:
        with _TABLE_LOCK:
            table = _LOG_FACTORIALS
            if n + 1 > table.shape[0]:
                size = max(1024, table.shape[0])
                while size < n + 1:
                    size *= 2
                table = special.gammaln(np.arange(size, dtype=float) + 1.0)
                _LOG_FACTORIALS = table
    return table


# ----------------------------------------------------------------------
# Candidate-vectorised wait-probability kernel
# ----------------------------------------------------------------------
#: cap on rows × columns of one triangular term matrix; larger requests
#: are evaluated in row chunks to bound peak memory (~8 bytes per cell
#: per temporary).
_MAX_CELLS = 4_000_000


def wait_probabilities(lam, mu, cs, t) -> np.ndarray:
    """The paper's bound ``P(Q ≤ t)`` for whole arrays of parameters.

    ``lam``, ``mu``, ``cs`` and ``t`` broadcast against each other, so
    one call can evaluate many candidate ``c`` values for one queue
    (the sizing search), or many independent ``(λ, μ, c, t)`` queries
    at once (the epoch-batched control plane).  The computation builds
    a single triangular matrix of log-space state terms and reduces it
    with row-wise ``logsumexp`` — no Python-level loop over candidates.

    Unstable rows (``ρ ≥ 1``) and negative budgets yield 0; ``λ = 0``
    rows yield 1 (an empty system never waits).
    """
    cs_arr = np.asarray(cs)
    if not np.issubdtype(cs_arr.dtype, np.integer):
        cs_arr = cs_arr.astype(np.int64)
    lam_b, mu_b, c_b, t_b = np.broadcast_arrays(
        np.asarray(lam, dtype=float),
        np.asarray(mu, dtype=float),
        cs_arr,
        np.asarray(t, dtype=float),
    )
    if (c_b < 1).any():
        raise ValueError("number of servers must be >= 1")
    if (lam_b < 0).any():
        raise ValueError("arrival rate must be non-negative")
    if (mu_b <= 0).any():
        raise ValueError("service rate must be positive")

    lams = np.ascontiguousarray(lam_b, dtype=float).ravel()
    mus = np.ascontiguousarray(mu_b, dtype=float).ravel()
    ns = np.ascontiguousarray(c_b, dtype=np.int64).ravel()
    ts = np.ascontiguousarray(t_b, dtype=float).ravel()

    out = np.zeros(lams.shape, dtype=float)
    out[(lams == 0.0) & (ts >= 0.0)] = 1.0

    r = lams / mus
    with np.errstate(invalid="ignore"):
        rho = r / ns
    L = np.floor(ts * ns * mus + ns - 1 + 1e-12).astype(np.int64)
    active = (lams > 0.0) & (rho < 1.0) & (ts >= 0.0) & (L >= 0)
    if active.any():
        idx = np.nonzero(active)[0]
        cols = int(max(L[idx].max(), ns[idx].max()) + 1)
        rows_per_chunk = max(1, _MAX_CELLS // cols)
        for start in range(0, idx.size, rows_per_chunk):
            sub = idx[start:start + rows_per_chunk]
            out[sub] = _bound_kernel(r[sub], rho[sub], ns[sub], L[sub])
    return out.reshape(c_b.shape)


def _bound_kernel(r: np.ndarray, rho: np.ndarray, cs: np.ndarray,
                  L: np.ndarray) -> np.ndarray:
    """One triangular-matrix pass over stable rows (``ρ < 1``, ``L ≥ 0``).

    Rows are queries, columns are system states ``n``; the numerator
    masks states above each row's ``L`` and the normalising constant
    reuses the head terms (``n < c``) plus the closed-form geometric
    tail, exactly as the scalar :mod:`repro.core.queueing.mmc` path.
    """
    cols = int(max(L.max(), cs.max()) + 1)
    table = log_factorials(cols - 1)

    n = np.arange(cols)                       # (cols,)
    log_r = np.log(r)[:, None]                # (rows, 1)
    c_col = cs[:, None]                       # (rows, 1)
    log_terms = n * log_r - table[np.minimum(n, c_col)]
    over = np.clip(n - c_col, 0, None)
    log_terms -= over * np.log(cs.astype(float))[:, None]
    log_terms[n > L[:, None]] = -np.inf       # states an arrival cannot see

    # One shifted exp pass serves both reductions: the head region
    # (n < c) is always inside the numerator region (L ≥ c − 1), and the
    # row peak sits at the distribution mode ⌊r⌋ < c, so the head sum
    # can never underflow to zero.  Hand-rolled logsumexp: scipy's
    # carries heavy per-call dispatch overhead on this innermost path.
    peak = np.max(log_terms, axis=1)
    shifted = np.exp(log_terms - peak[:, None])
    log_num = np.log(shifted.sum(axis=1)) + peak
    log_head = np.log(np.where(n < c_col, shifted, 0.0).sum(axis=1)) + peak

    log_tail = cs * np.log(r) - table[cs] - np.log(1.0 - rho)
    log_norm = np.logaddexp(log_head, log_tail)
    return np.minimum(1.0, np.exp(log_num - log_norm))


# ----------------------------------------------------------------------
# Threshold searches (all exact under monotonicity in c)
# ----------------------------------------------------------------------
#: bracket width below which the remaining candidates are evaluated in
#: one batched kernel call instead of bisected one probe at a time
_BATCH_BRACKET = 48
#: rungs evaluated per kernel call during the exponential bracket phase
_LADDER_GROUP = 8


def _unsatisfiable(lam: float, mu: float, t: float, target: float,
                   max_containers: int) -> ValueError:
    """The error every search path raises past ``max_containers`` (one wording)."""
    return ValueError(
        f"could not satisfy SLO with up to {max_containers} containers "
        f"(lam={lam}, mu={mu}, t={t}, p={target})"
    )


def _first_satisfying(lam: float, mu: float, t: float, target: float,
                      lo: int, hi: int, hi_prob: float) -> Tuple[int, float, int]:
    """Smallest ``c`` in ``[lo, hi]`` with ``P(c) ≥ target``; ``P(hi)`` is known to satisfy.

    Bisects with single-candidate kernel calls while the bracket is
    wide, then sweeps the final narrow bracket in one batched call.
    Returns ``(c, P(c), evaluations)``.
    """
    evals = 0
    while hi - lo > _BATCH_BRACKET:
        mid = (lo + hi) // 2
        prob = float(wait_probabilities(lam, mu, np.array([mid]), t)[0])
        evals += 1
        if prob >= target:
            hi, hi_prob = mid, prob
        else:
            lo = mid + 1
    if hi > lo:
        candidates = np.arange(lo, hi)
        probs = wait_probabilities(lam, mu, candidates, t)
        evals += candidates.size
        satisfied = np.nonzero(probs >= target)[0]
        if satisfied.size:
            first = int(satisfied[0])
            return int(candidates[first]), float(probs[first]), evals
    return hi, hi_prob, evals


def smallest_satisfying(lam: float, mu: float, t: float, target: float,
                         lo: int, max_containers: int) -> Tuple[int, float, int]:
    """Smallest ``c ≥ lo`` with ``P(Q ≤ t) ≥ target`` via ladder + bisection.

    The exponential ladder ``lo, lo+1, lo+3, lo+7, …`` is evaluated in
    vectorised groups of :data:`_LADDER_GROUP` rungs, so bracketing a
    count of thousands costs a handful of kernel calls rather than one
    per rung.  Raises :class:`ValueError` when no ``c`` up to
    ``max_containers`` satisfies the target (mirroring the reference).
    """
    if lo > max_containers:
        raise _unsatisfiable(lam, mu, t, target, max_containers)
    evals = 0
    k = 0
    last_unsatisfied = lo - 1
    while True:
        group: List[int] = []
        while len(group) < _LADDER_GROUP:
            rung = lo + (1 << k) - 1
            k += 1
            if rung >= max_containers:
                group.append(max_containers)
                break
            group.append(rung)
        group = [c for c in group if c > last_unsatisfied]
        if not group:
            raise _unsatisfiable(lam, mu, t, target, max_containers)
        probs = wait_probabilities(lam, mu, np.array(group), t)
        evals += len(group)
        satisfied = np.nonzero(probs >= target)[0]
        if satisfied.size:
            i = int(satisfied[0])
            bracket_lo = (group[i - 1] if i > 0 else last_unsatisfied) + 1
            c, prob, extra = _first_satisfying(
                lam, mu, t, target, bracket_lo, group[i], float(probs[i])
            )
            return c, prob, evals + extra
        last_unsatisfied = group[-1]
        if last_unsatisfied >= max_containers:
            raise _unsatisfiable(lam, mu, t, target, max_containers)


# ----------------------------------------------------------------------
# Results and queries
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SizingResult:
    """Outcome of a sizing computation.

    Attributes
    ----------
    containers:
        The recommended number of containers ``c``.
    achieved_probability:
        The waiting-time bound ``P(Q <= t)`` at the recommendation.
    wait_budget:
        The waiting-time budget ``t`` that was targeted.
    iterations:
        How many candidate values of ``c`` were evaluated (0 on a full
        cache hit).
    """

    containers: int
    achieved_probability: float
    wait_budget: float
    iterations: int


@dataclass(frozen=True)
class SizingQuery:
    """One function's sizing inputs for the epoch-batched entry point.

    ``key`` identifies the warm-start slot (the controller uses the
    function name); ``None`` disables warm starts for this query.
    """

    lam: float
    mu: float
    wait_budget: float
    percentile: float = 0.95
    current_containers: int = 0
    max_containers: int = 100_000
    key: Optional[Hashable] = None


# ----------------------------------------------------------------------
# Global cache kill switch (tests / ablations)
# ----------------------------------------------------------------------
_CACHES_DISABLED = False


@contextmanager
def caches_disabled() -> Iterator[None]:
    """Force every :class:`SizingSolver` in the process to solve cold.

    Inside the context no solver reads or writes its memo, probability
    cache, or warm-start state.  Used by the determinism guard tests to
    show cached and cold runs produce byte-identical results.
    """
    global _CACHES_DISABLED
    previous = _CACHES_DISABLED
    _CACHES_DISABLED = True
    try:
        yield
    finally:
        _CACHES_DISABLED = previous


# ----------------------------------------------------------------------
# The solver
# ----------------------------------------------------------------------
@dataclass
class SolverStats:
    """Counters describing how much work the solver avoided."""

    solves: int = 0
    cache_hits: int = 0
    warm_hits: int = 0
    warm_fallbacks: int = 0
    full_searches: int = 0
    probability_evaluations: int = 0
    batches: int = 0


class _LruCache:
    """A small exact-key LRU map (insertion-ordered dict + move-to-end)."""

    def __init__(self, maxsize: int) -> None:
        """Create a cache holding at most ``maxsize`` entries (0 disables)."""
        self.maxsize = int(maxsize)
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()

    def get(self, key: Hashable):
        """Return the cached value or ``None``, refreshing recency."""
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def put(self, key: Hashable, value) -> None:
        """Insert ``key``, evicting the least recently used entry if full."""
        if self.maxsize <= 0:
            return
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = value
        if len(data) > self.maxsize:
            data.popitem(last=False)

    def __len__(self) -> int:
        """Number of live entries."""
        return len(self._data)

    def clear(self) -> None:
        """Drop every entry."""
        self._data.clear()


class SizingSolver:
    """Memoized, warm-started, batched Algorithm 1 solver.

    Parameters
    ----------
    cache_size:
        Maximum entries in the exact-key solve / probability memos
        (0 disables memoization entirely).
    warm_start:
        Whether to try ``{c*−1, c*, c*+1}`` from the previous solve of
        the same ``key`` before falling back to a full search.

    All results are bit-identical to the reference
    :func:`repro.core.queueing.sizing.required_containers` — caching
    and warm starts change only the work performed, never the answer
    (see the module docstring for the exactness argument).
    """

    def __init__(self, cache_size: int = 65_536, warm_start: bool = True) -> None:
        """Configure memo capacity and the warm-start shortcut."""
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        self.cache_size = int(cache_size)
        self.warm_start = bool(warm_start)
        self._solutions = _LruCache(cache_size)
        self._probabilities = _LruCache(cache_size)
        self._heterogeneous = _LruCache(cache_size)
        self._warm: Dict[Hashable, int] = {}
        self._warm_heterogeneous: Dict[Hashable, int] = {}
        self.stats = SolverStats()

    # -- cache plumbing -------------------------------------------------
    @property
    def _caching(self) -> bool:
        """Whether memo reads/writes are live right now."""
        return self.cache_size > 0 and not _CACHES_DISABLED

    @property
    def _warming(self) -> bool:
        """Whether warm-start reads/writes are live right now."""
        return self.warm_start and not _CACHES_DISABLED

    def clear(self) -> None:
        """Drop all memoized solves, probabilities, and warm-start state."""
        self._solutions.clear()
        self._probabilities.clear()
        self._heterogeneous.clear()
        self._warm.clear()
        self._warm_heterogeneous.clear()

    def _probability(self, lam: float, mu: float, c: int, t: float) -> float:
        """Memoized single-point bound evaluation ``P(Q ≤ t)``."""
        key = (lam, mu, c, t)
        if self._caching:
            hit = self._probabilities.get(key)
            if hit is not None:
                return hit  # type: ignore[return-value]
        prob = float(wait_probabilities(lam, mu, np.array([c]), t)[0])
        self.stats.probability_evaluations += 1
        if self._caching:
            self._probabilities.put(key, prob)
        return prob

    # -- validation shared with the sizing module -----------------------
    @staticmethod
    def _validate(lam: float, mu: float, wait_budget: float, percentile: float) -> None:
        """Raise ``ValueError`` for out-of-domain inputs (mirrors the reference)."""
        if lam < 0:
            raise ValueError("arrival rate must be non-negative")
        if mu <= 0:
            raise ValueError("service rate must be positive")
        if wait_budget < 0:
            raise ValueError("wait budget must be non-negative")
        if not 0 < percentile < 1:
            raise ValueError("percentile must be in (0, 1)")

    # -- homogeneous solves ---------------------------------------------
    def solve(
        self,
        lam: float,
        mu: float,
        wait_budget: float,
        percentile: float = 0.95,
        current_containers: int = 0,
        max_containers: int = 100_000,
        key: Optional[Hashable] = None,
    ) -> SizingResult:
        """Algorithm 1 for one function: smallest ``c`` meeting the SLO.

        Identical in contract (and answer) to
        :func:`repro.core.queueing.sizing.required_containers`; ``key``
        selects the warm-start slot.
        """
        query = SizingQuery(
            lam=float(lam), mu=float(mu), wait_budget=float(wait_budget),
            percentile=float(percentile), current_containers=int(current_containers),
            max_containers=int(max_containers), key=key,
        )
        return self.solve_batch((query,))[0]

    def solve_batch(self, queries: Sequence[SizingQuery]) -> List[SizingResult]:
        """Size every query in one call, batching warm-start probes.

        Cache hits and ``λ = 0`` queries resolve immediately; all
        remaining warm-startable queries contribute their three probe
        candidates to a *single* kernel invocation; only queries whose
        optimum moved by more than one container fall back to a full
        (still vectorised) search.  Results are positionally aligned
        with ``queries``.
        """
        self.stats.batches += 1
        results: List[Optional[SizingResult]] = [None] * len(queries)
        warm: List[Tuple[int, SizingQuery, Tuple, int, int, int]] = []
        cold: List[Tuple[int, SizingQuery, Tuple, int, int]] = []
        leaders: set = set()
        followers: List[Tuple[int, SizingQuery, Tuple, int, int]] = []

        for i, q in enumerate(queries):
            self._validate(q.lam, q.mu, q.wait_budget, q.percentile)
            self.stats.solves += 1
            if q.lam == 0:
                results[i] = SizingResult(0, 1.0, q.wait_budget, 0)
                continue
            min_c = int(math.floor(q.lam / q.mu)) + 1
            lower = max(1, int(q.current_containers), min_c)
            solve_key = (q.lam, q.mu, q.wait_budget, q.percentile)
            if self._caching:
                hit = self._solutions.get(solve_key)
                if hit is not None:
                    self.stats.cache_hits += 1
                    c_star, p_star = hit  # type: ignore[misc]
                    results[i] = self._finish(q, c_star, p_star, lower, evals=0)
                    continue
                if solve_key in leaders:
                    # duplicate within this batch: resolve from the memo
                    # once its leader has solved
                    followers.append((i, q, solve_key, min_c, lower))
                    continue
                leaders.add(solve_key)
            previous = self._warm.get(q.key) if (self._warming and q.key is not None) else None
            if previous is not None:
                anchor = min(max(previous, min_c), q.max_containers)
                warm.append((i, q, solve_key, min_c, lower, anchor))
            else:
                cold.append((i, q, solve_key, min_c, lower))

        if warm:
            self._resolve_warm(warm, results)
        if cold:
            self._resolve_cold(cold, results)
        for i, q, solve_key, min_c, lower in followers:
            hit = self._solutions.get(solve_key)
            if hit is not None:
                self.stats.cache_hits += 1
                c_star, p_star = hit  # type: ignore[misc]
                evals = 0
            else:
                # pathological: the leader's entry was evicted within this
                # very batch (cache_size < distinct leaders) — recompute
                self.stats.full_searches += 1
                c_star, p_star, evals = smallest_satisfying(
                    q.lam, q.mu, q.wait_budget, q.percentile, min_c, q.max_containers
                )
                self.stats.probability_evaluations += evals
                self._store(q, solve_key, c_star, p_star)
            results[i] = self._finish(q, c_star, p_star, lower, evals)
        return results  # type: ignore[return-value]

    def _resolve_cold(
        self,
        cold: List[Tuple[int, SizingQuery, Tuple, int, int]],
        results: List[Optional[SizingResult]],
    ) -> None:
        """Full searches for queries with no memo hit or warm anchor, pooled.

        The exponential ladders of all cold queries advance in lockstep:
        every round contributes up to :data:`_LADDER_GROUP` rungs per
        still-unbracketed query to one shared kernel call (one round
        covers optima up to ``min_c + 2^{_LADDER_GROUP} − 1``, which is
        nearly every realistic query, since ``c*`` sits a few percent
        above the stability minimum).  Narrow brackets then pool into a
        single final sweep; only pathologically wide ones bisect
        individually.
        """
        self.stats.full_searches += len(cold)
        exponent = [0] * len(cold)
        last_unsat = [entry[3] - 1 for entry in cold]   # min_c − 1
        evals = [0] * len(cold)
        brackets: Dict[int, Tuple[int, int, float]] = {}

        def could_not_satisfy(q: SizingQuery) -> ValueError:
            """The shared unsatisfiable-SLO error for one query's parameters."""
            return _unsatisfiable(q.lam, q.mu, q.wait_budget, q.percentile,
                                  q.max_containers)

        unresolved = list(range(len(cold)))
        while unresolved:
            lams, mus, ts, candidates = [], [], [], []
            groups: Dict[int, List[int]] = {}
            for j in unresolved:
                _, q, _, min_c, _ = cold[j]
                group: List[int] = []
                while len(group) < _LADDER_GROUP:
                    rung = min_c + (1 << exponent[j]) - 1
                    exponent[j] += 1
                    if rung >= q.max_containers:
                        group.append(q.max_containers)
                        break
                    group.append(rung)
                group = [c for c in group if c > last_unsat[j]]
                if not group:
                    raise could_not_satisfy(q)
                groups[j] = group
                lams.extend(q.lam for _ in group)
                mus.extend(q.mu for _ in group)
                ts.extend(q.wait_budget for _ in group)
                candidates.extend(group)
            probs = wait_probabilities(
                np.array(lams), np.array(mus), np.array(candidates), np.array(ts)
            )
            cursor = 0
            still: List[int] = []
            for j in unresolved:
                group = groups[j]
                window = probs[cursor:cursor + len(group)]
                cursor += len(group)
                evals[j] += len(group)
                _, q, _, _, _ = cold[j]
                satisfied = np.nonzero(window >= q.percentile)[0]
                if satisfied.size:
                    g = int(satisfied[0])
                    bracket_lo = (group[g - 1] if g > 0 else last_unsat[j]) + 1
                    brackets[j] = (bracket_lo, group[g], float(window[g]))
                else:
                    last_unsat[j] = group[-1]
                    if last_unsat[j] >= q.max_containers:
                        raise could_not_satisfy(q)
                    still.append(j)
            unresolved = still

        def conclude(j: int, c_star: int, p_star: float) -> None:
            """Store and finish one cold query's result."""
            i, q, solve_key, _min_c, lower, = cold[j]
            self.stats.probability_evaluations += evals[j]
            self._store(q, solve_key, c_star, p_star)
            results[i] = self._finish(q, c_star, p_star, lower, evals[j])

        sweep: List[int] = []
        for j, (b_lo, b_hi, b_prob) in brackets.items():
            _, q, _, _, _ = cold[j]
            if b_hi == b_lo:
                conclude(j, b_hi, b_prob)
            elif b_hi - b_lo > _BATCH_BRACKET:
                c_star, p_star, extra = _first_satisfying(
                    q.lam, q.mu, q.wait_budget, q.percentile, b_lo, b_hi, b_prob
                )
                evals[j] += extra
                conclude(j, c_star, p_star)
            else:
                sweep.append(j)
        if sweep:
            lams, mus, ts, candidates = [], [], [], []
            for j in sweep:
                _, q, _, _, _ = cold[j]
                b_lo, b_hi, _ = brackets[j]
                span = range(b_lo, b_hi)            # b_hi itself is known good
                lams.extend(q.lam for _ in span)
                mus.extend(q.mu for _ in span)
                ts.extend(q.wait_budget for _ in span)
                candidates.extend(span)
            probs = wait_probabilities(
                np.array(lams), np.array(mus), np.array(candidates), np.array(ts)
            )
            cursor = 0
            for j in sweep:
                _, q, _, _, _ = cold[j]
                b_lo, b_hi, b_prob = brackets[j]
                width = b_hi - b_lo
                window = probs[cursor:cursor + width]
                cursor += width
                evals[j] += width
                satisfied = np.nonzero(window >= q.percentile)[0]
                if satisfied.size:
                    g = int(satisfied[0])
                    conclude(j, b_lo + g, float(window[g]))
                else:
                    conclude(j, b_hi, b_prob)

    #: contiguous candidates probed per direction in the pooled second
    #: warm phase; drifts of up to ``1 + _WARM_WINDOW`` containers per
    #: epoch resolve in exactly two kernel calls for the whole batch
    _WARM_WINDOW = 8

    def _resolve_warm(
        self,
        warm: List[Tuple[int, SizingQuery, Tuple, int, int, int]],
        results: List[Optional[SizingResult]],
    ) -> None:
        """Settle warm-started queries with at most two pooled kernel calls.

        Phase 1 evaluates ``{c*−1, c*, c*+1}`` for every query in one
        call (the common steady-state case).  Queries whose optimum
        moved further pool a contiguous window of
        :data:`_WARM_WINDOW` candidates in the drift direction into a
        second shared call; only drifts beyond that window fall back to
        an individual bracketed search.  Every shortcut is exact by
        monotonicity: an answer is accepted only when its predecessor
        is known to miss the target.
        """
        def settle(entry: Tuple[int, SizingQuery, Tuple, int, int, int],
                   c_star: int, p_star: float, evals: int) -> None:
            """Record one resolved optimum and finish its result slot."""
            i, q, solve_key, _min_c, lower, _anchor = entry
            self._store(q, solve_key, c_star, p_star)
            results[i] = self._finish(q, c_star, p_star, lower, evals)

        lams, mus, ts, candidates = [], [], [], []
        for _, q, _, _, _, anchor in warm:
            below = max(1, anchor - 1)
            above = min(anchor + 1, q.max_containers)
            lams.extend((q.lam, q.lam, q.lam))
            mus.extend((q.mu, q.mu, q.mu))
            ts.extend((q.wait_budget, q.wait_budget, q.wait_budget))
            candidates.extend((below, anchor, above))
        probs = wait_probabilities(
            np.array(lams), np.array(mus), np.array(candidates), np.array(ts)
        )
        self.stats.probability_evaluations += len(candidates)

        # entries needing a second phase: (warm entry, window lo, window hi,
        # probability at the known-good / known-bad phase-1 neighbour)
        pending_down: List[Tuple[Tuple, int, int, float]] = []
        pending_up: List[Tuple[Tuple, int, int]] = []

        for slot, entry in enumerate(warm):
            i, q, solve_key, min_c, lower, anchor = entry
            p_below = float(probs[3 * slot])
            p_here = float(probs[3 * slot + 1])
            p_above = float(probs[3 * slot + 2])
            target = q.percentile
            if p_here >= target:
                if anchor == min_c or p_below < target:
                    self.stats.warm_hits += 1
                    settle(entry, anchor, p_here, 3)
                elif anchor - 1 == min_c:
                    self.stats.warm_hits += 1
                    settle(entry, anchor - 1, p_below, 3)
                else:
                    # optimum dropped by ≥ 2: window below anchor − 1
                    self.stats.warm_fallbacks += 1
                    lo_w = max(min_c, anchor - 1 - self._WARM_WINDOW)
                    pending_down.append((entry, lo_w, anchor - 2, p_below))
            else:
                above = min(anchor + 1, q.max_containers)
                if above > anchor and p_above >= target:
                    self.stats.warm_hits += 1
                    settle(entry, above, p_above, 3)
                else:
                    # optimum rose by ≥ 2 (or anchor hit the cap)
                    self.stats.warm_fallbacks += 1
                    hi_w = min(above + self._WARM_WINDOW, q.max_containers)
                    pending_up.append((entry, above + 1, hi_w))
        if not pending_down and not pending_up:
            return
        lams2, mus2, ts2, candidates2, spans = [], [], [], [], []
        for entry, lo_w, hi_w, _ in pending_down:
            spans.append(range(lo_w, hi_w + 1))
        for entry, lo_w, hi_w in pending_up:
            spans.append(range(lo_w, hi_w + 1))
        for (entry, *_), span in zip(pending_down + pending_up, spans):
            q = entry[1]
            for c in span:
                lams2.append(q.lam)
                mus2.append(q.mu)
                ts2.append(q.wait_budget)
                candidates2.append(c)
        probs2 = (
            wait_probabilities(np.array(lams2), np.array(mus2),
                               np.array(candidates2), np.array(ts2))
            if candidates2 else np.zeros(0)
        )
        self.stats.probability_evaluations += len(candidates2)

        cursor = 0
        for (entry, lo_w, hi_w, p_good), span in zip(pending_down, spans[:len(pending_down)]):
            i, q, solve_key, min_c, lower, anchor = entry
            window = probs2[cursor:cursor + len(span)]
            cursor += len(span)
            evals = 3 + len(span)
            satisfied = np.nonzero(window >= q.percentile)[0]
            if satisfied.size == 0:
                # anchor − 2 misses, anchor − 1 is known good: exact
                settle(entry, anchor - 1, p_good, evals)
            else:
                j = int(satisfied[0])
                if j > 0 or lo_w == min_c:
                    settle(entry, lo_w + j, float(window[j]), evals)
                else:
                    # the whole window satisfies: optimum is below it
                    c_star, p_star, extra = _first_satisfying(
                        q.lam, q.mu, q.wait_budget, q.percentile,
                        min_c, lo_w, float(window[0]),
                    )
                    self.stats.probability_evaluations += extra
                    settle(entry, c_star, p_star, evals + extra)
        for (entry, lo_w, hi_w), span in zip(pending_up, spans[len(pending_down):]):
            i, q, solve_key, min_c, lower, anchor = entry
            window = probs2[cursor:cursor + len(span)]
            cursor += len(span)
            evals = 3 + len(span)
            satisfied = np.nonzero(window >= q.percentile)[0]
            if satisfied.size:
                # predecessor of the first hit is in the window (or is the
                # known-bad anchor + 1): exact
                j = int(satisfied[0])
                settle(entry, lo_w + j, float(window[j]), evals)
            elif hi_w >= q.max_containers:
                raise _unsatisfiable(q.lam, q.mu, q.wait_budget, q.percentile,
                             q.max_containers)
            else:
                # drift larger than the window: bracketed search above it
                c_star, p_star, extra = smallest_satisfying(
                    q.lam, q.mu, q.wait_budget, q.percentile,
                    hi_w + 1, q.max_containers,
                )
                self.stats.probability_evaluations += extra
                settle(entry, c_star, p_star, evals + extra)

    def _store(self, q: SizingQuery, solve_key: Tuple, c_star: int, p_star: float) -> None:
        """Record a computed unconstrained optimum in the memo."""
        if self._caching:
            self._solutions.put(solve_key, (c_star, p_star))

    def _finish(self, q: SizingQuery, c_star: int, p_star: float,
                lower: int, evals: int) -> SizingResult:
        """Apply the lower bound to the unconstrained optimum and build the result.

        ``P(Q ≤ t)`` is non-decreasing in ``c``, so the smallest count
        at or above ``lower`` is simply ``max(lower, c*)``.
        """
        if self._warming and q.key is not None:
            self._warm[q.key] = c_star
        if max(lower, c_star) > q.max_containers:
            raise _unsatisfiable(q.lam, q.mu, q.wait_budget, q.percentile,
                         q.max_containers)
        if lower <= c_star:
            return SizingResult(c_star, p_star, q.wait_budget, evals)
        prob = self._probability(q.lam, q.mu, lower, q.wait_budget)
        return SizingResult(lower, prob, q.wait_budget, evals + 1)

    # -- heterogeneous solves -------------------------------------------
    def solve_heterogeneous(
        self,
        lam: float,
        existing_mus: Sequence[float],
        standard_mu: float,
        wait_budget: float,
        percentile: float = 0.95,
        max_additional: int = 100_000,
        key: Optional[Hashable] = None,
    ) -> SizingResult:
        """Additional-standard-container sizing over a deflated fleet.

        The memoized, warm-started counterpart of
        :func:`repro.core.queueing.sizing.required_containers_heterogeneous`
        (identical answers).  Monotonicity in the number of added
        standard containers makes the same warm-start / bracketed
        search shortcuts exact.
        """
        if standard_mu <= 0:
            raise ValueError("standard service rate must be positive")
        if lam < 0:
            raise ValueError("arrival rate must be non-negative")
        existing = tuple(sorted(float(m) for m in existing_mus))
        if any(m <= 0 for m in existing):
            raise ValueError("existing service rates must be positive")
        self.stats.solves += 1
        if lam == 0:
            return SizingResult(len(existing), 1.0, wait_budget, 0)

        lam = float(lam)
        standard_mu = float(standard_mu)
        wait_budget = float(wait_budget)
        target = float(percentile)
        solve_key = (lam, existing, standard_mu, wait_budget, target)
        if self._caching:
            hit = self._heterogeneous.get(solve_key)
            if hit is not None:
                added, prob = hit  # type: ignore[misc]
                if added > max_additional:
                    # the cached optimum is known to be minimal, so a
                    # tighter cap is unsatisfiable (mirrors the reference)
                    raise ValueError(
                        "could not satisfy SLO within max_additional containers"
                    )
                self.stats.cache_hits += 1
                if self._warming and key is not None:
                    self._warm_heterogeneous[key] = added
                return SizingResult(len(existing) + added, prob, wait_budget, 0)

        evals = [0]

        def probability(added: int) -> float:
            """Bound at ``added`` extra standard containers (0 when unstable)."""
            mus = list(existing) + [standard_mu] * added
            evals[0] += 1
            if not mus or sum(mus) <= lam:
                return 0.0
            return HeterogeneousMMcQueue(lam, mus).wait_bound_probability(wait_budget)

        added, prob = self._search_heterogeneous(
            probability, target, max_additional, key, lam
        )
        if self._caching:
            self._heterogeneous.put(solve_key, (added, prob))
        if self._warming and key is not None:
            self._warm_heterogeneous[key] = added
        self.stats.probability_evaluations += evals[0]
        return SizingResult(len(existing) + added, prob, wait_budget, evals[0])

    def _search_heterogeneous(self, probability, target: float, max_additional: int,
                              key: Optional[Hashable], lam: float) -> Tuple[int, float]:
        """Smallest ``added ≥ 0`` with ``probability(added) ≥ target``."""
        previous = (
            self._warm_heterogeneous.get(key)
            if (self._warming and key is not None) else None
        )
        if previous is not None:
            anchor = min(max(previous, 0), max_additional)
            p_here = probability(anchor)
            if p_here >= target:
                if anchor == 0:
                    self.stats.warm_hits += 1
                    return anchor, p_here
                p_below = probability(anchor - 1)
                if p_below < target:
                    self.stats.warm_hits += 1
                    return anchor, p_here
                if anchor - 1 == 0:
                    self.stats.warm_hits += 1
                    return 0, p_below
                self.stats.warm_fallbacks += 1
                return self._bisect_heterogeneous(probability, target, 0, anchor - 1, p_below)
            if anchor + 1 <= max_additional:
                p_above = probability(anchor + 1)
                if p_above >= target:
                    self.stats.warm_hits += 1
                    return anchor + 1, p_above
                self.stats.warm_fallbacks += 1
                return self._ladder_heterogeneous(probability, target,
                                                  anchor + 2, max_additional)
            raise ValueError("could not satisfy SLO within max_additional containers")
        self.stats.full_searches += 1
        return self._ladder_heterogeneous(probability, target, 0, max_additional)

    @staticmethod
    def _ladder_heterogeneous(probability, target: float, lo: int,
                              max_additional: int) -> Tuple[int, float]:
        """Exponential bracket + bisection over the added-container count."""
        if lo > max_additional:
            raise ValueError("could not satisfy SLO within max_additional containers")
        last_unsatisfied = lo - 1
        k = 0
        while True:
            added = lo + (1 << k) - 1
            k += 1
            capped = min(added, max_additional)
            prob = probability(capped)
            if prob >= target:
                return SizingSolver._bisect_heterogeneous(
                    probability, target, last_unsatisfied + 1, capped, prob
                )
            last_unsatisfied = capped
            if capped >= max_additional:
                raise ValueError("could not satisfy SLO within max_additional containers")

    @staticmethod
    def _bisect_heterogeneous(probability, target: float, lo: int, hi: int,
                              hi_prob: float) -> Tuple[int, float]:
        """Smallest ``added`` in ``[lo, hi]`` meeting the target (``hi`` known good)."""
        while lo < hi:
            mid = (lo + hi) // 2
            prob = probability(mid)
            if prob >= target:
                hi, hi_prob = mid, prob
            else:
                lo = mid + 1
        return hi, hi_prob


# ----------------------------------------------------------------------
# Process-wide default instance
# ----------------------------------------------------------------------
_DEFAULT_SOLVER: Optional[SizingSolver] = None


def default_solver() -> SizingSolver:
    """The shared process-wide :class:`SizingSolver` (lazily created).

    Exact-key memoization means sharing one instance across callers can
    never change results; components wanting isolated cache statistics
    or sizing (the controller, benchmarks) construct their own.
    """
    global _DEFAULT_SOLVER
    if _DEFAULT_SOLVER is None:
        _DEFAULT_SOLVER = SizingSolver()
    return _DEFAULT_SOLVER


__all__ = [
    "SizingResult",
    "SizingQuery",
    "SizingSolver",
    "SolverStats",
    "caches_disabled",
    "default_solver",
    "log_factorials",
    "smallest_satisfying",
    "wait_probabilities",
]
