"""Heterogeneous-server M/M/c upper bounds (paper §3.2, Alves et al. 2011).

After deflation the containers of a function no longer share a single
service rate: container ``j`` serves at rate ``μ_j``.  The paper uses
the worst-case analysis of Alves et al., which assumes the dispatcher
always occupies the *slowest* idle container first.  Under that
assumption the system is a birth–death chain whose death rate in state
``n`` is the sum of the ``min(n, c)`` smallest service rates, giving the
upper-bound state probabilities (paper Eq. 5–6)::

    P_n = P_0 · λ^n / Π_{k=1}^{n} S_k          with S_k = Σ_{j=1}^{min(k,c)} μ_(j)

where ``μ_(1) <= ... <= μ_(c)`` are the rates sorted ascending.  For
``n > c`` the product's extra factors are all ``λ / S_c``, a geometric
tail that converges when ``λ < S_c`` (the aggregate service capacity).

The waiting-time bound mirrors the homogeneous case: an arrival that
sees ``n >= c`` requests waits about ``(n − c + 1)/S_c``, so
``P(Q <= t) >= Σ_{n=0}^{L} P_n`` with ``L = ⌊t·S_c + c − 1⌋``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class HeterogeneousMMcQueue:
    """M/M/c queue whose ``c`` servers have individual service rates.

    Parameters
    ----------
    lam:
        Poisson arrival rate.
    mus:
        Per-container service rates; order does not matter (they are
        sorted ascending internally, as the worst-case analysis requires).
    """

    lam: float
    mus: Tuple[float, ...]

    def __init__(self, lam: float, mus: Sequence[float]) -> None:
        """Validate the rates and pre-sort the per-server service rates."""
        if lam < 0:
            raise ValueError("arrival rate must be non-negative")
        mus_tuple = tuple(sorted(float(m) for m in mus))
        if not mus_tuple:
            raise ValueError("at least one container is required")
        if any(m <= 0 for m in mus_tuple):
            raise ValueError("all service rates must be positive")
        object.__setattr__(self, "lam", float(lam))
        object.__setattr__(self, "mus", mus_tuple)

    # ------------------------------------------------------------------
    # Basic quantities
    # ------------------------------------------------------------------
    @property
    def c(self) -> int:
        """Number of containers."""
        return len(self.mus)

    @property
    def aggregate_rate(self) -> float:
        """Total service capacity ``S_c = Σ μ_j``."""
        return float(sum(self.mus))

    @property
    def utilization(self) -> float:
        """``ρ = λ / S_c``."""
        return self.lam / self.aggregate_rate

    @property
    def is_stable(self) -> bool:
        """Whether the worst-case chain has a steady state."""
        return self.lam < self.aggregate_rate

    def _cumulative_rates(self) -> np.ndarray:
        """``S_1 .. S_c``: cumulative sums of the ascending-sorted rates."""
        return np.cumsum(np.asarray(self.mus, dtype=float))

    # ------------------------------------------------------------------
    # State probabilities (paper Eq. 5–6)
    # ------------------------------------------------------------------
    def log_unnormalised(self, n_max: int) -> np.ndarray:
        """Log of the unnormalised state weights ``π_n = λ^n / Π S_k`` for ``n=0..n_max``."""
        if n_max < 0:
            raise ValueError("n_max must be non-negative")
        if self.lam == 0:
            out = np.full(n_max + 1, -np.inf)
            out[0] = 0.0
            return out
        cumulative = self._cumulative_rates()
        log_lam = math.log(self.lam)
        log_s = np.log(cumulative)
        # one cumulative sum over the per-state increments log λ − log S_k
        # replaces the former Python loop over n (the control-plane solver
        # evaluates this bound on every heterogeneous sizing probe)
        log_weights = np.empty(n_max + 1)
        log_weights[0] = 0.0
        if n_max > 0:
            n = np.arange(1, n_max + 1)
            increments = log_lam - log_s[np.minimum(n, self.c) - 1]
            np.cumsum(increments, out=log_weights[1:])
        return log_weights

    def log_p0(self) -> float:
        """Log of the normalising constant's inverse (``log P_0``)."""
        if not self.is_stable:
            raise ValueError("unstable system: lambda >= aggregate service rate")
        if self.lam == 0:
            return 0.0
        # finite part up to n = c, then a closed-form geometric tail
        log_weights = self.log_unnormalised(self.c)
        tail_ratio = self.lam / self.aggregate_rate
        # sum_{n=c+1}^{inf} w_c * ratio^{n-c} = w_c * ratio / (1 - ratio)
        log_tail = log_weights[self.c] + math.log(tail_ratio) - math.log(1.0 - tail_ratio)
        from scipy.special import logsumexp

        log_norm = logsumexp(np.append(log_weights, log_tail))
        return float(-log_norm)

    def state_probabilities(self, n_max: int) -> np.ndarray:
        """Upper-bound probabilities ``P_0 .. P_{n_max}``."""
        log_p0 = self.log_p0()
        return np.exp(self.log_unnormalised(n_max) + log_p0)

    # ------------------------------------------------------------------
    # Waiting time bound
    # ------------------------------------------------------------------
    def wait_bound_probability(self, t: float) -> float:
        """Lower bound on ``P(Q <= t)`` under worst-case dispatch."""
        if t < 0:
            return 0.0
        if not self.is_stable:
            return 0.0
        L = int(math.floor(t * self.aggregate_rate + self.c - 1 + 1e-12))
        if L < 0:
            return 0.0
        probs = self.state_probabilities(L)
        return float(min(1.0, probs.sum()))

    def wait_bound_percentile(self, percentile: float, resolution: float = 1e-4) -> float:
        """Smallest ``t`` with ``wait_bound_probability(t) >= percentile``."""
        if not 0 < percentile < 1:
            raise ValueError("percentile must be in (0, 1)")
        if not self.is_stable:
            return math.inf
        if self.wait_bound_probability(0.0) >= percentile:
            return 0.0
        lo, hi = 0.0, self.c / self.aggregate_rate
        while self.wait_bound_probability(hi) < percentile:
            hi *= 2.0
            if hi > 1e7:  # pragma: no cover - pathological
                return math.inf
        while hi - lo > resolution:
            mid = 0.5 * (lo + hi)
            if self.wait_bound_probability(mid) >= percentile:
                hi = mid
            else:
                lo = mid
        return hi

    @property
    def mean_number_in_system(self) -> float:
        """Mean of the upper-bound distribution of the number in system."""
        if not self.is_stable:
            return math.inf
        # sum the finite head explicitly and the geometric tail in closed form
        head_max = self.c + 200
        probs = self.state_probabilities(head_max)
        ratio = self.lam / self.aggregate_rate
        head = float(np.dot(np.arange(head_max + 1), probs))
        # tail: P_n = P_head_max * ratio^{n - head_max} for n > head_max
        p_last = probs[head_max]
        tail = p_last * ratio * ((head_max + 1) * (1 - ratio) + ratio) / (1 - ratio) ** 2
        return head + tail

    def matches_homogeneous(self) -> bool:
        """True when all containers share the same service rate."""
        return max(self.mus) - min(self.mus) < 1e-12


__all__ = ["HeterogeneousMMcQueue"]
