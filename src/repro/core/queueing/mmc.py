"""M/M/c/FCFS queueing analysis (paper §3.1).

The model: requests for a function arrive as a Poisson process of rate
``λ``; each of ``c`` identical containers serves requests with
exponential service times of rate ``μ``.  The steady-state probability
of ``n`` requests in the system is (paper Eq. 1–2)::

    P_n = (r^n / n!) P_0                for 0 <= n <= c
    P_n = (r^n / (c^(n-c) c!)) P_0      for n >= c

with ``r = λ/μ`` and ``ρ = λ/(cμ) < 1`` for stability.  From these the
paper derives a bound on the waiting time: an arriving request that sees
``n >= c`` requests waits roughly ``(n − c + 1)/(cμ)``, so the
probability that the wait is below ``t`` is ``Σ_{n=0}^{L} P_n`` with
``L = ⌊t c μ + c − 1⌋`` (Eq. 3–4).

This module implements those formulas in a numerically careful way
(log-space factorials, so ``c`` in the thousands is fine) and also the
exact Erlang-C waiting-time distribution, which is used for comparison
and in tests as an independent cross-check of the paper's bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy import special


def _validate(lam: float, mu: float, c: int) -> None:
    """Validate λ ≥ 0, μ > 0, and c ≥ 1."""
    if lam < 0:
        raise ValueError(f"arrival rate must be non-negative, got {lam}")
    if mu <= 0:
        raise ValueError(f"service rate must be positive, got {mu}")
    if c < 1:
        raise ValueError(f"number of servers must be >= 1, got {c}")


def mmc_log_p0(lam: float, mu: float, c: int) -> float:
    """Natural log of the empty-system probability ``P_0`` of an M/M/c queue.

    Requires ``ρ = λ/(cμ) < 1``.
    """
    _validate(lam, mu, c)
    r = lam / mu
    rho = r / c
    if rho >= 1.0:
        raise ValueError(f"unstable system: rho={rho:.4f} >= 1 (lam={lam}, mu={mu}, c={c})")
    if lam == 0:
        return 0.0
    # log of the two pieces of 1/P0
    log_r = math.log(r)
    # sum_{n=0}^{c-1} r^n / n!
    n = np.arange(c)
    log_terms = n * log_r - special.gammaln(n + 1)
    log_sum_finite = special.logsumexp(log_terms)
    # r^c / (c! (1-rho))
    log_tail = c * log_r - special.gammaln(c + 1) - math.log(1.0 - rho)
    log_inv_p0 = np.logaddexp(log_sum_finite, log_tail)
    return float(-log_inv_p0)


def mmc_state_probabilities(lam: float, mu: float, c: int, n_max: int) -> np.ndarray:
    """Steady-state probabilities ``P_0 .. P_{n_max}`` of an M/M/c queue.

    Implements the paper's Eq. 1–2 in log space.
    """
    _validate(lam, mu, c)
    if n_max < 0:
        raise ValueError("n_max must be non-negative")
    if lam == 0:
        probs = np.zeros(n_max + 1)
        probs[0] = 1.0
        return probs
    r = lam / mu
    log_r = math.log(r)
    log_p0 = mmc_log_p0(lam, mu, c)
    n = np.arange(n_max + 1)
    log_pn = np.empty(n_max + 1)
    head = n <= c
    log_pn[head] = n[head] * log_r - special.gammaln(n[head] + 1) + log_p0
    tail = ~head
    if tail.any():
        log_pn[tail] = (
            n[tail] * log_r
            - (n[tail] - c) * math.log(c)
            - special.gammaln(c + 1)
            + log_p0
        )
    return np.exp(log_pn)


def erlang_c(lam: float, mu: float, c: int) -> float:
    """Erlang-C: the probability that an arriving request must wait.

    ``C(c, r) = P(N >= c)`` for an M/M/c queue; used as an independent
    cross-check of the state-probability computation.
    """
    _validate(lam, mu, c)
    if lam == 0:
        return 0.0
    r = lam / mu
    rho = r / c
    if rho >= 1.0:
        return 1.0
    log_p0 = mmc_log_p0(lam, mu, c)
    log_pw = c * math.log(r) - special.gammaln(c + 1) - math.log(1.0 - rho) + log_p0
    return float(min(1.0, math.exp(log_pw)))


@dataclass(frozen=True)
class MMcQueue:
    """An M/M/c/FCFS queue with arrival rate ``lam``, service rate ``mu``, ``c`` servers.

    All quantities are exact steady-state values (no simulation).
    """

    lam: float
    mu: float
    c: int

    def __post_init__(self) -> None:
        """Validate the queue parameters."""
        _validate(self.lam, self.mu, self.c)

    # ------------------------------------------------------------------
    # Basic quantities
    # ------------------------------------------------------------------
    @property
    def offered_load(self) -> float:
        """``r = λ/μ``, the offered load in Erlangs."""
        return self.lam / self.mu

    @property
    def utilization(self) -> float:
        """``ρ = λ/(cμ)``."""
        return self.lam / (self.c * self.mu)

    @property
    def is_stable(self) -> bool:
        """Whether the queue has a steady state (ρ < 1)."""
        return self.utilization < 1.0

    def state_probabilities(self, n_max: int) -> np.ndarray:
        """``P_0 .. P_{n_max}`` (paper Eq. 1–2)."""
        return mmc_state_probabilities(self.lam, self.mu, self.c, n_max)

    @property
    def probability_of_waiting(self) -> float:
        """Erlang-C probability that an arrival finds all containers busy."""
        return erlang_c(self.lam, self.mu, self.c)

    # ------------------------------------------------------------------
    # Waiting time
    # ------------------------------------------------------------------
    @property
    def mean_wait(self) -> float:
        """Expected waiting time in queue, ``W_q = C(c,r) / (cμ − λ)``."""
        if not self.is_stable:
            return math.inf
        return self.probability_of_waiting / (self.c * self.mu - self.lam)

    @property
    def mean_queue_length(self) -> float:
        """Expected number waiting in queue (Little's law: ``L_q = λ W_q``)."""
        return self.lam * self.mean_wait

    @property
    def mean_response_time(self) -> float:
        """Expected sojourn time ``W = W_q + 1/μ``."""
        return self.mean_wait + 1.0 / self.mu

    def wait_cdf_exact(self, t: float) -> float:
        """Exact FCFS waiting-time CDF: ``P(W_q <= t) = 1 − C(c,r) e^{−(cμ−λ)t}``."""
        if t < 0:
            return 0.0
        if not self.is_stable:
            return 0.0
        return 1.0 - self.probability_of_waiting * math.exp(-(self.c * self.mu - self.lam) * t)

    def wait_percentile_exact(self, percentile: float) -> float:
        """Exact percentile of the FCFS waiting-time distribution.

        Returns 0 when the percentile is already met by requests that do
        not wait at all.
        """
        if not 0 < percentile < 1:
            raise ValueError("percentile must be in (0, 1)")
        if not self.is_stable:
            return math.inf
        pw = self.probability_of_waiting
        if 1.0 - pw >= percentile:
            return 0.0
        return -math.log((1.0 - percentile) / pw) / (self.c * self.mu - self.lam)

    def wait_bound_probability(self, t: float) -> float:
        """The paper's bound (Eq. 3–4): ``P(Q <= t) ≈ Σ_{n=0}^{L} P_n``.

        ``L = ⌊t c μ + c − 1⌋`` is the largest number of requests an
        arrival can see while still expecting to wait at most ``t``.
        """
        if t < 0:
            return 0.0
        if not self.is_stable:
            return 0.0
        L = int(math.floor(t * self.c * self.mu + self.c - 1 + 1e-12))
        if L < 0:
            return 0.0
        probs = self.state_probabilities(L)
        return float(min(1.0, probs.sum()))

    def wait_bound_percentile(self, percentile: float, resolution: float = 1e-4) -> float:
        """Smallest ``t`` such that the paper's bound reaches ``percentile``.

        Found by bisection on :meth:`wait_bound_probability` (which is a
        non-decreasing step function of ``t``).
        """
        if not 0 < percentile < 1:
            raise ValueError("percentile must be in (0, 1)")
        if not self.is_stable:
            return math.inf
        if self.wait_bound_probability(0.0) >= percentile:
            return 0.0
        lo, hi = 0.0, 1.0 / self.mu
        while self.wait_bound_probability(hi) < percentile:
            hi *= 2.0
            if hi > 1e7:  # pragma: no cover - pathological
                return math.inf
        while hi - lo > resolution:
            mid = 0.5 * (lo + hi)
            if self.wait_bound_probability(mid) >= percentile:
                hi = mid
            else:
                lo = mid
        return hi

    def expected_busy_containers(self) -> float:
        """Mean number of busy containers, ``λ/μ`` for a stable system."""
        if not self.is_stable:
            return float(self.c)
        return self.offered_load


def mmc_wait_probability_vector(
    lams: Sequence[float], mu: float, cs: Sequence[int], t: float
) -> np.ndarray:
    """Vectorised ``P(Q <= t)`` for many (λ, c) pairs sharing the same μ.

    This is the hot path of the scalability experiment (Figure 5); it
    delegates to the solver's candidate-vectorised kernel, which
    evaluates every pair in one triangular numpy pass (the import is
    local only to keep this module free of a load-time cycle).
    """
    from repro.core.queueing.solver import wait_probabilities

    lams_arr = np.asarray(lams, dtype=float)
    cs_arr = np.asarray(cs, dtype=int)
    if lams_arr.shape != cs_arr.shape:
        raise ValueError("lams and cs must have the same shape")
    return wait_probabilities(lams_arr, mu, cs_arr, t)


__all__ = [
    "MMcQueue",
    "erlang_c",
    "mmc_state_probabilities",
    "mmc_log_p0",
    "mmc_wait_probability_vector",
]
