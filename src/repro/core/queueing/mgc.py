"""M/G/c approximation: sizing under general service-time distributions.

The paper's model assumes exponential service times and lists
generalising to other distributions as future work (§8).  This module
provides that extension: an M/G/c waiting-time approximation based on
the classical Allen–Cunneen / Kingman correction, where the M/M/c
waiting time is scaled by ``(1 + CV_s²)/2`` with ``CV_s`` the
coefficient of variation of the service-time distribution.

For exponential service (``CV_s = 1``) the correction is exactly 1 and
the model reduces to the paper's M/M/c analysis; for low-variability
services (the DNN inference functions, whose measured CV is ~0.2) it
predicts shorter waits and therefore fewer containers, and for
high-variability services it is more conservative.  The waiting-time
*distribution* is approximated as exponential beyond the probability of
waiting (a standard heavy-traffic approximation), which is what the
percentile-based SLO check needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.queueing.distributions import ServiceTimeDistribution
from repro.core.queueing.mmc import MMcQueue
from repro.core.queueing.sizing import SizingResult


@dataclass(frozen=True)
class MGcQueue:
    """An M/G/c queue approximated via the Allen–Cunneen correction.

    Parameters
    ----------
    lam:
        Poisson arrival rate.
    mean_service_time:
        Mean of the (general) service-time distribution, in seconds.
    scv:
        Squared coefficient of variation of the service time
        (``variance / mean²``); 1.0 recovers M/M/c.
    c:
        Number of containers.
    """

    lam: float
    mean_service_time: float
    scv: float
    c: int

    def __post_init__(self) -> None:
        """Validate the queue parameters."""
        if self.lam < 0:
            raise ValueError("arrival rate must be non-negative")
        if self.mean_service_time <= 0:
            raise ValueError("mean service time must be positive")
        if self.scv < 0:
            raise ValueError("squared coefficient of variation must be non-negative")
        if self.c < 1:
            raise ValueError("at least one container is required")

    @classmethod
    def from_distribution(
        cls, lam: float, distribution: ServiceTimeDistribution, c: int, samples: int = 20000
    ) -> "MGcQueue":
        """Build from a :class:`ServiceTimeDistribution`, estimating its SCV.

        Closed-form SCVs are used where the distribution exposes one
        (exponential → 1, deterministic → 0); otherwise the SCV is
        estimated from ``samples`` Monte-Carlo draws.
        """
        import numpy as np

        from repro.core.queueing.distributions import Deterministic, Exponential, LogNormal

        if isinstance(distribution, Exponential):
            scv = 1.0
        elif isinstance(distribution, Deterministic):
            scv = 0.0
        elif isinstance(distribution, LogNormal):
            scv = distribution.cv ** 2
        else:
            rng = np.random.default_rng(7)
            draws = np.asarray(distribution.sample(rng, size=samples), dtype=float)
            scv = float(draws.var() / draws.mean() ** 2)
        return cls(lam=lam, mean_service_time=distribution.mean, scv=scv, c=c)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def mu(self) -> float:
        """Service rate of one container."""
        return 1.0 / self.mean_service_time

    @property
    def utilization(self) -> float:
        """``ρ = λ/(cμ)``."""
        return self.lam / (self.c * self.mu)

    @property
    def is_stable(self) -> bool:
        """Whether the queue has a steady state."""
        return self.utilization < 1.0

    def _mmc(self) -> MMcQueue:
        """The M/M/c queue with the same λ, μ, and c (the approximation's base)."""
        return MMcQueue(self.lam, self.mu, self.c)

    @property
    def correction(self) -> float:
        """The Allen–Cunneen variability correction ``(1 + CV_s²)/2``."""
        return (1.0 + self.scv) / 2.0

    @property
    def mean_wait(self) -> float:
        """Approximate mean waiting time ``W_q(M/G/c) ≈ W_q(M/M/c)·(1+CV²)/2``."""
        if not self.is_stable:
            return math.inf
        return self._mmc().mean_wait * self.correction

    @property
    def probability_of_waiting(self) -> float:
        """Erlang-C probability of waiting (insensitive to the service distribution
        to first order, so the M/M/c value is used)."""
        return self._mmc().probability_of_waiting

    def wait_cdf(self, t: float) -> float:
        """Approximate ``P(W_q <= t)``.

        The conditional wait (given that the request waits at all) is
        approximated as exponential with the corrected mean.
        """
        if t < 0:
            return 0.0
        if not self.is_stable:
            return 0.0
        pw = self.probability_of_waiting
        if pw <= 0:
            return 1.0
        conditional_mean = self.mean_wait / pw
        return 1.0 - pw * math.exp(-t / conditional_mean)

    def wait_percentile(self, percentile: float) -> float:
        """Approximate percentile of the waiting time."""
        if not 0 < percentile < 1:
            raise ValueError("percentile must be in (0, 1)")
        if not self.is_stable:
            return math.inf
        pw = self.probability_of_waiting
        if 1.0 - pw >= percentile:
            return 0.0
        conditional_mean = self.mean_wait / pw
        return -conditional_mean * math.log((1.0 - percentile) / pw)


def required_containers_mgc(
    lam: float,
    mean_service_time: float,
    scv: float,
    wait_budget: float,
    percentile: float = 0.95,
    max_containers: int = 100_000,
) -> SizingResult:
    """Algorithm 1 under the M/G/c approximation.

    Finds the smallest ``c`` such that the approximate ``percentile`` of
    the waiting time is at most ``wait_budget``.  With ``scv=1`` the
    answer is very close to (and never below) the paper's M/M/c-based
    sizing; with ``scv<1`` (low-variability DNN inference) it typically
    saves a container at higher loads.
    """
    if lam < 0:
        raise ValueError("arrival rate must be non-negative")
    if mean_service_time <= 0:
        raise ValueError("mean service time must be positive")
    if wait_budget < 0:
        raise ValueError("wait budget must be non-negative")
    if not 0 < percentile < 1:
        raise ValueError("percentile must be in (0, 1)")
    if lam == 0:
        return SizingResult(0, 1.0, wait_budget, 0)

    mu = 1.0 / mean_service_time
    c = int(math.floor(lam / mu)) + 1
    iterations = 0
    while c <= max_containers:
        iterations += 1
        queue = MGcQueue(lam, mean_service_time, scv, c)
        if queue.is_stable:
            achieved = queue.wait_cdf(wait_budget)
            if achieved >= percentile:
                return SizingResult(
                    containers=c,
                    achieved_probability=achieved,
                    wait_budget=wait_budget,
                    iterations=iterations,
                )
        c += 1
    raise ValueError("could not satisfy SLO within max_containers")


__all__ = ["MGcQueue", "required_containers_mgc"]
